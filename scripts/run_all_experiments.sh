#!/usr/bin/env bash
# Regenerates every table and figure of the evaluation (DESIGN.md §4).
# Usage: scripts/run_all_experiments.sh [small|standard|large]
set -euo pipefail
SCALE="${1:-standard}"
cd "$(dirname "$0")/.."
cargo build --release -p streamlink-bench --bins
for exp in exp_datasets exp_accuracy exp_quality exp_throughput exp_memory \
           exp_progress exp_latency exp_baseline exp_ablation exp_scale exp_backends exp_lsh exp_mixed exp_bbit exp_robust exp_window exp_metrics exp_trace exp_scrape exp_faultmatrix exp_replication exp_codec exp_failover exp_events exp_loadgen; do
    echo "=== $exp ($SCALE) ==="
    "./target/release/$exp" --scale "$SCALE"
    echo
done
./target/release/exp_report > results/report.md
echo "All experiment outputs written to results/*.jsonl (markdown: results/report.md)"
