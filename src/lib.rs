//! # streamlink
//!
//! Sketch-based link prediction in graph streams.
//!
//! This facade crate re-exports the whole workspace so applications can
//! depend on a single crate:
//!
//! * [`hash`] — seeded hash families and tabulation hashing ([`hashkit`]).
//! * [`stream`] — graph-stream substrate: edge streams, generators, exact
//!   adjacency ([`graphstream`]).
//! * [`sketch`] — the paper's contribution: per-vertex MinHash sketches with
//!   constant space per vertex and constant time per edge
//!   ([`streamlink_core`]).
//! * [`predict`] — link-prediction scorers, evaluation metrics and
//!   experiment drivers ([`linkpred`]).
//! * [`data`] — synthetic stand-ins for the paper's real-world graph
//!   streams ([`datasets`]).
//!
//! ## Quickstart
//!
//! ```
//! use streamlink::prelude::*;
//!
//! // Build a sketch store: 64 slots per vertex.
//! let mut store = SketchStore::new(SketchConfig::with_slots(64));
//!
//! // Feed it a small synthetic stream.
//! let stream = BarabasiAlbert::new(500, 4, 42);
//! let mut exact = AdjacencyGraph::new();
//! for edge in stream.edges() {
//!     store.insert_edge(edge.src, edge.dst);
//!     exact.insert_edge(edge.src, edge.dst);
//! }
//!
//! // Estimate the Jaccard coefficient of a vertex pair and compare with
//! // the exact value.
//! let (u, v) = (VertexId(1), VertexId(2));
//! let est = store.jaccard(u, v).unwrap_or(0.0);
//! let truth = exact.jaccard(u, v);
//! assert!((est - truth).abs() <= 1.0);
//! ```

pub use datasets as data;
pub use graphstream as stream;
pub use hashkit as hash;
pub use linkpred as predict;
pub use streamlink_core as sketch;

/// One-stop imports for examples and applications.
pub mod prelude {
    pub use datasets::{DatasetSpec, SimulatedDataset};
    pub use graphstream::{AdjacencyGraph, BarabasiAlbert, Edge, EdgeStream, ErdosRenyi, VertexId};
    pub use linkpred::{EvaluationReport, ExactScorer, Measure, Scorer, SketchScorer};
    pub use streamlink_core::{SketchConfig, SketchStore};
}
