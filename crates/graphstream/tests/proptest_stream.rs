//! Property-based tests for the stream substrate.

use graphstream::io::{
    decode_binary, decode_compact, encode_binary, encode_compact, read_csv, write_csv,
};
use graphstream::{AdjacencyGraph, Edge, EdgeReservoir, StreamStats, VertexId};
use proptest::prelude::*;

fn arb_edge() -> impl Strategy<Value = Edge> {
    (0u64..500, 0u64..500, any::<u64>()).prop_map(|(u, v, ts)| Edge::new(u, v, ts))
}

fn arb_stream() -> impl Strategy<Value = Vec<Edge>> {
    proptest::collection::vec(arb_edge(), 0..200)
}

proptest! {
    /// Binary codec round-trips any stream exactly.
    #[test]
    fn binary_roundtrip(edges in arb_stream()) {
        let back = decode_binary(encode_binary(&edges)).unwrap();
        prop_assert_eq!(back.as_slice(), edges.as_slice());
    }

    /// Compact varint codec round-trips any stream exactly.
    #[test]
    fn compact_roundtrip(edges in arb_stream()) {
        let back = decode_compact(encode_compact(&edges)).unwrap();
        prop_assert_eq!(back.as_slice(), edges.as_slice());
    }

    /// Jaccard <= cosine <= overlap on every pair (standard inequality
    /// chain for neighborhood measures).
    #[test]
    fn measure_inequality_chain(edges in arb_stream(), a in 0u64..500, b in 0u64..500) {
        prop_assume!(a != b);
        let g = AdjacencyGraph::from_edges(edges);
        let (a, b) = (VertexId(a), VertexId(b));
        prop_assert!(g.jaccard(a, b) <= g.cosine(a, b) + 1e-12);
        prop_assert!(g.cosine(a, b) <= g.overlap(a, b) + 1e-12);
        prop_assert!(g.overlap(a, b) <= 1.0 + 1e-12);
    }

    /// CSV codec round-trips any stream exactly.
    #[test]
    fn csv_roundtrip(edges in arb_stream()) {
        let mut buf = Vec::new();
        write_csv(&edges, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        prop_assert_eq!(back.as_slice(), edges.as_slice());
    }

    /// Adjacency invariants: handshake lemma, symmetry, simpleness.
    #[test]
    fn adjacency_invariants(edges in arb_stream()) {
        let g = AdjacencyGraph::from_edges(edges);
        let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum as u64, 2 * g.edge_count());
        prop_assert_eq!(g.edges().count() as u64, g.edge_count());
        for (u, v) in g.edges() {
            prop_assert!(u != v);
            prop_assert!(g.has_edge(u, v) && g.has_edge(v, u));
        }
    }

    /// Exact Jaccard is always within [0, 1] and symmetric.
    #[test]
    fn jaccard_bounds(edges in arb_stream(), a in 0u64..500, b in 0u64..500) {
        let g = AdjacencyGraph::from_edges(edges);
        let (a, b) = (VertexId(a), VertexId(b));
        let j = g.jaccard(a, b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert_eq!(j, g.jaccard(b, a));
    }

    /// CN is bounded by the smaller degree; AA ≤ CN / ln 2 for u != v.
    #[test]
    fn measure_relations(edges in arb_stream(), a in 0u64..500, b in 0u64..500) {
        prop_assume!(a != b);
        let g = AdjacencyGraph::from_edges(edges);
        let (a, b) = (VertexId(a), VertexId(b));
        let cn = g.common_neighbors(a, b);
        prop_assert!(cn <= g.degree(a).min(g.degree(b)));
        let aa = g.adamic_adar(a, b);
        prop_assert!(aa >= 0.0);
        prop_assert!(aa <= cn as f64 / 2f64.ln() + 1e-9);
    }

    /// Reservoir never exceeds capacity and tracks the seen count.
    #[test]
    fn reservoir_bounds(edges in arb_stream(), cap in 1usize..64, seed in any::<u64>()) {
        let mut r = EdgeReservoir::new(cap, seed);
        for &e in &edges {
            r.offer(e);
        }
        prop_assert_eq!(r.seen(), edges.len() as u64);
        prop_assert!(r.sample().len() <= cap);
        prop_assert_eq!(r.sample().len(), edges.len().min(cap));
    }

    /// Stats: vertex count never exceeds 2×edges; degree sum is 2×(non-loop edges).
    #[test]
    fn stats_consistency(edges in arb_stream()) {
        let stats = StreamStats::from_edges(edges.iter().copied());
        let s = stats.summary();
        prop_assert!(s.vertices <= 2 * s.edges);
        prop_assert_eq!(s.edges, edges.len() as u64);
        let loops = edges.iter().filter(|e| e.is_loop()).count() as u64;
        prop_assert_eq!(s.self_loops, loops);
    }
}
