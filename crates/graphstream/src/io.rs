//! Edge-list codecs: human-readable CSV and a length-prefixed binary
//! format for fast replay of large streams.
//!
//! The binary format is:
//!
//! ```text
//! magic  u32 LE  = 0x534C_4B31  ("SLK1")
//! count  u64 LE  = number of records
//! record { src: u64 LE, dst: u64 LE, ts: u64 LE }  × count
//! ```
//!
//! Fixed-width records keep encode/decode branch-free; a 10M-edge stream
//! is 240 MB, fine for laptop-scale replay files.

use std::io::{BufRead, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::StreamError;
use crate::stream::MemoryStream;
use crate::types::Edge;

/// Magic number of the fixed-width binary stream format ("SLK1").
pub const BINARY_MAGIC: u32 = 0x534C_4B31;

/// Magic number of the compact varint stream format ("SLK2").
pub const COMPACT_MAGIC: u32 = 0x534C_4B32;

/// Writes a stream as `src,dst,ts` CSV lines (with header).
///
/// # Errors
/// Returns any underlying IO error.
pub fn write_csv(edges: &[Edge], mut w: impl Write) -> Result<(), StreamError> {
    writeln!(w, "src,dst,ts")?;
    for e in edges {
        writeln!(w, "{},{},{}", e.src.0, e.dst.0, e.ts)?;
    }
    Ok(())
}

/// Reads `src,dst[,ts]` CSV. A header line is auto-detected and skipped;
/// missing timestamps default to the line index. Blank lines and `#`
/// comments are ignored.
///
/// # Errors
/// Returns [`StreamError::Parse`] with the 1-based line number on any
/// malformed record.
pub fn read_csv(r: impl BufRead) -> Result<MemoryStream, StreamError> {
    let mut out = MemoryStream::new();
    let mut index = 0u64;
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        let position = lineno as u64 + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(',').map(str::trim);
        let src = parts.next().unwrap_or("");
        if lineno == 0 && src.parse::<u64>().is_err() {
            continue; // header row
        }
        let parse = |field: &str, name: &str| -> Result<u64, StreamError> {
            field.parse::<u64>().map_err(|e| StreamError::Parse {
                position,
                reason: format!("bad {name} field {field:?}: {e}"),
            })
        };
        let src = parse(src, "src")?;
        let dst = parse(
            parts.next().ok_or(StreamError::Parse {
                position,
                reason: "missing dst field".into(),
            })?,
            "dst",
        )?;
        let ts = match parts.next() {
            Some(f) if !f.is_empty() => parse(f, "ts")?,
            _ => index,
        };
        out.push(Edge::new(src, dst, ts));
        index += 1;
    }
    Ok(out)
}

/// Encodes a stream into the binary format.
#[must_use]
pub fn encode_binary(edges: &[Edge]) -> Bytes {
    let mut buf = BytesMut::with_capacity(12 + edges.len() * 24);
    buf.put_u32_le(BINARY_MAGIC);
    buf.put_u64_le(edges.len() as u64);
    for e in edges {
        buf.put_u64_le(e.src.0);
        buf.put_u64_le(e.dst.0);
        buf.put_u64_le(e.ts);
    }
    buf.freeze()
}

/// Decodes the binary format.
///
/// # Errors
/// [`StreamError::BadHeader`] on magic mismatch, [`StreamError::Truncated`]
/// if the payload ends before the promised record count.
pub fn decode_binary(mut buf: impl Buf) -> Result<MemoryStream, StreamError> {
    if buf.remaining() < 12 {
        return Err(StreamError::BadHeader(format!(
            "payload of {} bytes is smaller than the 12-byte header",
            buf.remaining()
        )));
    }
    let magic = buf.get_u32_le();
    if magic != BINARY_MAGIC {
        return Err(StreamError::BadHeader(format!(
            "magic {magic:#x}, expected {BINARY_MAGIC:#x}"
        )));
    }
    let count = buf.get_u64_le();
    let mut out = MemoryStream::new();
    for i in 0..count {
        if buf.remaining() < 24 {
            return Err(StreamError::Truncated {
                expected: count,
                actual: i,
            });
        }
        let src = buf.get_u64_le();
        let dst = buf.get_u64_le();
        let ts = buf.get_u64_le();
        out.push(Edge::new(src, dst, ts));
    }
    Ok(out)
}

/// Reads SNAP-style whitespace-separated edge lists (`u v` or `u\tv` per
/// line, `#` comments), the format the paper's real datasets ship in.
/// Timestamps default to the record index (SNAP snapshots are unordered;
/// treat file order as arrival order).
///
/// # Errors
/// [`StreamError::Parse`] with the 1-based line number on malformed
/// records.
pub fn read_snap(r: impl BufRead) -> Result<MemoryStream, StreamError> {
    let mut out = MemoryStream::new();
    let mut index = 0u64;
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        let position = lineno as u64 + 1;
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let parse = |field: Option<&str>, name: &str| -> Result<u64, StreamError> {
            let raw = field.ok_or_else(|| StreamError::Parse {
                position,
                reason: format!("missing {name} field"),
            })?;
            raw.parse::<u64>().map_err(|e| StreamError::Parse {
                position,
                reason: format!("bad {name} field {raw:?}: {e}"),
            })
        };
        let src = parse(parts.next(), "src")?;
        let dst = parse(parts.next(), "dst")?;
        out.push(Edge::new(src, dst, index));
        index += 1;
    }
    Ok(out)
}

/// LEB128 varint encode.
fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// LEB128 varint decode; `None` on truncation or >10-byte overlong runs.
fn get_varint(buf: &mut impl Buf) -> Option<u64> {
    let mut value = 0u64;
    for shift in (0..64).step_by(7) {
        if !buf.has_remaining() {
            return None;
        }
        let byte = buf.get_u8();
        value |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
    }
    None
}

/// Zigzag encoding of a signed delta into an unsigned varint payload.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encodes a stream into the compact varint format ("SLK2"): vertex ids
/// as raw varints, timestamps as zigzag deltas from the previous record.
/// Typically 4–6× smaller than [`encode_binary`] for generator-scale ids
/// with sequential timestamps.
#[must_use]
pub fn encode_compact(edges: &[Edge]) -> Bytes {
    let mut buf = BytesMut::with_capacity(12 + edges.len() * 6);
    buf.put_u32_le(COMPACT_MAGIC);
    put_varint(&mut buf, edges.len() as u64);
    let mut prev_ts = 0i64;
    for e in edges {
        put_varint(&mut buf, e.src.0);
        put_varint(&mut buf, e.dst.0);
        let ts = e.ts as i64;
        put_varint(&mut buf, zigzag(ts.wrapping_sub(prev_ts)));
        prev_ts = ts;
    }
    buf.freeze()
}

/// Decodes the compact varint format.
///
/// # Errors
/// [`StreamError::BadHeader`] on magic mismatch, [`StreamError::Truncated`]
/// when the payload ends mid-stream.
pub fn decode_compact(mut buf: impl Buf) -> Result<MemoryStream, StreamError> {
    if buf.remaining() < 4 {
        return Err(StreamError::BadHeader(format!(
            "payload of {} bytes is smaller than the 4-byte magic",
            buf.remaining()
        )));
    }
    let magic = buf.get_u32_le();
    if magic != COMPACT_MAGIC {
        return Err(StreamError::BadHeader(format!(
            "magic {magic:#x}, expected {COMPACT_MAGIC:#x}"
        )));
    }
    let count = get_varint(&mut buf)
        .ok_or_else(|| StreamError::BadHeader("truncated count varint".into()))?;
    let mut out = MemoryStream::new();
    let mut prev_ts = 0i64;
    for i in 0..count {
        let record = (|| {
            let src = get_varint(&mut buf)?;
            let dst = get_varint(&mut buf)?;
            let delta = unzigzag(get_varint(&mut buf)?);
            Some((src, dst, delta))
        })();
        let Some((src, dst, delta)) = record else {
            return Err(StreamError::Truncated {
                expected: count,
                actual: i,
            });
        };
        let ts = prev_ts.wrapping_add(delta);
        prev_ts = ts;
        out.push(Edge::new(src, dst, ts as u64));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::EdgeStream;

    fn toy() -> Vec<Edge> {
        vec![
            Edge::new(0u64, 1u64, 0),
            Edge::new(1u64, 2u64, 5),
            Edge::new(9u64, 3u64, 7),
        ]
    }

    #[test]
    fn csv_roundtrip() {
        let mut buf = Vec::new();
        write_csv(&toy(), &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.as_slice(), toy().as_slice());
    }

    #[test]
    fn csv_without_header_or_ts() {
        let input = "0,1\n1,2\n# a comment\n\n2,3\n";
        let s = read_csv(input.as_bytes()).unwrap();
        assert_eq!(s.len(), 3);
        // Missing ts defaults to record index.
        assert_eq!(s.as_slice()[2].ts, 2);
    }

    #[test]
    fn csv_reports_line_numbers() {
        let input = "src,dst,ts\n0,1,0\n0,potato,1\n";
        let err = read_csv(input.as_bytes()).unwrap_err();
        match err {
            StreamError::Parse { position, reason } => {
                assert_eq!(position, 3);
                assert!(reason.contains("potato"), "{reason}");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn csv_missing_dst_is_parse_error() {
        let err = read_csv("5\n".as_bytes()).unwrap_err();
        assert!(
            matches!(err, StreamError::Parse { position: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn binary_roundtrip() {
        let bytes = encode_binary(&toy());
        let back = decode_binary(bytes).unwrap();
        assert_eq!(back.as_slice(), toy().as_slice());
    }

    #[test]
    fn binary_empty_roundtrip() {
        let bytes = encode_binary(&[]);
        assert_eq!(decode_binary(bytes).unwrap().len(), 0);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut bytes = encode_binary(&toy()).to_vec();
        bytes[0] ^= 0xFF;
        let err = decode_binary(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, StreamError::BadHeader(_)), "{err}");
    }

    #[test]
    fn binary_detects_truncation() {
        let bytes = encode_binary(&toy());
        let cut = &bytes[..bytes.len() - 8];
        let err = decode_binary(cut).unwrap_err();
        match err {
            StreamError::Truncated {
                expected: 3,
                actual: 2,
            } => {}
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn binary_rejects_tiny_payload() {
        let err = decode_binary(&b"abc"[..]).unwrap_err();
        assert!(matches!(err, StreamError::BadHeader(_)));
    }

    #[test]
    fn snap_parses_whitespace_and_comments() {
        let input = "# SNAP-style header\n% konect-style comment\n0\t1\n1 2\n  3   4  \n";
        let s = read_snap(input.as_bytes()).unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s.as_slice()[0], Edge::new(0u64, 1u64, 0));
        assert_eq!(s.as_slice()[2], Edge::new(3u64, 4u64, 2));
    }

    #[test]
    fn snap_reports_bad_lines() {
        let err = read_snap("0 1\n7\n".as_bytes()).unwrap_err();
        match err {
            StreamError::Parse {
                position: 2,
                reason,
            } => {
                assert!(reason.contains("dst"), "{reason}");
            }
            other => panic!("wrong error: {other}"),
        }
        let err = read_snap("a b\n".as_bytes()).unwrap_err();
        assert!(matches!(err, StreamError::Parse { position: 1, .. }));
    }

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut bytes = buf.freeze();
            assert_eq!(get_varint(&mut bytes), Some(v), "value {v}");
        }
    }

    #[test]
    fn varint_truncation_is_none() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, u64::MAX);
        let full = buf.freeze();
        let mut cut = &full[..full.len() - 1];
        assert_eq!(get_varint(&mut cut), None);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v, "value {v}");
        }
    }

    #[test]
    fn compact_roundtrip() {
        let back = decode_compact(encode_compact(&toy())).unwrap();
        assert_eq!(back.as_slice(), toy().as_slice());
    }

    #[test]
    fn compact_roundtrip_generator_stream() {
        let stream = crate::generators::BarabasiAlbert::new(200, 3, 9).materialize();
        let bytes = encode_compact(stream.as_slice());
        assert_eq!(decode_compact(bytes).unwrap(), stream);
    }

    #[test]
    fn compact_is_much_smaller_than_fixed() {
        let stream = crate::generators::BarabasiAlbert::new(500, 3, 9).materialize();
        let fixed = encode_binary(stream.as_slice()).len();
        let compact = encode_compact(stream.as_slice()).len();
        assert!(
            compact * 4 < fixed,
            "compact {compact} bytes should be <1/4 of fixed {fixed}"
        );
    }

    #[test]
    fn compact_handles_nonmonotonic_timestamps() {
        let edges = vec![
            Edge::new(1u64, 2u64, 100),
            Edge::new(2u64, 3u64, 5), // timestamp goes backwards
            Edge::new(3u64, 4u64, u64::MAX),
        ];
        let back = decode_compact(encode_compact(&edges)).unwrap();
        assert_eq!(back.as_slice(), edges.as_slice());
    }

    #[test]
    fn compact_rejects_bad_magic_and_truncation() {
        let mut bytes = encode_compact(&toy()).to_vec();
        bytes[0] ^= 0xFF;
        assert!(matches!(
            decode_compact(bytes.as_slice()),
            Err(StreamError::BadHeader(_))
        ));

        let good = encode_compact(&toy());
        let cut = &good[..good.len() - 1];
        assert!(matches!(
            decode_compact(cut),
            Err(StreamError::Truncated { expected: 3, .. })
        ));
    }

    #[test]
    fn large_stream_roundtrips_through_both_codecs() {
        let stream = crate::generators::ErdosRenyi::new(100, 500, 1).materialize();
        let bin = decode_binary(encode_binary(stream.as_slice())).unwrap();
        assert_eq!(bin, stream);
        let mut csv = Vec::new();
        write_csv(stream.as_slice(), &mut csv).unwrap();
        assert_eq!(read_csv(csv.as_slice()).unwrap(), stream);
    }
}
