//! # graphstream
//!
//! The graph-stream substrate for `streamlink`.
//!
//! A *graph stream* is a sequence of undirected edges `(u, v, t)` arriving
//! in timestamp order. This crate provides everything around the stream
//! itself, independent of any sketching:
//!
//! * [`types`] — [`VertexId`], [`Edge`] and the canonical pair ordering.
//! * [`adapters`] — stream combinators (interleave, concatenate) and
//!   deterministic fault injection ([`NoiseInjector`]).
//! * [`stream`] — the [`EdgeStream`] abstraction, in-memory streams, and
//!   stream adapters (prefixes, interleaving).
//! * [`adjacency`] — [`AdjacencyGraph`], the exact in-memory graph used as
//!   ground truth and as the exact baseline (this is what the stream model
//!   says you *cannot* afford; we build it anyway to compare against).
//! * [`generators`] — Erdős–Rényi, Barabási–Albert, Watts–Strogatz,
//!   power-law configuration model and forest-fire stream generators, all
//!   deterministic under a seed.
//! * [`io`] — CSV, SNAP, fixed-width binary and compact varint edge-list
//!   codecs.
//! * [`interner`] — string label ⇄ dense [`VertexId`] interning for
//!   labeled feeds.
//! * [`reservoir`] — uniform edge reservoir sampling (the equal-memory
//!   streaming baseline).
//! * [`split`] — temporal train/test splitting for link-prediction
//!   evaluation.
//! * [`stats`] — single-pass stream statistics (degrees, skew) used by the
//!   dataset tables.
//!
//! ## Model assumptions
//!
//! Graphs are simple and undirected: generators emit each edge exactly
//! once, with `src < dst` canonicalized by [`Edge::canonical`]. Consumers
//! that need robustness against duplicate deliveries (the sketch layer)
//! are idempotent by construction; consumers that count (degree trackers)
//! document the distinct-edge assumption.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adapters;
pub mod adjacency;
pub mod error;
pub mod generators;
pub mod interner;
pub mod io;
pub mod reservoir;
pub mod split;
pub mod stats;
pub mod stream;
pub mod types;

pub use adapters::NoiseInjector;
pub use adjacency::AdjacencyGraph;
pub use error::StreamError;
pub use generators::{BarabasiAlbert, ErdosRenyi, ForestFire, PowerLawConfig, WattsStrogatz};
pub use interner::VertexInterner;
pub use reservoir::EdgeReservoir;
pub use split::TemporalSplit;
pub use stats::StreamStats;
pub use stream::{EdgeStream, MemoryStream};
pub use types::{Edge, VertexId};
