//! Temporal train/test splitting for link-prediction evaluation.
//!
//! Link prediction is evaluated *forward in time*: feed the model the
//! first `fraction` of the stream, then score its ability to predict the
//! edges that arrive afterwards. [`TemporalSplit`] also filters the test
//! side down to *novel* edges — pairs not already connected in the train
//! prefix — because re-deliveries are trivially "predictable".

use std::collections::HashSet;

use crate::stream::{EdgeStream, MemoryStream};
use crate::types::Edge;

/// A temporal split of a stream into a train prefix and a test suffix.
///
/// ```
/// use graphstream::{BarabasiAlbert, TemporalSplit};
///
/// let stream = BarabasiAlbert::new(100, 2, 1);
/// let split = TemporalSplit::at_fraction(&stream, 0.8);
/// assert!(!split.train().is_empty());
/// // Every test pair is novel with respect to the train prefix.
/// assert!(!split.test().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct TemporalSplit {
    train: MemoryStream,
    test: MemoryStream,
}

impl TemporalSplit {
    /// Splits `stream` at `fraction` (0 < fraction < 1) of its length.
    ///
    /// The test side keeps only edges whose endpoint pair does not occur
    /// in the train prefix, deduplicated.
    ///
    /// # Panics
    /// Panics if `fraction` is outside `(0, 1)`.
    #[must_use]
    pub fn at_fraction(stream: &impl EdgeStream, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "split fraction {fraction} outside (0, 1)"
        );
        let edges: Vec<Edge> = stream.edges().collect();
        let cut = ((edges.len() as f64) * fraction).round() as usize;
        let cut = cut.clamp(1, edges.len().saturating_sub(1).max(1));

        let train: Vec<Edge> = edges[..cut].to_vec();
        let train_keys: HashSet<_> = train.iter().map(|e| e.key()).collect();

        let mut test_keys = HashSet::new();
        let test: Vec<Edge> = edges[cut..]
            .iter()
            .copied()
            .filter(|e| !e.is_loop())
            .filter(|e| !train_keys.contains(&e.key()))
            .filter(|e| test_keys.insert(e.key()))
            .collect();

        Self {
            train: MemoryStream::from_edges(train),
            test: MemoryStream::from_edges(test),
        }
    }

    /// The training prefix (feed this to models).
    #[must_use]
    pub fn train(&self) -> &MemoryStream {
        &self.train
    }

    /// The novel future edges (the positive class).
    #[must_use]
    pub fn test(&self) -> &MemoryStream {
        &self.test
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::BarabasiAlbert;
    use crate::types::VertexId;

    #[test]
    fn split_partitions_in_order() {
        let s = MemoryStream::from_edges((0..100u64).map(|i| Edge::new(i, i + 1, i)));
        let split = TemporalSplit::at_fraction(&s, 0.8);
        assert_eq!(split.train().len(), 80);
        assert_eq!(split.test().len(), 20);
        assert!(split.train().as_slice().iter().all(|e| e.ts < 80));
        assert!(split.test().as_slice().iter().all(|e| e.ts >= 80));
    }

    #[test]
    fn test_side_excludes_known_pairs() {
        let s = MemoryStream::from_edges([
            Edge::new(0u64, 1u64, 0),
            Edge::new(1u64, 2u64, 1),
            Edge::new(2u64, 3u64, 2),
            Edge::new(0u64, 1u64, 3), // re-delivery of a train edge
            Edge::new(3u64, 4u64, 4),
        ]);
        let split = TemporalSplit::at_fraction(&s, 0.6);
        let keys: Vec<_> = split.test().as_slice().iter().map(|e| e.key()).collect();
        assert_eq!(keys, vec![(VertexId(3), VertexId(4))]);
    }

    #[test]
    fn test_side_deduplicates() {
        let s = MemoryStream::from_edges([
            Edge::new(0u64, 1u64, 0),
            Edge::new(2u64, 3u64, 1),
            Edge::new(3u64, 2u64, 2), // same undirected pair, other order
        ]);
        let split = TemporalSplit::at_fraction(&s, 0.34);
        assert_eq!(split.test().len(), 1);
    }

    #[test]
    fn realistic_stream_yields_nonempty_sides() {
        let g = BarabasiAlbert::new(500, 3, 7);
        let split = TemporalSplit::at_fraction(&g, 0.8);
        assert!(!split.train().is_empty());
        assert!(!split.test().is_empty());
        // All test pairs genuinely novel w.r.t. train.
        let train_keys: std::collections::HashSet<_> =
            split.train().as_slice().iter().map(|e| e.key()).collect();
        for e in split.test().as_slice() {
            assert!(!train_keys.contains(&e.key()));
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bad_fraction_rejected() {
        let s = MemoryStream::from_edges([Edge::new(0u64, 1u64, 0)]);
        let _ = TemporalSplit::at_fraction(&s, 1.0);
    }
}
