//! Error type for stream parsing and IO.

/// Errors produced while reading or decoding edge streams.
#[derive(Debug)]
pub enum StreamError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// A malformed line or record, with 1-based position and explanation.
    Parse {
        /// 1-based line (CSV) or record (binary) number.
        position: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// A binary payload declared more records than the bytes provide.
    Truncated {
        /// Records expected per the header.
        expected: u64,
        /// Records actually decoded.
        actual: u64,
    },
    /// Binary payload has an unrecognized magic number or version.
    BadHeader(String),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "stream io error: {e}"),
            StreamError::Parse { position, reason } => {
                write!(f, "parse error at record {position}: {reason}")
            }
            StreamError::Truncated { expected, actual } => {
                write!(
                    f,
                    "truncated stream: header promised {expected} records, found {actual}"
                )
            }
            StreamError::BadHeader(msg) => write!(f, "bad stream header: {msg}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StreamError::Parse {
            position: 7,
            reason: "missing dst".into(),
        };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains("missing dst"));

        let t = StreamError::Truncated {
            expected: 10,
            actual: 3,
        };
        assert!(t.to_string().contains("10") && t.to_string().contains('3'));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let inner = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e = StreamError::from(inner);
        assert!(e.source().is_some());
    }
}
