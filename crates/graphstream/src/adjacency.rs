//! Exact in-memory adjacency — the ground truth the sketches are measured
//! against, and the "unbounded memory" baseline of the evaluation.
//!
//! Memory grows as O(n + m); the whole point of the paper is that this is
//! unaffordable for fast, massive streams. [`AdjacencyGraph::memory_bytes`]
//! makes that cost measurable for experiment E7.

use std::collections::{HashMap, HashSet};

use crate::types::{Edge, VertexId};

/// A simple undirected graph stored as hash-set adjacency lists.
///
/// Duplicate edge insertions and self-loops are ignored, keeping the graph
/// simple regardless of stream noise.
#[derive(Debug, Clone, Default)]
pub struct AdjacencyGraph {
    adj: HashMap<VertexId, HashSet<VertexId>>,
    edge_count: u64,
}

impl AdjacencyGraph {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts an undirected edge; returns `true` if it was new.
    ///
    /// Self-loops are rejected (returns `false`) — they carry no
    /// link-prediction signal.
    pub fn insert_edge(&mut self, u: impl Into<VertexId>, v: impl Into<VertexId>) -> bool {
        let (u, v) = (u.into(), v.into());
        if u == v {
            return false;
        }
        let added = self.adj.entry(u).or_default().insert(v);
        if added {
            self.adj.entry(v).or_default().insert(u);
            self.edge_count += 1;
        }
        added
    }

    /// Inserts every edge of a stream slice / iterator.
    pub fn extend_edges(&mut self, edges: impl IntoIterator<Item = Edge>) {
        for e in edges {
            self.insert_edge(e.src, e.dst);
        }
    }

    /// Builds the graph from a stream in one pass.
    #[must_use]
    pub fn from_edges(edges: impl IntoIterator<Item = Edge>) -> Self {
        let mut g = Self::new();
        g.extend_edges(edges);
        g
    }

    /// Whether `{u, v}` is an edge.
    #[must_use]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.adj.get(&u).is_some_and(|s| s.contains(&v))
    }

    /// The neighbor set of `u`, if `u` has been seen.
    #[must_use]
    pub fn neighbors(&self, u: VertexId) -> Option<&HashSet<VertexId>> {
        self.adj.get(&u)
    }

    /// The degree of `u` (0 for unseen vertices).
    #[must_use]
    pub fn degree(&self, u: VertexId) -> usize {
        self.adj.get(&u).map_or(0, HashSet::len)
    }

    /// Number of vertices that appear in at least one edge.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of distinct undirected edges.
    #[must_use]
    pub fn edge_count(&self) -> u64 {
        self.edge_count
    }

    /// Iterates over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.adj.keys().copied()
    }

    /// Iterates over all edges once each, in canonical orientation.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.adj.iter().flat_map(|(&u, nbrs)| {
            nbrs.iter()
                .copied()
                .filter(move |&v| u.0 < v.0)
                .map(move |v| (u, v))
        })
    }

    /// `|N(u) ∩ N(v)|` — the common-neighbor count.
    #[must_use]
    pub fn common_neighbors(&self, u: VertexId, v: VertexId) -> usize {
        match (self.adj.get(&u), self.adj.get(&v)) {
            (Some(a), Some(b)) => {
                // Iterate the smaller set; probe the larger.
                let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
                small.iter().filter(|w| large.contains(w)).count()
            }
            _ => 0,
        }
    }

    /// The Jaccard coefficient `|N(u) ∩ N(v)| / |N(u) ∪ N(v)|`.
    ///
    /// Returns 0 when both neighborhoods are empty (the conventional
    /// value: no evidence, no similarity).
    #[must_use]
    pub fn jaccard(&self, u: VertexId, v: VertexId) -> f64 {
        let cn = self.common_neighbors(u, v);
        let union = self.degree(u) + self.degree(v) - cn;
        if union == 0 {
            0.0
        } else {
            cn as f64 / union as f64
        }
    }

    /// The Adamic–Adar index `Σ_{w ∈ N(u)∩N(v)} 1/ln d(w)`.
    ///
    /// Common neighbors of degree 1 are impossible (they neighbor both `u`
    /// and `v`, so `d(w) >= 2`), hence `ln d(w) >= ln 2 > 0` and every term
    /// is finite.
    #[must_use]
    pub fn adamic_adar(&self, u: VertexId, v: VertexId) -> f64 {
        match (self.adj.get(&u), self.adj.get(&v)) {
            (Some(a), Some(b)) => {
                let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
                small
                    .iter()
                    .filter(|w| large.contains(w))
                    .map(|&w| 1.0 / (self.degree(w) as f64).ln())
                    .sum()
            }
            _ => 0.0,
        }
    }

    /// The resource-allocation index `Σ_{w ∈ N(u)∩N(v)} 1/d(w)`.
    #[must_use]
    pub fn resource_allocation(&self, u: VertexId, v: VertexId) -> f64 {
        match (self.adj.get(&u), self.adj.get(&v)) {
            (Some(a), Some(b)) => {
                let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
                small
                    .iter()
                    .filter(|w| large.contains(w))
                    .map(|&w| 1.0 / self.degree(w) as f64)
                    .sum()
            }
            _ => 0.0,
        }
    }

    /// The preferential-attachment score `d(u) · d(v)`.
    #[must_use]
    pub fn preferential_attachment(&self, u: VertexId, v: VertexId) -> f64 {
        self.degree(u) as f64 * self.degree(v) as f64
    }

    /// The cosine (Salton) index `|N(u) ∩ N(v)| / √(d(u)·d(v))`.
    ///
    /// 0 when either degree is 0.
    #[must_use]
    pub fn cosine(&self, u: VertexId, v: VertexId) -> f64 {
        let (du, dv) = (self.degree(u), self.degree(v));
        if du == 0 || dv == 0 {
            return 0.0;
        }
        self.common_neighbors(u, v) as f64 / ((du * dv) as f64).sqrt()
    }

    /// The overlap coefficient `|N(u) ∩ N(v)| / min(d(u), d(v))`.
    ///
    /// 0 when either degree is 0.
    #[must_use]
    pub fn overlap(&self, u: VertexId, v: VertexId) -> f64 {
        let m = self.degree(u).min(self.degree(v));
        if m == 0 {
            return 0.0;
        }
        self.common_neighbors(u, v) as f64 / m as f64
    }

    /// Approximate resident size in bytes: hash-map/set overhead plus
    /// entries. Used by the memory experiment (E7); intentionally a model
    /// (capacity × slot size), not an allocator census, so it is
    /// deterministic across runs.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let map_entry = size_of::<(VertexId, HashSet<VertexId>)>() + size_of::<u64>();
        let set_entry = size_of::<VertexId>() + size_of::<u64>();
        let mut total = self.adj.capacity() * map_entry;
        for set in self.adj.values() {
            total += set.capacity() * set_entry;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 5-vertex "bowtie": 0-1, 0-2, 1-2, 1-3, 2-3, 3-4.
    fn bowtie() -> AdjacencyGraph {
        let mut g = AdjacencyGraph::new();
        for (u, v) in [(0u64, 1u64), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4)] {
            assert!(g.insert_edge(u, v));
        }
        g
    }

    #[test]
    fn counts_and_degrees() {
        let g = bowtie();
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(VertexId(1)), 3);
        assert_eq!(g.degree(VertexId(4)), 1);
        assert_eq!(g.degree(VertexId(99)), 0);
    }

    #[test]
    fn duplicate_and_reversed_edges_ignored() {
        let mut g = bowtie();
        assert!(!g.insert_edge(0u64, 1u64));
        assert!(!g.insert_edge(1u64, 0u64));
        assert_eq!(g.edge_count(), 6);
    }

    #[test]
    fn self_loops_rejected() {
        let mut g = AdjacencyGraph::new();
        assert!(!g.insert_edge(3u64, 3u64));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.vertex_count(), 0);
    }

    #[test]
    fn has_edge_is_symmetric() {
        let g = bowtie();
        assert!(g.has_edge(VertexId(0), VertexId(1)));
        assert!(g.has_edge(VertexId(1), VertexId(0)));
        assert!(!g.has_edge(VertexId(0), VertexId(4)));
    }

    #[test]
    fn common_neighbors_bowtie() {
        let g = bowtie();
        // N(0) = {1,2}, N(3) = {1,2,4} → CN = 2.
        assert_eq!(g.common_neighbors(VertexId(0), VertexId(3)), 2);
        // Unseen vertex → 0.
        assert_eq!(g.common_neighbors(VertexId(0), VertexId(77)), 0);
    }

    #[test]
    fn jaccard_bowtie() {
        let g = bowtie();
        // |N(0) ∩ N(3)| = 2, |N(0) ∪ N(3)| = {1,2,4} = 3.
        assert!((g.jaccard(VertexId(0), VertexId(3)) - 2.0 / 3.0).abs() < 1e-12);
        // Both unseen → 0, not NaN.
        assert_eq!(g.jaccard(VertexId(88), VertexId(99)), 0.0);
    }

    #[test]
    fn adamic_adar_bowtie() {
        let g = bowtie();
        // Common neighbors of (0,3) are 1 (deg 3) and 2 (deg 3).
        let expected = 2.0 / 3.0f64.ln();
        assert!((g.adamic_adar(VertexId(0), VertexId(3)) - expected).abs() < 1e-12);
    }

    #[test]
    fn resource_allocation_bowtie() {
        let g = bowtie();
        let expected = 2.0 / 3.0;
        assert!((g.resource_allocation(VertexId(0), VertexId(3)) - expected).abs() < 1e-12);
    }

    #[test]
    fn preferential_attachment_bowtie() {
        let g = bowtie();
        assert_eq!(g.preferential_attachment(VertexId(1), VertexId(3)), 9.0);
    }

    #[test]
    fn cosine_bowtie() {
        let g = bowtie();
        // CN(0,3) = 2, d(0) = 2, d(3) = 3 → 2/√6.
        let expected = 2.0 / 6.0f64.sqrt();
        assert!((g.cosine(VertexId(0), VertexId(3)) - expected).abs() < 1e-12);
        assert_eq!(g.cosine(VertexId(0), VertexId(99)), 0.0);
    }

    #[test]
    fn overlap_bowtie() {
        let g = bowtie();
        // CN(0,3) = 2, min degree = 2 → 1.0: N(0) ⊆ N(3).
        assert!((g.overlap(VertexId(0), VertexId(3)) - 1.0).abs() < 1e-12);
        assert_eq!(g.overlap(VertexId(99), VertexId(0)), 0.0);
    }

    #[test]
    fn cosine_and_overlap_bound_jaccard() {
        // J ≤ cosine ≤ overlap for every pair (standard inequalities).
        let g = bowtie();
        for u in 0..5u64 {
            for v in 0..5u64 {
                if u == v {
                    continue;
                }
                let (u, v) = (VertexId(u), VertexId(v));
                assert!(g.jaccard(u, v) <= g.cosine(u, v) + 1e-12);
                assert!(g.cosine(u, v) <= g.overlap(u, v) + 1e-12);
            }
        }
    }

    #[test]
    fn edges_iterates_each_once_canonical() {
        let g = bowtie();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 6);
        for (u, v) in &edges {
            assert!(u.0 < v.0);
        }
    }

    #[test]
    fn measures_are_symmetric() {
        let g = bowtie();
        for u in 0..5u64 {
            for v in 0..5u64 {
                if u == v {
                    // AA(u,u) can contain 1/ln(1) = inf terms (degree-1
                    // neighbors); the measure is only defined on pairs.
                    continue;
                }
                let (u, v) = (VertexId(u), VertexId(v));
                assert_eq!(g.common_neighbors(u, v), g.common_neighbors(v, u));
                assert_eq!(g.jaccard(u, v), g.jaccard(v, u));
                assert!((g.adamic_adar(u, v) - g.adamic_adar(v, u)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn memory_grows_with_edges() {
        let mut g = AdjacencyGraph::new();
        let before = g.memory_bytes();
        for i in 0..1000u64 {
            g.insert_edge(i, i + 1);
        }
        assert!(g.memory_bytes() > before);
        assert!(g.memory_bytes() > 1000 * 8, "entry accounting missing");
    }

    #[test]
    fn from_edges_builds_equivalent_graph() {
        let edges = [(0u64, 1u64), (1, 2), (2, 0)]
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| Edge::new(u, v, i as u64));
        let g = AdjacencyGraph::from_edges(edges);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.common_neighbors(VertexId(0), VertexId(1)), 1);
    }
}
