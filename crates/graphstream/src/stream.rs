//! The edge-stream abstraction and in-memory streams.
//!
//! Every stream source (generator, file loader, in-memory buffer)
//! implements [`EdgeStream`]: a replayable, ordered source of edges.
//! Replayability matters for experiments — the same stream is fed to the
//! sketch store, the exact baseline and the reservoir baseline so that
//! comparisons are apples-to-apples.

use crate::types::Edge;

/// A replayable source of stream edges in arrival order.
///
/// `edges()` returns a fresh iterator each call; implementations must
/// yield the identical sequence every time (generators re-derive it from
/// their seed).
pub trait EdgeStream {
    /// Iterator type over the edges.
    type Iter: Iterator<Item = Edge>;

    /// A fresh pass over the stream, in arrival order.
    fn edges(&self) -> Self::Iter;

    /// Number of edges, if known without consuming the stream.
    fn len_hint(&self) -> Option<usize> {
        None
    }

    /// Collects the stream into a [`MemoryStream`] (one materialized pass).
    fn materialize(&self) -> MemoryStream {
        MemoryStream::from_edges(self.edges())
    }

    /// A stream consisting of the first `n` edges of this one.
    fn prefix(&self, n: usize) -> MemoryStream {
        MemoryStream::from_edges(self.edges().take(n))
    }
}

/// An in-memory, materialized edge stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryStream {
    edges: Vec<Edge>,
}

impl MemoryStream {
    /// An empty stream.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from any edge iterator, preserving order.
    #[must_use]
    pub fn from_edges(edges: impl IntoIterator<Item = Edge>) -> Self {
        Self {
            edges: edges.into_iter().collect(),
        }
    }

    /// Appends one edge at the back of the stream.
    pub fn push(&mut self, edge: Edge) {
        self.edges.push(edge);
    }

    /// Number of edges.
    #[must_use]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the stream holds no edges.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Borrowed view of the underlying edges.
    #[must_use]
    pub fn as_slice(&self) -> &[Edge] {
        &self.edges
    }

    /// Re-stamps timestamps to the arrival index `0..len`.
    ///
    /// Useful after interleaving or shuffling, when original timestamps no
    /// longer reflect the order the consumer will see.
    pub fn restamp(&mut self) {
        for (i, e) in self.edges.iter_mut().enumerate() {
            e.ts = i as u64;
        }
    }

    /// Stable-sorts the edges by timestamp.
    pub fn sort_by_ts(&mut self) {
        self.edges.sort_by_key(|e| e.ts);
    }
}

impl EdgeStream for MemoryStream {
    type Iter = std::vec::IntoIter<Edge>;

    fn edges(&self) -> Self::Iter {
        self.edges.clone().into_iter()
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.edges.len())
    }
}

impl FromIterator<Edge> for MemoryStream {
    fn from_iter<T: IntoIterator<Item = Edge>>(iter: T) -> Self {
        Self::from_edges(iter)
    }
}

impl<'a> IntoIterator for &'a MemoryStream {
    type Item = &'a Edge;
    type IntoIter = std::slice::Iter<'a, Edge>;

    fn into_iter(self) -> Self::IntoIter {
        self.edges.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Edge;

    fn toy() -> MemoryStream {
        MemoryStream::from_edges([
            Edge::new(0u64, 1u64, 0),
            Edge::new(1u64, 2u64, 1),
            Edge::new(2u64, 3u64, 2),
        ])
    }

    #[test]
    fn replay_is_identical() {
        let s = toy();
        let a: Vec<_> = s.edges().collect();
        let b: Vec<_> = s.edges().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn len_hint_matches() {
        assert_eq!(toy().len_hint(), Some(3));
        assert_eq!(toy().len(), 3);
        assert!(!toy().is_empty());
        assert!(MemoryStream::new().is_empty());
    }

    #[test]
    fn prefix_takes_first_n() {
        let p = toy().prefix(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.as_slice()[1], Edge::new(1u64, 2u64, 1));
    }

    #[test]
    fn prefix_longer_than_stream_is_whole_stream() {
        assert_eq!(toy().prefix(99).len(), 3);
    }

    #[test]
    fn materialize_equals_source() {
        let s = toy();
        assert_eq!(s.materialize(), s);
    }

    #[test]
    fn restamp_renumbers_from_zero() {
        let mut s =
            MemoryStream::from_edges([Edge::new(0u64, 1u64, 100), Edge::new(1u64, 2u64, 50)]);
        s.restamp();
        assert_eq!(s.as_slice()[0].ts, 0);
        assert_eq!(s.as_slice()[1].ts, 1);
    }

    #[test]
    fn sort_by_ts_orders_stream() {
        let mut s = MemoryStream::from_edges([
            Edge::new(0u64, 1u64, 9),
            Edge::new(1u64, 2u64, 3),
            Edge::new(2u64, 3u64, 6),
        ]);
        s.sort_by_ts();
        let ts: Vec<u64> = s.as_slice().iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![3, 6, 9]);
    }

    #[test]
    fn from_iterator_collects() {
        let s: MemoryStream = (0..5u64).map(|i| Edge::new(i, i + 1, i)).collect();
        assert_eq!(s.len(), 5);
    }
}
