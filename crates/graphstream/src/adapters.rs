//! Stream combinators and fault injection.
//!
//! Real feeds are messier than generators: multiple sources interleave,
//! edges get re-delivered, loops sneak in, arrival order jitters. These
//! adapters produce that mess deterministically so robustness claims can
//! be tested instead of asserted:
//!
//! * [`interleave`] — merge streams by timestamp (multi-source feeds).
//! * [`concatenate`] — play streams back-to-back with restamping.
//! * [`NoiseInjector`] — seeded duplicates, self-loops and local
//!   reordering.

use hashkit::mix64;

use crate::stream::{EdgeStream, MemoryStream};
use crate::types::Edge;

/// Merges any number of streams into one, ordered by timestamp (stable:
/// ties keep source order). The result is restamped to arrival indices.
#[must_use]
pub fn interleave(streams: &[&dyn DynStream]) -> MemoryStream {
    let mut edges: Vec<(u64, usize, Edge)> = Vec::new();
    for (src_idx, s) in streams.iter().enumerate() {
        for e in s.collect_edges() {
            edges.push((e.ts, src_idx, e));
        }
    }
    edges.sort_by_key(|&(ts, src, _)| (ts, src));
    let mut out = MemoryStream::from_edges(edges.into_iter().map(|(_, _, e)| e));
    out.restamp();
    out
}

/// Plays streams back-to-back, restamping to one global arrival order.
#[must_use]
pub fn concatenate(streams: &[&dyn DynStream]) -> MemoryStream {
    let mut out = MemoryStream::new();
    for s in streams {
        for e in s.collect_edges() {
            out.push(e);
        }
    }
    out.restamp();
    out
}

/// Object-safe view of [`EdgeStream`] so adapters can mix source types.
pub trait DynStream {
    /// Materializes the stream's edges in arrival order.
    fn collect_edges(&self) -> Vec<Edge>;
}

impl<T: EdgeStream> DynStream for T {
    fn collect_edges(&self) -> Vec<Edge> {
        self.edges().collect()
    }
}

/// Deterministic fault injection over a stream.
///
/// Faults are *added*, never removed: every original edge survives, so a
/// consumer that is robust to noise must produce results consistent with
/// the clean stream (the property the sketch tests assert).
///
/// ```
/// use graphstream::{ErdosRenyi, NoiseInjector};
///
/// let clean = ErdosRenyi::new(50, 100, 1);
/// let injector = NoiseInjector { duplicate_prob: 0.5, ..NoiseInjector::clean(9) };
/// let noisy = injector.apply(&clean);
/// assert!(noisy.len() > 100, "duplicates were injected");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct NoiseInjector {
    /// Probability an edge is immediately re-delivered.
    pub duplicate_prob: f64,
    /// Probability a random self-loop is injected after an edge.
    pub self_loop_prob: f64,
    /// Maximum local reorder distance (0 = keep order).
    pub max_reorder: usize,
    /// Seed for all injection decisions.
    pub seed: u64,
}

impl NoiseInjector {
    /// A no-op injector (useful as a default).
    #[must_use]
    pub fn clean(seed: u64) -> Self {
        Self {
            duplicate_prob: 0.0,
            self_loop_prob: 0.0,
            max_reorder: 0,
            seed,
        }
    }

    /// Applies the configured faults to a stream.
    ///
    /// # Panics
    /// Panics if a probability is outside `[0, 1]`.
    #[must_use]
    pub fn apply(&self, stream: &impl EdgeStream) -> MemoryStream {
        assert!(
            (0.0..=1.0).contains(&self.duplicate_prob),
            "bad duplicate_prob"
        );
        assert!(
            (0.0..=1.0).contains(&self.self_loop_prob),
            "bad self_loop_prob"
        );
        let mut edges: Vec<Edge> = Vec::new();
        let unit = |word: u64| (word >> 11) as f64 / 9_007_199_254_740_992.0;
        for (i, e) in stream.edges().enumerate() {
            let i = i as u64;
            edges.push(e);
            if unit(mix64(self.seed ^ i.wrapping_mul(3))) < self.duplicate_prob {
                edges.push(e); // re-delivery
            }
            if unit(mix64(self.seed ^ i.wrapping_mul(5).wrapping_add(1))) < self.self_loop_prob {
                edges.push(Edge::new(e.src, e.src, e.ts));
            }
        }
        if self.max_reorder > 0 {
            // Deterministic local shuffle: swap each position with one at
            // most max_reorder ahead.
            let n = edges.len();
            for i in 0..n {
                let r = mix64(self.seed ^ (i as u64).wrapping_mul(7)) as usize;
                let j = (i + r % (self.max_reorder + 1)).min(n - 1);
                edges.swap(i, j);
            }
        }
        let mut out = MemoryStream::from_edges(edges);
        out.restamp();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{BarabasiAlbert, ErdosRenyi};
    use std::collections::HashSet;

    #[test]
    fn interleave_orders_by_timestamp() {
        let a = MemoryStream::from_edges([Edge::new(0u64, 1u64, 0), Edge::new(0u64, 2u64, 10)]);
        let b = MemoryStream::from_edges([Edge::new(5u64, 6u64, 5)]);
        let merged = interleave(&[&a, &b]);
        let pairs: Vec<_> = merged.as_slice().iter().map(|e| e.key()).collect();
        assert_eq!(pairs.len(), 3);
        assert_eq!(
            pairs[1],
            Edge::new(5u64, 6u64, 0).key(),
            "middle edge from stream b"
        );
        // Restamped to arrival indices.
        for (i, e) in merged.as_slice().iter().enumerate() {
            assert_eq!(e.ts, i as u64);
        }
    }

    #[test]
    fn interleave_is_stable_on_ties() {
        let a = MemoryStream::from_edges([Edge::new(1u64, 2u64, 7)]);
        let b = MemoryStream::from_edges([Edge::new(3u64, 4u64, 7)]);
        let merged = interleave(&[&a, &b]);
        assert_eq!(merged.as_slice()[0].key(), Edge::new(1u64, 2u64, 0).key());
    }

    #[test]
    fn concatenate_preserves_all_edges() {
        let a = ErdosRenyi::new(20, 30, 1);
        let b = ErdosRenyi::new(20, 40, 2);
        let all = concatenate(&[&a, &b]);
        assert_eq!(all.len(), 70);
    }

    #[test]
    fn clean_injector_is_identity_up_to_restamp() {
        let s = BarabasiAlbert::new(50, 2, 3);
        let out = NoiseInjector::clean(0).apply(&s);
        let orig: Vec<_> = s.edges().map(|e| e.key()).collect();
        let noisy: Vec<_> = out.as_slice().iter().map(|e| e.key()).collect();
        assert_eq!(orig, noisy);
    }

    #[test]
    fn duplicates_add_but_never_remove() {
        let s = BarabasiAlbert::new(100, 2, 4);
        let inj = NoiseInjector {
            duplicate_prob: 0.5,
            ..NoiseInjector::clean(9)
        };
        let noisy = inj.apply(&s);
        let clean_keys: HashSet<_> = s.edges().map(|e| e.key()).collect();
        let noisy_keys: HashSet<_> = noisy.as_slice().iter().map(|e| e.key()).collect();
        assert_eq!(clean_keys, noisy_keys, "edge set must be preserved");
        assert!(noisy.len() > s.edges().count(), "no duplicates injected");
        assert!(
            noisy.len() < s.edges().count() * 2,
            "way too many duplicates"
        );
    }

    #[test]
    fn self_loops_marked_as_loops() {
        let s = ErdosRenyi::new(30, 60, 5);
        let inj = NoiseInjector {
            self_loop_prob: 0.3,
            ..NoiseInjector::clean(2)
        };
        let noisy = inj.apply(&s);
        let loops = noisy.as_slice().iter().filter(|e| e.is_loop()).count();
        assert!(loops > 5, "expected injected loops, got {loops}");
    }

    #[test]
    fn reordering_permutes_but_preserves_multiset() {
        let s = ErdosRenyi::new(40, 100, 6);
        let inj = NoiseInjector {
            max_reorder: 10,
            ..NoiseInjector::clean(3)
        };
        let noisy = inj.apply(&s);
        let mut a: Vec<_> = s.edges().map(|e| e.key()).collect();
        let mut b: Vec<_> = noisy.as_slice().iter().map(|e| e.key()).collect();
        assert_ne!(a, b, "reorder did nothing");
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "multiset changed");
    }

    #[test]
    fn injection_is_deterministic() {
        let s = BarabasiAlbert::new(60, 2, 7);
        let inj = NoiseInjector {
            duplicate_prob: 0.2,
            self_loop_prob: 0.1,
            max_reorder: 4,
            seed: 11,
        };
        assert_eq!(inj.apply(&s), inj.apply(&s));
    }
}
