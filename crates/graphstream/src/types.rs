//! Core value types: vertex identifiers and stream edges.

use serde::{Deserialize, Serialize};

/// A vertex identifier.
///
/// A newtype over `u64` so vertex ids cannot be confused with counts,
/// timestamps or hash words anywhere in the stack. Ids need not be dense;
/// generators happen to produce `0..n` but nothing relies on it.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct VertexId(pub u64);

impl VertexId {
    /// The raw id.
    #[inline]
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl From<u64> for VertexId {
    fn from(v: u64) -> Self {
        VertexId(v)
    }
}

impl std::fmt::Display for VertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One undirected edge in a graph stream.
///
/// `ts` is a logical timestamp: generators use the arrival index, file
/// loaders preserve whatever the source recorded. Streams are consumed in
/// `ts` order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// One endpoint.
    pub src: VertexId,
    /// The other endpoint.
    pub dst: VertexId,
    /// Logical arrival timestamp.
    pub ts: u64,
}

impl Edge {
    /// Creates an edge with an explicit timestamp.
    #[inline]
    #[must_use]
    pub fn new(src: impl Into<VertexId>, dst: impl Into<VertexId>, ts: u64) -> Self {
        Self {
            src: src.into(),
            dst: dst.into(),
            ts,
        }
    }

    /// The edge with endpoints swapped (same undirected edge).
    #[inline]
    #[must_use]
    pub fn reversed(self) -> Self {
        Self {
            src: self.dst,
            dst: self.src,
            ts: self.ts,
        }
    }

    /// Canonical form: endpoints ordered so `src <= dst`.
    ///
    /// Two deliveries of the same undirected edge canonicalize equal
    /// (ignoring `ts`), which is what dedup structures key on.
    #[inline]
    #[must_use]
    pub fn canonical(self) -> Self {
        if self.src.0 <= self.dst.0 {
            self
        } else {
            self.reversed()
        }
    }

    /// The canonical `(min, max)` endpoint pair, the dedup key.
    #[inline]
    #[must_use]
    pub fn key(self) -> (VertexId, VertexId) {
        let c = self.canonical();
        (c.src, c.dst)
    }

    /// Whether the edge is a self-loop.
    ///
    /// Self-loops carry no link-prediction signal (a vertex is trivially
    /// its own neighbor) and are rejected by the adjacency store.
    #[inline]
    #[must_use]
    pub fn is_loop(self) -> bool {
        self.src == self.dst
    }
}

impl std::fmt::Display for Edge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({} -- {} @{})", self.src, self.dst, self.ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrips_raw() {
        assert_eq!(VertexId(42).raw(), 42);
        assert_eq!(VertexId::from(7u64), VertexId(7));
    }

    #[test]
    fn canonical_orders_endpoints() {
        let e = Edge::new(9u64, 3u64, 5);
        let c = e.canonical();
        assert_eq!((c.src, c.dst), (VertexId(3), VertexId(9)));
        assert_eq!(c.ts, 5, "canonicalization must preserve timestamps");
    }

    #[test]
    fn canonical_is_idempotent() {
        let e = Edge::new(9u64, 3u64, 0).canonical();
        assert_eq!(e, e.canonical());
    }

    #[test]
    fn key_is_direction_independent() {
        assert_eq!(
            Edge::new(1u64, 2u64, 0).key(),
            Edge::new(2u64, 1u64, 9).key()
        );
    }

    #[test]
    fn reversed_twice_is_identity() {
        let e = Edge::new(4u64, 8u64, 1);
        assert_eq!(e.reversed().reversed(), e);
    }

    #[test]
    fn loop_detection() {
        assert!(Edge::new(5u64, 5u64, 0).is_loop());
        assert!(!Edge::new(5u64, 6u64, 0).is_loop());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Edge::new(1u64, 2u64, 3).to_string(), "(v1 -- v2 @3)");
    }

    #[test]
    fn serde_roundtrip() {
        let e = Edge::new(11u64, 22u64, 33);
        let json = serde_json::to_string(&e).unwrap();
        let back: Edge = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
        // VertexId serializes transparently as a bare integer.
        assert!(json.contains("11"), "json: {json}");
        assert!(!json.contains("raw"), "json leaked struct shape: {json}");
    }
}
