//! Uniform edge reservoir sampling — the equal-memory streaming baseline.
//!
//! The classic Vitter Algorithm R over the edge stream: after `t` edges,
//! the reservoir holds a uniform sample of `min(t, capacity)` of them.
//! The baseline scorer in `linkpred` builds a subgraph from the reservoir
//! and rescales neighborhood measures by the sampling rate; experiment E10
//! compares it against MinHash sketches at equal memory.

use hashkit::mix64;

use crate::types::Edge;

/// A fixed-capacity uniform sample of the edges seen so far.
///
/// Determinism: randomness is derived from `(seed, arrival index)` via the
/// hash mixer rather than a stateful RNG, so a reservoir fed the same
/// stream twice holds the same sample — required for reproducible
/// experiments.
///
/// ```
/// use graphstream::{Edge, EdgeReservoir};
///
/// let mut r = EdgeReservoir::new(16, 7);
/// for i in 0..1000u64 {
///     r.offer(Edge::new(i, i + 1, i));
/// }
/// assert_eq!(r.sample().len(), 16);
/// assert_eq!(r.seen(), 1000);
/// assert!((r.rate() - 0.016).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct EdgeReservoir {
    capacity: usize,
    seed: u64,
    seen: u64,
    sample: Vec<Edge>,
}

impl EdgeReservoir {
    /// A reservoir holding at most `capacity` edges.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Self {
            capacity,
            seed,
            seen: 0,
            sample: Vec::with_capacity(capacity),
        }
    }

    /// Offers one stream edge to the reservoir.
    pub fn offer(&mut self, edge: Edge) {
        self.seen += 1;
        if self.sample.len() < self.capacity {
            self.sample.push(edge);
            return;
        }
        // Replace a random slot with probability capacity / seen.
        let r = mix64(self.seed ^ self.seen.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let j = (r % self.seen) as usize;
        if j < self.capacity {
            self.sample[j] = edge;
        }
    }

    /// Number of edges offered so far.
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The current sample.
    #[must_use]
    pub fn sample(&self) -> &[Edge] {
        &self.sample
    }

    /// Capacity of the reservoir.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The sampling rate `|sample| / seen` (1.0 while filling).
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.seen == 0 {
            1.0
        } else {
            self.sample.len() as f64 / self.seen as f64
        }
    }

    /// Approximate resident bytes (sample storage + bookkeeping),
    /// comparable with `SketchStore::memory_bytes`.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.capacity * std::mem::size_of::<Edge>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::ErdosRenyi;
    use crate::stream::EdgeStream;

    #[test]
    fn fills_before_sampling() {
        let mut r = EdgeReservoir::new(10, 1);
        for i in 0..10u64 {
            r.offer(Edge::new(i, i + 1, i));
        }
        assert_eq!(r.sample().len(), 10);
        assert_eq!(r.seen(), 10);
        assert!((r.rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut r = EdgeReservoir::new(16, 2);
        for i in 0..10_000u64 {
            r.offer(Edge::new(i, i + 1, i));
        }
        assert_eq!(r.sample().len(), 16);
        assert!((r.rate() - 16.0 / 10_000.0).abs() < 1e-9);
    }

    #[test]
    fn sample_is_near_uniform() {
        // Offer 0..n repeatedly across seeds; each edge index should land
        // in the reservoir with probability ~ capacity/n.
        let n = 2000u64;
        let cap = 100usize;
        let trials = 200u64;
        let mut hits = vec![0u32; n as usize];
        for seed in 0..trials {
            let mut r = EdgeReservoir::new(cap, seed);
            for i in 0..n {
                r.offer(Edge::new(i, i + 1, i));
            }
            for e in r.sample() {
                hits[e.ts as usize] += 1;
            }
        }
        let expected = trials as f64 * cap as f64 / n as f64; // = 10
                                                              // Mean over coarse buckets should be near expected (uniformity
                                                              // across stream positions — early edges not favored).
        for chunk in hits.chunks(200) {
            let mean = chunk.iter().map(|&h| f64::from(h)).sum::<f64>() / chunk.len() as f64;
            assert!(
                (mean - expected).abs() < expected * 0.35,
                "positional bias: bucket mean {mean:.2}, expected {expected:.2}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let stream = ErdosRenyi::new(200, 1000, 3).materialize();
        let run = |seed| {
            let mut r = EdgeReservoir::new(50, seed);
            for e in stream.edges() {
                r.offer(e);
            }
            r.sample().to_vec()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn memory_is_capacity_bound() {
        let small = EdgeReservoir::new(10, 0).memory_bytes();
        let big = EdgeReservoir::new(1000, 0).memory_bytes();
        assert!(big > small * 50);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = EdgeReservoir::new(0, 0);
    }
}
