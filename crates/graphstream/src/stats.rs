//! Single-pass stream statistics for the dataset tables (experiment E1).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::types::{Edge, VertexId};

/// Accumulates summary statistics over one pass of an edge stream.
///
/// Degree counts assume the simple-graph stream contract (each undirected
/// edge delivered once); duplicate deliveries would inflate degrees here,
/// which is exactly the bias the exact [`crate::AdjacencyGraph`] avoids —
/// use that when the stream is untrusted.
#[derive(Debug, Clone, Default)]
pub struct StreamStats {
    degrees: HashMap<VertexId, u64>,
    edges: u64,
    self_loops: u64,
}

/// A finished summary, serializable for experiment output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsSummary {
    /// Number of distinct vertices observed.
    pub vertices: u64,
    /// Number of edges offered (including self-loops).
    pub edges: u64,
    /// Self-loops seen (excluded from degrees).
    pub self_loops: u64,
    /// Mean degree `2m / n`.
    pub avg_degree: f64,
    /// Largest observed degree.
    pub max_degree: u64,
    /// Degree skewness proxy: `max_degree / avg_degree`. ≈1 for regular
    /// graphs, ≫1 for power laws.
    pub skew: f64,
    /// Share of vertices with degree ≤ 2 (the long tail).
    pub tail_fraction: f64,
}

impl StreamStats {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Observes one stream edge.
    pub fn observe(&mut self, edge: Edge) {
        self.edges += 1;
        if edge.is_loop() {
            self.self_loops += 1;
            return;
        }
        *self.degrees.entry(edge.src).or_insert(0) += 1;
        *self.degrees.entry(edge.dst).or_insert(0) += 1;
    }

    /// Consumes a whole stream.
    #[must_use]
    pub fn from_edges(edges: impl IntoIterator<Item = Edge>) -> Self {
        let mut s = Self::new();
        for e in edges {
            s.observe(e);
        }
        s
    }

    /// Finalizes the summary.
    #[must_use]
    pub fn summary(&self) -> StatsSummary {
        let vertices = self.degrees.len() as u64;
        let max_degree = self.degrees.values().copied().max().unwrap_or(0);
        let avg_degree = if vertices == 0 {
            0.0
        } else {
            self.degrees.values().sum::<u64>() as f64 / vertices as f64
        };
        let tail = self.degrees.values().filter(|&&d| d <= 2).count();
        StatsSummary {
            vertices,
            edges: self.edges,
            self_loops: self.self_loops,
            avg_degree,
            max_degree,
            skew: if avg_degree > 0.0 {
                max_degree as f64 / avg_degree
            } else {
                0.0
            },
            tail_fraction: if vertices == 0 {
                0.0
            } else {
                tail as f64 / vertices as f64
            },
        }
    }

    /// The degree of one vertex so far.
    #[must_use]
    pub fn degree(&self, v: VertexId) -> u64 {
        self.degrees.get(&v).copied().unwrap_or(0)
    }

    /// Degree percentiles at the requested quantiles (each in `[0, 1]`),
    /// by the nearest-rank method over observed vertices. Returns one
    /// value per requested quantile; empty if no vertex has been seen.
    ///
    /// # Panics
    /// Panics if any quantile is outside `[0, 1]`.
    #[must_use]
    pub fn degree_percentiles(&self, quantiles: &[f64]) -> Vec<u64> {
        if self.degrees.is_empty() {
            return Vec::new();
        }
        let mut sorted: Vec<u64> = self.degrees.values().copied().collect();
        sorted.sort_unstable();
        quantiles
            .iter()
            .map(|&q| {
                assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                sorted[rank - 1]
            })
            .collect()
    }

    /// A base-2 log-binned degree histogram: entry `i` counts vertices
    /// with degree in `[2^i, 2^(i+1))`; degree-0 vertices are impossible
    /// here (a vertex exists only once an edge touches it). The standard
    /// visualization-ready form for power-law degree data.
    #[must_use]
    pub fn degree_histogram_log2(&self) -> Vec<u64> {
        let mut bins: Vec<u64> = Vec::new();
        for &d in self.degrees.values() {
            let bin = 63 - d.max(1).leading_zeros() as usize;
            if bins.len() <= bin {
                bins.resize(bin + 1, 0);
            }
            bins[bin] += 1;
        }
        bins
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{BarabasiAlbert, ErdosRenyi, WattsStrogatz};
    use crate::stream::EdgeStream;

    #[test]
    fn triangle_stats() {
        let s = StreamStats::from_edges([
            Edge::new(0u64, 1u64, 0),
            Edge::new(1u64, 2u64, 1),
            Edge::new(2u64, 0u64, 2),
        ]);
        let sum = s.summary();
        assert_eq!(sum.vertices, 3);
        assert_eq!(sum.edges, 3);
        assert_eq!(sum.max_degree, 2);
        assert!((sum.avg_degree - 2.0).abs() < 1e-12);
        assert!((sum.skew - 1.0).abs() < 1e-12);
    }

    #[test]
    fn self_loops_counted_but_excluded_from_degrees() {
        let s = StreamStats::from_edges([Edge::new(0u64, 0u64, 0), Edge::new(0u64, 1u64, 1)]);
        let sum = s.summary();
        assert_eq!(sum.self_loops, 1);
        assert_eq!(sum.edges, 2);
        assert_eq!(s.degree(VertexId(0)), 1);
    }

    #[test]
    fn empty_stream_is_all_zeros() {
        let sum = StreamStats::new().summary();
        assert_eq!(sum.vertices, 0);
        assert_eq!(sum.avg_degree, 0.0);
        assert_eq!(sum.skew, 0.0);
        assert_eq!(sum.tail_fraction, 0.0);
    }

    #[test]
    fn ba_is_more_skewed_than_ws() {
        let ba = StreamStats::from_edges(BarabasiAlbert::new(2000, 2, 1).edges()).summary();
        let ws = StreamStats::from_edges(WattsStrogatz::new(2000, 4, 0.1, 1).edges()).summary();
        assert!(
            ba.skew > 3.0 * ws.skew,
            "expected BA ({}) ≫ WS ({}) skew",
            ba.skew,
            ws.skew
        );
    }

    #[test]
    fn er_degrees_match_expectation() {
        let er = StreamStats::from_edges(ErdosRenyi::new(1000, 5000, 2).edges()).summary();
        assert_eq!(er.edges, 5000);
        // avg degree ≈ 2m/n = 10 (within sampling noise; all 1000 vertices
        // are expected to be hit at this density).
        assert!((er.avg_degree - 10.0).abs() < 1.0, "avg {}", er.avg_degree);
    }

    #[test]
    fn percentiles_nearest_rank() {
        // Degrees: path graph 0-1-2-3-4 → degrees [1, 2, 2, 2, 1].
        let s = StreamStats::from_edges((0..4u64).map(|i| Edge::new(i, i + 1, i)));
        assert_eq!(s.degree_percentiles(&[0.0, 0.5, 1.0]), vec![1, 2, 2]);
        // Median of a regular ring is the common degree.
        let ring = StreamStats::from_edges((0..10u64).map(|i| Edge::new(i, (i + 1) % 10, i)));
        assert_eq!(ring.degree_percentiles(&[0.5]), vec![2]);
        assert!(StreamStats::new().degree_percentiles(&[0.5]).is_empty());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bad_quantile_rejected() {
        let s = StreamStats::from_edges([Edge::new(0u64, 1u64, 0)]);
        let _ = s.degree_percentiles(&[1.5]);
    }

    #[test]
    fn log2_histogram_bins_correctly() {
        // Star with 8 leaves: center degree 8 (bin 3), leaves degree 1
        // (bin 0).
        let s = StreamStats::from_edges((1..=8u64).map(|i| Edge::new(0u64, i, i)));
        let bins = s.degree_histogram_log2();
        assert_eq!(bins[0], 8, "leaves");
        assert_eq!(bins[3], 1, "hub");
        assert_eq!(bins.iter().sum::<u64>(), 9, "every vertex binned once");
    }

    #[test]
    fn histogram_tail_matches_skew() {
        // BA histogram must occupy more bins (heavier tail) than WS.
        let ba = StreamStats::from_edges(BarabasiAlbert::new(2000, 2, 1).edges())
            .degree_histogram_log2();
        let ws = StreamStats::from_edges(WattsStrogatz::new(2000, 4, 0.1, 1).edges())
            .degree_histogram_log2();
        assert!(
            ba.len() > ws.len(),
            "BA bins {} <= WS bins {}",
            ba.len(),
            ws.len()
        );
    }

    #[test]
    fn summary_serializes() {
        let sum = StreamStats::from_edges([Edge::new(0u64, 1u64, 0)]).summary();
        let json = serde_json::to_string(&sum).unwrap();
        let back: StatsSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(sum, back);
    }
}
