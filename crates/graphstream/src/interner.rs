//! Interning string vertex labels to dense [`VertexId`]s.
//!
//! Real feeds carry user names, DOIs, URLs — not integers. The interner
//! maps labels to dense ids on first sight (stream-friendly: one pass,
//! no pre-registration) and keeps the reverse table so results can be
//! reported in the original vocabulary.

use std::collections::HashMap;

use crate::error::StreamError;
use crate::stream::MemoryStream;
use crate::types::{Edge, VertexId};

/// A bidirectional label ⇄ id map with dense, first-seen-ordered ids.
#[derive(Debug, Clone, Default)]
pub struct VertexInterner {
    ids: HashMap<String, VertexId>,
    labels: Vec<String>,
}

impl VertexInterner {
    /// An empty interner.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The id of `label`, allocating the next dense id on first sight.
    pub fn intern(&mut self, label: &str) -> VertexId {
        if let Some(&id) = self.ids.get(label) {
            return id;
        }
        let id = VertexId(self.labels.len() as u64);
        self.ids.insert(label.to_string(), id);
        self.labels.push(label.to_string());
        id
    }

    /// The id of `label` if already interned.
    #[must_use]
    pub fn get(&self, label: &str) -> Option<VertexId> {
        self.ids.get(label).copied()
    }

    /// The label of `id`, if allocated.
    #[must_use]
    pub fn label(&self, id: VertexId) -> Option<&str> {
        self.labels.get(id.0 as usize).map(String::as_str)
    }

    /// Number of distinct labels interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether nothing has been interned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Reads a labeled edge list (`label1,label2[,ts]` per line, `#`
/// comments, optional header impossible to distinguish from data — so no
/// header handling) interning labels into `interner`. Timestamps default
/// to the record index.
///
/// # Errors
/// [`StreamError::Parse`] with the 1-based line number on malformed
/// records.
pub fn read_labeled_csv(
    r: impl std::io::BufRead,
    interner: &mut VertexInterner,
) -> Result<MemoryStream, StreamError> {
    let mut out = MemoryStream::new();
    let mut index = 0u64;
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        let position = lineno as u64 + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split(',').map(str::trim);
        let src = parts
            .next()
            .filter(|s| !s.is_empty())
            .ok_or(StreamError::Parse {
                position,
                reason: "missing src label".into(),
            })?;
        let dst = parts
            .next()
            .filter(|s| !s.is_empty())
            .ok_or(StreamError::Parse {
                position,
                reason: "missing dst label".into(),
            })?;
        let ts = match parts.next() {
            Some(f) if !f.is_empty() => f.parse::<u64>().map_err(|e| StreamError::Parse {
                position,
                reason: format!("bad ts field {f:?}: {e}"),
            })?,
            _ => index,
        };
        let (s, d) = (interner.intern(src), interner.intern(dst));
        out.push(Edge { src: s, dst: d, ts });
        index += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut i = VertexInterner::new();
        let a = i.intern("alice");
        let b = i.intern("bob");
        assert_eq!(i.intern("alice"), a);
        assert_eq!(a, VertexId(0));
        assert_eq!(b, VertexId(1));
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn reverse_lookup() {
        let mut i = VertexInterner::new();
        let a = i.intern("alice");
        assert_eq!(i.label(a), Some("alice"));
        assert_eq!(i.get("alice"), Some(a));
        assert_eq!(i.get("carol"), None);
        assert_eq!(i.label(VertexId(99)), None);
    }

    #[test]
    fn labeled_csv_parses_and_interns() {
        let input = "# coauthors\nknuth,dijkstra\nknuth,hoare,50\ndijkstra,hoare\n";
        let mut interner = VertexInterner::new();
        let stream = read_labeled_csv(input.as_bytes(), &mut interner).unwrap();
        assert_eq!(stream.len(), 3);
        assert_eq!(interner.len(), 3);
        // knuth interned first → id 0; explicit ts honored.
        assert_eq!(stream.as_slice()[0].src, VertexId(0));
        assert_eq!(stream.as_slice()[1].ts, 50);
        assert_eq!(stream.as_slice()[2].ts, 2);
        assert_eq!(interner.label(stream.as_slice()[2].dst), Some("hoare"));
    }

    #[test]
    fn labeled_csv_reports_errors() {
        let mut interner = VertexInterner::new();
        let err = read_labeled_csv("a\n".as_bytes(), &mut interner).unwrap_err();
        assert!(
            matches!(err, StreamError::Parse { position: 1, .. }),
            "{err}"
        );
        let err = read_labeled_csv("a,b,xyz\n".as_bytes(), &mut VertexInterner::new()).unwrap_err();
        assert!(err.to_string().contains("xyz"), "{err}");
    }

    #[test]
    fn interner_survives_multiple_files() {
        let mut interner = VertexInterner::new();
        let s1 = read_labeled_csv("a,b\n".as_bytes(), &mut interner).unwrap();
        let s2 = read_labeled_csv("b,c\n".as_bytes(), &mut interner).unwrap();
        // "b" resolves to the same id across files.
        assert_eq!(s1.as_slice()[0].dst, s2.as_slice()[0].src);
        assert_eq!(interner.len(), 3);
    }
}
