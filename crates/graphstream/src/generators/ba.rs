//! Barabási–Albert preferential-attachment streams.

use std::collections::HashSet;

use rand::Rng;

use super::rng_from_seed;
use crate::stream::EdgeStream;
use crate::types::Edge;

/// A Barabási–Albert growth stream: each arriving vertex attaches to
/// `m` existing vertices chosen with probability proportional to degree.
///
/// Produces the power-law degree tail (exponent ≈ 3) characteristic of
/// social and web graphs, with edges arriving in growth order — the
/// canonical "realistic" stream for throughput and accuracy experiments.
///
/// The implementation uses the classic repeated-endpoints trick: sampling
/// a uniform element of the endpoint list is sampling proportional to
/// degree, giving O(1) per attachment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarabasiAlbert {
    n: u64,
    m: u64,
    seed: u64,
}

impl BarabasiAlbert {
    /// `n` total vertices, `m` attachments per new vertex.
    ///
    /// The initial clique has `m + 1` vertices, so `n` must exceed it.
    ///
    /// # Panics
    /// Panics if `m == 0` or `n <= m + 1`.
    #[must_use]
    pub fn new(n: u64, m: u64, seed: u64) -> Self {
        assert!(m >= 1, "need at least one attachment per vertex");
        assert!(
            n > m + 1,
            "n = {n} must exceed the initial clique of {} vertices",
            m + 1
        );
        Self { n, m, seed }
    }

    /// Number of vertices the finished stream touches.
    #[must_use]
    pub fn vertex_count(&self) -> u64 {
        self.n
    }

    /// Total number of edges the stream will emit.
    #[must_use]
    pub fn edge_count(&self) -> u64 {
        let clique = (self.m + 1) * self.m / 2;
        clique + (self.n - self.m - 1) * self.m
    }
}

impl EdgeStream for BarabasiAlbert {
    type Iter = std::vec::IntoIter<Edge>;

    fn edges(&self) -> Self::Iter {
        let mut rng = rng_from_seed(self.seed);
        let mut edges: Vec<Edge> = Vec::with_capacity(self.edge_count() as usize);
        // Endpoint multiset: vertex v appears deg(v) times.
        let mut endpoints: Vec<u64> = Vec::with_capacity(2 * self.edge_count() as usize);

        // Seed clique on vertices 0..=m.
        for u in 0..=self.m {
            for v in (u + 1)..=self.m {
                edges.push(Edge::new(u, v, edges.len() as u64));
                endpoints.push(u);
                endpoints.push(v);
            }
        }

        // Growth phase.
        let mut targets: HashSet<u64> = HashSet::with_capacity(self.m as usize);
        for new in (self.m + 1)..self.n {
            targets.clear();
            while (targets.len() as u64) < self.m {
                let t = endpoints[rng.gen_range(0..endpoints.len())];
                targets.insert(t);
            }
            // Sort for determinism: HashSet iteration order varies by
            // process, and streams must replay identically.
            let mut ordered: Vec<u64> = targets.iter().copied().collect();
            ordered.sort_unstable();
            for t in ordered {
                edges.push(Edge::new(new, t, edges.len() as u64));
                endpoints.push(new);
                endpoints.push(t);
            }
        }
        edges.into_iter()
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.edge_count() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::AdjacencyGraph;
    use crate::generators::testutil::{assert_replayable, assert_simple_stream};
    use crate::types::VertexId;

    #[test]
    fn edge_count_formula_matches_stream() {
        let g = BarabasiAlbert::new(200, 3, 9);
        let edges = assert_simple_stream(&g);
        assert_eq!(edges.len() as u64, g.edge_count());
    }

    #[test]
    fn all_vertices_appear() {
        let g = BarabasiAlbert::new(100, 2, 4);
        let adj = AdjacencyGraph::from_edges(g.edges());
        assert_eq!(adj.vertex_count(), 100);
        // Every non-clique vertex has degree >= m.
        for v in 0..100u64 {
            assert!(adj.degree(VertexId(v)) >= 2, "vertex {v} under-attached");
        }
    }

    #[test]
    fn deterministic_and_replayable() {
        let g = BarabasiAlbert::new(150, 2, 5);
        assert_replayable(&g);
        assert_eq!(
            g.edges().collect::<Vec<_>>(),
            BarabasiAlbert::new(150, 2, 5).edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn degrees_are_skewed() {
        // Preferential attachment must concentrate degree: the max degree
        // should far exceed the mean.
        let g = BarabasiAlbert::new(2000, 2, 1);
        let adj = AdjacencyGraph::from_edges(g.edges());
        let max_deg = adj.vertices().map(|v| adj.degree(v)).max().unwrap();
        let mean = 2.0 * adj.edge_count() as f64 / adj.vertex_count() as f64;
        assert!(
            max_deg as f64 > 5.0 * mean,
            "no hub formed: max {max_deg}, mean {mean:.1}"
        );
    }

    #[test]
    fn growth_order_is_temporal() {
        // A vertex's first appearance index is nondecreasing in its id
        // beyond the clique — new vertices arrive later.
        let g = BarabasiAlbert::new(50, 2, 2);
        let edges: Vec<_> = g.edges().collect();
        let mut first_seen = std::collections::HashMap::new();
        for (i, e) in edges.iter().enumerate() {
            first_seen.entry(e.src.0).or_insert(i);
            first_seen.entry(e.dst.0).or_insert(i);
        }
        for v in 3..50u64 {
            assert!(
                first_seen[&v] >= first_seen[&(v - 1)],
                "vertex {v} appeared before {}",
                v - 1
            );
        }
    }

    #[test]
    #[should_panic(expected = "initial clique")]
    fn tiny_n_rejected() {
        let _ = BarabasiAlbert::new(3, 2, 0);
    }

    #[test]
    #[should_panic(expected = "at least one attachment")]
    fn zero_m_rejected() {
        let _ = BarabasiAlbert::new(10, 0, 0);
    }
}
