//! Deterministic graph-stream generators.
//!
//! Each generator is a small value type holding its parameters and a seed;
//! [`crate::stream::EdgeStream::edges`] re-derives the identical edge
//! sequence on every call, which makes streams replayable without
//! materializing them at the call site.
//!
//! All generators emit **simple** graphs (no self-loops, each undirected
//! edge once) with timestamps equal to the arrival index. Growth models
//! (Barabási–Albert, forest fire) emit edges in growth order — the natural
//! temporal order real streams exhibit; static models (Erdős–Rényi,
//! Watts–Strogatz, configuration model) emit a seeded random permutation.

mod ba;
mod er;
mod forest_fire;
mod powerlaw;
mod ws;

pub use ba::BarabasiAlbert;
pub use er::ErdosRenyi;
pub use forest_fire::ForestFire;
pub use powerlaw::PowerLawConfig;
pub use ws::WattsStrogatz;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the deterministic RNG used by every generator.
pub(crate) fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared assertions for generator outputs.
    use crate::stream::EdgeStream;
    use crate::types::Edge;
    use std::collections::HashSet;

    /// Asserts the stream is simple: no self-loops, no duplicate
    /// undirected edges, timestamps strictly increasing from 0.
    pub fn assert_simple_stream(stream: &impl EdgeStream) -> Vec<Edge> {
        let edges: Vec<Edge> = stream.edges().collect();
        let mut seen = HashSet::new();
        for (i, e) in edges.iter().enumerate() {
            assert!(!e.is_loop(), "self loop at {i}: {e}");
            assert!(seen.insert(e.key()), "duplicate edge at {i}: {e}");
            assert_eq!(e.ts, i as u64, "timestamp not arrival index at {i}");
        }
        edges
    }

    /// Asserts two passes over the stream are identical.
    pub fn assert_replayable(stream: &impl EdgeStream) {
        let a: Vec<Edge> = stream.edges().collect();
        let b: Vec<Edge> = stream.edges().collect();
        assert_eq!(a, b, "stream not replayable");
    }
}
