//! Power-law configuration-model streams.

use std::collections::HashSet;

use rand::seq::SliceRandom;
use rand::Rng;

use super::rng_from_seed;
use crate::stream::EdgeStream;
use crate::types::Edge;

/// A configuration-model graph with a discrete power-law degree sequence
/// `P(d) ∝ d^(−alpha)` truncated to `[1, max_degree]`.
///
/// Unlike Barabási–Albert (whose exponent is pinned near 3), the
/// configuration model lets experiments *sweep the skew*: E11 varies
/// `alpha` from 2.0 (extremely heavy tail) to 3.5 (mild) to show where
/// vertex-biased sampling pays off.
///
/// Stubs are paired uniformly at random; self-loops and duplicate pairs
/// are discarded (the standard "erased" configuration model), so the
/// realized edge count is slightly below `Σd/2` on heavy-tailed inputs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawConfig {
    n: u64,
    alpha: f64,
    max_degree: u64,
    seed: u64,
}

impl PowerLawConfig {
    /// `n` vertices, exponent `alpha > 1`, degrees truncated to
    /// `[1, max_degree]`.
    ///
    /// # Panics
    /// Panics if `alpha <= 1` (non-normalizable), `max_degree == 0`, or
    /// `n < 2`.
    #[must_use]
    pub fn new(n: u64, alpha: f64, max_degree: u64, seed: u64) -> Self {
        assert!(n >= 2, "need at least two vertices");
        assert!(alpha > 1.0, "power-law exponent must exceed 1, got {alpha}");
        assert!(max_degree >= 1, "max_degree must be positive");
        Self {
            n,
            alpha,
            max_degree: max_degree.min(n - 1),
            seed,
        }
    }

    /// Samples one degree from the truncated zeta distribution by
    /// inverse-CDF over the precomputed table.
    fn sample_degree(cdf: &[f64], rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        // Binary search for the first entry >= u.
        match cdf.binary_search_by(|w| w.partial_cmp(&u).expect("cdf is finite")) {
            Ok(i) | Err(i) => (i as u64) + 1,
        }
    }

    fn degree_cdf(&self) -> Vec<f64> {
        let weights: Vec<f64> = (1..=self.max_degree)
            .map(|d| (d as f64).powf(-self.alpha))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc.min(1.0)
            })
            .collect()
    }
}

impl EdgeStream for PowerLawConfig {
    type Iter = std::vec::IntoIter<Edge>;

    fn edges(&self) -> Self::Iter {
        let mut rng = rng_from_seed(self.seed);
        let cdf = self.degree_cdf();

        // Stub list: vertex v appears deg(v) times.
        let mut stubs: Vec<u64> = Vec::new();
        for v in 0..self.n {
            let d = Self::sample_degree(&cdf, &mut rng);
            for _ in 0..d {
                stubs.push(v);
            }
        }
        if stubs.len() % 2 == 1 {
            stubs.pop(); // even number of stubs required
        }
        stubs.shuffle(&mut rng);

        let mut seen: HashSet<(u64, u64)> = HashSet::with_capacity(stubs.len() / 2);
        let mut edges: Vec<Edge> = Vec::with_capacity(stubs.len() / 2);
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v {
                continue; // erased self-loop
            }
            let key = (u.min(v), u.max(v));
            if seen.insert(key) {
                edges.push(Edge::new(key.0, key.1, edges.len() as u64));
            }
        }
        edges.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::AdjacencyGraph;
    use crate::generators::testutil::{assert_replayable, assert_simple_stream};

    #[test]
    fn stream_is_simple_and_replayable() {
        let g = PowerLawConfig::new(500, 2.5, 100, 7);
        assert_simple_stream(&g);
        assert_replayable(&g);
    }

    #[test]
    fn degrees_respect_truncation() {
        let g = PowerLawConfig::new(400, 2.2, 20, 3);
        let adj = AdjacencyGraph::from_edges(g.edges());
        for v in adj.vertices() {
            assert!(adj.degree(v) <= 20, "degree cap violated at {v}");
        }
    }

    #[test]
    fn heavier_tail_for_smaller_alpha() {
        let light = PowerLawConfig::new(3000, 3.5, 500, 5);
        let heavy = PowerLawConfig::new(3000, 2.0, 500, 5);
        let max_deg = |g: &PowerLawConfig| {
            let adj = AdjacencyGraph::from_edges(g.edges());
            adj.vertices().map(|v| adj.degree(v)).max().unwrap_or(0)
        };
        assert!(
            max_deg(&heavy) > max_deg(&light),
            "alpha sweep did not change the tail"
        );
    }

    #[test]
    fn most_vertices_low_degree() {
        let g = PowerLawConfig::new(2000, 2.5, 200, 9);
        let adj = AdjacencyGraph::from_edges(g.edges());
        let low = adj.vertices().filter(|&v| adj.degree(v) <= 2).count();
        assert!(
            low * 2 > adj.vertex_count(),
            "power law should put most mass at degree 1-2: {low}/{}",
            adj.vertex_count()
        );
    }

    #[test]
    fn sample_degree_covers_support() {
        let g = PowerLawConfig::new(100, 2.0, 8, 1);
        let cdf = g.degree_cdf();
        let mut rng = super::rng_from_seed(42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let d = PowerLawConfig::sample_degree(&cdf, &mut rng);
            assert!((1..=8).contains(&d));
            seen.insert(d);
        }
        assert!(seen.contains(&1), "mode of the distribution never drawn");
        assert!(seen.len() >= 4, "support barely covered: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn alpha_one_rejected() {
        let _ = PowerLawConfig::new(10, 1.0, 5, 0);
    }
}
