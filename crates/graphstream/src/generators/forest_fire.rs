//! Forest-fire growth streams (Leskovec et al.).

use std::collections::HashSet;

use rand::Rng;

use super::rng_from_seed;
use crate::stream::EdgeStream;
use crate::types::Edge;

/// A forest-fire growth stream: each arriving vertex picks a random
/// "ambassador", links to it, then recursively "burns" a geometric number
/// of the ambassador's neighbors, linking to every burned vertex.
///
/// Forest fire reproduces densification and community structure — new
/// vertices embed into an existing neighborhood instead of scattering —
/// so it mixes hubs with clustered tails. We use it as the YouTube-like
/// dataset stand-in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestFire {
    n: u64,
    burn_prob: f64,
    seed: u64,
}

impl ForestFire {
    /// `n` vertices; `burn_prob ∈ [0, 1)` is the forward-burning
    /// probability (the geometric mean number of neighbors burned per
    /// visited vertex is `burn_prob / (1 − burn_prob)`).
    ///
    /// # Panics
    /// Panics if `n < 2` or `burn_prob` outside `[0, 1)`.
    #[must_use]
    pub fn new(n: u64, burn_prob: f64, seed: u64) -> Self {
        assert!(n >= 2, "need at least two vertices");
        assert!(
            (0.0..1.0).contains(&burn_prob),
            "burn probability {burn_prob} outside [0, 1)"
        );
        Self { n, burn_prob, seed }
    }
}

impl EdgeStream for ForestFire {
    type Iter = std::vec::IntoIter<Edge>;

    fn edges(&self) -> Self::Iter {
        let mut rng = rng_from_seed(self.seed);
        let mut adj: Vec<Vec<u64>> = vec![Vec::new(); self.n as usize];
        let mut edges: Vec<Edge> = Vec::new();

        let link = |adj: &mut Vec<Vec<u64>>, edges: &mut Vec<Edge>, u: u64, v: u64| {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
            edges.push(Edge::new(u, v, edges.len() as u64));
        };

        // Vertex 1 links to vertex 0 to bootstrap.
        link(&mut adj, &mut edges, 1, 0);

        for new in 2..self.n {
            let ambassador = rng.gen_range(0..new);
            let mut burned: HashSet<u64> = HashSet::new();
            let mut frontier = vec![ambassador];
            burned.insert(ambassador);
            // Cap the burn so one fire cannot consume the whole graph:
            // keeps per-vertex work bounded and degree growth realistic.
            let cap = 32usize;
            while let Some(w) = frontier.pop() {
                if burned.len() >= cap {
                    break;
                }
                // Burn a geometric number of w's unburned neighbors.
                let mut candidates: Vec<u64> = adj[w as usize]
                    .iter()
                    .copied()
                    .filter(|x| !burned.contains(x) && *x != new)
                    .collect();
                // Deterministic candidate order, then geometric stopping.
                candidates.sort_unstable();
                for x in candidates {
                    if rng.gen::<f64>() < self.burn_prob {
                        if burned.insert(x) {
                            frontier.push(x);
                        }
                    } else {
                        break;
                    }
                }
            }
            // Sort for determinism: HashSet iteration order varies by
            // process, and streams must replay identically.
            let mut ordered: Vec<u64> = burned.iter().copied().collect();
            ordered.sort_unstable();
            for b in ordered {
                link(&mut adj, &mut edges, new, b);
            }
        }
        edges.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::AdjacencyGraph;
    use crate::generators::testutil::{assert_replayable, assert_simple_stream};
    use crate::types::VertexId;

    #[test]
    fn stream_is_simple_and_replayable() {
        let g = ForestFire::new(300, 0.35, 2);
        assert_simple_stream(&g);
        assert_replayable(&g);
    }

    #[test]
    fn every_vertex_connected() {
        let g = ForestFire::new(200, 0.3, 1);
        let adj = AdjacencyGraph::from_edges(g.edges());
        assert_eq!(adj.vertex_count(), 200);
        for v in 0..200u64 {
            assert!(adj.degree(VertexId(v)) >= 1, "isolated vertex {v}");
        }
    }

    #[test]
    fn higher_burn_prob_densifies() {
        let sparse = ForestFire::new(500, 0.05, 3).edges().count();
        let dense = ForestFire::new(500, 0.5, 3).edges().count();
        assert!(
            dense > sparse,
            "burning more must add edges: {dense} <= {sparse}"
        );
    }

    #[test]
    fn zero_burn_prob_gives_tree() {
        // With no burning, each vertex links only to its ambassador.
        let g = ForestFire::new(100, 0.0, 4);
        assert_eq!(g.edges().count(), 99);
    }

    #[test]
    fn new_vertex_neighborhoods_cluster() {
        // Forest fire should create triangles: the new vertex links to an
        // ambassador *and* some of its neighbors.
        let g = ForestFire::new(400, 0.4, 5);
        let adj = AdjacencyGraph::from_edges(g.edges());
        let mut triangles = 0usize;
        for (u, v) in adj.edges() {
            triangles += adj.common_neighbors(u, v);
        }
        assert!(triangles > 0, "no clustering formed");
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn burn_prob_one_rejected() {
        let _ = ForestFire::new(10, 1.0, 0);
    }
}
