//! Erdős–Rényi `G(n, m)` streams.

use std::collections::HashSet;

use rand::seq::SliceRandom;
use rand::Rng;

use super::rng_from_seed;
use crate::stream::EdgeStream;
use crate::types::Edge;

/// An Erdős–Rényi `G(n, m)` random graph, streamed in a seeded random
/// order.
///
/// `m` distinct undirected edges are drawn uniformly from the
/// `n·(n−1)/2` possible pairs. ER graphs have near-zero neighborhood
/// overlap, making them the hardest (smallest-Jaccard) regime for the
/// estimators — useful as a stress case.
///
/// ```
/// use graphstream::{ErdosRenyi, EdgeStream};
/// let g = ErdosRenyi::new(100, 300, 7);
/// assert_eq!(g.edges().count(), 300);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ErdosRenyi {
    n: u64,
    m: u64,
    seed: u64,
}

impl ErdosRenyi {
    /// `n` vertices, `m` edges, deterministic under `seed`.
    ///
    /// # Panics
    /// Panics if `n < 2` or `m` exceeds the number of possible pairs.
    #[must_use]
    pub fn new(n: u64, m: u64, seed: u64) -> Self {
        assert!(n >= 2, "need at least two vertices");
        let max_edges = n * (n - 1) / 2;
        assert!(
            m <= max_edges,
            "m = {m} exceeds the {max_edges} possible pairs on {n} vertices"
        );
        Self { n, m, seed }
    }

    /// Number of vertices.
    #[must_use]
    pub fn vertex_count(&self) -> u64 {
        self.n
    }
}

impl EdgeStream for ErdosRenyi {
    type Iter = std::vec::IntoIter<Edge>;

    fn edges(&self) -> Self::Iter {
        let mut rng = rng_from_seed(self.seed);
        let mut chosen: HashSet<(u64, u64)> = HashSet::with_capacity(self.m as usize);
        let mut edges: Vec<Edge> = Vec::with_capacity(self.m as usize);
        while (edges.len() as u64) < self.m {
            let u = rng.gen_range(0..self.n);
            let v = rng.gen_range(0..self.n);
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if chosen.insert(key) {
                edges.push(Edge::new(key.0, key.1, 0));
            }
        }
        edges.shuffle(&mut rng);
        for (i, e) in edges.iter_mut().enumerate() {
            e.ts = i as u64;
        }
        edges.into_iter()
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.m as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::testutil::{assert_replayable, assert_simple_stream};

    #[test]
    fn emits_exactly_m_simple_edges() {
        let g = ErdosRenyi::new(50, 200, 3);
        let edges = assert_simple_stream(&g);
        assert_eq!(edges.len(), 200);
        for e in &edges {
            assert!(e.src.0 < 50 && e.dst.0 < 50);
        }
    }

    #[test]
    fn deterministic_and_replayable() {
        let g = ErdosRenyi::new(40, 100, 11);
        assert_replayable(&g);
        let h = ErdosRenyi::new(40, 100, 11);
        assert_eq!(g.edges().collect::<Vec<_>>(), h.edges().collect::<Vec<_>>());
    }

    #[test]
    fn different_seeds_differ() {
        let a: Vec<_> = ErdosRenyi::new(40, 100, 1).edges().collect();
        let b: Vec<_> = ErdosRenyi::new(40, 100, 2).edges().collect();
        assert_ne!(a, b);
    }

    #[test]
    fn complete_graph_possible() {
        let g = ErdosRenyi::new(10, 45, 5);
        assert_eq!(assert_simple_stream(&g).len(), 45);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn too_many_edges_rejected() {
        let _ = ErdosRenyi::new(10, 46, 0);
    }

    #[test]
    #[should_panic(expected = "two vertices")]
    fn tiny_graph_rejected() {
        let _ = ErdosRenyi::new(1, 0, 0);
    }
}
