//! Watts–Strogatz small-world streams.

use std::collections::HashSet;

use rand::seq::SliceRandom;
use rand::Rng;

use super::rng_from_seed;
use crate::stream::EdgeStream;
use crate::types::Edge;

/// A Watts–Strogatz small-world graph: a ring lattice where each vertex
/// connects to its `k` nearest neighbors, with each edge rewired to a
/// random target with probability `p`.
///
/// Small-world graphs combine *high clustering* (large Jaccard values —
/// the easy regime) with short paths; sweeping `p` from 0 to 1
/// interpolates from lattice to near-random, which the robustness
/// experiments exploit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WattsStrogatz {
    n: u64,
    k: u64,
    p: f64,
    seed: u64,
}

impl WattsStrogatz {
    /// `n` vertices on a ring, `k` nearest neighbors (must be even),
    /// rewiring probability `p ∈ [0, 1]`.
    ///
    /// # Panics
    /// Panics if `k` is odd or zero, `k >= n`, or `p` outside `[0, 1]`.
    #[must_use]
    pub fn new(n: u64, k: u64, p: f64, seed: u64) -> Self {
        assert!(
            k >= 2 && k.is_multiple_of(2),
            "k must be even and >= 2, got {k}"
        );
        assert!(k < n, "ring degree k = {k} must be < n = {n}");
        assert!(
            (0.0..=1.0).contains(&p),
            "rewiring probability {p} outside [0,1]"
        );
        Self { n, k, p, seed }
    }
}

impl EdgeStream for WattsStrogatz {
    type Iter = std::vec::IntoIter<Edge>;

    fn edges(&self) -> Self::Iter {
        let mut rng = rng_from_seed(self.seed);
        let mut present: HashSet<(u64, u64)> = HashSet::new();
        // Ring lattice: vertex u connects to u+1 ..= u+k/2 (mod n).
        for u in 0..self.n {
            for hop in 1..=(self.k / 2) {
                let v = (u + hop) % self.n;
                let key = (u.min(v), u.max(v));
                present.insert(key);
            }
        }
        // Rewire each lattice edge with probability p: keep endpoint u,
        // move the other end to a uniform non-duplicate target.
        let lattice: Vec<(u64, u64)> = {
            let mut v: Vec<_> = present.iter().copied().collect();
            v.sort_unstable();
            v
        };
        for (u, v) in lattice {
            if rng.gen::<f64>() >= self.p {
                continue;
            }
            // Try a handful of candidates; a dense ring may have no free
            // target, in which case the edge stays.
            for _ in 0..32 {
                let w = rng.gen_range(0..self.n);
                let key = (u.min(w), u.max(w));
                if w != u && !present.contains(&key) {
                    present.remove(&(u.min(v), u.max(v)));
                    present.insert(key);
                    break;
                }
            }
        }
        let mut edges: Vec<Edge> = {
            let mut pairs: Vec<_> = present.into_iter().collect();
            pairs.sort_unstable();
            pairs.into_iter().map(|(u, v)| Edge::new(u, v, 0)).collect()
        };
        edges.shuffle(&mut rng);
        for (i, e) in edges.iter_mut().enumerate() {
            e.ts = i as u64;
        }
        edges.into_iter()
    }

    fn len_hint(&self) -> Option<usize> {
        Some((self.n * self.k / 2) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adjacency::AdjacencyGraph;
    use crate::generators::testutil::{assert_replayable, assert_simple_stream};
    use crate::types::VertexId;

    #[test]
    fn unrewired_lattice_is_regular() {
        let g = WattsStrogatz::new(30, 4, 0.0, 1);
        let edges = assert_simple_stream(&g);
        assert_eq!(edges.len(), 60);
        let adj = AdjacencyGraph::from_edges(edges);
        for v in 0..30u64 {
            assert_eq!(adj.degree(VertexId(v)), 4, "vertex {v}");
        }
    }

    #[test]
    fn edge_count_preserved_under_rewiring() {
        let g = WattsStrogatz::new(100, 6, 0.3, 2);
        let edges = assert_simple_stream(&g);
        assert_eq!(edges.len(), 300);
    }

    #[test]
    fn full_rewiring_destroys_lattice() {
        let lattice: std::collections::HashSet<_> = WattsStrogatz::new(200, 4, 0.0, 3)
            .edges()
            .map(Edge::key)
            .collect();
        let rewired: std::collections::HashSet<_> = WattsStrogatz::new(200, 4, 1.0, 3)
            .edges()
            .map(Edge::key)
            .collect();
        let kept = lattice.intersection(&rewired).count();
        assert!(
            kept < lattice.len() / 2,
            "rewiring too weak: {kept}/{} lattice edges survive",
            lattice.len()
        );
    }

    #[test]
    fn lattice_has_high_clustering() {
        // Adjacent ring vertices share k/2 - 1 = 1 common neighbor at k=4;
        // verify overlap exists (the easy-Jaccard regime claim).
        let g = WattsStrogatz::new(50, 4, 0.0, 4);
        let adj = AdjacencyGraph::from_edges(g.edges());
        assert!(adj.common_neighbors(VertexId(0), VertexId(1)) >= 1);
    }

    #[test]
    fn deterministic_and_replayable() {
        let g = WattsStrogatz::new(60, 4, 0.2, 5);
        assert_replayable(&g);
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_k_rejected() {
        let _ = WattsStrogatz::new(10, 3, 0.1, 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bad_probability_rejected() {
        let _ = WattsStrogatz::new(10, 2, 1.5, 0);
    }
}
