//! Scorer backends: one trait, three implementations.
//!
//! A [`Scorer`] answers "how likely is the edge `(u, v)`?" under a chosen
//! [`Measure`]. The three backends share the interface so the evaluation
//! and benchmark layers can swap them freely:
//!
//! * [`ExactScorer`] — full adjacency, exact values, O(m) memory.
//! * [`SketchScorer`] — the paper's MinHash sketches, O(n·k) memory.
//! * [`ReservoirScorer`] — a uniform edge sample of fixed capacity with
//!   Horvitz–Thompson-style rescaling; the natural equal-memory baseline.

use graphstream::{AdjacencyGraph, Edge, EdgeReservoir, VertexId};
use streamlink_core::SketchStore;

use crate::measure::Measure;

/// Scores vertex pairs under a link-prediction measure.
///
/// `None` means the backend has no information on at least one endpoint
/// (never appeared in its view of the stream).
pub trait Scorer {
    /// Scores the pair under the measure.
    fn score(&self, measure: Measure, u: VertexId, v: VertexId) -> Option<f64>;

    /// A short name for reports.
    fn name(&self) -> &'static str;

    /// The backend's resident memory (bytes), for equal-memory
    /// comparisons.
    fn memory_bytes(&self) -> usize;
}

/// Exact scoring over a full adjacency graph.
#[derive(Debug, Clone)]
pub struct ExactScorer {
    graph: AdjacencyGraph,
}

impl ExactScorer {
    /// Builds the full graph from a stream.
    #[must_use]
    pub fn from_edges(edges: impl IntoIterator<Item = Edge>) -> Self {
        Self {
            graph: AdjacencyGraph::from_edges(edges),
        }
    }

    /// Wraps an existing graph.
    #[must_use]
    pub fn new(graph: AdjacencyGraph) -> Self {
        Self { graph }
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &AdjacencyGraph {
        &self.graph
    }
}

impl Scorer for ExactScorer {
    fn score(&self, measure: Measure, u: VertexId, v: VertexId) -> Option<f64> {
        if self.graph.degree(u) == 0 || self.graph.degree(v) == 0 {
            return None;
        }
        Some(match measure {
            Measure::Jaccard => self.graph.jaccard(u, v),
            Measure::CommonNeighbors => self.graph.common_neighbors(u, v) as f64,
            Measure::AdamicAdar => self.graph.adamic_adar(u, v),
            Measure::ResourceAllocation => self.graph.resource_allocation(u, v),
            Measure::PreferentialAttachment => self.graph.preferential_attachment(u, v),
            Measure::Cosine => self.graph.cosine(u, v),
            Measure::Overlap => self.graph.overlap(u, v),
        })
    }

    fn name(&self) -> &'static str {
        "exact"
    }

    fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes()
    }
}

/// Sketch-based scoring (the paper's method).
#[derive(Debug, Clone)]
pub struct SketchScorer {
    store: SketchStore,
}

impl SketchScorer {
    /// Wraps a populated sketch store.
    #[must_use]
    pub fn new(store: SketchStore) -> Self {
        Self { store }
    }

    /// The underlying store.
    #[must_use]
    pub fn store(&self) -> &SketchStore {
        &self.store
    }
}

impl Scorer for SketchScorer {
    fn score(&self, measure: Measure, u: VertexId, v: VertexId) -> Option<f64> {
        match measure {
            Measure::Jaccard => self.store.jaccard(u, v),
            Measure::CommonNeighbors => self.store.common_neighbors(u, v),
            Measure::AdamicAdar => self.store.adamic_adar(u, v),
            Measure::ResourceAllocation => self.store.resource_allocation(u, v),
            Measure::PreferentialAttachment => self.store.preferential_attachment(u, v),
            Measure::Cosine => self.store.cosine(u, v),
            Measure::Overlap => self.store.overlap(u, v),
        }
    }

    fn name(&self) -> &'static str {
        "sketch"
    }

    fn memory_bytes(&self) -> usize {
        self.store.memory_bytes()
    }
}

/// Reservoir-sampling baseline: keep a uniform sample of `capacity`
/// edges, score on the sampled subgraph, rescale by the sampling rate.
///
/// With sampling rate `p`:
/// * a vertex's sampled degree has expectation `p·d`, so degrees rescale
///   by `1/p`;
/// * a common neighbor survives iff *both* incident edges survive
///   (probability `p²`), so intersection counts rescale by `1/p²`;
/// * AA/RA weights use the *rescaled* degree of the sampled common
///   neighbor.
///
/// Unseen vertices (every incident edge evicted) score `None` — part of
/// why sketches beat reservoirs at equal memory: sketches never forget a
/// vertex, reservoirs do.
#[derive(Debug, Clone)]
pub struct ReservoirScorer {
    graph: AdjacencyGraph,
    rate: f64,
    capacity: usize,
}

impl ReservoirScorer {
    /// Builds the baseline by streaming `edges` through a reservoir of
    /// `capacity` edges.
    #[must_use]
    pub fn from_edges(edges: impl IntoIterator<Item = Edge>, capacity: usize, seed: u64) -> Self {
        let mut reservoir = EdgeReservoir::new(capacity, seed);
        for e in edges {
            reservoir.offer(e);
        }
        Self::from_reservoir(&reservoir)
    }

    /// Builds from an already-filled reservoir.
    #[must_use]
    pub fn from_reservoir(reservoir: &EdgeReservoir) -> Self {
        Self {
            graph: AdjacencyGraph::from_edges(reservoir.sample().iter().copied()),
            rate: reservoir.rate(),
            capacity: reservoir.capacity(),
        }
    }

    /// The effective sampling rate `p`.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    fn degree_est(&self, v: VertexId) -> f64 {
        self.graph.degree(v) as f64 / self.rate
    }
}

impl Scorer for ReservoirScorer {
    fn score(&self, measure: Measure, u: VertexId, v: VertexId) -> Option<f64> {
        if self.graph.degree(u) == 0 || self.graph.degree(v) == 0 {
            return None;
        }
        let p2 = self.rate * self.rate;
        Some(match measure {
            Measure::Jaccard => {
                let cn = self.graph.common_neighbors(u, v) as f64 / p2;
                let union = self.degree_est(u) + self.degree_est(v) - cn;
                if union <= 0.0 {
                    0.0
                } else {
                    (cn / union).clamp(0.0, 1.0)
                }
            }
            Measure::CommonNeighbors => self.graph.common_neighbors(u, v) as f64 / p2,
            Measure::AdamicAdar => {
                let nu = self.graph.neighbors(u)?;
                let nv = self.graph.neighbors(v)?;
                let (small, large) = if nu.len() <= nv.len() {
                    (nu, nv)
                } else {
                    (nv, nu)
                };
                small
                    .iter()
                    .filter(|w| large.contains(w))
                    .map(|&w| 1.0 / self.degree_est(w).max(2.0).ln())
                    .sum::<f64>()
                    / p2
            }
            Measure::ResourceAllocation => {
                let nu = self.graph.neighbors(u)?;
                let nv = self.graph.neighbors(v)?;
                let (small, large) = if nu.len() <= nv.len() {
                    (nu, nv)
                } else {
                    (nv, nu)
                };
                small
                    .iter()
                    .filter(|w| large.contains(w))
                    .map(|&w| 1.0 / self.degree_est(w).max(1.0))
                    .sum::<f64>()
                    / p2
            }
            Measure::PreferentialAttachment => self.degree_est(u) * self.degree_est(v),
            Measure::Cosine => {
                let cn = self.graph.common_neighbors(u, v) as f64 / p2;
                cn / (self.degree_est(u) * self.degree_est(v)).max(1e-12).sqrt()
            }
            Measure::Overlap => {
                let cn = self.graph.common_neighbors(u, v) as f64 / p2;
                (cn / self.degree_est(u).min(self.degree_est(v)).max(1e-12)).clamp(0.0, 1.0)
            }
        })
    }

    fn name(&self) -> &'static str {
        "reservoir"
    }

    fn memory_bytes(&self) -> usize {
        // The reservoir's own buffer is the dominant, capacity-bound cost.
        self.capacity * std::mem::size_of::<Edge>() + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphstream::{BarabasiAlbert, EdgeStream};
    use streamlink_core::SketchConfig;

    fn stream() -> Vec<Edge> {
        BarabasiAlbert::new(400, 3, 17).edges().collect()
    }

    #[test]
    fn exact_scorer_matches_graph() {
        let edges = stream();
        let scorer = ExactScorer::from_edges(edges.iter().copied());
        let g = AdjacencyGraph::from_edges(edges);
        let (u, v) = (VertexId(1), VertexId(2));
        assert_eq!(scorer.score(Measure::Jaccard, u, v), Some(g.jaccard(u, v)));
        assert_eq!(
            scorer.score(Measure::CommonNeighbors, u, v),
            Some(g.common_neighbors(u, v) as f64)
        );
        // AA sums over a HashSet, so summation order (and thus the last
        // ulp) can differ between calls — compare with tolerance.
        let aa = scorer.score(Measure::AdamicAdar, u, v).unwrap();
        assert!((aa - g.adamic_adar(u, v)).abs() < 1e-9);
        assert_eq!(scorer.score(Measure::Jaccard, u, VertexId(99_999)), None);
    }

    #[test]
    fn sketch_scorer_supports_all_measures() {
        let mut store = SketchStore::new(SketchConfig::with_slots(128).seed(1));
        store.insert_stream(stream());
        let scorer = SketchScorer::new(store);
        for m in Measure::ALL {
            let s = scorer.score(m, VertexId(1), VertexId(2));
            assert!(s.is_some(), "measure {m} unsupported");
            assert!(s.unwrap().is_finite());
        }
    }

    #[test]
    fn sketch_tracks_exact_jaccard() {
        let edges = stream();
        let exact = ExactScorer::from_edges(edges.iter().copied());
        let mut store = SketchStore::new(SketchConfig::with_slots(512).seed(2));
        store.insert_stream(edges.iter().copied());
        let sketch = SketchScorer::new(store);
        let mut err = 0.0;
        let mut n = 0;
        for u in 0..40u64 {
            for v in (u + 1)..40u64 {
                let (u, v) = (VertexId(u), VertexId(v));
                let e = exact.score(Measure::Jaccard, u, v).unwrap();
                let s = sketch.score(Measure::Jaccard, u, v).unwrap();
                err += (e - s).abs();
                n += 1;
            }
        }
        assert!(err / f64::from(n) < 0.03, "MAE {}", err / f64::from(n));
    }

    #[test]
    fn reservoir_full_capacity_is_exact() {
        // Capacity >= stream length → rate 1 → scores equal exact scores.
        let edges = stream();
        let exact = ExactScorer::from_edges(edges.iter().copied());
        let res = ReservoirScorer::from_edges(edges.iter().copied(), edges.len(), 3);
        assert!((res.rate() - 1.0).abs() < 1e-12);
        for m in Measure::ALL {
            for u in 0..10u64 {
                for v in (u + 1)..10u64 {
                    let (u, v) = (VertexId(u), VertexId(v));
                    let (a, b) = (exact.score(m, u, v).unwrap(), res.score(m, u, v).unwrap());
                    assert!(
                        (a - b).abs() < 1e-9,
                        "{m} mismatch at rate 1: exact {a}, reservoir {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn reservoir_cn_unbiased_in_aggregate() {
        // At 50% sampling, averaged over seeds, the rescaled CN should be
        // near the exact CN for a high-CN pair.
        let mut edges = Vec::new();
        let (u, v) = (VertexId(0), VertexId(1));
        for w in 10..60u64 {
            edges.push(Edge::new(0u64, w, 0));
            edges.push(Edge::new(1u64, w, 0));
        }
        let exact_cn = 50.0;
        let trials = 60;
        let mut sum = 0.0;
        for seed in 0..trials {
            let res = ReservoirScorer::from_edges(edges.iter().copied(), edges.len() / 2, seed);
            sum += res.score(Measure::CommonNeighbors, u, v).unwrap_or(0.0);
        }
        let mean = sum / f64::from(trials as u32);
        assert!(
            (mean - exact_cn).abs() < 0.2 * exact_cn,
            "reservoir CN biased: mean {mean}, exact {exact_cn}"
        );
    }

    #[test]
    fn reservoir_forgets_vertices() {
        // With a tiny reservoir most vertices disappear → None scores.
        let edges = stream();
        let res = ReservoirScorer::from_edges(edges.iter().copied(), 8, 5);
        let nones = (0..100u64)
            .filter(|&v| {
                res.score(Measure::Jaccard, VertexId(v), VertexId(v + 1))
                    .is_none()
            })
            .count();
        assert!(
            nones > 50,
            "tiny reservoir should forget most vertices: {nones}"
        );
    }

    #[test]
    fn memory_ordering_is_sane() {
        let edges = stream();
        let exact = ExactScorer::from_edges(edges.iter().copied());
        let mut store = SketchStore::new(SketchConfig::with_slots(8).seed(1));
        store.insert_stream(edges.iter().copied());
        let sketch = SketchScorer::new(store);
        let res = ReservoirScorer::from_edges(edges.iter().copied(), 64, 1);
        assert!(res.memory_bytes() < exact.memory_bytes());
        assert!(sketch.memory_bytes() < exact.memory_bytes());
    }

    #[test]
    fn names_are_distinct() {
        let edges = stream();
        let names = [
            ExactScorer::from_edges(edges.iter().copied()).name(),
            SketchScorer::new(SketchStore::new(SketchConfig::with_slots(4))).name(),
            ReservoirScorer::from_edges(edges.iter().copied(), 10, 0).name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 3);
    }
}
