//! Top-k recommendation: candidate generation + scoring + ranking.
//!
//! The query real applications issue is not "score this pair" but
//! "rank partners for this user". That needs a *candidate source* (whom
//! to consider) and a *scorer* (how to rank them). This module provides
//! the pipeline and two candidate strategies:
//!
//! * [`TwoHopCandidates`] — friends-of-friends from an exact adjacency
//!   graph: the classic link-prediction candidate set (every pair with
//!   `CN ≥ 1` and no existing edge).
//! * [`LshCandidates`] — sketch-native retrieval through a prebuilt
//!   [`LshIndex`]; no adjacency needed, stays within the stream model.

use graphstream::{AdjacencyGraph, VertexId};
use streamlink_core::{LshIndex, SketchStore};

use crate::measure::Measure;
use crate::scorer::Scorer;

/// Produces candidate partners for a query vertex.
pub trait CandidateSource {
    /// Candidate vertices for `u` (never containing `u`).
    fn candidates(&self, u: VertexId) -> Vec<VertexId>;
}

/// Friends-of-friends candidates from an exact adjacency graph,
/// excluding existing neighbors.
#[derive(Debug, Clone, Copy)]
pub struct TwoHopCandidates<'a> {
    graph: &'a AdjacencyGraph,
}

impl<'a> TwoHopCandidates<'a> {
    /// Wraps a graph.
    #[must_use]
    pub fn new(graph: &'a AdjacencyGraph) -> Self {
        Self { graph }
    }
}

impl CandidateSource for TwoHopCandidates<'_> {
    fn candidates(&self, u: VertexId) -> Vec<VertexId> {
        let Some(nbrs) = self.graph.neighbors(u) else {
            return Vec::new();
        };
        // Hash the first hop once: the inner loop runs d(u)·d(w) times,
        // and a linear `nbrs.contains` scan there made candidate
        // generation O(d²) per hub — quadratic on exactly the vertices
        // recommendation queries care about.
        let first_hop: std::collections::HashSet<VertexId> = nbrs.iter().copied().collect();
        let mut out: Vec<VertexId> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for &w in nbrs {
            if let Some(second) = self.graph.neighbors(w) {
                for &c in second {
                    if c != u && !first_hop.contains(&c) && seen.insert(c) {
                        out.push(c);
                    }
                }
            }
        }
        out.sort_unstable(); // deterministic order
        out
    }
}

/// Sketch-native candidates through an LSH index.
#[derive(Debug, Clone, Copy)]
pub struct LshCandidates<'a> {
    index: &'a LshIndex,
    store: &'a SketchStore,
}

impl<'a> LshCandidates<'a> {
    /// Wraps an index built over `store`.
    #[must_use]
    pub fn new(index: &'a LshIndex, store: &'a SketchStore) -> Self {
        Self { index, store }
    }
}

impl CandidateSource for LshCandidates<'_> {
    fn candidates(&self, u: VertexId) -> Vec<VertexId> {
        self.index.candidates(self.store, u)
    }
}

/// Ranks the candidate set of `u` by `measure` under `scorer`, returning
/// the top `k` as `(vertex, score)` descending; ties break toward the
/// smaller id. Unscorable candidates are skipped.
///
/// ```
/// use graphstream::{AdjacencyGraph, VertexId};
/// use linkpred::{recommend, ExactScorer, Measure, TwoHopCandidates};
///
/// // A path 1-2-3: the only two-hop candidate for 1 is 3.
/// let mut g = AdjacencyGraph::new();
/// g.insert_edge(1u64, 2u64);
/// g.insert_edge(2u64, 3u64);
/// let scorer = ExactScorer::new(g.clone());
/// let recs = recommend(
///     &scorer,
///     Measure::CommonNeighbors,
///     &TwoHopCandidates::new(&g),
///     VertexId(1),
///     5,
/// );
/// assert_eq!(recs, vec![(VertexId(3), 1.0)]);
/// ```
#[must_use]
pub fn recommend(
    scorer: &dyn Scorer,
    measure: Measure,
    source: &dyn CandidateSource,
    u: VertexId,
    k: usize,
) -> Vec<(VertexId, f64)> {
    let mut scored: Vec<(VertexId, f64)> = source
        .candidates(u)
        .into_iter()
        .filter_map(|v| scorer.score(measure, u, v).map(|s| (v, s)))
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scorer::{ExactScorer, SketchScorer};
    use graphstream::{EdgeStream, WattsStrogatz};
    use streamlink_core::SketchConfig;

    fn setup() -> (AdjacencyGraph, SketchStore) {
        let stream = WattsStrogatz::new(300, 6, 0.1, 3);
        let graph = AdjacencyGraph::from_edges(stream.edges());
        let mut store = SketchStore::new(SketchConfig::with_slots(64).seed(1));
        store.insert_stream(stream.edges());
        (graph, store)
    }

    #[test]
    fn two_hop_excludes_self_and_neighbors() {
        let (graph, _) = setup();
        let source = TwoHopCandidates::new(&graph);
        let u = VertexId(5);
        let cands = source.candidates(u);
        assert!(!cands.is_empty());
        for c in &cands {
            assert_ne!(*c, u);
            assert!(
                !graph.has_edge(u, *c),
                "candidate {c} is already a neighbor"
            );
            assert!(graph.common_neighbors(u, *c) >= 1, "{c} is not two-hop");
        }
    }

    #[test]
    fn two_hop_matches_linear_scan_reference() {
        // Regression pin for the HashSet first-hop lookup: identical
        // output to the original O(d²) `nbrs.contains` implementation,
        // on every vertex of a non-trivial graph.
        let (graph, _) = setup();
        let linear_reference = |u: VertexId| -> Vec<VertexId> {
            let Some(nbrs) = graph.neighbors(u) else {
                return Vec::new();
            };
            let mut out = Vec::new();
            let mut seen = std::collections::HashSet::new();
            for &w in nbrs {
                if let Some(second) = graph.neighbors(w) {
                    for &c in second {
                        if c != u && !nbrs.contains(&c) && seen.insert(c) {
                            out.push(c);
                        }
                    }
                }
            }
            out.sort_unstable();
            out
        };
        let source = TwoHopCandidates::new(&graph);
        let mut vertices: Vec<VertexId> = graph.vertices().collect();
        vertices.sort_unstable();
        for u in vertices {
            assert_eq!(
                source.candidates(u),
                linear_reference(u),
                "candidate set diverged at {u}"
            );
        }
    }

    #[test]
    fn two_hop_unseen_vertex_is_empty() {
        let (graph, _) = setup();
        assert!(TwoHopCandidates::new(&graph)
            .candidates(VertexId(9999))
            .is_empty());
    }

    #[test]
    fn recommend_orders_descending_and_truncates() {
        let (graph, _) = setup();
        let scorer = ExactScorer::new(graph.clone());
        let source = TwoHopCandidates::new(&graph);
        let recs = recommend(&scorer, Measure::AdamicAdar, &source, VertexId(7), 5);
        assert!(recs.len() <= 5);
        for w in recs.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn exact_and_sketch_recommendations_overlap() {
        let (graph, store) = setup();
        let exact = ExactScorer::new(graph.clone());
        let sketch = SketchScorer::new(store);
        let source = TwoHopCandidates::new(&graph);
        let mut overlap_total = 0usize;
        let mut queries = 0usize;
        for q in (0..60u64).step_by(6) {
            let e = recommend(&exact, Measure::CommonNeighbors, &source, VertexId(q), 5);
            let s = recommend(&sketch, Measure::CommonNeighbors, &source, VertexId(q), 5);
            if e.is_empty() {
                continue;
            }
            queries += 1;
            let es: std::collections::HashSet<_> = e.iter().map(|&(v, _)| v).collect();
            overlap_total += s.iter().filter(|&&(v, _)| es.contains(&v)).count();
        }
        assert!(queries > 0);
        // On average at least 2 of 5 sketch picks are in the exact top-5.
        assert!(
            overlap_total >= queries * 2,
            "sketch recommendations diverged: {overlap_total} overlaps over {queries} queries"
        );
    }

    #[test]
    fn lsh_candidates_integrate() {
        let (_, store) = setup();
        let index = LshIndex::build(&store, 16, 2).unwrap();
        let source = LshCandidates::new(&index, &store);
        let sketch = SketchScorer::new(store.clone());
        let recs = recommend(&sketch, Measure::Jaccard, &source, VertexId(10), 5);
        for &(v, j) in &recs {
            assert_ne!(v, VertexId(10));
            assert!((0.0..=1.0).contains(&j));
        }
    }
}
