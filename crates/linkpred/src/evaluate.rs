//! Temporal link-prediction evaluation and pair-level estimation error.
//!
//! Two evaluation modes, matching the two kinds of figures in the paper:
//!
//! 1. **Estimation accuracy** ([`estimation_report`]): how close are the
//!    sketch estimates to the exact measure values on sampled query pairs?
//!    (Figures E2–E4: average relative error vs. sketch size.)
//! 2. **Prediction quality** ([`Evaluator`]): do the estimated scores
//!    rank future edges as well as the exact scores do? (Figure E5:
//!    AUC / precision@k of sketch vs. exact.)

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use graphstream::{AdjacencyGraph, EdgeStream, TemporalSplit, VertexId};

use crate::measure::Measure;
use crate::metrics;
use crate::scorer::Scorer;

/// Result of a temporal link-prediction evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationReport {
    /// Scorer backend name.
    pub scorer: String,
    /// Measure evaluated.
    pub measure: Measure,
    /// Area under the ROC curve (`None` if a class was empty).
    pub auc: Option<f64>,
    /// `(k, precision@k)` rows.
    pub precision_at: Vec<(usize, f64)>,
    /// `(k, recall@k)` rows.
    pub recall_at: Vec<(usize, f64)>,
    /// Number of positive candidates scored.
    pub positives: usize,
    /// Number of negative candidates scored.
    pub negatives: usize,
    /// Fraction of candidates the backend could score (`Some`).
    pub coverage: f64,
}

/// A fixed candidate set for temporal evaluation, reusable across scorers
/// so every backend is judged on the identical pairs.
#[derive(Debug, Clone)]
pub struct Evaluator {
    train: graphstream::MemoryStream,
    positives: Vec<(VertexId, VertexId)>,
    negatives: Vec<(VertexId, VertexId)>,
}

impl Evaluator {
    /// Builds the evaluation protocol from a stream:
    ///
    /// * train = first `fraction` of the stream;
    /// * positives = novel future edges whose endpoints both appear in
    ///   train (pairs the predictor has a chance on);
    /// * negatives = `negatives_per_positive` random train-vertex pairs
    ///   that are edges neither in train nor in the future.
    ///
    /// # Panics
    /// Panics if `fraction` is outside `(0, 1)` or
    /// `negatives_per_positive == 0`.
    #[must_use]
    pub fn new(
        stream: &impl EdgeStream,
        fraction: f64,
        negatives_per_positive: usize,
        seed: u64,
    ) -> Self {
        assert!(
            negatives_per_positive > 0,
            "need at least one negative per positive"
        );
        let split = TemporalSplit::at_fraction(stream, fraction);
        let train_graph = AdjacencyGraph::from_edges(split.train().edges());

        let positives: Vec<(VertexId, VertexId)> = split
            .test()
            .as_slice()
            .iter()
            .map(|e| e.key())
            .filter(|&(u, v)| train_graph.degree(u) > 0 && train_graph.degree(v) > 0)
            .collect();

        let future: std::collections::HashSet<(VertexId, VertexId)> =
            positives.iter().copied().collect();
        let vertices: Vec<VertexId> = {
            let mut v: Vec<_> = train_graph.vertices().collect();
            v.sort_unstable();
            v
        };

        let mut rng = StdRng::seed_from_u64(seed);
        let target = positives.len() * negatives_per_positive;
        let mut negatives = Vec::with_capacity(target);
        let mut chosen = std::collections::HashSet::new();
        let mut attempts = 0usize;
        while negatives.len() < target && attempts < target * 100 + 1000 {
            attempts += 1;
            let u = vertices[rng.gen_range(0..vertices.len())];
            let v = vertices[rng.gen_range(0..vertices.len())];
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if train_graph.has_edge(u, v) || future.contains(&key) || !chosen.insert(key) {
                continue;
            }
            negatives.push(key);
        }

        Self {
            train: split.train().clone(),
            positives,
            negatives,
        }
    }

    /// Like [`Evaluator::new`], but negatives are *hard*: distance-2
    /// train pairs (sharing at least one common neighbor) that still
    /// never become edges. Random negatives are mostly trivially
    /// rejectable (no shared structure at all); hard negatives measure
    /// whether a predictor can separate "close but never connects" from
    /// "close and connects" — the strictly harder and more honest
    /// protocol.
    ///
    /// # Panics
    /// Panics on the same invalid inputs as [`Evaluator::new`].
    #[must_use]
    pub fn with_hard_negatives(
        stream: &impl EdgeStream,
        fraction: f64,
        negatives_per_positive: usize,
        seed: u64,
    ) -> Self {
        assert!(
            negatives_per_positive > 0,
            "need at least one negative per positive"
        );
        let split = TemporalSplit::at_fraction(stream, fraction);
        let train_graph = AdjacencyGraph::from_edges(split.train().edges());

        let positives: Vec<(VertexId, VertexId)> = split
            .test()
            .as_slice()
            .iter()
            .map(|e| e.key())
            .filter(|&(u, v)| train_graph.degree(u) > 0 && train_graph.degree(v) > 0)
            .collect();
        let future: std::collections::HashSet<(VertexId, VertexId)> =
            positives.iter().copied().collect();

        let target = positives.len() * negatives_per_positive;
        let mut negatives = Vec::with_capacity(target);
        let mut chosen = std::collections::HashSet::new();
        // Draw distance-2 candidates in batches until the quota fills or
        // the supply dries up (sample_overlap_pairs deduplicates).
        let mut batch_seed = seed;
        let mut stale_rounds = 0;
        while negatives.len() < target && stale_rounds < 4 {
            let before = negatives.len();
            for key in sample_overlap_pairs(&train_graph, target * 2, batch_seed) {
                if negatives.len() >= target {
                    break;
                }
                if train_graph.has_edge(key.0, key.1)
                    || future.contains(&key)
                    || !chosen.insert(key)
                {
                    continue;
                }
                negatives.push(key);
            }
            stale_rounds = if negatives.len() == before {
                stale_rounds + 1
            } else {
                0
            };
            batch_seed = batch_seed.wrapping_add(0x9E37_79B9);
        }

        Self {
            train: split.train().clone(),
            positives,
            negatives,
        }
    }

    /// The training prefix — feed it to each backend before evaluating.
    #[must_use]
    pub fn train(&self) -> &graphstream::MemoryStream {
        &self.train
    }

    /// The positive candidate pairs.
    #[must_use]
    pub fn positives(&self) -> &[(VertexId, VertexId)] {
        &self.positives
    }

    /// The negative candidate pairs.
    #[must_use]
    pub fn negatives(&self) -> &[(VertexId, VertexId)] {
        &self.negatives
    }

    /// Evaluates one scorer under one measure.
    ///
    /// Pairs the backend cannot score (`None`) are ranked strictly below
    /// every scored pair (score −1, all real scores are ≥ 0): a backend
    /// that forgot a vertex should pay for it in ranking quality, not be
    /// silently excused.
    #[must_use]
    pub fn evaluate(
        &self,
        scorer: &dyn Scorer,
        measure: Measure,
        ks: &[usize],
    ) -> EvaluationReport {
        const UNSCORED: f64 = -1.0;
        let mut scored: Vec<(f64, bool)> = Vec::new();
        let mut covered = 0usize;
        let mut pos_scores = Vec::with_capacity(self.positives.len());
        let mut neg_scores = Vec::with_capacity(self.negatives.len());

        for &(u, v) in &self.positives {
            let s = scorer.score(measure, u, v);
            covered += usize::from(s.is_some());
            let s = s.unwrap_or(UNSCORED);
            pos_scores.push(s);
            scored.push((s, true));
        }
        for &(u, v) in &self.negatives {
            let s = scorer.score(measure, u, v);
            covered += usize::from(s.is_some());
            let s = s.unwrap_or(UNSCORED);
            neg_scores.push(s);
            scored.push((s, false));
        }

        let total = self.positives.len() + self.negatives.len();
        EvaluationReport {
            scorer: scorer.name().to_string(),
            measure,
            auc: metrics::auc(&pos_scores, &neg_scores),
            precision_at: ks
                .iter()
                .filter_map(|&k| metrics::precision_at_k(&scored, k).map(|p| (k, p)))
                .collect(),
            recall_at: ks
                .iter()
                .filter_map(|&k| metrics::recall_at_k(&scored, k).map(|r| (k, r)))
                .collect(),
            positives: self.positives.len(),
            negatives: self.negatives.len(),
            coverage: if total == 0 {
                0.0
            } else {
                covered as f64 / total as f64
            },
        }
    }
}

/// Pair-level estimation error of `estimate` against `exact` on the given
/// query pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimationReport {
    /// Measure compared.
    pub measure: Measure,
    /// Pairs actually scored by both backends.
    pub pairs: usize,
    /// Mean absolute error.
    pub mae: f64,
    /// Root-mean-square error.
    pub rmse: f64,
    /// Average relative error over pairs with nonzero truth.
    pub are: Option<f64>,
    /// Kendall rank correlation between estimated and exact scores.
    pub kendall_tau: Option<f64>,
}

/// Compares an approximate scorer against an exact one on `pairs`.
///
/// Pairs either backend cannot score are skipped (reported via the
/// `pairs` count).
#[must_use]
pub fn estimation_report(
    approx: &dyn Scorer,
    exact: &dyn Scorer,
    measure: Measure,
    pairs: &[(VertexId, VertexId)],
) -> EstimationReport {
    let mut est = Vec::with_capacity(pairs.len());
    let mut truth = Vec::with_capacity(pairs.len());
    for &(u, v) in pairs {
        if let (Some(e), Some(t)) = (approx.score(measure, u, v), exact.score(measure, u, v)) {
            est.push(e);
            truth.push(t);
        }
    }
    EstimationReport {
        measure,
        pairs: est.len(),
        mae: metrics::mae(&est, &truth),
        rmse: metrics::rmse(&est, &truth),
        are: metrics::average_relative_error(&est, &truth, 1e-12),
        kendall_tau: metrics::kendall_tau(&est, &truth),
    }
}

/// Samples `n` query pairs guaranteed to share at least one common
/// neighbor in `graph` (distance-2 pairs): pick a random vertex `w` with
/// degree ≥ 2 and two distinct neighbors of it. These are the pairs on
/// which relative error is well defined for all three measures.
#[must_use]
pub fn sample_overlap_pairs(
    graph: &AdjacencyGraph,
    n: usize,
    seed: u64,
) -> Vec<(VertexId, VertexId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let hubs: Vec<VertexId> = {
        let mut v: Vec<_> = graph.vertices().filter(|&v| graph.degree(v) >= 2).collect();
        v.sort_unstable();
        v
    };
    if hubs.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::new();
    let mut attempts = 0usize;
    while out.len() < n && attempts < n * 50 + 100 {
        attempts += 1;
        let w = hubs[rng.gen_range(0..hubs.len())];
        let nbrs: Vec<VertexId> = {
            let mut v: Vec<_> = graph
                .neighbors(w)
                .map(|s| s.iter().copied().collect())
                .unwrap_or_default();
            v.sort_unstable();
            v
        };
        if nbrs.len() < 2 {
            continue;
        }
        let a = nbrs[rng.gen_range(0..nbrs.len())];
        let b = nbrs[rng.gen_range(0..nbrs.len())];
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if seen.insert(key) {
            out.push(key);
        }
    }
    out
}

/// Samples `n` uniform random pairs of observed vertices (the general
/// query workload: mostly low-overlap pairs).
#[must_use]
pub fn sample_random_pairs(
    graph: &AdjacencyGraph,
    n: usize,
    seed: u64,
) -> Vec<(VertexId, VertexId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let vertices: Vec<VertexId> = {
        let mut v: Vec<_> = graph.vertices().collect();
        v.sort_unstable();
        v
    };
    if vertices.len() < 2 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::new();
    let mut attempts = 0usize;
    while out.len() < n && attempts < n * 50 + 100 {
        attempts += 1;
        let a = vertices[rng.gen_range(0..vertices.len())];
        let b = vertices[rng.gen_range(0..vertices.len())];
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if seen.insert(key) {
            out.push(key);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scorer::{ExactScorer, SketchScorer};
    use graphstream::WattsStrogatz;
    use streamlink_core::{SketchConfig, SketchStore};

    /// A clustered small-world stream: future edges fall between vertices
    /// the train prefix has already seen (unlike growth models, where
    /// every future edge touches a brand-new vertex), so temporal
    /// evaluation has signal.
    fn stream() -> WattsStrogatz {
        WattsStrogatz::new(600, 8, 0.1, 21)
    }

    #[test]
    fn evaluator_builds_disjoint_candidates() {
        let ev = Evaluator::new(&stream(), 0.8, 2, 1);
        assert!(!ev.positives().is_empty());
        assert_eq!(ev.negatives().len(), ev.positives().len() * 2);
        let train_graph = AdjacencyGraph::from_edges(ev.train().edges());
        let pos: std::collections::HashSet<_> = ev.positives().iter().collect();
        for pair in ev.negatives() {
            assert!(
                !train_graph.has_edge(pair.0, pair.1),
                "negative is a train edge"
            );
            assert!(!pos.contains(pair), "negative is also a positive");
        }
    }

    #[test]
    fn exact_scorer_beats_chance() {
        let ev = Evaluator::new(&stream(), 0.8, 2, 2);
        let exact = ExactScorer::from_edges(ev.train().edges());
        for m in [
            Measure::CommonNeighbors,
            Measure::AdamicAdar,
            Measure::Jaccard,
        ] {
            let report = ev.evaluate(&exact, m, &[10]);
            let auc = report.auc.unwrap();
            assert!(auc > 0.6, "{m} AUC only {auc}");
            assert!((report.coverage - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sketch_scorer_tracks_exact_auc() {
        let ev = Evaluator::new(&stream(), 0.8, 2, 3);
        let exact = ExactScorer::from_edges(ev.train().edges());
        let mut store = SketchStore::new(SketchConfig::with_slots(256).seed(4));
        store.insert_stream(ev.train().edges());
        let sketch = SketchScorer::new(store);

        for m in Measure::PAPER_TARGETS {
            let e = ev.evaluate(&exact, m, &[]).auc.unwrap();
            let s = ev.evaluate(&sketch, m, &[]).auc.unwrap();
            assert!(
                (e - s).abs() < 0.12,
                "{m}: sketch AUC {s} far from exact {e}"
            );
        }
    }

    #[test]
    fn hard_negatives_share_neighbors_and_are_nonedges() {
        let ev = Evaluator::with_hard_negatives(&stream(), 0.8, 2, 7);
        assert!(!ev.negatives().is_empty());
        let g = AdjacencyGraph::from_edges(ev.train().edges());
        let pos: std::collections::HashSet<_> = ev.positives().iter().collect();
        for &(u, v) in ev.negatives() {
            assert!(g.common_neighbors(u, v) >= 1, "({u},{v}) is not distance-2");
            assert!(!g.has_edge(u, v), "({u},{v}) is a train edge");
            assert!(!pos.contains(&(u, v)), "({u},{v}) is a positive");
        }
    }

    #[test]
    fn hard_negatives_are_harder_than_random() {
        // AUC against hard negatives must be lower than against random
        // negatives for the same exact scorer (they share structure).
        let s = stream();
        let easy = Evaluator::new(&s, 0.8, 3, 2);
        let hard = Evaluator::with_hard_negatives(&s, 0.8, 3, 2);
        let exact_easy = ExactScorer::from_edges(easy.train().edges());
        let a_easy = easy
            .evaluate(&exact_easy, Measure::CommonNeighbors, &[])
            .auc
            .unwrap();
        let a_hard = hard
            .evaluate(&exact_easy, Measure::CommonNeighbors, &[])
            .auc
            .unwrap();
        assert!(
            a_hard < a_easy,
            "hard negatives should lower AUC: {a_hard} vs {a_easy}"
        );
    }

    #[test]
    fn report_serializes() {
        let ev = Evaluator::new(&stream(), 0.8, 1, 5);
        let exact = ExactScorer::from_edges(ev.train().edges());
        let report = ev.evaluate(&exact, Measure::Jaccard, &[5, 10]);
        let json = serde_json::to_string(&report).unwrap();
        let back: EvaluationReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn estimation_report_zero_error_against_self() {
        let exact = ExactScorer::from_edges(stream().edges());
        let pairs = sample_overlap_pairs(exact.graph(), 100, 7);
        assert!(!pairs.is_empty());
        let r = estimation_report(&exact, &exact, Measure::AdamicAdar, &pairs);
        assert_eq!(r.pairs, pairs.len());
        assert_eq!(r.mae, 0.0);
        assert_eq!(r.rmse, 0.0);
        assert_eq!(r.are, Some(0.0));
        assert_eq!(r.kendall_tau, Some(1.0));
    }

    #[test]
    fn estimation_report_sketch_errors_are_small() {
        let exact = ExactScorer::from_edges(stream().edges());
        let mut store = SketchStore::new(SketchConfig::with_slots(512).seed(9));
        store.insert_stream(stream().edges());
        let sketch = SketchScorer::new(store);
        let pairs = sample_overlap_pairs(exact.graph(), 200, 8);
        let r = estimation_report(&sketch, &exact, Measure::Jaccard, &pairs);
        assert!(r.pairs > 100);
        assert!(r.mae < 0.05, "jaccard MAE {}", r.mae);
        assert!(r.kendall_tau.unwrap() > 0.3, "tau {:?}", r.kendall_tau);
    }

    #[test]
    fn overlap_pairs_share_neighbors() {
        let g = AdjacencyGraph::from_edges(stream().edges());
        for (u, v) in sample_overlap_pairs(&g, 50, 3) {
            assert!(g.common_neighbors(u, v) >= 1, "({u}, {v}) has no overlap");
        }
    }

    #[test]
    fn random_pairs_are_distinct_vertices() {
        let g = AdjacencyGraph::from_edges(stream().edges());
        let pairs = sample_random_pairs(&g, 100, 4);
        assert_eq!(pairs.len(), 100);
        for (u, v) in pairs {
            assert_ne!(u, v);
        }
    }

    #[test]
    fn pair_sampling_is_deterministic() {
        let g = AdjacencyGraph::from_edges(stream().edges());
        assert_eq!(
            sample_overlap_pairs(&g, 30, 5),
            sample_overlap_pairs(&g, 30, 5)
        );
        assert_ne!(
            sample_overlap_pairs(&g, 30, 5),
            sample_overlap_pairs(&g, 30, 6)
        );
    }

    #[test]
    fn empty_graph_sampling_degrades_gracefully() {
        let g = AdjacencyGraph::new();
        assert!(sample_overlap_pairs(&g, 10, 0).is_empty());
        assert!(sample_random_pairs(&g, 10, 0).is_empty());
    }
}
