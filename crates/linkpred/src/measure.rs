//! The neighborhood link-prediction measures.

use serde::{Deserialize, Serialize};

/// A neighborhood-based link-prediction measure.
///
/// The first three are the paper's targets; the last two are classic
/// comparison predictors the evaluation also reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Measure {
    /// `|N(u) ∩ N(v)| / |N(u) ∪ N(v)|`.
    Jaccard,
    /// `|N(u) ∩ N(v)|`.
    CommonNeighbors,
    /// `Σ_{w ∈ N(u)∩N(v)} 1 / ln d(w)`.
    AdamicAdar,
    /// `Σ_{w ∈ N(u)∩N(v)} 1 / d(w)`.
    ResourceAllocation,
    /// `d(u) · d(v)`.
    PreferentialAttachment,
    /// `|N(u) ∩ N(v)| / √(d(u)·d(v))` (Salton index).
    Cosine,
    /// `|N(u) ∩ N(v)| / min(d(u), d(v))`.
    Overlap,
}

impl Measure {
    /// The three measures the paper targets.
    pub const PAPER_TARGETS: [Measure; 3] = [
        Measure::Jaccard,
        Measure::CommonNeighbors,
        Measure::AdamicAdar,
    ];

    /// Every measure the crate evaluates.
    pub const ALL: [Measure; 7] = [
        Measure::Jaccard,
        Measure::CommonNeighbors,
        Measure::AdamicAdar,
        Measure::ResourceAllocation,
        Measure::PreferentialAttachment,
        Measure::Cosine,
        Measure::Overlap,
    ];

    /// A short stable identifier (used in CLI flags and result files).
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            Measure::Jaccard => "jaccard",
            Measure::CommonNeighbors => "cn",
            Measure::AdamicAdar => "aa",
            Measure::ResourceAllocation => "ra",
            Measure::PreferentialAttachment => "pa",
            Measure::Cosine => "cosine",
            Measure::Overlap => "overlap",
        }
    }

    /// Parses the identifier produced by [`Measure::key`] (also accepts
    /// long names, case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Measure> {
        match s.to_ascii_lowercase().as_str() {
            "jaccard" | "jc" | "j" => Some(Measure::Jaccard),
            "cn" | "common_neighbors" | "common-neighbors" => Some(Measure::CommonNeighbors),
            "aa" | "adamic_adar" | "adamic-adar" => Some(Measure::AdamicAdar),
            "ra" | "resource_allocation" | "resource-allocation" => {
                Some(Measure::ResourceAllocation)
            }
            "pa" | "preferential_attachment" | "preferential-attachment" => {
                Some(Measure::PreferentialAttachment)
            }
            "cosine" | "salton" => Some(Measure::Cosine),
            "overlap" | "overlap_coefficient" => Some(Measure::Overlap),
            _ => None,
        }
    }
}

impl std::fmt::Display for Measure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Measure::Jaccard => "Jaccard",
            Measure::CommonNeighbors => "Common Neighbors",
            Measure::AdamicAdar => "Adamic-Adar",
            Measure::ResourceAllocation => "Resource Allocation",
            Measure::PreferentialAttachment => "Preferential Attachment",
            Measure::Cosine => "Cosine (Salton)",
            Measure::Overlap => "Overlap Coefficient",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_parse_roundtrip() {
        for m in Measure::ALL {
            assert_eq!(Measure::parse(m.key()), Some(m), "{m}");
        }
    }

    #[test]
    fn parse_accepts_aliases() {
        assert_eq!(Measure::parse("Adamic-Adar"), Some(Measure::AdamicAdar));
        assert_eq!(
            Measure::parse("COMMON_NEIGHBORS"),
            Some(Measure::CommonNeighbors)
        );
        assert_eq!(Measure::parse("jc"), Some(Measure::Jaccard));
        assert_eq!(Measure::parse("nope"), None);
    }

    #[test]
    fn paper_targets_subset_of_all() {
        for m in Measure::PAPER_TARGETS {
            assert!(Measure::ALL.contains(&m));
        }
    }

    #[test]
    fn serde_uses_snake_case() {
        let json = serde_json::to_string(&Measure::AdamicAdar).unwrap();
        assert_eq!(json, "\"adamic_adar\"");
        assert_eq!(
            serde_json::from_str::<Measure>(&json).unwrap(),
            Measure::AdamicAdar
        );
    }
}
