//! # linkpred
//!
//! The link-prediction layer: a uniform [`Scorer`] interface over exact,
//! sketch-based and reservoir-sampled backends, plus the evaluation
//! machinery (metrics, candidate generation, temporal evaluation) that the
//! experiment harness drives.
//!
//! * [`measure`] — the [`Measure`] enum naming the five neighborhood
//!   measures.
//! * [`scorer`] — [`ExactScorer`], [`SketchScorer`], [`ReservoirScorer`].
//! * [`metrics`] — AUC, precision/recall@k, MAE/RMSE, average relative
//!   error, Kendall's τ.
//! * [`evaluate`] — temporal link-prediction evaluation producing an
//!   [`EvaluationReport`], and pair-level estimation-error reports.
//! * [`mod@recommend`] — top-k recommendation: candidate sources (two-hop or
//!   LSH) + scoring + ranking.
//! * [`ensemble`] — calibrated z-score combination of several measures
//!   into one scorer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ensemble;
pub mod evaluate;
pub mod measure;
pub mod metrics;
pub mod recommend;
pub mod scorer;

pub use ensemble::EnsembleScorer;
pub use evaluate::{estimation_report, EstimationReport, EvaluationReport, Evaluator};
pub use measure::Measure;
pub use recommend::{recommend, CandidateSource, LshCandidates, TwoHopCandidates};
pub use scorer::{ExactScorer, ReservoirScorer, Scorer, SketchScorer};
