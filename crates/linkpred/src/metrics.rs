//! Evaluation metrics: ranking quality (AUC, precision/recall@k,
//! Kendall's τ) and estimation error (MAE, RMSE, average relative error).

/// Area under the ROC curve via the rank-sum (Mann–Whitney) formulation,
/// with ties counted as half.
///
/// `positives` and `negatives` are the scores of the positive and
/// negative class. Returns `None` when either class is empty (AUC is
/// undefined).
///
/// O(n log n): scores are ranked once with average ranks on ties, and
/// `AUC = (Σ rank(pos) − n₊(n₊+1)/2) / (n₊ · n₋)` — equivalent to the
/// naive pairwise count (the property tests cross-check the two).
#[must_use]
pub fn auc(positives: &[f64], negatives: &[f64]) -> Option<f64> {
    if positives.is_empty() || negatives.is_empty() {
        return None;
    }
    // (score, is_positive), sorted ascending by score.
    let mut all: Vec<(f64, bool)> = positives
        .iter()
        .map(|&s| (s, true))
        .chain(negatives.iter().map(|&s| (s, false)))
        .collect();
    all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    // Sum of 1-based average ranks over the positive class.
    let mut pos_rank_sum = 0.0f64;
    let mut i = 0usize;
    while i < all.len() {
        let mut j = i;
        while j + 1 < all.len() && all[j + 1].0 == all[i].0 {
            j += 1;
        }
        // Tied block [i..=j]: every member gets the average rank.
        let avg_rank = (i + 1 + j + 1) as f64 / 2.0;
        let pos_in_block = all[i..=j].iter().filter(|(_, p)| *p).count();
        pos_rank_sum += avg_rank * pos_in_block as f64;
        i = j + 1;
    }
    let n_pos = positives.len() as f64;
    let n_neg = negatives.len() as f64;
    Some((pos_rank_sum - n_pos * (n_pos + 1.0) / 2.0) / (n_pos * n_neg))
}

/// The naive O(n₊·n₋) pairwise AUC — retained as the executable
/// specification that the rank-based [`auc`] is property-tested against.
#[must_use]
pub fn auc_naive(positives: &[f64], negatives: &[f64]) -> Option<f64> {
    if positives.is_empty() || negatives.is_empty() {
        return None;
    }
    let mut wins = 0.0f64;
    for &p in positives {
        for &n in negatives {
            if p > n {
                wins += 1.0;
            } else if p == n {
                wins += 0.5;
            }
        }
    }
    Some(wins / (positives.len() as f64 * negatives.len() as f64))
}

/// Precision@k over `(score, is_positive)` pairs: the fraction of the `k`
/// highest-scored items that are positive. Ties broken by stable sort
/// (first-come), matching how a top-k recommender would emit them.
///
/// Returns `None` if `k == 0` or there are fewer than `k` items.
#[must_use]
pub fn precision_at_k(scored: &[(f64, bool)], k: usize) -> Option<f64> {
    if k == 0 || scored.len() < k {
        return None;
    }
    let mut ranked: Vec<&(f64, bool)> = scored.iter().collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let hits = ranked[..k].iter().filter(|(_, pos)| *pos).count();
    Some(hits as f64 / k as f64)
}

/// Recall@k: the fraction of all positives that appear in the top `k`.
///
/// Returns `None` if `k == 0`, there are fewer than `k` items, or there
/// are no positives.
#[must_use]
pub fn recall_at_k(scored: &[(f64, bool)], k: usize) -> Option<f64> {
    if k == 0 || scored.len() < k {
        return None;
    }
    let total_pos = scored.iter().filter(|(_, pos)| *pos).count();
    if total_pos == 0 {
        return None;
    }
    let mut ranked: Vec<&(f64, bool)> = scored.iter().collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let hits = ranked[..k].iter().filter(|(_, pos)| *pos).count();
    Some(hits as f64 / total_pos as f64)
}

/// Average precision (area under the precision–recall curve, step
/// interpolation): mean of precision@rank over the ranks where a
/// positive sits. The summary metric for heavily imbalanced candidate
/// sets, where AUC is over-optimistic.
///
/// Returns `None` when there are no positives.
#[must_use]
pub fn average_precision(scored: &[(f64, bool)]) -> Option<f64> {
    let total_pos = scored.iter().filter(|(_, p)| *p).count();
    if total_pos == 0 {
        return None;
    }
    let mut ranked: Vec<&(f64, bool)> = scored.iter().collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let mut hits = 0usize;
    let mut ap = 0.0;
    for (rank, (_, positive)) in ranked.iter().enumerate() {
        if *positive {
            hits += 1;
            ap += hits as f64 / (rank + 1) as f64;
        }
    }
    Some(ap / total_pos as f64)
}

/// Mean absolute error between paired estimates and ground truths.
///
/// # Panics
/// Panics if the slices have different lengths.
#[must_use]
pub fn mae(estimates: &[f64], truths: &[f64]) -> f64 {
    assert_eq!(estimates.len(), truths.len(), "paired slices must align");
    if estimates.is_empty() {
        return 0.0;
    }
    estimates
        .iter()
        .zip(truths)
        .map(|(e, t)| (e - t).abs())
        .sum::<f64>()
        / estimates.len() as f64
}

/// Root-mean-square error between paired estimates and ground truths.
///
/// # Panics
/// Panics if the slices have different lengths.
#[must_use]
pub fn rmse(estimates: &[f64], truths: &[f64]) -> f64 {
    assert_eq!(estimates.len(), truths.len(), "paired slices must align");
    if estimates.is_empty() {
        return 0.0;
    }
    (estimates
        .iter()
        .zip(truths)
        .map(|(e, t)| (e - t) * (e - t))
        .sum::<f64>()
        / estimates.len() as f64)
        .sqrt()
}

/// Average relative error `mean(|est − truth| / truth)` over pairs with
/// `truth > floor`; pairs at or below the floor are skipped (relative
/// error is meaningless at zero). This is the headline accuracy metric of
/// the paper's figures (experiments E2–E4).
///
/// Returns `None` if no pair survives the floor.
///
/// # Panics
/// Panics if the slices have different lengths.
#[must_use]
pub fn average_relative_error(estimates: &[f64], truths: &[f64], floor: f64) -> Option<f64> {
    assert_eq!(estimates.len(), truths.len(), "paired slices must align");
    let mut total = 0.0;
    let mut count = 0usize;
    for (e, t) in estimates.iter().zip(truths) {
        if *t > floor {
            total += (e - t).abs() / t;
            count += 1;
        }
    }
    (count > 0).then(|| total / count as f64)
}

/// Kendall's τ-b rank correlation between two paired score lists, with
/// tie correction: `τ-b = (C − D) / sqrt((P − T_a)(P − T_b))` where `P`
/// is the number of index pairs and `T_x` counts pairs tied in list `x`.
/// A list compared against itself scores 1 regardless of internal ties.
/// O(n²) — intended for evaluation set sizes (≤ a few thousand pairs).
///
/// Returns `None` for lists shorter than 2 or when either list is
/// entirely tied (correlation undefined).
///
/// # Panics
/// Panics if the slices have different lengths.
#[must_use]
pub fn kendall_tau(a: &[f64], b: &[f64]) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "paired slices must align");
    let n = a.len();
    if n < 2 {
        return None;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_a = 0i64;
    let mut ties_b = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            if da == 0.0 {
                ties_a += 1;
            }
            if db == 0.0 {
                ties_b += 1;
            }
            let s = da * db;
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as i64;
    let denom = (((pairs - ties_a) as f64) * ((pairs - ties_b) as f64)).sqrt();
    if denom == 0.0 {
        return None;
    }
    Some((concordant - discordant) as f64 / denom)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_and_inverted() {
        assert_eq!(auc(&[0.9, 0.8], &[0.1, 0.2]), Some(1.0));
        assert_eq!(auc(&[0.1, 0.2], &[0.9, 0.8]), Some(0.0));
    }

    #[test]
    fn auc_random_is_half() {
        // Identical score for everything → all ties → 0.5.
        assert_eq!(auc(&[0.5; 10], &[0.5; 10]), Some(0.5));
    }

    #[test]
    fn auc_known_mixed_case() {
        // positives {3, 1}, negatives {2, 0}:
        // (3>2, 3>0, 1<2, 1>0) → 3 wins of 4 = 0.75.
        assert_eq!(auc(&[3.0, 1.0], &[2.0, 0.0]), Some(0.75));
    }

    #[test]
    fn auc_empty_class_undefined() {
        assert_eq!(auc(&[], &[1.0]), None);
        assert_eq!(auc(&[1.0], &[]), None);
    }

    #[test]
    fn precision_at_k_basics() {
        let scored = [(0.9, true), (0.8, false), (0.7, true), (0.1, false)];
        assert_eq!(precision_at_k(&scored, 1), Some(1.0));
        assert_eq!(precision_at_k(&scored, 2), Some(0.5));
        assert_eq!(precision_at_k(&scored, 4), Some(0.5));
        assert_eq!(precision_at_k(&scored, 5), None);
        assert_eq!(precision_at_k(&scored, 0), None);
    }

    #[test]
    fn recall_at_k_basics() {
        let scored = [(0.9, true), (0.8, false), (0.7, true), (0.1, false)];
        assert_eq!(recall_at_k(&scored, 1), Some(0.5));
        assert_eq!(recall_at_k(&scored, 3), Some(1.0));
        let no_pos = [(0.9, false), (0.8, false)];
        assert_eq!(recall_at_k(&no_pos, 1), None);
    }

    #[test]
    fn average_precision_known_values() {
        // Ranking: +, -, +, - → AP = (1/1 + 2/3) / 2 = 5/6.
        let scored = [(0.9, true), (0.8, false), (0.7, true), (0.1, false)];
        assert!((average_precision(&scored).unwrap() - 5.0 / 6.0).abs() < 1e-12);
        // Perfect ranking → 1.0.
        let perfect = [(0.9, true), (0.8, true), (0.1, false)];
        assert_eq!(average_precision(&perfect), Some(1.0));
        // Worst ranking of 1 positive among 3: precision 1/3 at its rank.
        let worst = [(0.9, false), (0.8, false), (0.1, true)];
        assert!((average_precision(&worst).unwrap() - 1.0 / 3.0).abs() < 1e-12);
        // No positives → undefined.
        assert_eq!(average_precision(&[(0.5, false)]), None);
    }

    #[test]
    fn mae_rmse_known_values() {
        let est = [1.0, 2.0, 3.0];
        let truth = [1.0, 4.0, 1.0];
        assert!((mae(&est, &truth) - (0.0 + 2.0 + 2.0) / 3.0).abs() < 1e-12);
        assert!((rmse(&est, &truth) - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(mae(&[], &[]), 0.0);
    }

    #[test]
    fn are_skips_zero_truths() {
        let est = [0.5, 2.0];
        let truth = [0.0, 1.0];
        // Only the second pair counts: |2−1|/1 = 1.
        assert_eq!(average_relative_error(&est, &truth, 0.0), Some(1.0));
        assert_eq!(average_relative_error(&[1.0], &[0.0], 0.0), None);
    }

    #[test]
    fn kendall_tau_extremes() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(kendall_tau(&a, &b), Some(1.0));
        let rev = [40.0, 30.0, 20.0, 10.0];
        assert_eq!(kendall_tau(&a, &rev), Some(-1.0));
        assert_eq!(kendall_tau(&[1.0], &[1.0]), None);
    }

    #[test]
    fn kendall_tau_partial() {
        // One discordant pair out of three: (2 − 1)/3 = 1/3.
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 3.0, 2.0];
        assert!((kendall_tau(&a, &b).unwrap() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_self_with_ties_is_one() {
        // τ-b's tie correction makes a list perfectly correlated with
        // itself even when it contains ties.
        let a = [1.0, 2.0, 2.0, 3.0, 0.0];
        assert!((kendall_tau(&a, &a).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_all_tied_is_undefined() {
        assert_eq!(kendall_tau(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]), None);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_lengths_rejected() {
        let _ = mae(&[1.0], &[1.0, 2.0]);
    }
}
