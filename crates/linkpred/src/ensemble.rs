//! Measure ensembles: combining neighborhood measures into one score.
//!
//! Individual measures have complementary failure modes — CN favors
//! hubs, Jaccard punishes them, AA sits between. A standard improvement
//! is to combine them on a common scale. [`EnsembleScorer`] z-score
//! normalizes each member measure against a calibration sample of pairs
//! and averages the normalized scores (optionally weighted).
//!
//! Calibration-based normalization keeps the [`Scorer`] interface
//! pairwise: the mean/std of each measure is estimated once from a
//! sample at construction, not per query.

use graphstream::VertexId;

use crate::measure::Measure;
use crate::scorer::Scorer;

/// Per-measure calibration: mean and standard deviation over the sample.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Calibration {
    measure: Measure,
    weight: f64,
    mean: f64,
    std: f64,
}

/// A scorer combining several measures of one backend via calibrated
/// z-score averaging.
#[derive(Clone)]
pub struct EnsembleScorer<'a> {
    base: &'a dyn Scorer,
    members: Vec<Calibration>,
}

impl std::fmt::Debug for EnsembleScorer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnsembleScorer")
            .field("base", &self.base.name())
            .field("members", &self.members)
            .finish()
    }
}

impl<'a> EnsembleScorer<'a> {
    /// Calibrates an equal-weight ensemble of `measures` over `base`,
    /// estimating each measure's mean/std from `sample` pairs.
    ///
    /// Pairs the backend cannot score are skipped during calibration; a
    /// measure whose sample variance is zero is kept with unit std (its
    /// z-scores are then constant and neutral).
    ///
    /// # Panics
    /// Panics if `measures` or `sample` is empty.
    #[must_use]
    pub fn calibrated(
        base: &'a dyn Scorer,
        measures: &[Measure],
        sample: &[(VertexId, VertexId)],
    ) -> Self {
        assert!(!measures.is_empty(), "ensemble needs at least one measure");
        assert!(!sample.is_empty(), "calibration sample is empty");
        let weight = 1.0 / measures.len() as f64;
        let members = measures
            .iter()
            .map(|&measure| {
                let scores: Vec<f64> = sample
                    .iter()
                    .filter_map(|&(u, v)| base.score(measure, u, v))
                    .collect();
                let n = scores.len().max(1) as f64;
                let mean = scores.iter().sum::<f64>() / n;
                let var = scores.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
                let std = var.sqrt();
                Calibration {
                    measure,
                    weight,
                    mean,
                    std: if std > 1e-12 { std } else { 1.0 },
                }
            })
            .collect();
        Self { base, members }
    }

    /// The member measures, in order.
    #[must_use]
    pub fn measures(&self) -> Vec<Measure> {
        self.members.iter().map(|m| m.measure).collect()
    }
}

impl Scorer for EnsembleScorer<'_> {
    /// Mean of the members' z-scores; `None` only when the backend can
    /// score the pair under *no* member measure.
    fn score(&self, _measure: Measure, u: VertexId, v: VertexId) -> Option<f64> {
        let mut total = 0.0;
        let mut weight_sum = 0.0;
        for member in &self.members {
            if let Some(s) = self.base.score(member.measure, u, v) {
                total += member.weight * (s - member.mean) / member.std;
                weight_sum += member.weight;
            }
        }
        (weight_sum > 0.0).then(|| total / weight_sum)
    }

    fn name(&self) -> &'static str {
        "ensemble"
    }

    fn memory_bytes(&self) -> usize {
        self.base.memory_bytes() + self.members.len() * std::mem::size_of::<Calibration>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::{sample_overlap_pairs, Evaluator};
    use crate::scorer::ExactScorer;
    use graphstream::{EdgeStream, WattsStrogatz};

    fn setup() -> (ExactScorer, Vec<(VertexId, VertexId)>) {
        let stream = WattsStrogatz::new(400, 8, 0.1, 5);
        let exact = ExactScorer::from_edges(stream.edges());
        let sample = sample_overlap_pairs(exact.graph(), 200, 1);
        (exact, sample)
    }

    #[test]
    fn zscores_are_centered_on_calibration_sample() {
        let (exact, sample) = setup();
        let ensemble = EnsembleScorer::calibrated(&exact, &[Measure::CommonNeighbors], &sample);
        let mean: f64 = sample
            .iter()
            .filter_map(|&(u, v)| ensemble.score(Measure::Jaccard, u, v))
            .sum::<f64>()
            / sample.len() as f64;
        assert!(
            mean.abs() < 1e-9,
            "calibrated mean should be ~0, got {mean}"
        );
    }

    #[test]
    fn single_member_preserves_ranking() {
        let (exact, sample) = setup();
        let ensemble = EnsembleScorer::calibrated(&exact, &[Measure::AdamicAdar], &sample);
        // A positive affine transform preserves order.
        for w in sample.windows(2) {
            let (a, b) = (w[0], w[1]);
            let raw = exact
                .score(Measure::AdamicAdar, a.0, a.1)
                .unwrap()
                .partial_cmp(&exact.score(Measure::AdamicAdar, b.0, b.1).unwrap())
                .unwrap();
            let ens = ensemble
                .score(Measure::AdamicAdar, a.0, a.1)
                .unwrap()
                .partial_cmp(&ensemble.score(Measure::AdamicAdar, b.0, b.1).unwrap())
                .unwrap();
            assert_eq!(raw, ens);
        }
    }

    #[test]
    fn ensemble_auc_is_competitive() {
        let stream = WattsStrogatz::new(500, 8, 0.1, 9);
        let evaluator = Evaluator::new(&stream, 0.8, 3, 2);
        let exact = ExactScorer::from_edges(evaluator.train().edges());
        let sample = sample_overlap_pairs(exact.graph(), 300, 3);
        let ensemble = EnsembleScorer::calibrated(
            &exact,
            &[
                Measure::Jaccard,
                Measure::CommonNeighbors,
                Measure::AdamicAdar,
            ],
            &sample,
        );
        let ens_auc = evaluator
            .evaluate(&ensemble, Measure::Jaccard, &[])
            .auc
            .unwrap();
        let member_aucs: Vec<f64> = Measure::PAPER_TARGETS
            .iter()
            .map(|&m| evaluator.evaluate(&exact, m, &[]).auc.unwrap())
            .collect();
        let worst = member_aucs.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            ens_auc >= worst - 0.02,
            "ensemble AUC {ens_auc} below worst member {worst}"
        );
        assert!(ens_auc > 0.6, "ensemble has no signal: {ens_auc}");
    }

    #[test]
    fn unseen_pairs_give_none() {
        let (exact, sample) = setup();
        let ensemble = EnsembleScorer::calibrated(&exact, &[Measure::Jaccard], &sample);
        assert_eq!(
            ensemble.score(Measure::Jaccard, VertexId(90_000), VertexId(90_001)),
            None
        );
    }

    #[test]
    fn constant_measure_is_neutralized() {
        // A sample where PA is constant (regular ring): std would be 0 →
        // kept with unit std, producing constant (harmless) z-scores.
        let stream = WattsStrogatz::new(100, 4, 0.0, 1);
        let exact = ExactScorer::from_edges(stream.edges());
        let sample = sample_overlap_pairs(exact.graph(), 50, 1);
        let ensemble =
            EnsembleScorer::calibrated(&exact, &[Measure::PreferentialAttachment], &sample);
        let scores: Vec<f64> = sample
            .iter()
            .filter_map(|&(u, v)| ensemble.score(Measure::Jaccard, u, v))
            .collect();
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    #[should_panic(expected = "at least one measure")]
    fn empty_measures_rejected() {
        let (exact, sample) = setup();
        let _ = EnsembleScorer::calibrated(&exact, &[], &sample);
    }
}
