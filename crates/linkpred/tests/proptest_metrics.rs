//! Property-based tests for the evaluation metrics.

use linkpred::metrics::{
    auc, auc_naive, average_relative_error, kendall_tau, mae, precision_at_k, recall_at_k, rmse,
};
use proptest::prelude::*;

fn scores() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..100.0, 1..50)
}

proptest! {
    /// AUC is always in [0, 1] and anti-symmetric under class swap.
    #[test]
    fn auc_bounds_and_swap(pos in scores(), neg in scores()) {
        let a = auc(&pos, &neg).unwrap();
        prop_assert!((0.0..=1.0).contains(&a));
        let swapped = auc(&neg, &pos).unwrap();
        prop_assert!((a + swapped - 1.0).abs() < 1e-9);
    }

    /// The O(n log n) rank-based AUC equals the naive pairwise
    /// specification on arbitrary inputs, including ties.
    #[test]
    fn auc_matches_naive_spec(
        pos in proptest::collection::vec(0.0f64..5.0, 1..40),
        neg in proptest::collection::vec(0.0f64..5.0, 1..40),
    ) {
        // Quantize to force frequent ties.
        let q = |v: &Vec<f64>| v.iter().map(|x| (x * 4.0).round() / 4.0).collect::<Vec<_>>();
        let (pos, neg) = (q(&pos), q(&neg));
        let fast = auc(&pos, &neg).unwrap();
        let slow = auc_naive(&pos, &neg).unwrap();
        prop_assert!((fast - slow).abs() < 1e-9, "fast {fast} vs naive {slow}");
    }

    /// Shifting every positive above every negative forces AUC = 1.
    #[test]
    fn auc_separable_is_one(pos in scores(), neg in scores()) {
        let max_neg = neg.iter().cloned().fold(f64::MIN, f64::max);
        let shifted: Vec<f64> = pos.iter().map(|p| p + max_neg + 1.0).collect();
        prop_assert_eq!(auc(&shifted, &neg), Some(1.0));
    }

    /// Precision and recall are in [0, 1]; recall at n equals 1 whenever
    /// positives exist.
    #[test]
    fn precision_recall_bounds(items in proptest::collection::vec((0.0f64..10.0, any::<bool>()), 2..40),
                               k in 1usize..10) {
        prop_assume!(k <= items.len());
        if let Some(p) = precision_at_k(&items, k) {
            prop_assert!((0.0..=1.0).contains(&p));
        }
        if let Some(r) = recall_at_k(&items, k) {
            prop_assert!((0.0..=1.0).contains(&r));
        }
        if items.iter().any(|(_, pos)| *pos) {
            prop_assert_eq!(recall_at_k(&items, items.len()), Some(1.0));
        }
    }

    /// MAE ≤ RMSE (Jensen) and both are zero iff the lists agree.
    #[test]
    fn mae_le_rmse(est in scores()) {
        let truth: Vec<f64> = est.iter().map(|x| x * 1.1 + 0.5).collect();
        let m = mae(&est, &truth);
        let r = rmse(&est, &truth);
        prop_assert!(m <= r + 1e-12);
        prop_assert_eq!(mae(&est, &est), 0.0);
        prop_assert_eq!(rmse(&est, &est), 0.0);
    }

    /// ARE is scale-invariant: scaling both lists leaves it unchanged.
    #[test]
    fn are_scale_invariant(est in scores(), scale in 0.1f64..10.0) {
        let truth: Vec<f64> = est.iter().map(|x| x + 1.0).collect();
        let a = average_relative_error(&est, &truth, 1e-12);
        let est2: Vec<f64> = est.iter().map(|x| x * scale).collect();
        let truth2: Vec<f64> = truth.iter().map(|x| x * scale).collect();
        let b = average_relative_error(&est2, &truth2, 1e-12);
        match (a, b) {
            (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9),
            (None, None) => {}
            other => prop_assert!(false, "mismatch: {other:?}"),
        }
    }

    /// Kendall τ is symmetric, bounded, and 1 against itself (mod ties).
    #[test]
    fn kendall_properties(a in proptest::collection::vec(0.0f64..10.0, 2..30)) {
        let b: Vec<f64> = a.iter().rev().cloned().collect();
        if let Some(t) = kendall_tau(&a, &b) {
            prop_assert!((-1.0..=1.0).contains(&t));
            prop_assert_eq!(kendall_tau(&b, &a), Some(t));
        }
        if let Some(self_t) = kendall_tau(&a, &a) {
            prop_assert!((self_t - 1.0).abs() < 1e-12);
        }
    }

    /// Monotone transforms never change τ.
    #[test]
    fn kendall_monotone_invariant(a in proptest::collection::vec(0.0f64..10.0, 2..30)) {
        let b: Vec<f64> = a.iter().map(|x| x * 3.0 + 7.0).collect();
        let exp: Vec<f64> = a.iter().map(|x| x.exp()).collect();
        match (kendall_tau(&a, &b), kendall_tau(&a, &exp)) {
            (Some(x), Some(y)) => {
                prop_assert!((x - 1.0).abs() < 1e-12);
                prop_assert!((y - 1.0).abs() < 1e-12);
            }
            (None, None) => {}
            other => prop_assert!(false, "mismatch: {other:?}"),
        }
    }
}
