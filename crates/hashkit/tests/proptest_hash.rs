//! Property-based tests for hashkit invariants.

use hashkit::{exp_rank, mix64, unit_uniform, unmix64, HashFamily, SeededHash, TabulationHash};
use proptest::prelude::*;

proptest! {
    /// mix64 is a bijection: unmix64 inverts it on arbitrary inputs.
    #[test]
    fn mix64_bijective(x in any::<u64>()) {
        prop_assert_eq!(unmix64(mix64(x)), x);
    }

    /// Distinct keys never collide under a fixed seeded hash (bijection).
    #[test]
    fn seeded_hash_injective(seed in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let h = SeededHash::new(seed);
        prop_assert_ne!(h.hash(a), h.hash(b));
    }

    /// Hashing is a pure function of (seed, key).
    #[test]
    fn seeded_hash_deterministic(seed in any::<u64>(), key in any::<u64>()) {
        prop_assert_eq!(SeededHash::new(seed).hash(key), SeededHash::new(seed).hash(key));
    }

    /// unit_uniform always lands in (0, 1].
    #[test]
    fn unit_uniform_in_range(word in any::<u64>()) {
        let u = unit_uniform(word);
        prop_assert!(u > 0.0 && u <= 1.0);
    }

    /// Exponential ranks are finite and nonnegative for sane weights.
    #[test]
    fn exp_rank_finite(word in any::<u64>(), w in 1e-6f64..1e6) {
        let r = exp_rank(word, w);
        prop_assert!(r.is_finite() && r >= 0.0);
    }

    /// Rank ordering between two fixed words is monotone in weight:
    /// increasing my weight can only improve (reduce) my rank.
    #[test]
    fn exp_rank_monotone_in_weight(word in any::<u64>(), w in 1e-3f64..1e3) {
        prop_assert!(exp_rank(word, w * 2.0) <= exp_rank(word, w));
    }

    /// Family members are consistent with direct member construction.
    #[test]
    fn family_matches_members(k in 1usize..64, seed in any::<u64>(), key in any::<u64>()) {
        let fam = HashFamily::new(k, seed);
        let mut out = vec![0u64; k];
        fam.hash_all_into(key, &mut out);
        for (i, &word) in out.iter().enumerate() {
            prop_assert_eq!(word, SeededHash::member(seed, i as u64).hash(key));
        }
    }

    /// Tabulation hashing is deterministic and seed-sensitive.
    #[test]
    fn tabulation_deterministic(seed in any::<u64>(), key in any::<u64>()) {
        let h = TabulationHash::new(seed);
        prop_assert_eq!(h.hash(key), TabulationHash::new(seed).hash(key));
    }

    /// Byte hashing distinguishes a string from any strict prefix.
    #[test]
    fn bytes_prefix_sensitive(seed in any::<u64>(), mut v in proptest::collection::vec(any::<u8>(), 1..64)) {
        let h = SeededHash::new(seed);
        let full = h.hash_bytes(&v);
        v.pop();
        prop_assert_ne!(full, h.hash_bytes(&v));
    }
}
