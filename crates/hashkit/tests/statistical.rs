//! Statistical quality tests for the hash functions: uniformity
//! (chi-square over buckets), avalanche (bit-flip diffusion matrix), and
//! pairwise independence proxies. These are the empirical counterparts
//! of the independence assumptions the sketch accuracy theorems make.

use hashkit::{HashFamily, SeededHash, TabulationHash};

/// Chi-square statistic of hashing `n` sequential keys into `buckets`
/// equal ranges. Under uniformity the statistic is ≈ buckets − 1 with
/// std dev ≈ sqrt(2·(buckets−1)).
fn chi_square(hash: impl Fn(u64) -> u64, n: u64, buckets: usize) -> f64 {
    let mut counts = vec![0u64; buckets];
    let width = u64::MAX / buckets as u64 + 1;
    for key in 0..n {
        let h = hash(key);
        counts[(h / width) as usize] += 1;
    }
    let expected = n as f64 / buckets as f64;
    counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum()
}

/// Accepts a chi-square statistic within 5 standard deviations of its
/// mean — loose enough to never flake, tight enough to catch a broken
/// mixer (which lands orders of magnitude away).
fn assert_uniform(stat: f64, buckets: usize, label: &str) {
    let dof = (buckets - 1) as f64;
    let limit = dof + 5.0 * (2.0 * dof).sqrt();
    assert!(
        stat < limit,
        "{label}: chi-square {stat:.1} exceeds {limit:.1} (dof {dof})"
    );
}

#[test]
fn mixer_uniform_on_sequential_keys() {
    // Sequential small integers are the adversarial input for a weak
    // mixer: they differ only in low bits.
    let h = SeededHash::new(42);
    assert_uniform(chi_square(|k| h.hash(k), 200_000, 256), 256, "mixer");
}

#[test]
fn tabulation_uniform_on_sequential_keys() {
    let t = TabulationHash::new(42);
    assert_uniform(chi_square(|k| t.hash(k), 200_000, 256), 256, "tabulation");
}

#[test]
fn mixer_uniform_on_strided_keys() {
    // Strided keys (multiples of a power of two) stress multiplicative
    // mixing.
    let h = SeededHash::new(7);
    assert_uniform(
        chi_square(|k| h.hash(k << 12), 200_000, 256),
        256,
        "strided mixer",
    );
}

#[test]
fn avalanche_matrix_is_balanced() {
    // Flipping input bit i should flip each output bit with probability
    // ~1/2. Test the worst cell of the 64x64 matrix over a key sample.
    let h = SeededHash::new(3);
    let samples = 2_000u64;
    let mut worst: f64 = 0.5;
    for in_bit in 0..64 {
        let mut flip_counts = [0u32; 64];
        for s in 0..samples {
            let key = s.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let d = h.hash(key) ^ h.hash(key ^ (1 << in_bit));
            for (out_bit, count) in flip_counts.iter_mut().enumerate() {
                *count += ((d >> out_bit) & 1) as u32;
            }
        }
        for &c in &flip_counts {
            let p = f64::from(c) / samples as f64;
            if (p - 0.5).abs() > (worst - 0.5).abs() {
                worst = p;
            }
        }
    }
    assert!(
        (worst - 0.5).abs() < 0.08,
        "worst avalanche cell probability {worst} (want ~0.5)"
    );
}

#[test]
fn family_members_have_low_match_correlation() {
    // For MinHash, what matters is that distinct family members produce
    // near-independent orderings. Proxy: for random key pairs (a, b), the
    // events "h_i(a) < h_i(b)" should agree across members ~50%.
    let fam = HashFamily::new(64, 5);
    let pairs = 2_000u64;
    let mut agreements = 0u64;
    let mut total = 0u64;
    for p in 0..pairs {
        let a = p * 2 + 1;
        let b = p * 2 + 2;
        let first = fam.member(0).hash(a) < fam.member(0).hash(b);
        for i in 1..8 {
            let other = fam.member(i).hash(a) < fam.member(i).hash(b);
            agreements += u64::from(first == other);
            total += 1;
        }
    }
    let rate = agreements as f64 / total as f64;
    assert!(
        (rate - 0.5).abs() < 0.03,
        "cross-member ordering agreement {rate} (want ~0.5)"
    );
}

#[test]
fn min_over_set_is_uniformly_placed() {
    // The argmin of a random 100-key set under different members should
    // be near-uniform over the set: no member systematically prefers
    // particular keys.
    let fam = HashFamily::new(256, 9);
    let keys: Vec<u64> = (1000..1100).collect();
    let mut win_counts = vec![0u32; keys.len()];
    for i in 0..fam.len() {
        let h = fam.member(i);
        let winner = keys
            .iter()
            .enumerate()
            .min_by_key(|(_, &k)| h.hash(k))
            .map(|(idx, _)| idx)
            .unwrap();
        win_counts[winner] += 1;
    }
    // 256 trials over 100 candidates: no key should win implausibly often.
    let max_wins = *win_counts.iter().max().unwrap();
    assert!(
        max_wins <= 12,
        "a key won the min {max_wins}/256 times (expected ~2.5)"
    );
}
