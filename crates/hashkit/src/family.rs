//! Seeded hash functions and independent families.
//!
//! A [`SeededHash`] is one member `h_i` of a family; a [`HashFamily`] owns
//! `k` of them with seeds derived from a single base seed via the
//! golden-gamma schedule. The sketch layer evaluates the whole family on
//! every stream edge, so [`SeededHash::hash`] is a two-multiply mixer with
//! no memory traffic.

use crate::mix::{mix64, mix64_v3, seed_schedule};

/// One seeded 64-bit hash function over `u64` keys.
///
/// `hash(key)` is a bijection of `key` for a fixed seed (composition of
/// bijections), so distinct keys never collide under the *same* function —
/// exactly the property MinHash needs to treat slot values as proxies for
/// neighbor identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeededHash {
    seed: u64,
}

impl SeededHash {
    /// Creates a hash function from an explicit seed word.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // Pre-mix so structured seeds (0, 1, 2, ...) behave like random ones.
        Self {
            seed: mix64_v3(seed ^ 0x5851_F42D_4C95_7F2D),
        }
    }

    /// The `i`-th member of the family rooted at `base_seed`.
    #[must_use]
    pub fn member(base_seed: u64, i: u64) -> Self {
        Self {
            seed: seed_schedule(base_seed, i),
        }
    }

    /// Hashes a 64-bit key to a uniform 64-bit word.
    #[inline]
    #[must_use]
    pub fn hash(&self, key: u64) -> u64 {
        mix64(key ^ self.seed)
    }

    /// Hashes an arbitrary byte string (FNV-style fold, then finalize).
    ///
    /// Off the hot path; used when streams carry string vertex labels.
    #[must_use]
    pub fn hash_bytes(&self, bytes: &[u8]) -> u64 {
        let mut acc = self.seed ^ 0xCBF2_9CE4_8422_2325;
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            acc = mix64(acc ^ u64::from_le_bytes(word)).wrapping_add(0x100_0000_01B3);
        }
        mix64(acc ^ (bytes.len() as u64))
    }

    /// The seed word backing this function (post pre-mix).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// A family of `k` independently seeded hash functions.
///
/// ```
/// use hashkit::HashFamily;
/// let fam = HashFamily::new(128, 0xC0FFEE);
/// assert_eq!(fam.len(), 128);
/// // Members disagree on the same key:
/// let h0 = fam.member(0).hash(7);
/// let h1 = fam.member(1).hash(7);
/// assert_ne!(h0, h1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashFamily {
    members: Vec<SeededHash>,
    base_seed: u64,
}

impl HashFamily {
    /// Builds `k` member functions from `base_seed`.
    ///
    /// # Panics
    /// Panics if `k == 0`; an empty family cannot sketch anything and is
    /// always a configuration bug.
    #[must_use]
    pub fn new(k: usize, base_seed: u64) -> Self {
        assert!(k > 0, "hash family must have at least one member");
        let members = (0..k as u64)
            .map(|i| SeededHash::member(base_seed, i))
            .collect();
        Self { members, base_seed }
    }

    /// Number of member functions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the family is empty (never true for constructed families).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The `i`-th member.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    #[must_use]
    pub fn member(&self, i: usize) -> SeededHash {
        self.members[i]
    }

    /// The base seed the family was derived from.
    #[must_use]
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Evaluates every member on `key`, writing into `out`.
    ///
    /// This is the per-edge hot path: `out` is a caller-owned scratch
    /// buffer so no allocation happens per edge.
    ///
    /// # Panics
    /// Panics if `out.len() != self.len()`.
    #[inline]
    pub fn hash_all_into(&self, key: u64, out: &mut [u64]) {
        assert_eq!(
            out.len(),
            self.members.len(),
            "scratch buffer size mismatch"
        );
        for (slot, h) in out.iter_mut().zip(&self.members) {
            *slot = h.hash(key);
        }
    }

    /// Iterates over the member functions.
    pub fn iter(&self) -> impl Iterator<Item = &SeededHash> {
        self.members.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_function() {
        let a = SeededHash::new(99);
        let b = SeededHash::new(99);
        for k in 0..1000 {
            assert_eq!(a.hash(k), b.hash(k));
        }
    }

    #[test]
    fn different_seeds_differ_quickly() {
        let a = SeededHash::new(1);
        let b = SeededHash::new(2);
        let agree = (0..10_000u64).filter(|&k| a.hash(k) == b.hash(k)).count();
        assert_eq!(agree, 0, "structured seeds must not alias");
    }

    #[test]
    fn hash_is_injective_on_small_ids() {
        let h = SeededHash::new(0);
        let mut seen = std::collections::HashSet::new();
        for k in 0..100_000u64 {
            assert!(seen.insert(h.hash(k)), "collision at key {k}");
        }
    }

    #[test]
    fn hash_bytes_distinguishes_length_extension() {
        let h = SeededHash::new(5);
        assert_ne!(h.hash_bytes(b"ab"), h.hash_bytes(b"ab\0"));
        assert_ne!(h.hash_bytes(b""), h.hash_bytes(b"\0"));
        assert_eq!(h.hash_bytes(b"vertex-17"), h.hash_bytes(b"vertex-17"));
    }

    #[test]
    fn family_members_are_pairwise_distinct() {
        let fam = HashFamily::new(256, 7);
        for i in 0..fam.len() {
            for j in (i + 1)..fam.len() {
                assert_ne!(fam.member(i).seed(), fam.member(j).seed());
            }
        }
    }

    #[test]
    fn hash_all_into_matches_members() {
        let fam = HashFamily::new(16, 3);
        let mut out = vec![0u64; 16];
        fam.hash_all_into(12345, &mut out);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, fam.member(i).hash(12345));
        }
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_family_rejected() {
        let _ = HashFamily::new(0, 0);
    }

    #[test]
    fn family_min_is_uniform_ish() {
        // The min over a 1000-key set should fall near u64::MAX/1000 on
        // average; sanity-check the order of magnitude over 64 functions.
        let fam = HashFamily::new(64, 11);
        let mut total = 0u128;
        for h in fam.iter() {
            let min = (0..1000u64).map(|k| h.hash(k)).min().unwrap();
            total += u128::from(min);
        }
        let avg = (total / 64) as f64;
        let expected = (u64::MAX as f64) / 1001.0;
        assert!(
            avg > expected / 4.0 && avg < expected * 4.0,
            "min statistic off: avg {avg:e}, expected ~{expected:e}"
        );
    }
}
