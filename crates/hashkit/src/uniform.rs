//! Deterministic uniform and exponential draws from hash words.
//!
//! Weighted (vertex-biased) MinHash ranks a vertex `w` under function `i`
//! by an exponential variate `Exp(λ = weight(w))` derived from the hash
//! word `h_i(w)`. The vertex with the *minimum* rank in a set is then a
//! sample drawn with probability proportional to its weight — the
//! "exponential clocks" view of weighted sampling.

/// Maps a 64-bit hash word to a uniform double in the **open** interval
/// `(0, 1]`.
///
/// The open lower bound matters: `ln(0)` is `-inf`, and a zero would turn
/// an exponential rank into `+inf`/NaN. We use the top 53 bits (the full
/// mantissa width) and offset by one ULP-equivalent so the result is never
/// exactly zero.
#[inline]
#[must_use]
pub fn unit_uniform(word: u64) -> f64 {
    // (word >> 11) is in [0, 2^53); +1 shifts to (0, 2^53].
    ((word >> 11) as f64 + 1.0) * (1.0 / 9_007_199_254_740_992.0)
}

/// A standard exponential variate `Exp(1)` derived from a hash word:
/// `-ln(U)` with `U` uniform on `(0, 1]`. Always finite and non-negative.
#[inline]
#[must_use]
pub fn unit_exponential(word: u64) -> f64 {
    -unit_uniform(word).ln()
}

/// An exponential rank with rate `weight`: `Exp(weight) = Exp(1)/weight`.
///
/// Smaller rank ⇔ more likely to win the min — so a vertex with twice the
/// weight is twice as likely to be the sampled minimum. `weight` must be
/// strictly positive and finite.
///
/// # Panics
/// Panics (debug builds) if `weight` is not strictly positive and finite.
#[inline]
#[must_use]
pub fn exp_rank(word: u64, weight: f64) -> f64 {
    debug_assert!(
        weight.is_finite() && weight > 0.0,
        "exp_rank weight must be positive and finite, got {weight}"
    );
    unit_exponential(word) / weight
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::SeededHash;

    #[test]
    fn unit_uniform_stays_in_half_open_interval() {
        for &w in &[0u64, 1, u64::MAX, u64::MAX - 1, 1 << 11, (1 << 11) - 1] {
            let u = unit_uniform(w);
            assert!(u > 0.0 && u <= 1.0, "out of range: {u} from {w:#x}");
        }
    }

    #[test]
    fn unit_uniform_mean_is_half() {
        let h = SeededHash::new(21);
        let n = 100_000u64;
        let sum: f64 = (0..n).map(|k| unit_uniform(h.hash(k))).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn unit_exponential_is_finite_nonnegative() {
        for &w in &[0u64, 1, u64::MAX, 42] {
            let e = unit_exponential(w);
            assert!(e.is_finite() && e >= 0.0, "bad variate {e} from {w:#x}");
        }
    }

    #[test]
    fn unit_exponential_mean_is_one() {
        let h = SeededHash::new(22);
        let n = 100_000u64;
        let sum: f64 = (0..n).map(|k| unit_exponential(h.hash(k))).sum();
        let mean = sum / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn exp_rank_scales_inversely_with_weight() {
        let e = unit_exponential(12345);
        assert!((exp_rank(12345, 2.0) - e / 2.0).abs() < 1e-12);
        assert!((exp_rank(12345, 0.5) - e * 2.0).abs() < 1e-12);
    }

    #[test]
    fn heavier_vertices_win_proportionally() {
        // Two "vertices" with weights 3 and 1: vertex A should hold the
        // minimum rank ~75% of the time across independent functions.
        let n = 50_000u64;
        let mut a_wins = 0u64;
        for seed in 0..n {
            let ha = SeededHash::member(seed, 0).hash(1001);
            let hb = SeededHash::member(seed, 0).hash(2002);
            if exp_rank(ha, 3.0) < exp_rank(hb, 1.0) {
                a_wins += 1;
            }
        }
        let frac = a_wins as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "win fraction {frac}");
    }
}
