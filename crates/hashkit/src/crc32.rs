//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) for on-disk
//! record framing.
//!
//! The durability layer checksums every WAL record and snapshot payload
//! so recovery can tell bit rot from a torn write. CRC-32 is the right
//! tool for that job: it detects *every* single-bit and double-bit error
//! and any burst error up to 32 bits, which covers the realistic
//! single-sector / single-cell corruption modes a scrub is hunting. It is
//! not a cryptographic digest — nothing here defends against an
//! adversary, only against hardware.
//!
//! Implemented from scratch (one 256-entry table, byte-at-a-time) to
//! honor the workspace's no-external-dependencies constraint. The table
//! is built in a `const fn`, so the whole thing is allocation-free and
//! usable from any context.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// One table entry per byte value: the CRC of that single byte.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (IEEE: init `!0`, final XOR `!0`).
///
/// ```
/// use hashkit::crc32;
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926); // the standard check value
/// ```
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    !update(!0, bytes)
}

/// A streaming CRC-32 computation over multiple chunks.
///
/// ```
/// use hashkit::crc32::{crc32, Crc32};
/// let mut digest = Crc32::new();
/// digest.update(b"1234");
/// digest.update(b"56789");
/// assert_eq!(digest.finish(), crc32(b"123456789"));
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh digest.
    #[must_use]
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Folds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        self.state = update(self.state, bytes);
    }

    /// The CRC of everything folded in so far.
    #[must_use]
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

fn update(mut state: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        state = (state >> 8) ^ TABLE[((state ^ u32::from(b)) & 0xFF) as usize];
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_vectors() {
        // The check value every CRC-32 catalogue lists, plus a few others
        // computed with independent implementations.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"E 42 7 9 and some arbitrary payload bytes \x00\xff";
        for split in 0..data.len() {
            let mut d = Crc32::new();
            d.update(&data[..split]);
            d.update(&data[split..]);
            assert_eq!(d.finish(), crc32(data), "split at {split}");
        }
    }

    #[test]
    fn every_single_bit_flip_changes_the_crc() {
        // The defining guarantee the WAL framing relies on: no single-bit
        // flip anywhere in a record can leave the CRC unchanged.
        let record = b"E 18446744073709551615 42 99";
        let baseline = crc32(record);
        let mut copy = record.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(crc32(&copy), baseline, "flip at {byte}:{bit} undetected");
                copy[byte] ^= 1 << bit;
            }
        }
        assert_eq!(crc32(&copy), baseline, "copy must be restored");
    }

    #[test]
    fn distinct_prefixes_have_distinct_digests() {
        // Sanity: appending a byte always changes the digest.
        let mut prev = crc32(b"");
        let mut buf = Vec::new();
        for b in 0..=255u8 {
            buf.push(b);
            let next = crc32(&buf);
            assert_ne!(next, prev);
            prev = next;
        }
    }
}
