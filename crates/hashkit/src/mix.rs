//! Single-word 64-bit mixers (bijective finalizers).
//!
//! These are the workhorses of the crate: every seeded hash evaluation is
//! one or two rounds of a mixer over `key ^ f(seed)`. All mixers here are
//! *bijections* on `u64`, which matters for sketching: a bijection cannot
//! introduce collisions between distinct vertex ids, so MinHash ties can
//! only come from genuinely equal neighbors (up to the negligible
//! birthday-bound collisions across different hash functions).

/// Golden-ratio increment used by SplitMix64-style sequences.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 finalizer (Stafford "Mix13" variant).
///
/// A bijective avalanche function: every input bit flips each output bit
/// with probability ≈ 1/2. Used as the default mixer throughout.
///
/// ```
/// use hashkit::mix64;
/// assert_ne!(mix64(1), mix64(2));
/// assert_eq!(mix64(42), mix64(42));
/// ```
#[inline]
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Pelle Evensen's `moremur` mixer — a stronger (slightly slower)
/// alternative finalizer with better low-entropy-input behaviour.
///
/// Exposed so the family layer can double-round small keys cheaply.
#[inline]
#[must_use]
pub fn mix64_v3(mut z: u64) -> u64 {
    z = (z ^ (z >> 27)).wrapping_mul(0x3C79_AC49_2BA7_B653);
    z = (z ^ (z >> 33)).wrapping_mul(0x1C69_B3F7_4AC4_AE35);
    z ^ (z >> 27)
}

/// Inverse of [`mix64`].
///
/// Exists to make the bijectivity claim testable and to support debugging
/// (recovering the pre-image of a sketch slot). Not used on any hot path.
#[must_use]
pub fn unmix64(mut z: u64) -> u64 {
    z = unxorshift(z, 31);
    z = z.wrapping_mul(inverse_odd(0x94D0_49BB_1331_11EB));
    z = unxorshift(z, 27);
    z = z.wrapping_mul(inverse_odd(0xBF58_476D_1CE4_E5B9));
    unxorshift(z, 30)
}

/// Inverts `x -> x ^ (x >> shift)` for `1 <= shift < 64`.
#[inline]
fn unxorshift(y: u64, shift: u32) -> u64 {
    // y = x ^ (x >> k)  =>  x = y ^ (x >> k). Iterating from x0 = y fixes
    // the top k bits first and converges in <= ceil(64/k) steps.
    let mut x = y;
    for _ in 0..(64 / shift + 1) {
        x = y ^ (x >> shift);
    }
    x
}

/// Multiplicative inverse of an odd 64-bit constant (Newton iteration).
#[inline]
fn inverse_odd(a: u64) -> u64 {
    // x_{n+1} = x_n * (2 - a * x_n) doubles correct low bits each step.
    let mut x: u64 = a; // a is its own inverse mod 2^3 for odd a
    for _ in 0..6 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
    }
    x
}

/// Derives the `i`-th seed word from a base seed, SplitMix64-style.
///
/// The schedule walks the golden-gamma Weyl sequence and finalizes each
/// step, giving well-separated, reproducible per-function seeds.
#[inline]
#[must_use]
pub fn seed_schedule(base: u64, i: u64) -> u64 {
    mix64(base.wrapping_add(GOLDEN_GAMMA.wrapping_mul(i.wrapping_add(1))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic() {
        assert_eq!(mix64(0xDEAD_BEEF), mix64(0xDEAD_BEEF));
    }

    #[test]
    fn mix64_zero_fixed_point_is_known_and_contained() {
        // mix64(0) == 0 is a known fixed point of the SplitMix64
        // finalizer (and of any xorshift-multiply chain). The seeded
        // layer XORs a pre-mixed seed before finalizing, so a zero *key*
        // never reaches the mixer as a zero *input* in practice. Document
        // the fixed point here so nobody "fixes" it silently.
        assert_eq!(mix64(0), 0);
        assert_eq!(mix64_v3(0), 0);
        // The containment: a seeded hash of key 0 is well mixed.
        let h = crate::family::SeededHash::new(0);
        assert_ne!(h.hash(0), 0);
        assert!(h.hash(0).count_ones() >= 16);
    }

    #[test]
    fn unmix64_inverts_mix64() {
        for k in [0u64, 1, 2, 3, 42, u64::MAX, 0x0123_4567_89AB_CDEF] {
            assert_eq!(unmix64(mix64(k)), k, "round trip failed for {k}");
        }
        // and a dense small-integer range, the common vertex-id shape
        for k in 0..10_000u64 {
            assert_eq!(unmix64(mix64(k)), k);
        }
    }

    #[test]
    fn unxorshift_inverts_all_shifts() {
        for shift in 1..64u32 {
            for k in [0u64, 1, 0xFFFF_FFFF, u64::MAX, 0xA5A5_5A5A_0F0F_F0F0] {
                let y = k ^ (k >> shift);
                assert_eq!(unxorshift(y, shift), k, "shift {shift} key {k}");
            }
        }
    }

    #[test]
    fn inverse_odd_is_inverse() {
        for a in [
            1u64,
            3,
            0xBF58_476D_1CE4_E5B9,
            0x94D0_49BB_1331_11EB,
            u64::MAX,
        ] {
            assert_eq!(a.wrapping_mul(inverse_odd(a)), 1, "constant {a:#x}");
        }
    }

    #[test]
    fn seed_schedule_produces_distinct_seeds() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096 {
            assert!(seen.insert(seed_schedule(7, i)), "collision at {i}");
        }
    }

    #[test]
    fn mixers_avalanche_on_adjacent_inputs() {
        // Flipping one low input bit should flip ~32 output bits; require
        // at least 16 to catch gross regressions without flakiness.
        for k in 0..1000u64 {
            let d = (mix64(k) ^ mix64(k + 1)).count_ones();
            assert!(d >= 16, "weak avalanche at {k}: {d} bits");
            let d3 = (mix64_v3(k) ^ mix64_v3(k + 1)).count_ones();
            assert!(d3 >= 16, "weak v3 avalanche at {k}: {d3} bits");
        }
    }
}
