//! # hashkit
//!
//! Hashing primitives for streaming sketches, built from scratch so the
//! whole stack is auditable and deterministic across platforms.
//!
//! The sketching layer above needs three things from a hash function:
//!
//! 1. **Seeded families** — `k` independent hash functions `h_1 … h_k`
//!    over vertex identifiers, cheap enough to evaluate all `k` on every
//!    stream edge ([`HashFamily`], [`SeededHash`]).
//! 2. **Strong single-word mixing** — vertex ids are small integers with
//!    almost no entropy spread; a finalizer-quality mixer turns them into
//!    uniform 64-bit words ([`mix`]).
//! 3. **Uniform and exponential draws** — weighted (vertex-biased) MinHash
//!    needs `Exp(λ)` ranks derived deterministically from `(seed, key)`
//!    pairs ([`uniform`]).
//!
//! [`tabulation`] provides 3-independent tabulation hashing as an
//! alternative family with stronger independence guarantees; the sketch
//! layer exposes it as an opt-in backend and the benchmark suite compares
//! both.
//!
//! [`crc32()`] is a different animal: not a sketch hash but an error
//! -detecting code, used by the storage layer to frame WAL records and
//! snapshot payloads so recovery can prove what it reads.
//!
//! ## Determinism
//!
//! Every function here is a pure function of `(seed, key)`. Nothing reads
//! process-global state, so sketches built on two machines from the same
//! stream are bit-identical — a requirement for the mergeable-sketch path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc32;
pub mod family;
pub mod mix;
pub mod tabulation;
pub mod uniform;

pub use crc32::crc32;
pub use family::{HashFamily, SeededHash};
pub use mix::{mix64, mix64_v3, unmix64};
pub use tabulation::TabulationHash;
pub use uniform::{exp_rank, unit_exponential, unit_uniform};
