//! Simple tabulation hashing.
//!
//! Tabulation hashing splits a 64-bit key into 8 bytes and XORs together
//! one random table entry per byte: `h(x) = T_0[x_0] ^ … ^ T_7[x_7]`.
//! It is 3-independent, and Pătraşcu–Thorup showed it behaves like a fully
//! random function for MinHash-style applications despite the limited
//! formal independence. We ship it as the "paranoid" backend: slower than
//! the mixer family (eight table lookups vs. two multiplies) but with a
//! provable independence story for the accuracy theorems.

use crate::mix::seed_schedule;

const BYTES: usize = 8;
const TABLE: usize = 256;

/// A simple-tabulation hash function over `u64` keys.
#[derive(Clone)]
pub struct TabulationHash {
    tables: Box<[[u64; TABLE]; BYTES]>,
}

impl std::fmt::Debug for TabulationHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TabulationHash")
            .field("fingerprint", &self.tables[0][0])
            .finish()
    }
}

impl TabulationHash {
    /// Fills the 8×256 tables deterministically from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut tables = Box::new([[0u64; TABLE]; BYTES]);
        let mut ctr = 0u64;
        for table in tables.iter_mut() {
            for entry in table.iter_mut() {
                *entry = seed_schedule(seed, ctr);
                ctr += 1;
            }
        }
        Self { tables }
    }

    /// Hashes a 64-bit key.
    #[inline]
    #[must_use]
    pub fn hash(&self, key: u64) -> u64 {
        let b = key.to_le_bytes();
        let mut acc = 0u64;
        for (i, table) in self.tables.iter().enumerate() {
            acc ^= table[b[i] as usize];
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = TabulationHash::new(4);
        let b = TabulationHash::new(4);
        for k in 0..1000 {
            assert_eq!(a.hash(k), b.hash(k));
        }
    }

    #[test]
    fn seeds_give_different_functions() {
        let a = TabulationHash::new(1);
        let b = TabulationHash::new(2);
        let agree = (0..10_000u64).filter(|&k| a.hash(k) == b.hash(k)).count();
        assert!(agree < 3, "near-identical tables: {agree} agreements");
    }

    #[test]
    fn no_collisions_on_dense_ids() {
        let h = TabulationHash::new(9);
        let mut seen = std::collections::HashSet::new();
        let mut collisions = 0;
        for k in 0..100_000u64 {
            if !seen.insert(h.hash(k)) {
                collisions += 1;
            }
        }
        // Birthday bound: expected collisions ~ 1e10/2^64 ≈ 0.
        assert_eq!(collisions, 0);
    }

    #[test]
    fn single_byte_change_changes_hash() {
        let h = TabulationHash::new(3);
        for k in 0..256u64 {
            assert_ne!(h.hash(k), h.hash(k | 1 << 8));
        }
    }

    #[test]
    fn output_bits_balanced() {
        // Each output bit should be ~50% ones over many keys.
        let h = TabulationHash::new(77);
        let n = 20_000u64;
        let mut counts = [0u32; 64];
        for k in 0..n {
            let v = h.hash(k);
            for (bit, count) in counts.iter_mut().enumerate() {
                *count += ((v >> bit) & 1) as u32;
            }
        }
        for (bit, &c) in counts.iter().enumerate() {
            let frac = f64::from(c) / n as f64;
            assert!((0.45..=0.55).contains(&frac), "bit {bit} biased: {frac}");
        }
    }
}
