//! `streamlink` — the command-line interface (library half; the binary
//! in `main.rs` is a thin wrapper so integration tests can drive the
//! full command pipeline in-process).
//!
//! Subcommands:
//!
//! * `generate`  — materialize a simulated dataset to CSV or binary.
//! * `stats`     — one-pass stream statistics of an edge file.
//! * `ingest`    — stream a file into a sketch store; save a snapshot.
//! * `query`     — answer measure queries from a snapshot.
//! * `evaluate`  — temporal link-prediction evaluation on a dataset.
//! * `top`       — top-k most similar vertices via the LSH index.
//! * `serve`     — TCP line-protocol query server over a snapshot.
//! * `convert`   — transcode edge files between csv/bin/compact.
//! * `recommend` — top-k recommendations via LSH retrieval + reranking.
//! * `scrub`     — verify (and repair) a data directory's checksummed
//!   snapshots and WAL segments.
//! * `loadgen`   — open-loop, coordinated-omission-safe load generator
//!   against a live server; exit code is the p99 SLO verdict.
//! * `cluster-events` — merge per-node `events.jsonl` journals into
//!   one causal cluster timeline and check the at-most-one-primary-
//!   per-epoch invariant (post-mortem reconstruction).
//!
//! Argument parsing is hand-rolled (`args.rs`) to keep the dependency
//! set at the workspace baseline.

pub mod args;
pub mod commands;
pub mod server;

/// The version baked into this build: the crate version, suffixed with
/// `git describe` output when the build script found a git checkout
/// (see `build.rs`). Surfaced by `STATS`, `/healthz`, the
/// `streamlink_build_info` Prometheus gauge, and `loadgen` reports.
#[must_use]
pub fn build_version() -> &'static str {
    match option_env!("STREAMLINK_BUILD_VERSION") {
        Some(stamped) => stamped,
        None => env!("CARGO_PKG_VERSION"),
    }
}

/// Dispatches one CLI invocation (argv without the program name) and
/// returns the process exit code. Most commands exit 0 on success;
/// `scrub` uses the full 0/1/2 range (clean / repaired / data loss).
///
/// # Errors
/// Returns a human-readable message for unknown subcommands, bad flags,
/// or any command failure.
pub fn run(argv: &[String]) -> Result<u8, String> {
    let Some(command) = argv.first() else {
        print_usage();
        return Err("no subcommand given".into());
    };
    let rest = &argv[1..];
    let ok = |()| 0u8;
    match command.as_str() {
        "generate" => commands::generate::run(rest).map(ok),
        "stats" => commands::stats::run(rest).map(ok),
        "ingest" => commands::ingest::run(rest).map(ok),
        "query" => commands::query::run(rest).map(ok),
        "evaluate" => commands::evaluate::run(rest).map(ok),
        "top" => commands::top::run(rest).map(ok),
        "serve" => commands::serve::run(rest).map(ok),
        "convert" => commands::convert::run(rest).map(ok),
        "recommend" => commands::recommend::run(rest).map(ok),
        "scrub" => commands::scrub::run(rest),
        "loadgen" => commands::loadgen::run(rest),
        "cluster-events" => commands::cluster_events::run(rest),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(0)
        }
        other => Err(format!(
            "unknown subcommand {other:?}; try `streamlink help`"
        )),
    }
}

fn print_usage() {
    eprintln!(
        "streamlink — sketch-based link prediction in graph streams

USAGE:
  streamlink generate --dataset <dblp|flickr|wiki|youtube|smallworld> [--scale small|standard|large]
                      --out <file> [--format csv|bin|compact]
  streamlink stats    --input <file>
  streamlink ingest   --input <file> [--slots N] [--seed S] --snapshot <file.json>
  streamlink query    --snapshot <file.json> --measure <jaccard|cn|aa|ra|pa> --pair U:V [--pair U:V ...]
  streamlink evaluate --dataset <key> [--scale ...] [--slots N] [--fraction F]
  streamlink top      --snapshot <file.json> --vertex V [--k N] [--bands B] [--rows R]
  streamlink serve    [--data-dir DIR | --snapshot <file.json>] [--addr HOST:PORT] [--slots N]
                      [--fsync always|interval|never] [--max-conns N] [--idle-timeout-ms MS]
                      [--drain-secs S] [--snapshot-every-secs S] [--snapshot-every-edges N]
                      [--snapshot-keep K] [--slow-op-ms MS] [--slow-op-log PATH]
                      [--audit-secs S] [--audit-pairs K] [--http-addr HOST:PORT]
  streamlink scrub    --data-dir DIR [--repair] [--metrics-out <file.json>]
  streamlink loadgen  --addr HOST:PORT [--rate OPS_PER_SEC] [--duration-secs S] [--ops N]
                      [--conns N] [--seed S] [--mix I/J/D/E] [--zipf S] [--vertices N]
                      [--slo-p99-ms MS] [--report <file.json>]   (exit 1 on SLO breach)
  streamlink cluster-events --merge <dir-or-journal> [--merge ...]   (exit 1 on a
                      two-primaries-in-one-epoch violation in the merged timeline)

Batch commands (ingest/query/evaluate/scrub) also accept --metrics-out <file.json>
and --trace-out <file.json> to export the metrics registry and trace ring.
  streamlink convert  --input <file> --out <file> [--format csv|bin|compact]
  streamlink recommend --snapshot <file.json> --vertex V [--k N] [--measure aa] [--bands B] [--rows R]"
    );
}
