//! `streamlink convert` — transcode edge-list files between formats.

use graphstream::io;

use crate::args::Flags;
use crate::commands::load_stream;

pub fn run(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv)?;
    let input = flags.require("input")?;
    let out = flags.require("out")?;
    let format = flags.get("format").unwrap_or("compact");

    let stream = load_stream(input)?;
    match format {
        "csv" => {
            let file =
                std::fs::File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
            io::write_csv(stream.as_slice(), std::io::BufWriter::new(file))
                .map_err(|e| format!("cannot write {out}: {e}"))?;
        }
        "bin" => {
            std::fs::write(out, io::encode_binary(stream.as_slice()))
                .map_err(|e| format!("cannot write {out}: {e}"))?;
        }
        "compact" => {
            std::fs::write(out, io::encode_compact(stream.as_slice()))
                .map_err(|e| format!("cannot write {out}: {e}"))?;
        }
        other => return Err(format!("unknown format {other:?} (csv|bin|compact)")),
    }
    let in_size = std::fs::metadata(input).map(|m| m.len()).unwrap_or(0);
    let out_size = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    println!(
        "converted {} edges: {input} ({in_size} B) -> {out} ({out_size} B, {format})",
        stream.len()
    );
    Ok(())
}
