//! `streamlink query` — answer measure queries from a snapshot.

use graphstream::VertexId;
use linkpred::Measure;
use streamlink_core::snapshot::StoreSnapshot;

use crate::args::Flags;
use crate::commands::{write_metrics_out, write_trace_out};

pub fn run(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv)?;
    let snapshot_path = flags.require("snapshot")?;
    let measure = Measure::parse(flags.require("measure")?)
        .ok_or_else(|| "unknown measure (jaccard|cn|aa|ra|pa)".to_string())?;
    let pairs = flags.get_all("pair");
    if pairs.is_empty() {
        return Err("at least one --pair U:V is required".into());
    }

    let json = std::fs::read_to_string(snapshot_path)
        .map_err(|e| format!("cannot read {snapshot_path}: {e}"))?;
    let snap: StoreSnapshot =
        serde_json::from_str(&json).map_err(|e| format!("bad snapshot: {e}"))?;
    let store = snap.restore();

    for raw in pairs {
        let (u, v) = parse_pair(raw)?;
        // One trace op per pair so `--trace-out` shows the per-query
        // estimator breakdown, same as a served cmd.query span.
        let t = streamlink_core::trace::op("cmd.query");
        t.note_degree(store.degree(u).max(store.degree(v)));
        let score = match measure {
            Measure::Jaccard => store.jaccard(u, v),
            Measure::CommonNeighbors => store.common_neighbors(u, v),
            Measure::AdamicAdar => store.adamic_adar(u, v),
            Measure::ResourceAllocation => store.resource_allocation(u, v),
            Measure::PreferentialAttachment => store.preferential_attachment(u, v),
            Measure::Cosine => store.cosine(u, v),
            Measure::Overlap => store.overlap(u, v),
        };
        drop(t);
        match score {
            Some(s) => println!("{} {}:{} {:.6}", measure.key(), u.0, v.0, s),
            None => println!("{} {}:{} unseen", measure.key(), u.0, v.0),
        }
    }
    write_metrics_out(&flags)?;
    write_trace_out(&flags)?;
    Ok(())
}

fn parse_pair(raw: &str) -> Result<(VertexId, VertexId), String> {
    let (a, b) = raw
        .split_once(':')
        .ok_or_else(|| format!("bad pair {raw:?}, expected U:V"))?;
    let parse = |s: &str| {
        s.trim()
            .parse::<u64>()
            .map(VertexId)
            .map_err(|e| format!("bad vertex id {s:?} in pair {raw:?}: {e}"))
    };
    Ok((parse(a)?, parse(b)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_pair_accepts_colon_form() {
        assert_eq!(parse_pair("3:9").unwrap(), (VertexId(3), VertexId(9)));
        assert_eq!(parse_pair(" 3 : 9 ").unwrap(), (VertexId(3), VertexId(9)));
    }

    #[test]
    fn parse_pair_rejects_garbage() {
        assert!(parse_pair("39").is_err());
        assert!(parse_pair("a:b").is_err());
        assert!(parse_pair("1:").is_err());
    }
}
