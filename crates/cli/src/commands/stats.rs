//! `streamlink stats` — one-pass statistics of an edge file.

use graphstream::StreamStats;

use crate::args::Flags;
use crate::commands::load_stream;

pub fn run(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv)?;
    let input = flags.require("input")?;
    let stream = load_stream(input)?;
    let stats = StreamStats::from_edges(stream.as_slice().iter().copied());
    let summary = stats.summary();
    let json = serde_json::to_string_pretty(&summary)
        .map_err(|e| format!("cannot serialize summary: {e}"))?;
    println!("{json}");
    let pct = stats.degree_percentiles(&[0.5, 0.9, 0.99]);
    if let [p50, p90, p99] = pct.as_slice() {
        println!("degree percentiles: p50={p50} p90={p90} p99={p99}");
    }
    let bins = stats.degree_histogram_log2();
    let histogram: Vec<String> = bins
        .iter()
        .enumerate()
        .map(|(i, c)| format!("[2^{i}]={c}"))
        .collect();
    println!("degree histogram (log2 bins): {}", histogram.join(" "));
    Ok(())
}
