//! `streamlink cluster-events` — post-mortem timeline reconstruction.
//!
//! Every cluster node appends its elections, votes, promotions,
//! fences, handoffs, and resyncs to an on-disk `events.jsonl` (schema
//! `streamlink.event.v1`, one rotated generation at `events.jsonl.1`).
//! After an incident the journals of the surviving nodes are copied
//! side by side and merged here into one causally-ordered cluster
//! timeline:
//!
//! ```text
//! streamlink cluster-events --merge node-a/ --merge node-b/ --merge node-c/
//! ```
//!
//! Each `--merge` argument is a node's data directory (or a direct
//! path to a journal file). The merged timeline prints to stdout one
//! event per line, oldest first, and the process exit code is the
//! verdict: `0` when the merged history satisfies the at-most-one-
//! primary-per-epoch invariant, `1` when it does not — so the check
//! slots into CI and incident tooling without parsing any output.

use std::path::{Path, PathBuf};

use streamlink_core::events::{self, ClusterEvent};
use streamlink_core::trace::rotated_path;

use crate::args::Flags;

/// Entry point for `streamlink cluster-events`. Returns the process
/// exit code (0 = invariant holds, 1 = violation found).
///
/// # Errors
/// Fails on unknown flags, a missing `--merge`, or a directory with no
/// readable journal — before any verdict is attempted.
pub fn run(argv: &[String]) -> Result<u8, String> {
    let flags = Flags::parse(argv)?;
    let sources = flags.get_all("merge");
    if sources.is_empty() {
        return Err("missing required flag --merge <dir-or-journal> (repeatable)".into());
    }
    let mut journals = Vec::with_capacity(sources.len());
    let mut skipped = 0usize;
    for source in sources {
        let (journal, bad) = load_journal(Path::new(source))?;
        skipped += bad;
        journals.push(journal);
    }
    let merged = events::merge(&journals);
    for event in &merged {
        println!("{}", event.render_line());
    }
    if skipped > 0 {
        eprintln!("warning: skipped {skipped} unparseable journal line(s)");
    }
    match events::check_single_primary(&merged) {
        Ok(()) => {
            eprintln!(
                "ok: {} events from {} node(s); at most one primary per epoch",
                merged.len(),
                journals.len()
            );
            Ok(0)
        }
        Err(violation) => {
            eprintln!("VIOLATION: {violation}");
            Ok(1)
        }
    }
}

/// Loads one node's journal: a direct file path, or a data directory
/// holding `events.jsonl` (the rotated `.1` generation, when present,
/// is read first so the vector is oldest-first — the merge re-sorts
/// regardless). Unparseable lines are counted, not fatal: a journal
/// truncated mid-record by a crash must still contribute its history.
fn load_journal(source: &Path) -> Result<(Vec<ClusterEvent>, usize), String> {
    let files: Vec<PathBuf> = if source.is_file() {
        vec![source.to_path_buf()]
    } else {
        let live = source.join("events.jsonl");
        if !live.is_file() && !rotated_path(&live).is_file() {
            return Err(format!(
                "no events journal in {}: expected events.jsonl (is this a node data dir?)",
                source.display()
            ));
        }
        [rotated_path(&live), live]
            .into_iter()
            .filter(|p| p.is_file())
            .collect()
    };
    let mut journal = Vec::new();
    let mut skipped = 0usize;
    for file in files {
        let text = std::fs::read_to_string(&file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            match ClusterEvent::parse_line(line) {
                Some(event) => journal.push(event),
                None => skipped += 1,
            }
        }
    }
    Ok((journal, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamlink_core::events::EventKind;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "streamlink-cluster-events-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn event(node: &str, epoch: u64, tick: u64, kind: EventKind) -> ClusterEvent {
        ClusterEvent {
            node_id: node.into(),
            epoch,
            applied_seq: tick,
            tick_ms: tick,
            kind,
            detail: "test".into(),
            corr_id: Some(7),
        }
    }

    fn write_journal(dir: &Path, events: &[ClusterEvent]) {
        let lines: String = events
            .iter()
            .map(|e| format!("{}\n", e.render_line()))
            .collect();
        std::fs::write(dir.join("events.jsonl"), lines).unwrap();
    }

    fn argv(dirs: &[&Path]) -> Vec<String> {
        dirs.iter()
            .flat_map(|d| ["--merge".to_string(), d.display().to_string()])
            .collect()
    }

    #[test]
    fn merging_clean_journals_exits_zero() {
        let root = scratch("clean");
        let (a, b) = (root.join("a"), root.join("b"));
        std::fs::create_dir_all(&a).unwrap();
        std::fs::create_dir_all(&b).unwrap();
        write_journal(
            &a,
            &[
                event("n1", 1, 10, EventKind::Bootstrap),
                event("n1", 2, 30, EventKind::StepDown),
            ],
        );
        write_journal(
            &b,
            &[
                event("n2", 2, 20, EventKind::CandidacyStarted),
                event("n2", 2, 25, EventKind::Promotion),
            ],
        );
        assert_eq!(run(&argv(&[&a, &b])), Ok(0));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn two_primaries_in_one_epoch_exit_one() {
        let root = scratch("split");
        let (a, b) = (root.join("a"), root.join("b"));
        std::fs::create_dir_all(&a).unwrap();
        std::fs::create_dir_all(&b).unwrap();
        write_journal(&a, &[event("n1", 3, 10, EventKind::Promotion)]);
        write_journal(&b, &[event("n2", 3, 12, EventKind::Promotion)]);
        assert_eq!(run(&argv(&[&a, &b])), Ok(1));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn garbage_lines_are_skipped_and_direct_file_paths_work() {
        let root = scratch("garbage");
        let file = root.join("events.jsonl");
        let good = event("n1", 1, 5, EventKind::Bootstrap).render_line();
        std::fs::write(&file, format!("{good}\nnot json at all\n\n")).unwrap();
        let (journal, skipped) = load_journal(&file).unwrap();
        assert_eq!(journal.len(), 1);
        assert_eq!(skipped, 1);
        // A direct file path is accepted by the command too.
        assert_eq!(run(&argv(&[&file])), Ok(0));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn missing_journal_and_missing_flag_are_errors() {
        let root = scratch("missing");
        let err = run(&argv(&[&root])).unwrap_err();
        assert!(err.contains("no events journal"), "{err}");
        let err = run(&[]).unwrap_err();
        assert!(err.contains("--merge"), "{err}");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rotated_generation_contributes_to_the_timeline() {
        let root = scratch("rotated");
        let live = root.join("events.jsonl");
        std::fs::write(
            rotated_path(&live),
            format!(
                "{}\n",
                event("n1", 1, 1, EventKind::Bootstrap).render_line()
            ),
        )
        .unwrap();
        std::fs::write(
            &live,
            format!(
                "{}\n",
                event("n1", 2, 9, EventKind::Promotion).render_line()
            ),
        )
        .unwrap();
        let (journal, skipped) = load_journal(&root).unwrap();
        assert_eq!(journal.len(), 2);
        assert_eq!(skipped, 0);
        assert_eq!(journal[0].kind, EventKind::Bootstrap);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
