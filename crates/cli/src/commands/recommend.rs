//! `streamlink recommend` — top-k link recommendations for a vertex:
//! LSH candidate retrieval re-ranked by a chosen measure.

use graphstream::VertexId;
use linkpred::recommend::{recommend, LshCandidates};
use linkpred::{Measure, SketchScorer};
use streamlink_core::snapshot::StoreSnapshot;
use streamlink_core::LshIndex;

use crate::args::Flags;

pub fn run(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv)?;
    let snapshot_path = flags.require("snapshot")?;
    let vertex = VertexId(flags.get_parsed_or("vertex", u64::MAX)?);
    if vertex.0 == u64::MAX {
        return Err("missing required flag --vertex".into());
    }
    let k = flags.get_parsed_or("k", 10usize)?;
    let bands = flags.get_parsed_or("bands", 32usize)?;
    let rows = flags.get_parsed_or("rows", 2usize)?;
    let measure = Measure::parse(flags.get("measure").unwrap_or("aa"))
        .ok_or_else(|| "unknown measure (jaccard|cn|aa|ra|pa|cosine|overlap)".to_string())?;

    let json = std::fs::read_to_string(snapshot_path)
        .map_err(|e| format!("cannot read {snapshot_path}: {e}"))?;
    let snap: StoreSnapshot =
        serde_json::from_str(&json).map_err(|e| format!("bad snapshot: {e}"))?;
    let store = snap.restore();
    if !store.contains(vertex) {
        return Err(format!("{vertex} never appeared in the ingested stream"));
    }

    let index = LshIndex::build(&store, bands, rows).map_err(|e| e.to_string())?;
    let scorer = SketchScorer::new(store.clone());
    let source = LshCandidates::new(&index, &store);
    let recs = recommend(&scorer, measure, &source, vertex, k);

    println!(
        "# top-{k} {} recommendations for {vertex} (LSH {bands}x{rows}, threshold ~{:.3})",
        measure,
        index.threshold()
    );
    if recs.is_empty() {
        println!("no candidates above the retrieval threshold; try --bands higher / --rows lower");
        return Ok(());
    }
    for (rank, (v, score)) in recs.iter().enumerate() {
        println!("{:>3}. {} {}={:.4}", rank + 1, v, measure.key(), score);
    }
    Ok(())
}
