//! `streamlink serve` — a fault-tolerant line-protocol server over a
//! sketch store.
//!
//! This module is the flag-parsing shell; the runtime lives in
//! [`crate::server`] (protocol, connection handling, signals,
//! persistence). The protocol itself is documented in
//! [`crate::server::protocol`].
//!
//! ## Flags
//!
//! ```text
//! --addr HOST:PORT            bind address        (127.0.0.1:7878)
//! --http-addr HOST:PORT       also serve the HTTP exposition plane
//!                             (/metrics, /healthz, /tracez, /profilez,
//!                             /memz);
//!                             off unless set
//! --data-dir DIR              durable mode: recover snapshot+journal,
//!                             journal every INSERT before acking
//! --snapshot FILE             read-mostly mode: load a snapshot file
//!                             (mutually exclusive with --data-dir)
//! --slots N --seed S          sketch shape for a fresh store  (256, 0)
//! --fsync always|interval|never   journal durability      (interval)
//! --format v2|v3              storage & wire format for NEW records:
//!                             v2 text, v3 checksummed binary; both
//!                             formats are always readable on recovery;
//!                             v3 replicas negotiate binary WAL
//!                             shipping                          (v2)
//! --max-conns N               connection cap, shed `ERR busy`  (1024)
//! --idle-timeout-ms MS        disconnect quiet clients        (30000)
//! --drain-secs S              shutdown drain deadline             (5)
//! --snapshot-every-secs S     checkpoint interval                (30)
//! --snapshot-every-edges N    checkpoint edge budget          (50000)
//! --snapshot-keep K           snapshot generations retained       (3)
//! --metrics-log-secs S        periodic metrics log line; 0 off   (60)
//! --slow-op-ms MS             slow-op threshold; 0 off           (50)
//! --slow-op-log PATH          slow-op JSONL sink (default
//!                             DATA_DIR/slowops.jsonl in durable mode,
//!                             otherwise off unless set)
//! --slow-op-log-bytes N       rotate the slow-op log past N bytes
//!                             (10485760)
//! --events-log PATH           cluster event journal JSONL sink — the
//!                             input of `streamlink cluster-events`
//!                             (default DATA_DIR/events.jsonl in
//!                             durable mode, otherwise off unless set)
//! --events-log-bytes N        rotate the events log past N bytes
//!                             (10485760)
//! --audit-secs S              accuracy-audit cycle interval; 0
//!                             disables the auditor               (30)
//! --audit-pairs K             vertex pairs scored per cycle      (64)
//! --replicate-from HOST:PORT  run as a read replica of that primary
//!                             (mutually exclusive with --snapshot);
//!                             writes answer `ERR readonly MOVED`.
//!                             With --data-dir the replica journals
//!                             what it applies and resumes from its
//!                             own disk after a restart
//! --repl-id NAME              replica id shown in the primary's lag
//!                             gauges              (replica-<pid>)
//! --peers A,B                 cluster mode: the other members'
//!                             protocol addresses, comma-separated.
//!                             Enables lease-based automatic failover
//!                             (REPL LEASE/VOTE, epoch fencing,
//!                             PROMOTE/DEMOTE); mutually exclusive
//!                             with --replicate-from and --snapshot
//! --advertise HOST:PORT       this node's address as peers dial it
//!                             (default --addr; required in cluster
//!                             mode when --addr uses port 0)
//! --lease-ms MS               failover lease window L: the primary
//!                             stays writable while a majority renewed
//!                             within L; elections start after 2L of
//!                             silence               (1000, min 50)
//! --primary true              bootstrap a *fresh* cluster as the
//!                             epoch-1 primary; refused (and the node
//!                             rejoins as a replica) once any epoch
//!                             exists
//! --repl-buffer N             primary ship-ring capacity in entries;
//!                             0 disables serving REPL      (65536)
//! --repl-pull-batch N         entries per REPL PULL, at most
//!                             65536                         (4096)
//! --repl-poll-ms MS           idle poll between pulls        (100)
//! --repl-anti-entropy-secs S  snapshot-join period; 0 off     (30)
//! --repl-lag-slo N            lag (edges) past which a replica's
//!                             /healthz flips 503          (100000)
//! ```
//!
//! On SIGINT/SIGTERM the server stops accepting, drains, writes a final
//! snapshot (durable mode), and exits 0. The first stdout line is
//! `LISTENING <addr>` so scripts and tests can discover the bound port;
//! with `--http-addr` a second line `HTTP LISTENING <addr>` follows.

use std::io::Write;
use std::net::TcpListener;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use streamlink_core::journal::FsyncPolicy;
use streamlink_core::snapshot::StoreSnapshot;
use streamlink_core::{SketchConfig, SketchStore, WireFormat};

use crate::args::Flags;
use crate::server::{self, persistence, signals, ServerConfig, ServerState};

pub fn run(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv)?;
    let addr = flags.get("addr").unwrap_or("127.0.0.1:7878").to_string();
    let config = ServerConfig {
        max_conns: flags.get_parsed_or("max-conns", 1024usize)?,
        idle_timeout: Duration::from_millis(flags.get_parsed_or("idle-timeout-ms", 30_000u64)?),
        drain_deadline: Duration::from_secs(flags.get_parsed_or("drain-secs", 5u64)?),
        snapshot_every: Duration::from_secs(flags.get_parsed_or("snapshot-every-secs", 30u64)?),
        snapshot_every_edges: flags.get_parsed_or("snapshot-every-edges", 50_000u64)?,
        snapshot_keep: flags
            .get_parsed_or("snapshot-keep", streamlink_core::DEFAULT_SNAPSHOT_KEEP)?,
        metrics_log_every: Duration::from_secs(flags.get_parsed_or("metrics-log-secs", 60u64)?),
        audit_interval: Duration::from_secs(flags.get_parsed_or("audit-secs", 30u64)?),
        audit_pairs: flags.get_parsed_or("audit-pairs", 64usize)?,
        repl_buffer: flags.get_parsed_or("repl-buffer", 65_536usize)?,
    };
    if config.max_conns == 0 {
        return Err("--max-conns must be positive".into());
    }
    if config.snapshot_keep == 0 {
        return Err("--snapshot-keep must be positive".into());
    }
    if !config.audit_interval.is_zero() && config.audit_pairs == 0 {
        return Err("--audit-pairs must be positive while auditing is on".into());
    }

    // Slow-op settings are process-global (the trace ring is too).
    let slow_op_ms =
        flags.get_parsed_or("slow-op-ms", streamlink_core::trace::DEFAULT_SLOW_OP_MS)?;
    streamlink_core::trace::set_slow_op_threshold_ms(slow_op_ms);
    let slow_op_log_bytes = flags.get_parsed_or(
        "slow-op-log-bytes",
        streamlink_core::trace::DEFAULT_SLOW_OP_LOG_BYTES,
    )?;
    if slow_op_log_bytes == 0 {
        return Err("--slow-op-log-bytes must be positive".into());
    }
    let slow_op_log: Option<std::path::PathBuf> = match flags.get("slow-op-log") {
        Some(path) => Some(path.into()),
        None => flags
            .get("data-dir")
            .map(|dir| Path::new(dir).join("slowops.jsonl")),
    };
    // The cluster event journal follows the same defaulting: on by
    // default wherever there is a data dir to hold it.
    let events_log_bytes = flags.get_parsed_or(
        "events-log-bytes",
        streamlink_core::events::DEFAULT_EVENT_LOG_BYTES,
    )?;
    if events_log_bytes == 0 {
        return Err("--events-log-bytes must be positive".into());
    }
    let events_log: Option<std::path::PathBuf> = match flags.get("events-log") {
        Some(path) => Some(path.into()),
        None => flags
            .get("data-dir")
            .map(|dir| Path::new(dir).join("events.jsonl")),
    };
    // Installed before the cluster runtime exists: bootstrap and
    // config-change events are the journal's first records, so the sink
    // must be listening when they fire. The data dir may not exist yet
    // at this point (recovery creates it later) — create it here.
    if let Some(path) = &events_log {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
            }
        }
        streamlink_core::events::install_event_log(path, events_log_bytes)
            .map_err(|e| format!("cannot open events log {}: {e}", path.display()))?;
        eprintln!(
            "cluster event journal: {} (rotate past {events_log_bytes} bytes)",
            path.display()
        );
    }
    let slots = flags.get_parsed_or("slots", 256usize)?;
    let seed = flags.get_parsed_or("seed", 0u64)?;
    if slots == 0 {
        return Err("--slots must be positive".into());
    }
    let sketch_config = SketchConfig::with_slots(slots).seed(seed);
    let fsync = match flags.get("fsync") {
        None => FsyncPolicy::OnRotate,
        Some(raw) => FsyncPolicy::parse(raw)
            .ok_or_else(|| format!("bad --fsync {raw:?}, expected always|interval|never"))?,
    };
    let format = match flags.get("format") {
        None => WireFormat::TextV2,
        Some(raw) => {
            WireFormat::parse(raw).ok_or_else(|| format!("bad --format {raw:?}, expected v2|v3"))?
        }
    };

    // Replica flags parse (and validate) regardless of role so typos
    // fail fast; the runtime only exists with --replicate-from.
    let repl_tuning = server::replication::ReplicaTuning {
        pull_batch: flags.get_parsed_or("repl-pull-batch", 4096usize)?,
        poll_interval: Duration::from_millis(flags.get_parsed_or("repl-poll-ms", 100u64)?),
        anti_entropy_every: Duration::from_secs(
            flags.get_parsed_or("repl-anti-entropy-secs", 30u64)?,
        ),
        wire: format,
        ..server::replication::ReplicaTuning::default()
    };
    if repl_tuning.pull_batch == 0 {
        return Err("--repl-pull-batch must be positive".into());
    }
    if repl_tuning.pull_batch > server::replication::MAX_PULL_BATCH {
        return Err(format!(
            "--repl-pull-batch must be at most {}",
            server::replication::MAX_PULL_BATCH
        ));
    }
    let repl_lag_slo = flags.get_parsed_or("repl-lag-slo", 100_000u64)?;
    if repl_lag_slo == 0 {
        return Err("--repl-lag-slo must be positive".into());
    }
    let repl_id = flags
        .get("repl-id")
        .map_or_else(|| format!("replica-{}", std::process::id()), str::to_string);

    let state = if let Some(peers_raw) = flags.get("peers") {
        if flags.get("replicate-from").is_some() {
            return Err(
                "--peers (cluster mode) is mutually exclusive with --replicate-from \
                 (cluster nodes discover the primary through the lease protocol)"
                    .into(),
            );
        }
        if flags.get("snapshot").is_some() {
            return Err(
                "--peers is mutually exclusive with --snapshot (cluster state is \
                 replicated; use --data-dir for durability)"
                    .into(),
            );
        }
        if config.repl_buffer == 0 {
            return Err("cluster mode needs a ship ring; raise --repl-buffer above 0".into());
        }
        let peers: Vec<String> = peers_raw
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        if peers.is_empty() {
            return Err("--peers needs at least one peer address".into());
        }
        let lease_ms = flags.get_parsed_or("lease-ms", 1_000u64)?;
        if lease_ms < 50 {
            return Err("--lease-ms must be at least 50".into());
        }
        let advertise = match flags.get("advertise") {
            Some(a) => a.to_string(),
            // Peers dial the advertised address; an OS-assigned port is
            // unknown to them, so it must be stated explicitly.
            None if addr.ends_with(":0") => {
                return Err("cluster mode with an ephemeral --addr port needs --advertise".into())
            }
            None => addr.clone(),
        };
        if peers.contains(&advertise) {
            return Err(format!(
                "--peers must list the *other* members; {advertise} is this node"
            ));
        }
        let cluster_config = server::failover::ClusterConfig {
            advertise: advertise.clone(),
            peers: peers.clone(),
            lease: Duration::from_millis(lease_ms),
            bootstrap_primary: flags.get_parsed_or("primary", false)?,
        };
        let runtime = Arc::new(server::replication::ReplicaRuntime::new(
            peers[0].clone(),
            advertise,
            repl_lag_slo,
            repl_tuning,
        ));
        match flags.get("data-dir") {
            Some(dir) => {
                let (persist, recovery) =
                    persistence::open(Path::new(dir), sketch_config, fsync, format)
                        .map_err(|e| format!("cannot open data dir {dir}: {e}"))?;
                let local_seq = recovery.next_seq().saturating_sub(1);
                runtime.seed_applied(local_seq);
                eprintln!(
                    "cluster node recovered {} edges from {dir} (local WAL seq {local_seq})",
                    recovery.store.edges_processed(),
                );
                let cluster = Arc::new(
                    server::failover::ClusterRuntime::new(
                        &cluster_config,
                        Some(Path::new(dir)),
                        local_seq,
                    )
                    .map_err(|e| format!("cannot persist cluster state in {dir}: {e}"))?,
                );
                ServerState::with_cluster(
                    recovery.store,
                    Some(persist),
                    recovery.snapshot_seq,
                    config,
                    runtime,
                    cluster,
                )
            }
            None => {
                let cluster = Arc::new(
                    server::failover::ClusterRuntime::new(&cluster_config, None, 0)
                        .map_err(|e| format!("cannot initialise cluster state: {e}"))?,
                );
                ServerState::with_cluster(
                    SketchStore::new(sketch_config),
                    None,
                    0,
                    config,
                    runtime,
                    cluster,
                )
            }
        }
    } else if let Some(primary) = flags.get("replicate-from") {
        if flags.get("snapshot").is_some() {
            return Err("--replicate-from is mutually exclusive with --snapshot \
                 (a replica's state is the primary's, pulled over the wire)"
                .into());
        }
        let runtime = Arc::new(server::replication::ReplicaRuntime::new(
            primary.to_string(),
            repl_id,
            repl_lag_slo,
            repl_tuning,
        ));
        match flags.get("data-dir") {
            // A durable replica journals what it applies and resumes
            // from its own disk seq after a restart instead of
            // re-pulling the world from the primary.
            Some(dir) => {
                let (persist, recovery) =
                    persistence::open(Path::new(dir), sketch_config, fsync, format)
                        .map_err(|e| format!("cannot open data dir {dir}: {e}"))?;
                let local_seq = recovery.next_seq().saturating_sub(1);
                runtime.seed_applied(local_seq);
                eprintln!(
                    "replica recovered {} edges from {dir}, resuming pulls after seq {local_seq}",
                    recovery.store.edges_processed(),
                );
                ServerState::durable_replica(
                    recovery.store,
                    persist,
                    recovery.snapshot_seq,
                    config,
                    runtime,
                )
            }
            // The fresh store's shape is provisional: the handshake
            // adopts the primary's slots/seed/backend while the store
            // is empty.
            None => ServerState::replica(SketchStore::new(sketch_config), config, runtime),
        }
    } else {
        match (flags.get("data-dir"), flags.get("snapshot")) {
            (Some(_), Some(_)) => {
                return Err(
                    "--data-dir and --snapshot are mutually exclusive (a data dir carries \
                 its own snapshot)"
                        .into(),
                )
            }
            (Some(dir), None) => {
                let (persist, recovery) =
                    persistence::open(Path::new(dir), sketch_config, fsync, format)
                        .map_err(|e| format!("cannot open data dir {dir}: {e}"))?;
                eprintln!(
                    "recovered {} edges from {dir} (snapshot seq {}, {} journal entr{} replayed{})",
                    recovery.store.edges_processed(),
                    recovery.snapshot_seq,
                    recovery.journal.replayed,
                    if recovery.journal.replayed == 1 {
                        "y"
                    } else {
                        "ies"
                    },
                    if recovery.journal.torn_tail {
                        ", torn tail dropped"
                    } else {
                        ""
                    },
                );
                if recovery.fallbacks > 0 || recovery.journal.quarantined > 0 {
                    eprintln!(
                        "recovery healed around damage: {} snapshot generation(s) skipped, \
                     {} journal record(s) quarantined (see {dir}/quarantine/)",
                        recovery.fallbacks, recovery.journal.quarantined,
                    );
                }
                ServerState::with_persistence(
                    recovery.store,
                    persist,
                    recovery.snapshot_seq,
                    config,
                )
            }
            (None, Some(path)) => {
                let snap = StoreSnapshot::read_from(Path::new(path))
                    .map_err(|e| format!("cannot load snapshot {path}: {e}"))?;
                ServerState::in_memory(snap.restore(), config)
            }
            (None, None) => ServerState::in_memory(SketchStore::new(sketch_config), config),
        }
    };

    // Install the slow-op sink after the data dir exists (recovery
    // above creates it in durable mode).
    if slow_op_ms > 0 {
        if let Some(path) = &slow_op_log {
            streamlink_core::trace::install_slow_op_log(path, slow_op_log_bytes)
                .map_err(|e| format!("cannot open slow-op log {}: {e}", path.display()))?;
            eprintln!(
                "slow-op log: {} (threshold {slow_op_ms} ms, rotate past {slow_op_log_bytes} \
                 bytes)",
                path.display()
            );
        }
    }

    // Bind the optional HTTP exposition plane first so a bad
    // --http-addr fails fast, before the protocol port is taken.
    let http_listener = match flags.get("http-addr") {
        Some(http_addr) => Some(
            TcpListener::bind(http_addr)
                .map_err(|e| format!("cannot bind --http-addr {http_addr}: {e}"))?,
        ),
        None => None,
    };
    let listener = TcpListener::bind(&addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    signals::install();
    let local = listener.local_addr().map_or(addr, |a| a.to_string());
    println!("LISTENING {local}");
    if let Some(cluster) = state.cluster() {
        println!(
            "CLUSTER role={} epoch={} peers={}",
            if cluster.is_primary() {
                "primary"
            } else {
                "replica"
            },
            cluster.epoch(),
            cluster.peer_count(),
        );
        eprintln!(
            "failover cluster member {} (lease {} ms, epoch {}); replicas answer \
             ERR readonly MOVED, a fenced primary answers ERR fenced",
            cluster.advertise(),
            cluster.lease_ms(),
            cluster.epoch(),
        );
    } else if let Some(runtime) = state.replica_runtime() {
        println!("REPLICATING {}", runtime.primary_addr);
        eprintln!(
            "read replica of {} (id {}, lag SLO {} edges); writes answer ERR readonly",
            runtime.primary_addr, runtime.id, runtime.lag_slo
        );
    }
    let _ = std::io::stdout().flush();
    eprintln!(
        "serving {} vertices on {local} (commands: JACCARD/CN/AA/RA/PA/COSINE/OVERLAP u v, \
         DEGREE u, INSERT u v, EXPLAIN m u v, STATS, METRICS, TRACE [n], HEALTH, QUIT)",
        state.read_store().vertex_count(),
    );
    let state = Arc::new(state);
    let http_thread = match http_listener {
        Some(l) => {
            let http_local = l
                .local_addr()
                .map_err(|e| format!("cannot resolve --http-addr: {e}"))?;
            println!("HTTP LISTENING {http_local}");
            let _ = std::io::stdout().flush();
            eprintln!(
                "scrape plane on http://{http_local} (/metrics /healthz /tracez /profilez /memz)"
            );
            Some(
                server::http::spawn(l, Arc::clone(&state))
                    .map_err(|e| format!("cannot start http listener: {e}"))?,
            )
        }
        None => None,
    };
    server::serve(listener, &state).map_err(|e| format!("server error: {e}"))?;
    if let Some(handle) = http_thread {
        let _ = handle.join();
    }
    eprintln!("shut down cleanly");
    Ok(())
}

/// Back-compat accept loop over an in-memory store with default limits.
/// Runs until the process exits or shutdown is requested.
pub fn serve_forever(listener: TcpListener, store: SketchStore) {
    let state = Arc::new(ServerState::in_memory(store, ServerConfig::default()));
    if let Err(e) = server::serve(listener, &state) {
        eprintln!("server error: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::protocol::handle_command;
    use graphstream::VertexId;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    #[test]
    fn end_to_end_over_tcp() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut s = SketchStore::new(SketchConfig::with_slots(32).seed(2));
        for w in 100..120u64 {
            s.insert_edge(VertexId(7), VertexId(w));
            s.insert_edge(VertexId(8), VertexId(w));
        }
        std::thread::spawn(move || serve_forever(listener, s));

        let mut conn = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut ask = |cmd: &str| -> String {
            writeln!(conn, "{cmd}").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line.trim_end().to_string()
        };
        assert_eq!(ask("PING"), "OK pong");
        assert_eq!(ask("JACCARD 7 8"), "OK 1.000000");
        assert_eq!(ask("INSERT 7 9000"), "OK inserted");
        assert_eq!(ask("DEGREE 9000"), "OK 1");
        assert_eq!(ask("QUIT"), "OK bye");
    }

    #[test]
    fn concurrent_clients() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut s = SketchStore::new(SketchConfig::with_slots(16).seed(3));
        s.insert_edge(VertexId(1), VertexId(2));
        std::thread::spawn(move || serve_forever(listener, s));

        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut conn = TcpStream::connect(addr).unwrap();
                    let mut reader = BufReader::new(conn.try_clone().unwrap());
                    for i in 0..50u64 {
                        writeln!(conn, "INSERT {} {}", 1000 + t, 2000 + i).unwrap();
                        let mut line = String::new();
                        reader.read_line(&mut line).unwrap();
                        assert_eq!(line.trim_end(), "OK inserted");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let mut conn = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        writeln!(conn, "STATS").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains(" edges=201 "), "{line}");
    }

    #[test]
    fn connection_cap_sheds_with_err_busy() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let store = SketchStore::new(SketchConfig::with_slots(16).seed(4));
        let state = Arc::new(ServerState::in_memory(
            store,
            ServerConfig {
                max_conns: 2,
                ..ServerConfig::default()
            },
        ));
        let st = Arc::clone(&state);
        std::thread::spawn(move || server::serve(listener, &st));

        // Fill both slots with live connections.
        let mut held = Vec::new();
        for _ in 0..2 {
            let mut conn = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(conn.try_clone().unwrap());
            writeln!(conn, "PING").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), "OK pong");
            held.push((conn, reader));
        }
        // The third is shed before any command is read.
        let conn = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(conn);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(
            line.trim_end(),
            "ERR busy retry: connection cap 2 reached, back off and reconnect"
        );
        state.request_shutdown();
    }

    #[test]
    fn graceful_shutdown_drains_and_returns() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let store = SketchStore::new(SketchConfig::with_slots(16).seed(5));
        let state = Arc::new(ServerState::in_memory(store, ServerConfig::default()));
        let st = Arc::clone(&state);
        let server = std::thread::spawn(move || server::serve(listener, &st));

        let mut conn = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        writeln!(conn, "INSERT 1 2").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "OK inserted");

        state.request_shutdown();
        server.join().unwrap().unwrap();
        assert_eq!(state.connections_active(), 0);
        assert_eq!(state.read_store().edges_processed(), 1);
    }

    #[test]
    fn in_memory_state_answers_protocol() {
        // The command surface itself is covered in server::protocol;
        // this pins the wiring the `serve` command relies on.
        let state = ServerState::in_memory(
            SketchStore::new(SketchConfig::with_slots(16).seed(6)),
            ServerConfig::default(),
        );
        assert_eq!(handle_command(&state, "INSERT 3 4"), "OK inserted");
        assert_eq!(handle_command(&state, "DEGREE 3"), "OK 1");
    }

    #[test]
    fn rejects_bad_flags() {
        let argv =
            |flags: &[&str]| -> Vec<String> { flags.iter().map(|s| s.to_string()).collect() };
        assert!(run(&argv(&["--slots", "0"])).is_err());
        assert!(run(&argv(&["--max-conns", "0"])).is_err());
        assert!(run(&argv(&["--snapshot-keep", "0"])).is_err());
        assert!(run(&argv(&["--fsync", "sometimes"])).is_err());
        assert!(run(&argv(&["--data-dir", "/tmp/x", "--snapshot", "/tmp/y"])).is_err());
        assert!(run(&argv(&["--idle-timeout-ms", "soon"])).is_err());
        assert!(run(&argv(&["--slow-op-ms", "fast"])).is_err());
        assert!(run(&argv(&["--slow-op-log-bytes", "0"])).is_err());
        assert!(run(&argv(&["--events-log-bytes", "0"])).is_err());
        assert!(run(&argv(&["--events-log-bytes", "soon"])).is_err());
        assert!(run(&argv(&["--audit-secs", "later"])).is_err());
        assert!(run(&argv(&["--audit-pairs", "0"])).is_err());
        assert!(run(&argv(&["--repl-pull-batch", "0"])).is_err());
        assert!(run(&argv(&["--repl-pull-batch", "65537"])).is_err());
        assert!(run(&argv(&["--format", "v9"])).is_err());
        assert!(run(&argv(&["--repl-poll-ms", "soon"])).is_err());
        assert!(run(&argv(&["--repl-lag-slo", "0"])).is_err());
        assert!(run(&argv(&["--repl-buffer", "many"])).is_err());
        // (--replicate-from with --data-dir is now a *valid* durable
        // replica; only the snapshot combination stays refused.)
        assert!(run(&argv(&[
            "--replicate-from",
            "127.0.0.1:1",
            "--snapshot",
            "/tmp/y"
        ]))
        .is_err());
        // Cluster-mode flag validation.
        assert!(run(&argv(&[
            "--peers",
            "127.0.0.1:1",
            "--replicate-from",
            "127.0.0.1:2"
        ]))
        .is_err());
        assert!(run(&argv(&["--peers", "127.0.0.1:1", "--snapshot", "/tmp/y"])).is_err());
        assert!(run(&argv(&["--peers", " , ,"])).is_err());
        assert!(run(&argv(&["--peers", "127.0.0.1:1", "--lease-ms", "10"])).is_err());
        assert!(run(&argv(&["--peers", "127.0.0.1:1", "--primary", "maybe"])).is_err());
        assert!(run(&argv(&["--peers", "127.0.0.1:1", "--addr", "127.0.0.1:0"])).is_err());
        assert!(run(&argv(&[
            "--peers",
            "127.0.0.1:1",
            "--addr",
            "127.0.0.1:0",
            "--advertise",
            "127.0.0.1:1"
        ]))
        .is_err());
        assert!(run(&argv(&[
            "--peers",
            "127.0.0.1:1",
            "--repl-buffer",
            "0",
            "--addr",
            "127.0.0.1:0",
            "--advertise",
            "127.0.0.1:9"
        ]))
        .is_err());
        // A malformed --http-addr fails at bind time, before the
        // protocol port is ever taken.
        assert!(run(&argv(&["--http-addr", "not-an-addr"])).is_err());
    }
}
