//! `streamlink serve` — a line-protocol query server over a sketch store.
//!
//! Loads a snapshot and answers measure queries over TCP, one text
//! command per line. This is the "online" deployment shape the paper's
//! streaming setting implies: the stream writer keeps calling `INSERT`,
//! dashboards and recommenders read estimates concurrently.
//!
//! ## Protocol
//!
//! ```text
//! JACCARD u v | CN u v | AA u v | RA u v | PA u v | COSINE u v | OVERLAP u v
//!     -> OK <float>        measure estimate
//!     -> OK unseen         either endpoint never appeared
//! DEGREE u                 -> OK <int>
//! INSERT u v               -> OK inserted
//! STATS                    -> OK vertices=<n> edges=<m> memory=<bytes>
//! PING                     -> OK pong
//! QUIT                     -> OK bye (closes the connection)
//! anything else            -> ERR <reason>
//! ```
//!
//! Concurrency: one thread per connection; the store sits behind a
//! `RwLock`, so reads run in parallel and `INSERT`s serialize.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, RwLock};

use graphstream::VertexId;
use linkpred::Measure;
use streamlink_core::snapshot::StoreSnapshot;
use streamlink_core::{SketchConfig, SketchStore};

use crate::args::Flags;

pub fn run(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv)?;
    let addr = flags.get("addr").unwrap_or("127.0.0.1:7878").to_string();
    let store = match flags.get("snapshot") {
        Some(path) => {
            let json =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let snap: StoreSnapshot =
                serde_json::from_str(&json).map_err(|e| format!("bad snapshot: {e}"))?;
            snap.restore()
        }
        None => {
            let slots = flags.get_parsed_or("slots", 256usize)?;
            let seed = flags.get_parsed_or("seed", 0u64)?;
            if slots == 0 {
                return Err("--slots must be positive".into());
            }
            SketchStore::new(SketchConfig::with_slots(slots).seed(seed))
        }
    };
    let listener = TcpListener::bind(&addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    eprintln!(
        "serving {} vertices on {} (commands: JACCARD/CN/AA/RA/PA/COSINE/OVERLAP u v, DEGREE u, INSERT u v, STATS, QUIT)",
        store.vertex_count(),
        listener.local_addr().map_or(addr, |a| a.to_string()),
    );
    serve_forever(listener, store);
    Ok(())
}

/// Accept loop: one thread per connection. Runs until the process exits.
pub fn serve_forever(listener: TcpListener, store: SketchStore) {
    let shared = Arc::new(RwLock::new(store));
    for conn in listener.incoming() {
        match conn {
            Ok(stream) => {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || handle_connection(stream, &shared));
            }
            Err(e) => eprintln!("accept failed: {e}"),
        }
    }
}

fn handle_connection(stream: TcpStream, store: &RwLock<SketchStore>) {
    let peer = stream
        .peer_addr()
        .map_or_else(|_| "?".into(), |a| a.to_string());
    let reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{peer}: clone failed: {e}");
            return;
        }
    });
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let response = handle_command(store, &line);
        let closing = response == "OK bye";
        if writeln!(writer, "{response}").is_err() {
            break;
        }
        if closing {
            break;
        }
    }
}

/// Executes one protocol command against the store. Pure with respect to
/// IO, so the full command surface is unit-testable without sockets.
pub fn handle_command(store: &RwLock<SketchStore>, line: &str) -> String {
    let mut parts = line.split_whitespace();
    let Some(command) = parts.next() else {
        return "ERR empty command".into();
    };
    let args: Vec<&str> = parts.collect();

    let parse_vertex = |raw: &str| -> Result<VertexId, String> {
        raw.parse::<u64>()
            .map(VertexId)
            .map_err(|e| format!("bad vertex id {raw:?}: {e}"))
    };
    let pair = |args: &[&str]| -> Result<(VertexId, VertexId), String> {
        if args.len() != 2 {
            return Err(format!("expected 2 vertex ids, got {}", args.len()));
        }
        Ok((parse_vertex(args[0])?, parse_vertex(args[1])?))
    };

    let upper = command.to_ascii_uppercase();
    match upper.as_str() {
        "PING" => "OK pong".into(),
        "QUIT" => "OK bye".into(),
        "STATS" => {
            let guard = store.read().expect("store lock poisoned");
            format!(
                "OK vertices={} edges={} memory={}",
                guard.vertex_count(),
                guard.edges_processed(),
                guard.memory_bytes()
            )
        }
        "DEGREE" => match args.as_slice() {
            [raw] => match parse_vertex(raw) {
                Ok(v) => {
                    let guard = store.read().expect("store lock poisoned");
                    format!("OK {}", guard.degree(v))
                }
                Err(e) => format!("ERR {e}"),
            },
            _ => "ERR DEGREE takes exactly one vertex id".into(),
        },
        "INSERT" => match pair(&args) {
            Ok((u, v)) => {
                store
                    .write()
                    .expect("store lock poisoned")
                    .insert_edge(u, v);
                "OK inserted".into()
            }
            Err(e) => format!("ERR {e}"),
        },
        "JACCARD" | "CN" | "AA" | "RA" | "PA" | "COSINE" | "OVERLAP" => {
            let measure = Measure::parse(&upper).expect("command names are measure keys");
            match pair(&args) {
                Ok((u, v)) => {
                    let guard = store.read().expect("store lock poisoned");
                    let score = match measure {
                        Measure::Jaccard => guard.jaccard(u, v),
                        Measure::CommonNeighbors => guard.common_neighbors(u, v),
                        Measure::AdamicAdar => guard.adamic_adar(u, v),
                        Measure::ResourceAllocation => guard.resource_allocation(u, v),
                        Measure::PreferentialAttachment => guard.preferential_attachment(u, v),
                        Measure::Cosine => guard.cosine(u, v),
                        Measure::Overlap => guard.overlap(u, v),
                    };
                    match score {
                        Some(s) => format!("OK {s:.6}"),
                        None => "OK unseen".into(),
                    }
                }
                Err(e) => format!("ERR {e}"),
            }
        }
        other => format!("ERR unknown command {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> RwLock<SketchStore> {
        let mut s = SketchStore::new(SketchConfig::with_slots(64).seed(1));
        for w in 10..30u64 {
            s.insert_edge(VertexId(0), VertexId(w));
            s.insert_edge(VertexId(1), VertexId(w));
        }
        RwLock::new(s)
    }

    #[test]
    fn ping_and_quit() {
        let s = store();
        assert_eq!(handle_command(&s, "PING"), "OK pong");
        assert_eq!(handle_command(&s, "quit"), "OK bye");
    }

    #[test]
    fn measure_queries() {
        let s = store();
        assert_eq!(handle_command(&s, "JACCARD 0 1"), "OK 1.000000");
        assert!(handle_command(&s, "CN 0 1").starts_with("OK 20"));
        assert!(handle_command(&s, "AA 0 1").starts_with("OK "));
        assert!(handle_command(&s, "cosine 0 1").starts_with("OK "));
        assert_eq!(handle_command(&s, "JACCARD 0 9999"), "OK unseen");
    }

    #[test]
    fn degree_and_stats() {
        let s = store();
        assert_eq!(handle_command(&s, "DEGREE 0"), "OK 20");
        assert_eq!(handle_command(&s, "DEGREE 404"), "OK 0");
        let stats = handle_command(&s, "STATS");
        assert!(
            stats.contains("vertices=22") && stats.contains("edges=40"),
            "{stats}"
        );
    }

    #[test]
    fn insert_updates_state() {
        let s = store();
        assert_eq!(handle_command(&s, "INSERT 0 500"), "OK inserted");
        assert_eq!(handle_command(&s, "DEGREE 500"), "OK 1");
        assert_eq!(handle_command(&s, "DEGREE 0"), "OK 21");
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let s = store();
        assert!(handle_command(&s, "").starts_with("ERR"));
        assert!(handle_command(&s, "FROBNICATE 1 2").starts_with("ERR"));
        assert!(handle_command(&s, "JACCARD 1").starts_with("ERR"));
        assert!(handle_command(&s, "JACCARD a b").starts_with("ERR"));
        assert!(handle_command(&s, "DEGREE").starts_with("ERR"));
        assert!(handle_command(&s, "INSERT 1 2 3").starts_with("ERR"));
    }

    #[test]
    fn end_to_end_over_tcp() {
        use std::io::{BufRead, BufReader, Write};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut s = SketchStore::new(SketchConfig::with_slots(32).seed(2));
        for w in 100..120u64 {
            s.insert_edge(VertexId(7), VertexId(w));
            s.insert_edge(VertexId(8), VertexId(w));
        }
        std::thread::spawn(move || serve_forever(listener, s));

        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut ask = |cmd: &str| -> String {
            writeln!(conn, "{cmd}").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            line.trim_end().to_string()
        };
        assert_eq!(ask("PING"), "OK pong");
        assert_eq!(ask("JACCARD 7 8"), "OK 1.000000");
        assert_eq!(ask("INSERT 7 9000"), "OK inserted");
        assert_eq!(ask("DEGREE 9000"), "OK 1");
        assert_eq!(ask("QUIT"), "OK bye");
    }

    #[test]
    fn concurrent_clients() {
        use std::io::{BufRead, BufReader, Write};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut s = SketchStore::new(SketchConfig::with_slots(16).seed(3));
        s.insert_edge(VertexId(1), VertexId(2));
        std::thread::spawn(move || serve_forever(listener, s));

        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut conn = std::net::TcpStream::connect(addr).unwrap();
                    let mut reader = BufReader::new(conn.try_clone().unwrap());
                    for i in 0..50u64 {
                        writeln!(conn, "INSERT {} {}", 1000 + t, 2000 + i).unwrap();
                        let mut line = String::new();
                        reader.read_line(&mut line).unwrap();
                        assert_eq!(line.trim_end(), "OK inserted");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let mut conn = std::net::TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        writeln!(conn, "STATS").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("edges=201"), "{line}");
    }
}
