//! `streamlink top` — top-k most similar vertices via the LSH index.

use graphstream::VertexId;
use streamlink_core::snapshot::StoreSnapshot;
use streamlink_core::LshIndex;

use crate::args::Flags;

pub fn run(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv)?;
    let snapshot_path = flags.require("snapshot")?;
    let vertex = VertexId(flags.get_parsed_or("vertex", u64::MAX)?);
    if vertex.0 == u64::MAX {
        return Err("missing required flag --vertex".into());
    }
    let k = flags.get_parsed_or("k", 10usize)?;
    let bands = flags.get_parsed_or("bands", 16usize)?;
    let rows = flags.get_parsed_or("rows", 4usize)?;

    let json = std::fs::read_to_string(snapshot_path)
        .map_err(|e| format!("cannot read {snapshot_path}: {e}"))?;
    let snap: StoreSnapshot =
        serde_json::from_str(&json).map_err(|e| format!("bad snapshot: {e}"))?;
    let store = snap.restore();

    let index = LshIndex::build(&store, bands, rows).map_err(|e| e.to_string())?;
    println!(
        "# LSH {bands} bands x {rows} rows (similarity threshold ~{:.3}), {} candidates for {vertex}",
        index.threshold(),
        index.candidates(&store, vertex).len()
    );
    let top = index.top_k(&store, vertex, k);
    if top.is_empty() {
        println!("no similar vertices found (vertex unseen or no collisions)");
        return Ok(());
    }
    for (rank, (v, j)) in top.iter().enumerate() {
        println!("{:>3}. {} jaccard={:.4}", rank + 1, v, j);
    }
    Ok(())
}
