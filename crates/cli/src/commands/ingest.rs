//! `streamlink ingest` — build a sketch store from a stream file and
//! persist a snapshot.
//!
//! `--metrics-out PATH` additionally dumps the global metrics registry
//! (ingest counters, insert-latency percentiles) as JSON, and
//! `--trace-out PATH` dumps the sampled insert spans from the trace
//! ring for after-the-fact breakdowns.

use streamlink_core::snapshot::StoreSnapshot;
use streamlink_core::{SketchConfig, SketchStore};

use crate::args::Flags;
use crate::commands::{load_stream, write_metrics_out, write_trace_out};

pub fn run(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv)?;
    let input = flags.require("input")?;
    let snapshot_path = flags.require("snapshot")?;
    let slots = flags.get_parsed_or("slots", 256usize)?;
    let seed = flags.get_parsed_or("seed", 0u64)?;
    if slots == 0 {
        return Err("--slots must be positive".into());
    }

    let stream = load_stream(input)?;
    let mut store = SketchStore::new(SketchConfig::with_slots(slots).seed(seed));
    let start = std::time::Instant::now();
    store.insert_stream(stream.as_slice().iter().copied());
    let elapsed = start.elapsed();

    let snap = StoreSnapshot::capture(&store);
    let json = serde_json::to_string(&snap).map_err(|e| format!("serialize: {e}"))?;
    std::fs::write(snapshot_path, json)
        .map_err(|e| format!("cannot write {snapshot_path}: {e}"))?;

    let eps = store.edges_processed() as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "ingested {} edges over {} vertices in {:.2?} ({:.0} edges/s); snapshot: {snapshot_path} ({} bytes sketch memory)",
        store.edges_processed(),
        store.vertex_count(),
        elapsed,
        eps,
        store.memory_bytes(),
    );
    write_metrics_out(&flags)?;
    write_trace_out(&flags)?;
    Ok(())
}
