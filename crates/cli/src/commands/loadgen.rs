//! `streamlink loadgen` — the open-loop, coordinated-omission-safe
//! load generator for a live `streamlink serve` instance.
//!
//! The workload itself (mix, skew, determinism) lives in
//! [`streamlink_core::loadgen`]; this command adds the transport: it
//! splits the offered rate across `--conns` TCP connections, paces each
//! connection against a fixed schedule of *intended start times*, and
//! measures every operation's latency from its intended start — never
//! from the (possibly delayed) actual send. A server stall therefore
//! shows up in the percentiles instead of silently thinning the arrival
//! rate (see the module docs in `core::loadgen` for why both halves
//! matter).
//!
//! ```text
//! streamlink loadgen --addr HOST:PORT [--rate OPS_PER_SEC] [--duration-secs S]
//!                    [--conns N] [--seed S] [--mix I/J/D/E] [--zipf S]
//!                    [--vertices N] [--slo-p99-ms MS] [--report PATH]
//! ```
//!
//! The report (`streamlink.loadreport.v1` JSON) goes to stdout and,
//! with `--report`, to a file. The process exit code is the SLO
//! verdict: `0` when p99 ≤ `--slo-p99-ms` (or no SLO was set), `1` on a
//! breach — so CI can gate on the command directly.
//!
//! Classification: a successful response line (`OK ...`) counts as
//! `ok`, `ERR busy ...` counts as `shed` (the server's load-shedding
//! contract), any other `ERR` counts as `err`, and a connection that
//! dies mid-run marks its remaining scheduled operations as errors
//! (they were offered; losing them would be coordinated omission by
//! another name).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::{Duration, Instant};

use streamlink_core::loadgen::{
    intended_start_ns, LoadReport, MixSpec, OpKind, OpStream, WorkloadSpec, DEFAULT_ZIPF_S,
};
use streamlink_core::metrics::LatencyHistogram;

use crate::args::Flags;

/// What one connection worker observed; merged into the final report.
#[derive(Debug, Default)]
struct ConnOutcome {
    attempted: u64,
    ok: u64,
    err: u64,
    shed: u64,
    by_kind: [u64; 4],
}

fn kind_slot(kind: OpKind) -> usize {
    match kind {
        OpKind::Insert => 0,
        OpKind::Jaccard => 1,
        OpKind::Degree => 2,
        OpKind::Explain => 3,
    }
}

/// Drives one connection's schedule: `ops` operations at `rate` per
/// second, latencies recorded into the shared histogram from intended
/// start times.
fn drive_connection(
    addr: &str,
    spec: &WorkloadSpec,
    stream_id: u64,
    ops: u64,
    rate: u64,
    histogram: &LatencyHistogram,
) -> Result<ConnOutcome, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_nodelay(true)
        .map_err(|e| format!("set_nodelay: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| format!("set_read_timeout: {e}"))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("clone stream: {e}"))?,
    );
    let mut writer = stream;
    let mut outcome = ConnOutcome::default();
    let start = Instant::now();
    let mut response = String::new();
    for (index, op) in OpStream::new(spec, stream_id)
        .take(ops as usize)
        .enumerate()
    {
        let intended = Duration::from_nanos(intended_start_ns(index as u64, rate));
        // Open-loop pacing: sleep only when ahead of schedule. When the
        // server (or a previous response) made us late, send
        // immediately — the lateness is charged to this op's latency.
        if let Some(ahead) = intended.checked_sub(start.elapsed()) {
            if !ahead.is_zero() {
                thread::sleep(ahead);
            }
        }
        outcome.attempted += 1;
        if writeln!(writer, "{}", op.command_line()).is_err() {
            outcome.err += 1 + ops - outcome.attempted;
            break;
        }
        response.clear();
        match reader.read_line(&mut response) {
            Ok(n) if n > 0 => {
                // Latency anchored at the *intended* start, not the send.
                let elapsed = start.elapsed();
                let latency = elapsed.checked_sub(intended).unwrap_or(Duration::ZERO);
                histogram.record_ns(u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX));
                let line = response.trim_end();
                if line.starts_with("ERR busy") {
                    outcome.shed += 1;
                } else if line.starts_with("ERR") {
                    outcome.err += 1;
                } else {
                    outcome.ok += 1;
                    outcome.by_kind[kind_slot(op.kind)] += 1;
                }
            }
            _ => {
                // Dead connection: the rest of the schedule was offered
                // but can never complete — count it, don't omit it.
                outcome.err += 1 + ops - outcome.attempted;
                break;
            }
        }
    }
    let _ = writeln!(writer, "QUIT");
    Ok(outcome)
}

pub fn run(argv: &[String]) -> Result<u8, String> {
    let flags = Flags::parse(argv)?;
    let addr = flags.require("addr")?.to_string();
    let rate: u64 = flags.get_parsed_or("rate", 1_000)?;
    if rate == 0 {
        return Err("flag --rate must be at least 1".into());
    }
    let duration_secs: u64 = flags.get_parsed_or("duration-secs", 10)?;
    let conns: u64 = flags.get_parsed_or("conns", 4)?;
    if conns == 0 {
        return Err("flag --conns must be at least 1".into());
    }
    let seed: u64 = flags.get_parsed_or("seed", 0x5EED)?;
    let vertices: u64 = flags.get_parsed_or("vertices", 10_000)?;
    let zipf_s: f64 = flags.get_parsed_or("zipf", DEFAULT_ZIPF_S)?;
    let mix = match flags.get("mix") {
        Some(raw) => MixSpec::parse(raw)?,
        None => streamlink_core::loadgen::DEFAULT_MIX,
    };
    let slo_p99_ms: u64 = flags.get_parsed_or("slo-p99-ms", 0)?;
    let total_ops: u64 = flags.get_parsed_or("ops", rate.saturating_mul(duration_secs))?;
    if total_ops == 0 {
        return Err("nothing to do: --ops 0 (or --duration-secs 0)".into());
    }

    let spec = WorkloadSpec {
        seed,
        vertices: vertices.max(2),
        zipf_s,
        mix,
    };
    // Split rate and op count across connections; remainders go to the
    // first connections so the totals come out exact.
    let histogram = LatencyHistogram::new();
    let errors = AtomicU64::new(0);
    let run_start = Instant::now();
    let outcomes: Vec<ConnOutcome> = thread::scope(|scope| {
        let mut handles = Vec::new();
        for id in 0..conns {
            let conn_ops = total_ops / conns + u64::from(id < total_ops % conns);
            let conn_rate = (rate / conns + u64::from(id < rate % conns)).max(1);
            let addr = &addr;
            let spec = &spec;
            let histogram = &histogram;
            let errors = &errors;
            handles.push(scope.spawn(move || {
                match drive_connection(addr, spec, id, conn_ops, conn_rate, histogram) {
                    Ok(outcome) => outcome,
                    Err(e) => {
                        eprintln!("conn {id}: {e}");
                        errors.fetch_add(1, Ordering::Relaxed);
                        ConnOutcome {
                            attempted: conn_ops,
                            err: conn_ops,
                            ..ConnOutcome::default()
                        }
                    }
                }
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let duration = run_start.elapsed();
    if errors.load(Ordering::Relaxed) == conns {
        return Err(format!("no connection could reach {addr}"));
    }

    let merged = outcomes.iter().fold(ConnOutcome::default(), |mut acc, o| {
        acc.attempted += o.attempted;
        acc.ok += o.ok;
        acc.err += o.err;
        acc.shed += o.shed;
        for (slot, n) in acc.by_kind.iter_mut().zip(o.by_kind) {
            *slot += n;
        }
        acc
    });
    let latency = histogram.summary();
    let completed = merged.ok + merged.err + merged.shed;
    let secs = duration.as_secs_f64().max(1e-9);
    let report = LoadReport {
        version: crate::build_version().to_string(),
        seed,
        conns,
        duration_ms: u64::try_from(duration.as_millis()).unwrap_or(u64::MAX),
        offered_ops_per_sec: rate,
        achieved_ops_per_sec: completed as f64 / secs,
        ops_attempted: merged.attempted,
        ops_ok: merged.ok,
        ops_err: merged.err,
        ops_shed: merged.shed,
        mix_insert: merged.by_kind[0],
        mix_jaccard: merged.by_kind[1],
        mix_degree: merged.by_kind[2],
        mix_explain: merged.by_kind[3],
        latency,
        slo_p99_ms,
        slo_pass: LoadReport::slo_verdict(slo_p99_ms, &latency),
    };
    let json = report.render_json();
    println!("{json}");
    if let Some(path) = flags.get("report") {
        std::fs::write(path, &json).map_err(|e| format!("cannot write report to {path}: {e}"))?;
    }
    eprintln!(
        "loadgen: {} ops in {:.1}s (offered {rate}/s, achieved {:.0}/s) \
         ok={} err={} shed={} p99={:.3}ms slo={}",
        merged.attempted,
        secs,
        report.achieved_ops_per_sec,
        merged.ok,
        merged.err,
        merged.shed,
        report.latency.p99_ns as f64 / 1e6,
        if report.slo_pass { "pass" } else { "BREACH" },
    );
    Ok(report.exit_code())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_slots_cover_all_kinds_distinctly() {
        let slots = [
            kind_slot(OpKind::Insert),
            kind_slot(OpKind::Jaccard),
            kind_slot(OpKind::Degree),
            kind_slot(OpKind::Explain),
        ];
        let mut sorted = slots;
        sorted.sort_unstable();
        assert_eq!(sorted, [0, 1, 2, 3]);
    }

    #[test]
    fn run_rejects_bad_flags() {
        let argv = |s: &[&str]| -> Vec<String> { s.iter().map(ToString::to_string).collect() };
        assert!(run(&argv(&[])).is_err(), "missing --addr");
        assert!(run(&argv(&["--addr", "127.0.0.1:1", "--rate", "0"])).is_err());
        assert!(run(&argv(&["--addr", "127.0.0.1:1", "--conns", "0"])).is_err());
        assert!(run(&argv(&["--addr", "127.0.0.1:1", "--ops", "0"])).is_err());
        assert!(
            run(&argv(&["--addr", "127.0.0.1:1", "--mix", "0/0/0/0"])).is_err(),
            "all-zero mix"
        );
    }

    #[test]
    fn run_fails_cleanly_when_no_server_listens() {
        // Port 1 on localhost: connection refused, not a hang.
        let argv: Vec<String> = [
            "--addr",
            "127.0.0.1:1",
            "--ops",
            "10",
            "--rate",
            "1000",
            "--conns",
            "2",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let err = run(&argv).unwrap_err();
        assert!(err.contains("no connection could reach"), "{err}");
    }
}
