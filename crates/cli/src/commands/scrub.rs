//! `streamlink scrub` — offline integrity audit (and repair) of a data
//! directory.
//!
//! Walks every snapshot generation and WAL segment, verifies the
//! framing each record actually uses — text v2 (versioned header +
//! whole-file CRC for snapshots, per-record CRC for journal lines) or
//! binary v3 (checksummed envelopes) — and prints one verdict per
//! file. Mixed-format directories are normal mid-migration; scrub
//! audits each record under its own framing. With `--repair` it heals
//! what it can: torn tails are truncated away, corrupt records and
//! snapshot generations are moved into `quarantine/` so restart-time
//! recovery never sees them.
//!
//! ## Exit codes (the contract with operators and CI)
//!
//! * `0` — every file verified clean.
//! * `1` — damage found, all of it survivable without losing acked
//!   records: torn tails (never-acked crash debris), corrupt records
//!   still covered by a good snapshot, corrupt generations shadowed by
//!   an older good generation plus the retained WAL.
//! * `2` — acked records were lost: corruption above the best good
//!   snapshot's coverage, or a replay gap the snapshots cannot bridge.
//!
//! The same exit code is published as the `scrub.last_exit` gauge
//! (visible via `--metrics-out`).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use streamlink_core::codec;
use streamlink_core::durable;
use streamlink_core::journal::{self, JournalEntry, RecordKind};
use streamlink_core::snapshot::{SnapshotIntegrity, StoreSnapshot};

use crate::args::Flags;

pub fn run(argv: &[String]) -> Result<u8, String> {
    let mut repair = false;
    let filtered: Vec<String> = argv
        .iter()
        .filter(|a| {
            let hit = a.as_str() == "--repair";
            repair |= hit;
            !hit
        })
        .cloned()
        .collect();
    let flags = Flags::parse(&filtered)?;
    let dir = PathBuf::from(flags.require("data-dir")?);
    if !dir.is_dir() {
        return Err(format!("--data-dir {}: not a directory", dir.display()));
    }
    let report = scrub(&dir, repair).map_err(|e| format!("scrub {}: {e}", dir.display()))?;
    let code = report.exit_code();
    streamlink_core::metrics::global()
        .scrub_last_exit
        .set(u64::from(code));
    super::write_metrics_out(&flags)?;
    super::write_trace_out(&flags)?;
    println!("{}", report.summary(repair));
    Ok(code)
}

/// Everything one scrub pass established about a data directory.
#[derive(Debug, Default)]
struct ScrubReport {
    snapshots_ok: usize,
    snapshots_corrupt: usize,
    records_ok: u64,
    records_legacy: u64,
    records_binary: u64,
    corrupt_records: u64,
    tail_dropped: u64,
    torn_files: usize,
    /// Acked records no surviving artifact can reproduce.
    lost_acked: u64,
}

impl ScrubReport {
    fn clean(&self) -> bool {
        self.snapshots_corrupt == 0 && self.corrupt_records == 0 && self.torn_files == 0
    }

    fn exit_code(&self) -> u8 {
        if self.lost_acked > 0 {
            2
        } else if self.clean() {
            0
        } else {
            1
        }
    }

    fn summary(&self, repair: bool) -> String {
        let state = if self.lost_acked > 0 {
            "LOSS"
        } else if self.clean() {
            "CLEAN"
        } else if repair {
            "REPAIRED"
        } else {
            "DAMAGED (rerun with --repair)"
        };
        format!(
            "scrub: {} snapshot(s) ok, {} corrupt; {} record(s) ok ({} legacy v1, \
             {} binary v3), {} corrupt, {} torn-tail; {} acked record(s) lost — {state}",
            self.snapshots_ok,
            self.snapshots_corrupt,
            self.records_ok,
            self.records_legacy,
            self.records_binary,
            self.corrupt_records,
            self.tail_dropped,
            self.lost_acked,
        )
    }
}

/// Reads one snapshot through the same verifying path recovery uses,
/// returning a framing tag for the verdict line and the edge count it
/// carries.
fn check_snapshot(path: &Path) -> io::Result<(&'static str, u64)> {
    let binary = codec::is_binary(&fs::read(path)?);
    let (snap, integrity) = StoreSnapshot::read_with_integrity(path)?;
    let tag = if binary {
        "v3 verified"
    } else {
        match integrity {
            SnapshotIntegrity::Verified => "v2 verified",
            SnapshotIntegrity::Legacy => "v1 legacy, no checksum",
        }
    };
    Ok((tag, snap.edges_processed))
}

/// One journal record, owned (scrub outlives the segment buffer it was
/// scanned from), classified for repair and quarantine naming.
struct ScannedLine {
    /// The record's stored bytes: text lines without their newline
    /// terminator, binary envelopes whole.
    raw: Vec<u8>,
    /// The verified record, `None` for anything replay would not apply
    /// (malformed, bad CRC, truncated envelope, or an unterminated
    /// final line).
    entry: Option<JournalEntry>,
    kind: RecordKind,
}

/// Splits a segment into records the way replay does, sniffing each
/// record's framing (binary envelope vs text line) from its first
/// bytes.
fn scan_lines(bytes: &[u8]) -> Vec<ScannedLine> {
    journal::scan_segment(bytes)
        .into_iter()
        .map(|r| ScannedLine {
            raw: r.raw.to_vec(),
            entry: r.entry,
            kind: r.kind,
        })
        .collect()
}

fn scrub(dir: &Path, repair: bool) -> io::Result<ScrubReport> {
    let mut report = ScrubReport::default();

    // --- Snapshots: every generation plus the legacy snapshot.json. ---
    // `coverage` is the highest WAL seq a *good* snapshot reproduces;
    // journal corruption at or below it costs nothing.
    let mut coverage = 0u64;
    let mut max_corrupt_gen = 0u64;
    let mut snapshots: Vec<(Option<u64>, PathBuf)> = durable::list_generations(dir)?
        .into_iter()
        .map(|(seq, path)| (Some(seq), path))
        .collect();
    let legacy_snapshot = durable::snapshot_path(dir);
    if legacy_snapshot.exists() {
        snapshots.insert(0, (None, legacy_snapshot));
    }
    for (gen_seq, path) in snapshots {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("snapshot")
            .to_string();
        match check_snapshot(&path) {
            Ok((tag, edges)) => {
                report.snapshots_ok += 1;
                // A legacy file carries no watermark in its name; its
                // edge count *is* its seq (pre-quarantine data dirs).
                coverage = coverage.max(gen_seq.unwrap_or(edges));
                println!("{name}: OK ({tag}, {edges} edges)");
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                report.snapshots_corrupt += 1;
                max_corrupt_gen = max_corrupt_gen.max(gen_seq.unwrap_or(0));
                if repair {
                    let moved = journal::quarantine_file(dir, &path);
                    let action = if moved {
                        "quarantined"
                    } else {
                        "quarantine FAILED"
                    };
                    println!("{name}: CORRUPT ({e}) — {action}");
                } else {
                    println!("{name}: CORRUPT ({e})");
                }
            }
            Err(e) => return Err(e),
        }
    }

    // --- WAL segments, classified exactly as replay classifies. ---
    let segments = journal::list_segments(dir)?;
    let mut scanned: Vec<(String, PathBuf, Vec<ScannedLine>)> = Vec::new();
    for (_, path) in &segments {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("wal.unknown.log")
            .to_string();
        scanned.push((name, path.clone(), scan_lines(&fs::read(path)?)));
    }

    // The last valid record in the whole chain: invalid lines after it
    // are the torn tail, invalid lines before it are rotted acked data.
    let last_valid: Option<(usize, usize)> = scanned
        .iter()
        .enumerate()
        .flat_map(|(seg, (_, _, lines))| {
            lines
                .iter()
                .enumerate()
                .filter(|(_, l)| l.entry.is_some())
                .map(move |(i, _)| (seg, i))
        })
        .next_back();

    let mut first_seq: Option<u64> = None;
    let mut prev_seq = 0u64;
    for (seg_idx, (name, path, lines)) in scanned.iter().enumerate() {
        let mut file_ok = 0u64;
        let mut file_legacy = 0u64;
        let mut file_binary = 0u64;
        let mut file_corrupt: Vec<usize> = Vec::new();
        let mut file_torn = 0u64;
        for (line_idx, line) in lines.iter().enumerate() {
            match &line.entry {
                Some(entry) => {
                    file_ok += 1;
                    file_legacy += u64::from(line.kind == RecordKind::TextV1);
                    file_binary += u64::from(line.kind == RecordKind::Binary);
                    first_seq = Some(first_seq.map_or(entry.seq, |s| s.min(entry.seq)));
                    prev_seq = entry.seq;
                }
                None if line.raw.is_empty() && Some((seg_idx, line_idx)) > last_valid => {
                    // Blank padding at the end of the chain.
                }
                None if last_valid.is_none_or(|pos| (seg_idx, line_idx) > pos) => {
                    file_torn += 1;
                }
                None => {
                    file_corrupt.push(line_idx);
                    // The rotted record's seq is gone with its bytes;
                    // its slot in the chain pins it well enough to ask
                    // whether a snapshot still covers it.
                    if prev_seq + 1 > coverage {
                        report.lost_acked += 1;
                    }
                }
            }
        }
        report.records_ok += file_ok;
        report.records_legacy += file_legacy;
        report.records_binary += file_binary;
        report.corrupt_records += file_corrupt.len() as u64;
        report.tail_dropped += file_torn;
        report.torn_files += usize::from(file_torn > 0);

        let mut verdict = if file_corrupt.is_empty() && file_torn == 0 {
            format!("OK ({file_ok} record(s))")
        } else {
            let mut parts = Vec::new();
            if !file_corrupt.is_empty() {
                parts.push(format!("{} corrupt record(s)", file_corrupt.len()));
            }
            if file_torn > 0 {
                parts.push(format!("torn tail ({file_torn} partial line(s))"));
            }
            format!("CORRUPT: {}", parts.join(", "))
        };
        if file_legacy > 0 {
            verdict.push_str(&format!(", {file_legacy} legacy v1 record(s)"));
        }
        if file_binary > 0 {
            verdict.push_str(&format!(", {file_binary} binary v3 record(s)"));
        }

        if repair && (!file_corrupt.is_empty() || file_torn > 0) {
            for &line_idx in &file_corrupt {
                journal::quarantine_bytes(
                    dir,
                    &format!("{name}.line{line_idx}.rec"),
                    &lines[line_idx].raw,
                );
            }
            rewrite_segment(path, lines)?;
            verdict.push_str(" — repaired (bad records quarantined, tail truncated)");
        }
        println!("{name}: {verdict}");
    }

    // --- Replay-gap accounting the per-record checks cannot see. ---
    if let Some(first) = first_seq {
        // The WAL only reaches back to `first`; everything older must
        // come from a good snapshot.
        if first > coverage.saturating_add(1) {
            let gap = first - coverage - 1;
            report.lost_acked += gap;
            println!(
                "gap: records {}..={} are neither in the WAL nor covered by a \
                 good snapshot ({gap} record(s) unrecoverable)",
                coverage + 1,
                first - 1,
            );
        }
    } else if max_corrupt_gen > coverage {
        // No journal records at all, and the best snapshot left standing
        // covers less than a corrupt generation claimed to.
        let gap = max_corrupt_gen - coverage;
        report.lost_acked += gap;
        println!(
            "gap: corrupt generation covered seq {max_corrupt_gen} but the best \
             surviving snapshot stops at {coverage} ({gap} record(s) unrecoverable)",
        );
    }

    Ok(report)
}

/// Rewrites a damaged segment in place to exactly its valid records, in
/// order and each under its original framing (raw bytes preserved, so a
/// repair never re-encodes acked data): corrupt records (already
/// quarantined by the caller) disappear and the torn tail is truncated
/// away. Atomic via the temp-file-then-rename protocol the snapshots
/// use.
fn rewrite_segment(path: &Path, lines: &[ScannedLine]) -> io::Result<()> {
    let mut content = Vec::new();
    for line in lines {
        if line.entry.is_none() {
            continue;
        }
        content.extend_from_slice(&line.raw);
        if line.kind != RecordKind::Binary {
            content.push(b'\n');
        }
    }
    let tmp = path.with_extension("log.tmp");
    fs::write(&tmp, &content)?;
    fs::rename(&tmp, path)
}
