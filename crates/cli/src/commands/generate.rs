//! `streamlink generate` — materialize a dataset to disk.

use graphstream::io;

use crate::args::Flags;
use crate::commands::{parse_dataset, parse_scale};

pub fn run(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv)?;
    let dataset = parse_dataset(flags.require("dataset")?)?;
    let scale = parse_scale(flags.get("scale"))?;
    let out = flags.require("out")?;
    let format = flags.get("format").unwrap_or("csv");

    let stream = dataset.stream(scale);
    match format {
        "csv" => {
            let file =
                std::fs::File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
            io::write_csv(stream.as_slice(), std::io::BufWriter::new(file))
                .map_err(|e| format!("cannot write {out}: {e}"))?;
        }
        "bin" => {
            let bytes = io::encode_binary(stream.as_slice());
            std::fs::write(out, &bytes).map_err(|e| format!("cannot write {out}: {e}"))?;
        }
        "compact" => {
            let bytes = io::encode_compact(stream.as_slice());
            std::fs::write(out, &bytes).map_err(|e| format!("cannot write {out}: {e}"))?;
        }
        other => return Err(format!("unknown format {other:?} (csv|bin|compact)")),
    }
    println!(
        "wrote {} edges of {} ({:?}) to {out} [{format}]",
        stream.len(),
        dataset.spec().name,
        scale
    );
    Ok(())
}
