//! `streamlink evaluate` — temporal link-prediction evaluation comparing
//! the sketch backend against exact scoring on a simulated dataset.

use graphstream::EdgeStream;
use linkpred::{Evaluator, ExactScorer, Measure, SketchScorer};
use streamlink_core::{SketchConfig, SketchStore};

use crate::args::Flags;
use crate::commands::{parse_dataset, parse_scale};

pub fn run(argv: &[String]) -> Result<(), String> {
    let flags = Flags::parse(argv)?;
    let dataset = parse_dataset(flags.require("dataset")?)?;
    let scale = parse_scale(flags.get("scale"))?;
    let slots = flags.get_parsed_or("slots", 256usize)?;
    let fraction = flags.get_parsed_or("fraction", 0.8f64)?;
    let seed = flags.get_parsed_or("seed", 0u64)?;
    if !(0.0..1.0).contains(&fraction) || fraction == 0.0 {
        return Err(format!("--fraction {fraction} must be in (0, 1)"));
    }
    if slots == 0 {
        return Err("--slots must be positive".into());
    }

    let stream = dataset.stream(scale);
    let evaluator = Evaluator::new(&stream, fraction, 4, seed);

    let exact = ExactScorer::from_edges(evaluator.train().edges());
    let mut store = SketchStore::new(SketchConfig::with_slots(slots).seed(seed));
    store.insert_stream(evaluator.train().edges());
    let sketch = SketchScorer::new(store);

    let ks = [10, 50, 100];
    let mut reports = Vec::new();
    for measure in Measure::PAPER_TARGETS {
        reports.push(evaluator.evaluate(&exact, measure, &ks));
        reports.push(evaluator.evaluate(&sketch, measure, &ks));
    }
    let json = serde_json::to_string_pretty(&reports)
        .map_err(|e| format!("cannot serialize reports: {e}"))?;
    println!("{json}");
    crate::commands::write_metrics_out(&flags)?;
    crate::commands::write_trace_out(&flags)?;
    Ok(())
}
