//! CLI subcommand implementations.

pub mod cluster_events;
pub mod convert;
pub mod evaluate;
pub mod generate;
pub mod ingest;
pub mod loadgen;
pub mod query;
pub mod recommend;
pub mod scrub;
pub mod serve;
pub mod stats;
pub mod top;

use datasets::{Scale, SimulatedDataset};
use graphstream::{io, MemoryStream, StreamError};

use crate::args::Flags;

/// Honors the shared `--metrics-out PATH` flag of batch commands: dumps
/// the global metrics registry as JSON (schema `streamlink.metrics.v1`)
/// so experiment harnesses can record the same counters the `METRICS`
/// protocol command exports. A missing flag is a no-op.
pub fn write_metrics_out(flags: &Flags) -> Result<(), String> {
    let Some(path) = flags.get("metrics-out") else {
        return Ok(());
    };
    let json = streamlink_core::metrics::global().snapshot().render_json();
    std::fs::write(path, json).map_err(|e| format!("cannot write metrics to {path}: {e}"))
}

/// Honors the shared `--trace-out PATH` flag of batch commands: dumps
/// the newest completed trace spans as JSON (schema
/// `streamlink.trace.v1`) so a slow batch run can be broken down after
/// the fact without a live server. A missing flag is a no-op.
pub fn write_trace_out(flags: &Flags) -> Result<(), String> {
    let Some(path) = flags.get("trace-out") else {
        return Ok(());
    };
    let json = streamlink_core::trace::render_trace_json(streamlink_core::trace::RING_CAPACITY);
    std::fs::write(path, json).map_err(|e| format!("cannot write trace to {path}: {e}"))
}

/// Parses `--scale` values.
pub fn parse_scale(raw: Option<&str>) -> Result<Scale, String> {
    match raw.unwrap_or("small") {
        "small" => Ok(Scale::Small),
        "standard" => Ok(Scale::Standard),
        "large" => Ok(Scale::Large),
        other => Err(format!("unknown scale {other:?} (small|standard|large)")),
    }
}

/// Parses `--dataset` values.
pub fn parse_dataset(key: &str) -> Result<SimulatedDataset, String> {
    SimulatedDataset::from_key(key)
        .ok_or_else(|| format!("unknown dataset {key:?} (dblp|flickr|wiki|youtube|smallworld)"))
}

/// Loads an edge file, auto-detecting the binary magic vs CSV.
pub fn load_stream(path: &str) -> Result<MemoryStream, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let result = if bytes.len() >= 4 && bytes[..4] == io::BINARY_MAGIC.to_le_bytes() {
        io::decode_binary(bytes.as_slice())
    } else if bytes.len() >= 4 && bytes[..4] == io::COMPACT_MAGIC.to_le_bytes() {
        io::decode_compact(bytes.as_slice())
    } else {
        io::read_csv(bytes.as_slice())
    };
    result.map_err(|e: StreamError| format!("cannot parse {path}: {e}"))
}
