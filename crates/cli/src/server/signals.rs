//! SIGINT/SIGTERM → a process-wide shutdown flag.
//!
//! The handler does the only thing that is async-signal-safe here: one
//! atomic store. Every serving loop polls [`shutdown_requested`] (the
//! accept loop every ~25 ms, connection loops on their read-timeout
//! tick), so a signal turns into a graceful drain rather than an
//! abrupt exit.
//!
//! This is the one place the CLI crate touches `unsafe`: registering
//! the handler with libc's `signal(2)`. The raw binding keeps the
//! dependency set at the workspace baseline (no `libc`/`signal-hook`
//! crates).

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn record_shutdown(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT and SIGTERM handlers. Idempotent; call once
/// before the accept loop starts.
pub fn install() {
    let handler: extern "C" fn(i32) = record_shutdown;
    // SAFETY: `record_shutdown` only performs an atomic store, which is
    // async-signal-safe; `signal` itself is safe to call with a valid
    // function pointer for these two catchable signals.
    unsafe {
        signal(SIGINT, handler as usize);
        signal(SIGTERM, handler as usize);
    }
}

/// Whether a shutdown signal has been received (process-wide).
#[must_use]
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_is_idempotent_and_flag_starts_clear() {
        install();
        install();
        // The test harness has sent no signal; the flag must be clear,
        // otherwise every in-process server test would shut down early.
        assert!(!shutdown_requested());
    }
}
