//! Automatic failover: lease-based promotion, epoch fencing, and the
//! rejoin/handoff path for revived primaries.
//!
//! The decision logic — who may write, who may be elected, which vote
//! to grant — lives in [`streamlink_core::failover`] as a pure state
//! machine. This module wires it to the wire:
//!
//! ```text
//! REPL LEASE <id> <epoch> <applied_seq> [corr=<id>]
//!     replica -> primary, every puller tick. The primary treats it as
//!     a lease renewal and answers `OK lease epoch=<e>
//!     primary_seq=<s> tl=<timeline>`; a stale sender gets
//!     `ERR fenced epoch=<e>`, a non-primary answers
//!     `ERR not-primary epoch=<e>`.
//! REPL VOTE <candidate> <target_epoch> <data_epoch> <candidate_seq> [corr=<id>]
//!     candidate -> everyone, once its lease expired and its stagger
//!     slot came up. Granted (`OK vote granted epoch=<t>`) at most once
//!     per epoch, only to candidates at least as caught up as the
//!     granter, and only while the granter's own lease agrees the
//!     primary is gone.
//! REPL HANDOFF <old_epoch> F <seq> <u> <v> <crc> [corr=<id>]
//!     a revived node -> the current primary: one un-replicated entry
//!     from a dead timeline, re-acked as a fresh write. Deduped by a
//!     per-old-epoch contiguous high-water mark, so retries and
//!     concurrent survivors never double-insert.
//! ```
//!
//! Every message above accepts an optional trailing `corr=<id>` token:
//! a correlation id minted by the sender at session/campaign start,
//! stamped into the [`streamlink_core::trace`] span on both ends and
//! into every [`streamlink_core::events`] journal entry the exchange
//! produces — so one id threads an election (or rejoin) across every
//! node it touched.
//!
//! This module is also where the control plane becomes *observable*:
//! every election, vote, promotion, fence, handoff and resync is
//! recorded into the global [`streamlink_core::events`] journal with
//! `(node, epoch, applied_seq, tick_ms)` provenance, and the
//! `CLUSTER INFO` / `CLUSTER STATUS` commands (plus HTTP `/clusterz`)
//! aggregate every member's self-reported view into one JSON snapshot
//! that flags belief divergence (two primaries, epoch skew, lag-SLO
//! breach, unreachable members).
//!
//! ## Why split-brain is impossible by construction
//!
//! A primary accepts a write only while a majority of the cluster
//! (itself included) has renewed its lease within one lease window
//! ([`FailoverNode::writable`]). A candidate is promoted only after a
//! majority granted its target epoch, and granting requires the
//! granter's *own* lease to have expired. Any freshness-majority and
//! any grant-majority intersect in at least one node, and that node
//! cannot simultaneously have renewed the old primary's lease and
//! considered it dead — so the old primary's writable window provably
//! closes before the new epoch can open. Every write is additionally
//! epoch-fenced at the protocol layer (`write_gate`), so a revived
//! pre-failover primary answers `ERR fenced` instead of accepting.
//!
//! ## Durability across the fence
//!
//! Roles are never persisted — a restarting node always rejoins as a
//! replica and re-learns the epoch. What *is* persisted (durable nodes
//! only, `<data-dir>/cluster.state`) is the epoch, the vote, and the
//! timeline, so a revived node cannot vote twice in an epoch or
//! bootstrap a second epoch-1 primary. A write acked on a dead
//! timeline survives wherever it is durable: the revived node replays
//! its own journal tail through `REPL HANDOFF` before resyncing onto
//! the new timeline. Experiment E25 (`exp_failover`) chaos-tests
//! exactly these invariants.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use streamlink_core::events::{self, ClusterEvent, EventKind};
use streamlink_core::failover::{ExchangeOutcome, FailoverNode, Role, Timeline};
use streamlink_core::journal::{self, JournalEntry, LineCheck};
use streamlink_core::{metrics, trace, PullOutcome, WireFormat};

use super::protocol::parse_bounded;
use super::replication::{
    adopt_config, id_seed, jittered, new_corr_id, next_backoff, pull_once, readonly_moved,
    say_hello, sleep_poll, snapshot_round_with, take_corr, Lcg, PrimaryLink, ReplicaRuntime,
};
use super::ServerState;

/// Flag-level cluster settings, assembled by `streamlink serve`.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// This node's own address as peers dial it (also its node id and
    /// what `MOVED` hints point at).
    pub advertise: String,
    /// The other members' protocol addresses.
    pub peers: Vec<String>,
    /// Lease window `L`: a primary stays writable while a majority
    /// renewed within `L`; elections start after `2L` of silence.
    pub lease: Duration,
    /// Seed epoch 1 as primary on a fresh cluster (`--primary`).
    /// Ignored — loudly — once a persisted epoch exists.
    pub bootstrap_primary: bool,
}

/// Shared cluster state: the failover node behind a lock, the fork
/// timeline, and lock-free caches for the hot write path.
pub struct ClusterRuntime {
    node: Mutex<FailoverNode>,
    timeline: Mutex<Timeline>,
    peers: Vec<String>,
    advertise: String,
    lease_ms: u64,
    started: Instant,
    /// Current belief where the primary is (ourselves when primary).
    believed: Mutex<Option<String>>,
    /// Cached role for the lock-free [`write_gate`] fast path.
    role_primary: AtomicBool,
    /// Cached writable deadline, in ms since `started` (0 = fenced).
    /// Refreshed on every lease/role event; between events the deadline
    /// can only shrink with time, which the load-side compare handles.
    writable_until: AtomicU64,
    epoch_cache: AtomicU64,
    /// The epoch our *data* belongs to: the epoch we were last
    /// contiguously replicating (or serving) in. Compared against the
    /// primary's fork timeline to detect a dead-timeline tail.
    data_epoch: AtomicU64,
    /// Durable home of `cluster.state` (epoch/vote/timeline), `None`
    /// for in-memory nodes (which may double-vote after a restart — an
    /// accepted, documented trade).
    dir: Option<PathBuf>,
    probe_cursor: AtomicUsize,
}

impl ClusterRuntime {
    /// Builds the runtime, restoring any persisted epoch/vote/timeline
    /// from `dir` and applying `--primary` bootstrap (epoch 0 only).
    /// `local_seq` is the node's recovered WAL high-water mark, used as
    /// the epoch-1 fork base when bootstrapping.
    ///
    /// # Errors
    /// Fails when the durable cluster state cannot be written — a node
    /// that cannot persist its vote must not join the cluster.
    pub fn new(config: &ClusterConfig, dir: Option<&Path>, local_seq: u64) -> io::Result<Self> {
        let cluster_size = config.peers.len() + 1;
        let lease_ms = u64::try_from(config.lease.as_millis())
            .unwrap_or(u64::MAX)
            .max(1);
        let mut node = FailoverNode::new(&config.advertise, cluster_size, lease_ms);
        let mut timeline = Timeline::new();
        let mut data_epoch = 0u64;
        if let Some(dir) = dir {
            if let Some(saved) = load_state_file(&state_path(dir)) {
                node.restore(saved.epoch, saved.voted);
                timeline = saved.timeline;
                data_epoch = saved.data_epoch;
                eprintln!(
                    "failover: restored cluster state (epoch {}, data epoch {data_epoch}, tl {})",
                    saved.epoch,
                    timeline.render(),
                );
            }
        }
        let mut believed = None;
        let mut bootstrapped = false;
        if config.bootstrap_primary {
            if node.bootstrap_primary() {
                timeline.record_fork(1, local_seq);
                data_epoch = 1;
                believed = Some(config.advertise.clone());
                bootstrapped = true;
                eprintln!("failover: bootstrapped as primary at epoch 1 (base seq {local_seq})");
            } else {
                eprintln!(
                    "failover: --primary ignored: cluster already at epoch {} \
                     (rejoining as a replica; use PROMOTE to force)",
                    node.epoch(),
                );
            }
        }
        let runtime = ClusterRuntime {
            epoch_cache: AtomicU64::new(node.epoch()),
            role_primary: AtomicBool::new(node.role() == Role::Primary),
            writable_until: AtomicU64::new(0),
            data_epoch: AtomicU64::new(data_epoch),
            node: Mutex::new(node),
            timeline: Mutex::new(timeline),
            peers: config.peers.clone(),
            advertise: config.advertise.clone(),
            lease_ms,
            started: Instant::now(),
            believed: Mutex::new(believed),
            dir: dir.map(Path::to_path_buf),
            probe_cursor: AtomicUsize::new(0),
        };
        runtime.refresh_cache();
        runtime.persist_state()?;
        if bootstrapped {
            runtime.record_event(
                EventKind::Bootstrap,
                1,
                local_seq,
                format!("bootstrapped as primary (base seq {local_seq})"),
                None,
            );
        }
        runtime.record_event(
            EventKind::ConfigChange,
            runtime.epoch(),
            local_seq,
            format!(
                "cluster config: peers={} lease_ms={} durable={}",
                runtime.peers.len(),
                runtime.lease_ms,
                runtime.dir.is_some(),
            ),
            None,
        );
        Ok(runtime)
    }

    fn node(&self) -> MutexGuard<'_, FailoverNode> {
        self.node.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn timeline(&self) -> MutexGuard<'_, Timeline> {
        self.timeline.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Monotonic milliseconds since this runtime was created — the
    /// clock every lease/candidacy decision runs on, and the
    /// `tick_ms` provenance stamp on every recorded cluster event.
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// This node's advertised address (its cluster id).
    #[must_use]
    pub fn advertise(&self) -> &str {
        &self.advertise
    }

    /// The other members' protocol addresses — the fan-out roster for
    /// `CLUSTER STATUS` / `/clusterz`.
    #[must_use]
    pub fn peers(&self) -> &[String] {
        &self.peers
    }

    /// Records one control-plane event into the global
    /// [`streamlink_core::events`] journal, stamped with this node's
    /// identity and monotonic clock.
    fn record_event(
        &self,
        kind: EventKind,
        epoch: u64,
        applied_seq: u64,
        detail: String,
        corr_id: Option<u64>,
    ) {
        events::emit(ClusterEvent {
            node_id: self.advertise.clone(),
            epoch,
            applied_seq,
            tick_ms: self.now_ms(),
            kind,
            detail,
            corr_id,
        });
    }

    /// The lease window in milliseconds.
    #[must_use]
    pub fn lease_ms(&self) -> u64 {
        self.lease_ms
    }

    /// How many *other* members this node knows about.
    #[must_use]
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// The current fencing epoch (cached; exact after every exchange).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch_cache.load(Ordering::Relaxed)
    }

    /// The epoch this node's local data belongs to.
    #[must_use]
    pub fn data_epoch(&self) -> u64 {
        self.data_epoch.load(Ordering::Relaxed)
    }

    /// Whether this node currently holds the primary role (it may still
    /// be fenced — see [`Self::writable_now`]).
    #[must_use]
    pub fn is_primary(&self) -> bool {
        self.role_primary.load(Ordering::Relaxed)
    }

    /// Lock-free write check: primary role *and* inside the cached
    /// majority-lease window.
    #[must_use]
    pub fn writable_now(&self) -> bool {
        self.is_primary() && self.now_ms() <= self.writable_until.load(Ordering::Relaxed)
    }

    /// Where this node believes the primary is (itself when primary).
    #[must_use]
    pub fn believed_primary(&self) -> Option<String> {
        if self.is_primary() {
            return Some(self.advertise.clone());
        }
        self.believed
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn set_believed(&self, addr: Option<String>) {
        *self.believed.lock().unwrap_or_else(PoisonError::into_inner) = addr;
    }

    /// The rendered fork timeline (`REPL HELLO` / `REPL LEASE` `tl=`).
    #[must_use]
    pub fn timeline_spec(&self) -> String {
        self.timeline().render()
    }

    fn adopt_timeline(&self, tl: &Timeline) {
        *self.timeline() = tl.clone();
    }

    fn set_data_epoch(&self, epoch: u64) {
        self.data_epoch.store(epoch, Ordering::Relaxed);
    }

    /// Re-derives the lock-free caches (and the epoch gauge) from the
    /// node. Call after *any* mutation of the failover state.
    fn refresh_cache(&self) {
        let now = self.now_ms();
        let (role, epoch, deadline) = {
            let node = self.node();
            (node.role(), node.epoch(), node.writable_deadline(now))
        };
        self.epoch_cache.store(epoch, Ordering::Relaxed);
        self.writable_until
            .store(deadline.unwrap_or(0), Ordering::Relaxed);
        // Order matters for the gate: publish the deadline before the
        // role so a freshly-promoted node is never "primary with a
        // stale fence" in between.
        self.role_primary
            .store(role == Role::Primary, Ordering::Release);
        metrics::global().repl_epoch.set(epoch);
    }

    /// Refreshes the `repl.epoch` / `repl.lease_ms` gauges.
    pub fn update_gauges(&self) {
        let m = metrics::global();
        m.repl_epoch.set(self.epoch());
        m.repl_lease_ms.set(self.lease_ms);
    }

    /// This node's election stagger rank: its position in the sorted
    /// roster. Deterministic and collision-free; the caught-up gate is
    /// enforced by the voters, not by the rank.
    fn rank(&self) -> u64 {
        let mut ids: Vec<&str> = self.peers.iter().map(String::as_str).collect();
        ids.push(&self.advertise);
        ids.sort_unstable();
        ids.iter().position(|&id| id == self.advertise).unwrap_or(0) as u64
    }

    /// The next address worth contacting: the believed primary if any,
    /// else round-robin over the peer roster.
    fn probe_target(&self) -> String {
        if let Some(addr) = self.believed_primary() {
            if addr != self.advertise {
                return addr;
            }
        }
        if self.peers.is_empty() {
            return self.advertise.clone();
        }
        let i = self.probe_cursor.load(Ordering::Relaxed) % self.peers.len();
        self.peers[i].clone()
    }

    /// Records that `target` was not (or no longer is) the primary:
    /// drop the belief if it pointed there and rotate the probe cursor.
    fn probe_failed(&self, target: &str) {
        let mut believed = self.believed.lock().unwrap_or_else(PoisonError::into_inner);
        if believed.as_deref() == Some(target) {
            *believed = None;
        }
        drop(believed);
        self.probe_cursor.fetch_add(1, Ordering::Relaxed);
    }

    /// Persists epoch/vote/data-epoch/timeline to
    /// `<dir>/cluster.state` (atomic tmp + rename). No-op for
    /// in-memory nodes.
    ///
    /// # Errors
    /// Propagates the underlying IO error; callers on the vote path
    /// must surface it loudly (an unpersisted vote can be double-cast
    /// after a restart).
    fn persist_state(&self) -> io::Result<()> {
        let node = self.node();
        let timeline = self.timeline();
        self.persist_with(&node, &timeline)
    }

    /// [`Self::persist_state`] for callers already holding both guards
    /// (lock order: node, then timeline).
    fn persist_with(&self, node: &FailoverNode, timeline: &Timeline) -> io::Result<()> {
        let Some(dir) = &self.dir else {
            return Ok(());
        };
        let voted = node
            .voted()
            .map_or_else(|| "-".to_string(), |(e, who)| format!("{e}:{who}"));
        let body = format!(
            "epoch={}\nvoted={voted}\ndata_epoch={}\ntl={}\n",
            node.epoch(),
            self.data_epoch.load(Ordering::Relaxed),
            timeline.render(),
        );
        let tmp = dir.join("cluster.state.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(body.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, state_path(dir))
    }
}

fn state_path(dir: &Path) -> PathBuf {
    dir.join("cluster.state")
}

struct SavedState {
    epoch: u64,
    voted: Option<(u64, String)>,
    data_epoch: u64,
    timeline: Timeline,
}

fn load_state_file(path: &Path) -> Option<SavedState> {
    let text = fs::read_to_string(path).ok()?;
    let mut saved = SavedState {
        epoch: 0,
        voted: None,
        data_epoch: 0,
        timeline: Timeline::new(),
    };
    for line in text.lines() {
        let (key, value) = line.split_once('=')?;
        match key {
            "epoch" => saved.epoch = value.parse().ok()?,
            "voted" if value != "-" => {
                // The vote target id is an address and contains
                // colons itself; split only the leading epoch off.
                let (epoch, who) = value.split_once(':')?;
                saved.voted = Some((epoch.parse().ok()?, who.to_string()));
            }
            "data_epoch" => saved.data_epoch = value.parse().ok()?,
            "tl" => saved.timeline = Timeline::parse(value)?,
            _ => {}
        }
    }
    Some(saved)
}

// ---------------------------------------------------------------------
// The write gate.
// ---------------------------------------------------------------------

/// The fence in front of every write. `None` means "go ahead"; `Some`
/// carries the complete refusal line. Lock-free on the accept path
/// (two atomics), so fencing costs nothing on a healthy primary.
pub(super) fn write_gate(state: &ServerState) -> Option<String> {
    match state.cluster() {
        Some(cluster) => {
            if cluster.is_primary() {
                if cluster.writable_now() {
                    None
                } else {
                    metrics::global().repl_fenced_writes.incr();
                    Some(format!(
                        "ERR fenced epoch={} (majority lease lost; retry once the cluster heals)",
                        cluster.epoch(),
                    ))
                }
            } else {
                Some(readonly_moved(state))
            }
        }
        None if state.is_replica() => Some(readonly_moved(state)),
        None => None,
    }
}

// ---------------------------------------------------------------------
// Wire handlers (called from the REPL dispatcher / protocol layer).
// ---------------------------------------------------------------------

fn not_clustered() -> String {
    "ERR not clustered (start with --peers to enable failover)".into()
}

/// `REPL LEASE <id> <epoch> <applied_seq> [corr=<id>]` — the replica's
/// combined liveness probe and lease renewal.
pub(super) fn lease_command(state: &ServerState, args: &[&str]) -> String {
    let Some(cluster) = state.cluster() else {
        return not_clustered();
    };
    let (args, corr) = take_corr(args);
    let [_, id, epoch, seq] = args else {
        return "ERR REPL LEASE takes <id> <epoch> <applied_seq> [corr=<id>]".into();
    };
    let peer_epoch = match parse_bounded("epoch", epoch, 0, u64::MAX) {
        Ok(v) => v,
        Err(e) => return format!("ERR {e}"),
    };
    let peer_seq = match parse_bounded("applied_seq", seq, 0, u64::MAX) {
        Ok(v) => v,
        Err(e) => return format!("ERR {e}"),
    };
    let now = cluster.now_ms();
    let (outcome, prior_role, my_epoch) = {
        let mut node = cluster.node();
        let prior = node.role();
        let outcome = node.note_peer(id, peer_epoch, now);
        (outcome, prior, node.epoch())
    };
    match outcome {
        ExchangeOutcome::RemoteStale => {
            cluster.record_event(
                EventKind::Fence,
                my_epoch,
                peer_seq,
                format!("fenced lease from {id} at stale epoch {peer_epoch}"),
                corr,
            );
            format!(
                "ERR fenced epoch={my_epoch} (your epoch {peer_epoch} is stale; \
                 rejoin via the current primary)"
            )
        }
        ExchangeOutcome::Adopted => {
            after_adoption(state, cluster, prior_role);
            format!("ERR not-primary epoch={}", cluster.epoch())
        }
        ExchangeOutcome::Ok => {
            if prior_role != Role::Primary {
                return format!("ERR not-primary epoch={my_epoch} (this node is a replica)");
            }
            // A renewal can extend the writable deadline: refresh the
            // gate's cache while we are at it.
            cluster.refresh_cache();
            let primary_seq = state.primary_repl().map_or(0, |repl| {
                repl.note_peer(id, peer_seq);
                repl.log().last_seq()
            });
            format!(
                "OK lease epoch={my_epoch} primary_seq={primary_seq} tl={}",
                cluster.timeline_spec(),
            )
        }
    }
}

/// `REPL VOTE <candidate> <target_epoch> <data_epoch> <candidate_seq>
/// [corr=<id>]`.
///
/// The candidate's log identity is `(data_epoch, seq)`, compared
/// lexicographically against ours: a revived ex-primary with a long
/// journal on a dead timeline must not outrank a shorter log that
/// carries the newer epoch's acknowledged writes.
pub(super) fn vote_command(state: &ServerState, args: &[&str]) -> String {
    let Some(cluster) = state.cluster() else {
        return not_clustered();
    };
    let (args, corr) = take_corr(args);
    let [_, candidate, target, data_epoch, seq] = args else {
        return "ERR REPL VOTE takes <candidate> <target_epoch> <data_epoch> <candidate_seq> \
                [corr=<id>]"
            .into();
    };
    let target_epoch = match parse_bounded("target_epoch", target, 1, u64::MAX) {
        Ok(v) => v,
        Err(e) => return format!("ERR {e}"),
    };
    let candidate_data_epoch = match parse_bounded("data_epoch", data_epoch, 0, u64::MAX) {
        Ok(v) => v,
        Err(e) => return format!("ERR {e}"),
    };
    let candidate_seq = match parse_bounded("candidate_seq", seq, 0, u64::MAX) {
        Ok(v) => v,
        Err(e) => return format!("ERR {e}"),
    };
    let own_log = (cluster.data_epoch(), local_seq(state, cluster));
    let now = cluster.now_ms();
    let (granted, prior_role, my_epoch) = {
        let mut node = cluster.node();
        let prior = node.role();
        let granted = node.grant_vote(
            candidate,
            target_epoch,
            (candidate_data_epoch, candidate_seq),
            own_log,
            now,
        );
        (granted, prior, node.epoch())
    };
    if !granted {
        return format!("ERR vote denied epoch={my_epoch}");
    }
    if prior_role == Role::Primary {
        after_step_down(state, cluster);
    } else {
        cluster.refresh_cache();
    }
    cluster.set_believed(Some((*candidate).to_string()));
    if let Err(e) = cluster.persist_state() {
        eprintln!("failover: could not persist vote for epoch {target_epoch}: {e}");
    }
    cluster.record_event(
        EventKind::VoteGranted,
        target_epoch,
        own_log.1,
        format!("vote granted to {candidate}"),
        corr,
    );
    format!("OK vote granted epoch={target_epoch}")
}

/// `REPL HANDOFF <old_epoch> F <seq> <u> <v> <crc> [corr=<id>]` — one
/// dead-timeline entry, re-acked as a fresh write on the current
/// primary.
pub(super) fn handoff_command(state: &ServerState, args: &[&str]) -> String {
    let Some(cluster) = state.cluster() else {
        return not_clustered();
    };
    let (args, corr) = take_corr(args);
    if args.len() < 3 {
        return "ERR REPL HANDOFF takes <old_epoch> <wal line> [corr=<id>]".into();
    }
    let old_epoch = match parse_bounded("old_epoch", args[1], 1, u64::MAX) {
        Ok(v) => v,
        Err(e) => return format!("ERR {e}"),
    };
    let line = args[2..].join(" ");
    let entry = match JournalEntry::check_line(&line) {
        LineCheck::Verified(entry) | LineCheck::Legacy(entry) => entry,
        LineCheck::Malformed | LineCheck::BadCrc => {
            return "ERR bad handoff frame (expected `F <seq> <u> <v> <crc>`)".into();
        }
    };
    let now = cluster.now_ms();
    // Lock order: node → timeline → store/persist (via insert_edge).
    // Holding both across the insert makes check-insert-commit atomic
    // against concurrent survivors handing off the same epoch.
    let node = cluster.node();
    if node.role() != Role::Primary || !node.writable(now) {
        return format!(
            "ERR not-primary epoch={} (handoff needs a writable primary)",
            node.epoch(),
        );
    }
    let mut timeline = cluster.timeline();
    let Some(highwater) = timeline.handoff_highwater(old_epoch) else {
        return format!("ERR handoff unknown epoch {old_epoch} (no fork recorded after it)");
    };
    if entry.seq <= highwater {
        return format!("OK handoff dup seq={}", entry.seq);
    }
    if entry.seq != highwater + 1 {
        return format!("ERR handoff gap expected={}", highwater + 1);
    }
    match state.insert_edge(entry.u, entry.v) {
        Ok(new_seq) => {
            let accepted = timeline.accept_handoff(old_epoch, entry.seq, new_seq);
            debug_assert!(accepted, "highwater moved while both locks were held");
            if let Err(e) = cluster.persist_with(&node, &timeline) {
                eprintln!("failover: could not persist handoff highwater: {e}");
            }
            cluster.record_event(
                EventKind::HandoffAccepted,
                node.epoch(),
                new_seq,
                format!("re-acked seq {} of dead epoch {old_epoch}", entry.seq),
                corr,
            );
            format!("OK handoff accepted seq={}", entry.seq)
        }
        Err(e) => format!("ERR storage: {e}"),
    }
}

/// The top-level `PROMOTE` command: manual, lease-bypassing promotion
/// (the operator's big red switch; see OPERATIONS §11.3).
pub(super) fn promote_command(state: &ServerState) -> String {
    let Some(cluster) = state.cluster() else {
        return not_clustered();
    };
    if cluster.is_primary() {
        return format!("OK promoted epoch={} (already primary)", cluster.epoch());
    }
    let epoch = cluster.node().force_promote();
    complete_promotion(state, cluster, epoch, None);
    format!("OK promoted epoch={epoch} (forced; fencing resumes once a majority reconnects)")
}

/// The top-level `DEMOTE` command: step down and rejoin as a replica.
pub(super) fn demote_command(state: &ServerState) -> String {
    let Some(cluster) = state.cluster() else {
        return not_clustered();
    };
    let was_primary = {
        let mut node = cluster.node();
        let was = node.role() == Role::Primary;
        node.force_demote();
        was
    };
    if was_primary {
        after_step_down(state, cluster);
        format!(
            "OK demoted epoch={} (rejoining as a replica)",
            cluster.epoch()
        )
    } else {
        format!("OK demoted epoch={} (already a replica)", cluster.epoch())
    }
}

// ---------------------------------------------------------------------
// Role-transition plumbing.
// ---------------------------------------------------------------------

/// The node's local WAL high-water mark, whichever side it is on.
fn local_seq(state: &ServerState, cluster: &ClusterRuntime) -> u64 {
    if cluster.is_primary() {
        state.primary_repl().map_or(0, |repl| repl.log().last_seq())
    } else {
        state.replica_runtime().map_or(0, |r| r.applied_seq())
    }
}

/// Everything promotion entails beyond the role flip: record the fork,
/// re-seat the ship ring and journal at the fork base, persist, and
/// refresh the gate caches. `corr` threads the election's correlation
/// id into the recorded Promotion event (None for operator `PROMOTE`).
fn complete_promotion(
    state: &ServerState,
    cluster: &ClusterRuntime,
    epoch: u64,
    corr: Option<u64>,
) {
    let base = state.replica_runtime().map_or(0, |r| r.applied_seq());
    {
        let node = cluster.node();
        let mut timeline = cluster.timeline();
        timeline.record_fork(epoch, base);
        cluster.set_data_epoch(epoch);
        if let Err(e) = cluster.persist_with(&node, &timeline) {
            eprintln!("failover: could not persist promotion to epoch {epoch}: {e}");
        }
    }
    if let Some(repl) = state.primary_repl() {
        // The ring may hold stale boot-time seqs; re-seat it so new
        // writes number contiguously from the fork base.
        repl.log().reset(base);
    }
    if let Some(mut persist) = state.persist_guard() {
        if persist.journal.next_seq() != base + 1 {
            if let Err(e) = persist.journal.rotate(base + 1) {
                eprintln!("failover: journal realign at promotion failed: {e}");
            }
        }
    }
    cluster.set_believed(Some(cluster.advertise.clone()));
    cluster.refresh_cache();
    let m = metrics::global();
    m.repl_promotions.incr();
    m.repl_epoch.set(epoch);
    cluster.record_event(
        EventKind::Promotion,
        epoch,
        base,
        format!("promoted to primary (base seq {base})"),
        corr,
    );
    eprintln!("failover: promoted to primary at epoch {epoch} (base seq {base})");
}

/// Everything stepping down entails: refresh the gate caches (fencing
/// writes immediately), forget the primary belief, and re-seat the pull
/// gate at our local high-water mark so pulling resumes where this
/// node's data actually ends.
fn after_step_down(state: &ServerState, cluster: &ClusterRuntime) {
    cluster.refresh_cache();
    cluster.set_believed(None);
    if let (Some(runtime), Some(repl)) = (state.replica_runtime(), state.primary_repl()) {
        let last = repl.log().last_seq();
        if runtime.applied_seq() != last {
            runtime.seed_applied(last);
        }
    }
    if let Err(e) = cluster.persist_state() {
        eprintln!("failover: could not persist step-down: {e}");
    }
    cluster.record_event(
        EventKind::StepDown,
        cluster.epoch(),
        state.replica_runtime().map_or(0, |r| r.applied_seq()),
        "stepped down; rejoining as a replica".to_string(),
        None,
    );
    eprintln!(
        "failover: stepped down at epoch {} (rejoining as a replica)",
        cluster.epoch(),
    );
}

/// A peer exchange adopted a higher epoch. Only an ex-primary needs the
/// full step-down treatment; a replica just refreshes its caches.
fn after_adoption(state: &ServerState, cluster: &ClusterRuntime, prior_role: Role) {
    if prior_role == Role::Primary {
        after_step_down(state, cluster);
    } else {
        cluster.refresh_cache();
        if let Err(e) = cluster.persist_state() {
            eprintln!("failover: could not persist adopted epoch: {e}");
        }
        cluster.record_event(
            EventKind::EpochAdopted,
            cluster.epoch(),
            state.replica_runtime().map_or(0, |r| r.applied_seq()),
            "adopted newer epoch from a peer exchange".to_string(),
            None,
        );
    }
}

/// Adopts a higher epoch learned from an error reply or probe.
fn adopt_observed(state: &ServerState, cluster: &ClusterRuntime, epoch: u64) {
    let (changed, prior_role) = {
        let mut node = cluster.node();
        let prior = node.role();
        let was_primary = node.observe_epoch(epoch, cluster.now_ms());
        (was_primary || node.epoch() == epoch, prior)
    };
    if changed {
        after_adoption(state, cluster, prior_role);
    }
}

/// Pulls the first `epoch=` field out of a reply line.
fn parse_epoch_field(line: &str) -> Option<u64> {
    line.split_whitespace()
        .find_map(|kv| kv.strip_prefix("epoch="))
        .and_then(|v| v.parse().ok())
}

// ---------------------------------------------------------------------
// The cluster loop.
// ---------------------------------------------------------------------

fn how_session_ended(reply: &str) -> bool {
    reply.starts_with("OK lease ")
}

/// What one replica session concluded about its target.
enum SessionEnd {
    /// Shutdown was requested; stop the loop.
    Shutdown,
    /// The target is not (or no longer) the primary; probe elsewhere.
    NotPrimary,
}

/// The single cluster thread: as primary, keep the gate caches fresh;
/// as replica, follow the primary (pull + lease) and campaign once the
/// lease dies. Replaces [`super::replication::replica_loop`] in
/// cluster mode.
pub fn cluster_loop(state: &Arc<ServerState>, cluster: &Arc<ClusterRuntime>) {
    let Some(runtime) = state.replica_runtime().cloned() else {
        eprintln!("failover: cluster node without a replica runtime; loop disabled");
        return;
    };
    let mut rng = Lcg::new(id_seed(&cluster.advertise));
    let tick = Duration::from_millis((cluster.lease_ms / 4).clamp(10, 1000));
    let backoff_floor = runtime.tuning.backoff_base.min(tick);
    let backoff_ceiling = runtime
        .tuning
        .backoff_max
        .min(Duration::from_millis(cluster.lease_ms.max(100)));
    let mut backoff = backoff_floor;
    cluster.node().arm(cluster.now_ms());
    cluster.refresh_cache();
    cluster.update_gauges();
    while !state.shutdown_requested() {
        if cluster.is_primary() {
            cluster.refresh_cache();
            cluster.update_gauges();
            if !cluster.writable_now() {
                // Fenced: probe for a newer epoch so a superseded
                // primary discovers the new timeline and rejoins
                // instead of serving `ERR fenced` forever.
                fenced_probe(state, cluster);
            }
            sleep_poll(state, tick);
            continue;
        }
        let target = cluster.probe_target();
        match replica_session(state, cluster, &runtime, &target) {
            Ok(SessionEnd::Shutdown) => break,
            Ok(SessionEnd::NotPrimary) => {
                runtime.set_connected(false);
                cluster.probe_failed(&target);
                backoff = backoff_floor;
            }
            Err(e) => {
                runtime.set_connected(false);
                runtime.update_gauges();
                metrics::global().repl_reconnects.incr();
                cluster.probe_failed(&target);
                if state.shutdown_requested() {
                    break;
                }
                eprintln!("failover: link to {target}: {e}");
            }
        }
        maybe_campaign(state, cluster, &runtime);
        if cluster.is_primary() {
            continue;
        }
        // Short, jittered, lease-bounded backoff: elections must not
        // wait out a 5s reconnect ceiling.
        sleep_poll(state, jittered(&mut rng, backoff).min(tick));
        backoff = next_backoff(backoff, backoff_ceiling);
    }
    runtime.set_connected(false);
    runtime.update_gauges();
}

/// One session against a presumed primary: handshake, rejoin if our
/// data sits on a dead timeline, then pull + lease until the link dies
/// or the remote stops being primary.
fn replica_session(
    state: &ServerState,
    cluster: &ClusterRuntime,
    runtime: &ReplicaRuntime,
    target: &str,
) -> io::Result<SessionEnd> {
    let mut link = PrimaryLink::connect(target, runtime.tuning.wire)?;
    // One correlation id per session: every LEASE/PULL/HANDOFF this
    // session sends carries it, so both ends' spans and events thread
    // into one cross-node story.
    let corr = new_corr_id(&cluster.advertise, cluster.now_ms());
    runtime.set_corr(corr);
    {
        let _t = trace::op("repl.session");
        trace::note_corr(corr);
    }
    let hello = say_hello(&cluster.advertise, &mut link)?;
    if let Some(epoch) = hello.epoch {
        if epoch < cluster.epoch() {
            return Ok(SessionEnd::NotPrimary);
        }
        if epoch > cluster.epoch() {
            adopt_observed(state, cluster, epoch);
        }
    }
    adopt_config(state, runtime, &hello)?;
    match hello.timeline.as_deref().and_then(Timeline::parse) {
        Some(remote_tl) => rejoin_timeline(state, cluster, runtime, &mut link, &remote_tl, corr)?,
        None => {
            // A primary without timeline info (old binary or fresh
            // cluster): fall back to the classic dead-timeline check.
            if hello.primary_seq < runtime.applied_seq() {
                snapshot_round_with(state, runtime, &mut link, true)?;
            }
        }
    }
    runtime.note_primary_seq(hello.primary_seq);
    runtime.set_connected(true);
    runtime.update_gauges();
    let mut last_anti_entropy = Instant::now();
    loop {
        if state.shutdown_requested() {
            return Ok(SessionEnd::Shutdown);
        }
        if cluster.is_primary() {
            // Promoted mid-session (election or PROMOTE): stop pulling.
            return Ok(SessionEnd::NotPrimary);
        }
        // The lease renewal doubles as the liveness probe; only an
        // `OK lease` from the *primary* renews our timer.
        link.send(&format!(
            "REPL LEASE {} {} {} corr={corr}",
            cluster.advertise,
            cluster.epoch(),
            runtime.applied_seq(),
        ))?;
        let reply = link.recv()?;
        if how_session_ended(&reply) {
            let now = cluster.now_ms();
            let epoch = parse_epoch_field(&reply).unwrap_or_else(|| cluster.epoch());
            {
                let mut node = cluster.node();
                node.note_primary(epoch, now);
            }
            cluster.refresh_cache();
            cluster.set_believed(Some(target.to_string()));
            cluster.set_data_epoch(epoch);
            if let Some(seq) = reply
                .split_whitespace()
                .find_map(|kv| kv.strip_prefix("primary_seq="))
                .and_then(|v| v.parse().ok())
            {
                runtime.note_primary_seq(seq);
            }
            if let Some(tl) = reply
                .split_whitespace()
                .find_map(|kv| kv.strip_prefix("tl="))
                .and_then(Timeline::parse)
            {
                cluster.adopt_timeline(&tl);
            }
        } else {
            if let Some(epoch) = parse_epoch_field(&reply) {
                if epoch > cluster.epoch() {
                    adopt_observed(state, cluster, epoch);
                }
            }
            return Ok(SessionEnd::NotPrimary);
        }
        let advanced = pull_once(state, runtime, &mut link)?;
        if !runtime.tuning.anti_entropy_every.is_zero()
            && last_anti_entropy.elapsed() >= runtime.tuning.anti_entropy_every
        {
            last_anti_entropy = Instant::now();
            snapshot_round_with(state, runtime, &mut link, false)?;
            metrics::global().repl_anti_entropy_rounds.incr();
        }
        runtime.update_gauges();
        cluster.update_gauges();
        if !advanced {
            let lease_tick = Duration::from_millis((cluster.lease_ms / 4).max(10));
            sleep_poll(state, runtime.tuning.poll_interval.min(lease_tick));
        }
    }
}

/// Detects a fork past our data epoch, hands off our un-replicated
/// tail entry-by-entry, then resyncs wholesale onto the new timeline.
fn rejoin_timeline(
    state: &ServerState,
    cluster: &ClusterRuntime,
    runtime: &ReplicaRuntime,
    link: &mut PrimaryLink,
    remote_tl: &Timeline,
    corr: u64,
) -> io::Result<()> {
    let data_epoch = cluster.data_epoch();
    let Some(base) = remote_tl.fork_after(data_epoch) else {
        // Our data is a prefix of the current timeline; nothing forked.
        cluster.adopt_timeline(remote_tl);
        return Ok(());
    };
    let applied = runtime.applied_seq();
    if applied > base {
        let handed = handoff_tail(state, cluster, link, data_epoch, base, applied, corr)?;
        eprintln!(
            "failover: handed off {handed} un-replicated entr(y/ies) \
             from dead epoch {data_epoch} (seqs {}..={applied})",
            base + 1,
        );
    }
    // Whatever remains local of the dead timeline is superseded:
    // replace wholesale with the new primary's state.
    snapshot_round_with(state, runtime, link, true)?;
    cluster.adopt_timeline(remote_tl);
    cluster.set_data_epoch(remote_tl.latest_epoch());
    if let Err(e) = cluster.persist_state() {
        eprintln!("failover: could not persist rejoin: {e}");
    }
    cluster.record_event(
        EventKind::Resync,
        remote_tl.latest_epoch(),
        runtime.applied_seq(),
        format!(
            "resynced off dead epoch {data_epoch} onto timeline {}",
            remote_tl.render()
        ),
        Some(corr),
    );
    Ok(())
}

/// Ships seqs `base+1..=applied` of the dead timeline to the current
/// primary via `REPL HANDOFF`. Returns how many entries were accepted
/// (duplicates and gaps end the attempt quietly — another survivor got
/// there first, or our journal has a hole; both are fine).
///
/// Entries that entered our journal as handoff re-acks are presented
/// under their *origin* `(epoch, seq)` (per our timeline's provenance
/// map), so the copy in the origin's own journal and ours dedup
/// against the same high-water mark instead of being applied twice.
fn handoff_tail(
    state: &ServerState,
    cluster: &ClusterRuntime,
    link: &mut PrimaryLink,
    old_epoch: u64,
    base: u64,
    applied: u64,
    corr: u64,
) -> io::Result<u64> {
    let provenance = cluster.timeline().clone();
    let mut handed = 0u64;
    let mut after = base;
    'outer: while after < applied {
        let batch = local_tail(state, after, 4096);
        if batch.is_empty() {
            break;
        }
        for entry in batch {
            if entry.seq <= after {
                continue;
            }
            if entry.seq > applied {
                break 'outer;
            }
            after = entry.seq;
            let (send_epoch, entry) = match provenance.reack_origin(entry.seq) {
                Some((origin_epoch, origin_seq)) => (
                    origin_epoch,
                    JournalEntry {
                        seq: origin_seq,
                        ..entry
                    },
                ),
                None => (old_epoch, entry),
            };
            link.send(&format!("REPL HANDOFF {send_epoch} {entry} corr={corr}"))?;
            let reply = link.recv()?;
            if reply.starts_with("OK handoff accepted") {
                handed += 1;
            } else if !reply.starts_with("OK handoff") {
                // Gap (hole in our journal / other survivor ahead) or a
                // primary change mid-handoff; stop, resync will follow.
                eprintln!("failover: handoff stopped at seq {}: {reply}", entry.seq);
                break 'outer;
            }
        }
    }
    Ok(handed)
}

/// The local WAL tail after `after`: a durable node reads its own
/// journal (which holds everything it applied or acked); an in-memory
/// ex-primary falls back to its ship ring. An in-memory ex-replica has
/// neither — its tail is only recoverable from other survivors.
fn local_tail(state: &ServerState, after: u64, max: usize) -> Vec<JournalEntry> {
    if let Some(dir) = state.persist_guard().map(|p| p.dir.clone()) {
        if let Ok(entries) = journal::read_entries_after(&dir, after, max) {
            if !entries.is_empty() {
                return entries;
            }
        }
    }
    if let Some(repl) = state.primary_repl() {
        if let PullOutcome::Entries(entries) = repl.log().entries_after(after, max) {
            return entries;
        }
    }
    Vec::new()
}

/// Opens (or retries) a candidacy once the lease is dead and our
/// stagger slot came up, then runs one synchronous vote round.
fn maybe_campaign(state: &ServerState, cluster: &ClusterRuntime, runtime: &ReplicaRuntime) {
    let now = cluster.now_ms();
    let target = {
        let mut node = cluster.node();
        if node.role() == Role::Primary {
            return;
        }
        if !node.candidacy_due(now, cluster.rank()) {
            return;
        }
        if node.candidacy_epoch().is_some() && !node.candidacy_stale(now) {
            return;
        }
        node.start_candidacy(now)
    };
    if let Err(e) = cluster.persist_state() {
        eprintln!("failover: could not persist candidacy: {e}");
    }
    cluster.refresh_cache();
    let my_seq = runtime.applied_seq();
    let my_data_epoch = cluster.data_epoch();
    // One correlation id per campaign: every VOTE it sends (and the
    // Promotion it may end in) carries it, on both ends.
    let corr = new_corr_id(&cluster.advertise, now);
    let _campaign_span = trace::op("repl.campaign");
    trace::note_corr(corr);
    cluster.record_event(
        EventKind::CandidacyStarted,
        target,
        my_seq,
        format!("lease expired; seeking votes (local log {my_data_epoch}:{my_seq})"),
        Some(corr),
    );
    eprintln!(
        "failover: primary lease expired; seeking votes for epoch {target} \
         (local log {my_data_epoch}:{my_seq})"
    );
    // Our own vote may already complete the majority (single-node
    // clusters, or a quorum of grants recorded on a previous retry).
    if cluster
        .node()
        .record_grant(&cluster.advertise, cluster.now_ms())
    {
        complete_promotion(state, cluster, target, Some(corr));
        return;
    }
    for peer in &cluster.peers {
        if state.shutdown_requested() {
            return;
        }
        match request_vote(
            peer,
            &cluster.advertise,
            target,
            my_data_epoch,
            my_seq,
            corr,
        ) {
            VoteReply::Granted => {
                let won = cluster.node().record_grant(peer, cluster.now_ms());
                if won {
                    complete_promotion(state, cluster, target, Some(corr));
                    return;
                }
            }
            VoteReply::Denied(epoch) => {
                if epoch > target {
                    adopt_observed(state, cluster, epoch);
                    return;
                }
            }
            VoteReply::Unreachable => {}
        }
    }
}

enum VoteReply {
    Granted,
    Denied(u64),
    Unreachable,
}

fn request_vote(
    peer: &str,
    candidate: &str,
    target: u64,
    data_epoch: u64,
    seq: u64,
    corr: u64,
) -> VoteReply {
    let ask = || -> io::Result<String> {
        let mut link = PrimaryLink::connect(peer, WireFormat::TextV2)?;
        link.send(&format!(
            "REPL VOTE {candidate} {target} {data_epoch} {seq} corr={corr}"
        ))?;
        link.recv()
    };
    match ask() {
        Ok(line) if line.starts_with("OK vote granted") => VoteReply::Granted,
        Ok(line) => VoteReply::Denied(parse_epoch_field(&line).unwrap_or(0)),
        Err(_) => VoteReply::Unreachable,
    }
}

/// A fenced primary's way out: ask one peer whether a newer epoch
/// exists, adopting it (and stepping down into the rejoin path) if so.
fn fenced_probe(state: &ServerState, cluster: &ClusterRuntime) {
    let target = cluster.probe_target();
    if target == cluster.advertise {
        return;
    }
    let corr = new_corr_id(&cluster.advertise, cluster.now_ms());
    let probe = || -> io::Result<String> {
        let mut link = PrimaryLink::connect(&target, WireFormat::TextV2)?;
        link.send(&format!(
            "REPL LEASE {} {} {} corr={corr}",
            cluster.advertise,
            cluster.epoch(),
            local_seq(state, cluster),
        ))?;
        link.recv()
    };
    match probe() {
        Ok(reply) => {
            if let Some(epoch) = parse_epoch_field(&reply) {
                if epoch > cluster.epoch() {
                    adopt_observed(state, cluster, epoch);
                    return;
                }
            }
            cluster.probe_failed(&target);
        }
        Err(_) => cluster.probe_failed(&target),
    }
}

// ---------------------------------------------------------------------
// Cluster-wide status aggregation (`CLUSTER INFO` / `CLUSTER STATUS`,
// HTTP `/clusterz`).
// ---------------------------------------------------------------------

/// Executes one `CLUSTER <sub>` command. `INFO` answers from local
/// state only (one parseable `OK cluster ...` line); `STATUS` fans out
/// to every peer and returns the merged single-line
/// `streamlink.clusterz.v1` JSON snapshot.
pub(super) fn cluster_command(state: &ServerState, args: &[&str]) -> String {
    let (args, _corr) = take_corr(args);
    let Some(sub) = args.first() else {
        return "ERR CLUSTER takes a subcommand (INFO, STATUS)".into();
    };
    match sub.to_ascii_uppercase().as_str() {
        "INFO" => {
            if args.len() != 1 {
                return "ERR CLUSTER INFO takes no arguments".into();
            }
            cluster_info_line(state)
        }
        "STATUS" => {
            if args.len() != 1 {
                return "ERR CLUSTER STATUS takes no arguments".into();
            }
            clusterz_json(state).map_or_else(not_clustered, |(json, _divergent)| json)
        }
        other => format!("ERR unknown CLUSTER subcommand {other:?} (INFO, STATUS)"),
    }
}

/// One node's own view as a single parseable `OK cluster ...` line —
/// what `CLUSTER INFO` answers and what the `/clusterz` fan-out
/// collects from each member.
pub(super) fn cluster_info_line(state: &ServerState) -> String {
    let Some(cluster) = state.cluster() else {
        return not_clustered();
    };
    let is_primary = cluster.is_primary();
    let role = if is_primary { "primary" } else { "replica" };
    let (applied, persisted, lag) = match state.replica_runtime() {
        Some(r) if !is_primary => (r.applied_seq(), r.persisted_seq(), r.durable_lag()),
        _ => {
            let seq = state.primary_repl().map_or(0, |repl| repl.log().last_seq());
            (seq, seq, 0)
        }
    };
    let lag_slo = state.replica_runtime().map_or(0, |r| r.lag_slo);
    let healthy = if is_primary {
        cluster.writable_now()
    } else {
        state
            .replica_runtime()
            .is_some_and(|r| r.connected() && !r.lag_exceeds_slo())
    };
    format!(
        "OK cluster node={} role={role} epoch={} data_epoch={} applied_seq={applied} \
         persisted_seq={persisted} lag={lag} lag_slo={lag_slo} writable={} \
         believed={} healthy={}",
        cluster.advertise(),
        cluster.epoch(),
        cluster.data_epoch(),
        u64::from(cluster.writable_now()),
        cluster.believed_primary().unwrap_or_else(|| "?".into()),
        u64::from(healthy),
    )
}

/// One member's parsed (or unreachable) view during a status fan-out.
struct NodeView {
    node: String,
    reachable: bool,
    role: String,
    epoch: u64,
    data_epoch: u64,
    applied_seq: u64,
    persisted_seq: u64,
    lag: u64,
    lag_slo: u64,
    writable: bool,
    believed: String,
    healthy: bool,
}

impl NodeView {
    fn unreachable(node: &str) -> NodeView {
        NodeView {
            node: node.to_string(),
            reachable: false,
            role: "unknown".into(),
            epoch: 0,
            data_epoch: 0,
            applied_seq: 0,
            persisted_seq: 0,
            lag: 0,
            lag_slo: 0,
            writable: false,
            believed: "?".into(),
            healthy: false,
        }
    }

    /// Parses an `OK cluster ...` line into a view; anything else
    /// (error reply, old binary) counts as unreachable.
    fn parse(node: &str, line: &str) -> NodeView {
        if !line.starts_with("OK cluster ") {
            return NodeView::unreachable(node);
        }
        let field = |key: &str| {
            line.split_whitespace()
                .find_map(|kv| kv.strip_prefix(key))
                .map(str::to_string)
        };
        let num = |key: &str| field(key).and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
        NodeView {
            node: node.to_string(),
            reachable: true,
            role: field("role=").unwrap_or_else(|| "unknown".into()),
            epoch: num("epoch="),
            data_epoch: num("data_epoch="),
            applied_seq: num("applied_seq="),
            persisted_seq: num("persisted_seq="),
            lag: num("lag="),
            lag_slo: num("lag_slo="),
            writable: num("writable=") == 1,
            believed: field("believed=").unwrap_or_else(|| "?".into()),
            healthy: num("healthy=") == 1,
        }
    }

    fn render_json(&self) -> String {
        if !self.reachable {
            return format!("{{\"node\":{},\"reachable\":false}}", json_str(&self.node));
        }
        format!(
            "{{\"node\":{},\"reachable\":true,\"role\":{},\"epoch\":{},\"data_epoch\":{},\
             \"applied_seq\":{},\"persisted_seq\":{},\"lag\":{},\"lag_slo\":{},\
             \"writable\":{},\"believed\":{},\"healthy\":{}}}",
            json_str(&self.node),
            json_str(&self.role),
            self.epoch,
            self.data_epoch,
            self.applied_seq,
            self.persisted_seq,
            self.lag,
            self.lag_slo,
            self.writable,
            json_str(&self.believed),
            self.healthy,
        )
    }
}

/// Minimal JSON string quoting (addresses and roles hold no exotic
/// characters today, but quoting stays correct if one ever does).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Dials one member and asks for its `CLUSTER INFO` line. The
/// connect/read timeouts on [`PrimaryLink`] bound the wait, and the
/// fan-out corr id rides along so the probe shows up correlated in the
/// remote's trace ring.
fn probe_cluster_info(addr: &str, corr: u64) -> Option<String> {
    let mut link = PrimaryLink::connect(addr, WireFormat::TextV2).ok()?;
    link.send(&format!("CLUSTER INFO corr={corr}")).ok()?;
    link.recv().ok()
}

/// The merged `streamlink.clusterz.v1` snapshot: this node's view plus
/// a bounded, timeout-guarded parallel fan-out to every `--peers`
/// member. Returns `(single-line json, divergent)`; `None` when this
/// node is not clustered.
///
/// Divergence flags cover the beliefs that must agree on a healthy
/// cluster: at most one primary, one epoch, every member reachable,
/// and no replica past its lag SLO.
pub(super) fn clusterz_json(state: &ServerState) -> Option<(String, bool)> {
    let cluster = state.cluster()?;
    let corr = new_corr_id(cluster.advertise(), cluster.now_ms());
    trace::note_corr(corr);
    let mut views = vec![NodeView::parse(
        cluster.advertise(),
        &cluster_info_line(state),
    )];
    let peer_views: Vec<NodeView> = std::thread::scope(|scope| {
        let handles: Vec<_> = cluster
            .peers()
            .iter()
            .map(|peer| {
                scope.spawn(move || match probe_cluster_info(peer, corr) {
                    Some(line) => NodeView::parse(peer, &line),
                    None => NodeView::unreachable(peer),
                })
            })
            .collect();
        handles
            .into_iter()
            .zip(cluster.peers())
            .map(|(h, peer)| h.join().unwrap_or_else(|_| NodeView::unreachable(peer)))
            .collect()
    });
    views.extend(peer_views);
    let primaries = views
        .iter()
        .filter(|v| v.reachable && v.role == "primary")
        .count();
    let epochs: Vec<u64> = views
        .iter()
        .filter(|v| v.reachable)
        .map(|v| v.epoch)
        .collect();
    let epoch_min = epochs.iter().copied().min().unwrap_or(0);
    let epoch_max = epochs.iter().copied().max().unwrap_or(0);
    let unreachable = views.iter().filter(|v| !v.reachable).count();
    let lag_breach = views
        .iter()
        .any(|v| v.reachable && v.lag_slo > 0 && v.lag > v.lag_slo);
    let mut flags: Vec<&str> = Vec::new();
    if primaries > 1 {
        flags.push("multiple-primaries");
    }
    if primaries == 0 {
        flags.push("no-reachable-primary");
    }
    if epoch_min != epoch_max {
        flags.push("epoch-skew");
    }
    if lag_breach {
        flags.push("lag-slo-breach");
    }
    if unreachable > 0 {
        flags.push("unreachable-members");
    }
    let divergent = !flags.is_empty();
    let node_rows: Vec<String> = views.iter().map(NodeView::render_json).collect();
    let flag_rows: Vec<String> = flags.iter().map(|f| json_str(f)).collect();
    let json = format!(
        "{{\"schema\":\"streamlink.clusterz.v1\",\"observer\":{},\"corr_id\":{corr},\
         \"epoch_min\":{epoch_min},\"epoch_max\":{epoch_max},\"primaries\":{primaries},\
         \"unreachable\":{unreachable},\"divergent\":{divergent},\"flags\":[{}],\"nodes\":[{}]}}",
        json_str(cluster.advertise()),
        flag_rows.join(","),
        node_rows.join(","),
    );
    Some((json, divergent))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::replication::ReplicaTuning;
    use crate::server::{ServerConfig, ServerState};
    use graphstream::VertexId;
    use streamlink_core::{SketchConfig, SketchStore};

    fn cluster_config(advertise: &str, peers: &[&str], bootstrap: bool) -> ClusterConfig {
        ClusterConfig {
            advertise: advertise.into(),
            peers: peers.iter().map(|s| (*s).to_string()).collect(),
            lease: Duration::from_millis(200),
            bootstrap_primary: bootstrap,
        }
    }

    fn cluster_state(bootstrap: bool) -> (ServerState, Arc<ClusterRuntime>) {
        let config = cluster_config(
            "127.0.0.1:7001",
            &["127.0.0.1:7002", "127.0.0.1:7003"],
            bootstrap,
        );
        let cluster = Arc::new(ClusterRuntime::new(&config, None, 0).unwrap());
        let runtime = Arc::new(ReplicaRuntime::new(
            "127.0.0.1:7002".into(),
            "127.0.0.1:7001".into(),
            100_000,
            ReplicaTuning::default(),
        ));
        let store = SketchStore::new(SketchConfig::with_slots(32).seed(5));
        let state = ServerState::with_cluster(
            store,
            None,
            0,
            ServerConfig::default(),
            runtime,
            Arc::clone(&cluster),
        );
        (state, cluster)
    }

    #[test]
    fn bootstrap_primary_serves_writes_and_ships_epoch() {
        let (state, cluster) = cluster_state(true);
        assert!(cluster.is_primary());
        assert!(cluster.writable_now(), "bootstrap primary starts writable");
        assert_eq!(cluster.epoch(), 1);
        assert!(write_gate(&state).is_none());
        assert!(!state.is_replica());
        let reply = lease_command(&state, &["LEASE", "127.0.0.1:7002", "1", "0"]);
        assert!(
            reply.starts_with("OK lease epoch=1 primary_seq=0 tl=1:0"),
            "{reply}"
        );
    }

    #[test]
    fn replica_nodes_point_writes_at_the_believed_primary() {
        let (state, cluster) = cluster_state(false);
        assert!(!cluster.is_primary());
        assert!(state.is_replica());
        let gate = write_gate(&state).expect("replicas refuse writes");
        assert!(gate.starts_with("ERR readonly MOVED ? "), "{gate}");
        cluster.set_believed(Some("127.0.0.1:7002".into()));
        let gate = write_gate(&state).expect("still refused");
        assert_eq!(
            gate.split_whitespace().nth(3),
            Some("127.0.0.1:7002"),
            "{gate}"
        );
    }

    #[test]
    fn stale_epoch_lease_gets_fenced_and_newer_epoch_adopts() {
        let (state, cluster) = cluster_state(true);
        // A sender still on epoch 0 is fenced.
        let reply = lease_command(&state, &["LEASE", "127.0.0.1:7002", "0", "0"]);
        assert!(reply.starts_with("ERR fenced epoch=1"), "{reply}");
        // A sender on epoch 3 demotes us on the spot.
        let reply = lease_command(&state, &["LEASE", "127.0.0.1:7002", "3", "0"]);
        assert!(reply.starts_with("ERR not-primary epoch=3"), "{reply}");
        assert!(!cluster.is_primary());
        assert_eq!(cluster.epoch(), 3);
        let gate = write_gate(&state).expect("stepped-down node refuses writes");
        assert!(gate.starts_with("ERR readonly MOVED"), "{gate}");
    }

    #[test]
    fn votes_grant_once_per_epoch_and_only_to_caught_up_candidates() {
        let (state, cluster) = cluster_state(false);
        // Not armed yet / lease considered expired (never renewed) —
        // grants are allowed once the node has an expired lease.
        cluster.node().arm(0);
        // Candidate behind our applied seq is refused.
        state.replica_runtime().unwrap().seed_applied(10);
        let reply = vote_command(&state, &["VOTE", "127.0.0.1:7002", "1", "0", "5"]);
        assert!(reply.starts_with("ERR vote denied"), "{reply}");
        // A caught-up candidate gets the vote after the lease expires...
        std::thread::sleep(Duration::from_millis(250));
        let reply = vote_command(&state, &["VOTE", "127.0.0.1:7002", "1", "0", "10"]);
        assert_eq!(reply, "OK vote granted epoch=1");
        assert_eq!(cluster.epoch(), 1);
        // ...exactly once per epoch: another candidate is refused,
        // the same one re-granted idempotently.
        let reply = vote_command(&state, &["VOTE", "127.0.0.1:7003", "1", "0", "99"]);
        assert!(reply.starts_with("ERR vote denied"), "{reply}");
        let reply = vote_command(&state, &["VOTE", "127.0.0.1:7002", "1", "0", "10"]);
        assert_eq!(reply, "OK vote granted epoch=1");
        // The belief now points at the candidate.
        assert_eq!(
            cluster.believed_primary().as_deref(),
            Some("127.0.0.1:7002")
        );
    }

    #[test]
    fn promote_and_demote_flip_the_gate() {
        let (state, cluster) = cluster_state(false);
        assert!(write_gate(&state).is_some());
        let reply = promote_command(&state);
        assert!(reply.starts_with("OK promoted epoch=1"), "{reply}");
        assert!(cluster.is_primary());
        assert!(
            cluster.writable_now(),
            "forced promotion bypasses the lease"
        );
        assert!(write_gate(&state).is_none());
        assert!(!state.is_replica());
        // Idempotent.
        let again = promote_command(&state);
        assert!(again.starts_with("OK promoted epoch=1 (already"), "{again}");
        let reply = demote_command(&state);
        assert!(reply.starts_with("OK demoted epoch=1"), "{reply}");
        assert!(!cluster.is_primary());
        assert!(write_gate(&state).is_some());
    }

    #[test]
    fn handoff_replays_a_dead_tail_exactly_once() {
        let (state, cluster) = cluster_state(true);
        // Live writes land first; the fork for dead epoch 0 sits at 0...
        // give the timeline a later fork to hand off against.
        for i in 1..=3u64 {
            state.insert_edge(VertexId(i), VertexId(i + 50)).unwrap();
        }
        {
            let mut tl = cluster.timeline();
            tl.record_fork(2, 3);
        }
        cluster.node().force_promote(); // epoch 2
        cluster.refresh_cache();
        let entry = JournalEntry {
            seq: 4,
            u: VertexId(9),
            v: VertexId(90),
        };
        let line = entry.to_string();
        let mut args = vec!["HANDOFF", "1"];
        args.extend(line.split_whitespace());
        let reply = handoff_command(&state, &args);
        assert_eq!(reply, "OK handoff accepted seq=4", "{reply}");
        assert_eq!(state.read_store().edges_processed(), 4);
        // Retry (same survivor, or another) is a dup, not a double
        // insert.
        let reply = handoff_command(&state, &args);
        assert_eq!(reply, "OK handoff dup seq=4");
        assert_eq!(state.read_store().edges_processed(), 4);
        // A gap is refused with the expected seq.
        let gap = JournalEntry {
            seq: 7,
            u: VertexId(9),
            v: VertexId(91),
        };
        let line = gap.to_string();
        let mut args = vec!["HANDOFF", "1"];
        args.extend(line.split_whitespace());
        let reply = handoff_command(&state, &args);
        assert_eq!(reply, "ERR handoff gap expected=5");
    }

    #[test]
    fn cluster_state_round_trips_through_the_state_file() {
        let dir =
            std::env::temp_dir().join(format!("streamlink-failover-test-{}", std::process::id(),));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let config = cluster_config("127.0.0.1:7001", &["127.0.0.1:7002"], true);
        {
            let cluster = ClusterRuntime::new(&config, Some(&dir), 42).unwrap();
            assert!(cluster.is_primary());
            assert_eq!(cluster.epoch(), 1);
        }
        // A restart restores the epoch; --primary is refused (epoch !=
        // 0) and the node rejoins as a replica — roles are never
        // persisted.
        let cluster = ClusterRuntime::new(&config, Some(&dir), 42).unwrap();
        assert!(!cluster.is_primary(), "roles are not persisted");
        assert_eq!(cluster.epoch(), 1);
        assert_eq!(cluster.data_epoch(), 1);
        assert_eq!(cluster.timeline_spec(), "1:42");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn commands_without_a_cluster_answer_not_clustered() {
        let store = SketchStore::new(SketchConfig::with_slots(16).seed(1));
        let state = ServerState::in_memory(store, ServerConfig::default());
        for reply in [
            lease_command(&state, &["LEASE", "a", "1", "0"]),
            vote_command(&state, &["VOTE", "a", "1", "0", "0"]),
            handoff_command(&state, &["HANDOFF", "1", "F", "1", "2", "3", "0"]),
            promote_command(&state),
            demote_command(&state),
            cluster_command(&state, &["INFO"]),
            cluster_command(&state, &["STATUS"]),
        ] {
            assert!(reply.starts_with("ERR not clustered"), "{reply}");
        }
    }

    #[test]
    fn lease_round_trips_a_trailing_corr_token() {
        let (state, _cluster) = cluster_state(true);
        let reply = lease_command(
            &state,
            &["LEASE", "127.0.0.1:7002", "1", "0", "corr=42424242"],
        );
        assert!(
            reply.starts_with("OK lease epoch=1 primary_seq=0 tl=1:0"),
            "{reply}"
        );
        // A stale lease carrying a corr id stamps the Fence event with
        // it, so the fence shows up correlated in the merged timeline.
        let reply = lease_command(
            &state,
            &["LEASE", "127.0.0.1:7002", "0", "7", "corr=42424243"],
        );
        assert!(reply.starts_with("ERR fenced epoch=1"), "{reply}");
        let fence = streamlink_core::events::recent(streamlink_core::events::RING_CAPACITY)
            .into_iter()
            .find(|e| e.corr_id == Some(42_424_243))
            .expect("fence event recorded with the corr id");
        assert_eq!(fence.kind, EventKind::Fence);
        assert_eq!(fence.applied_seq, 7);
        // A malformed corr value is not silently eaten: it fails the
        // arity check instead of being parsed as a positional arg.
        let reply = lease_command(&state, &["LEASE", "127.0.0.1:7002", "1", "0", "corr=xyz"]);
        assert!(reply.starts_with("ERR REPL LEASE takes"), "{reply}");
    }

    #[test]
    fn granted_votes_record_an_event_with_the_campaign_corr() {
        let (state, cluster) = cluster_state(false);
        cluster.node().arm(0);
        std::thread::sleep(Duration::from_millis(250));
        let reply = vote_command(
            &state,
            &["VOTE", "127.0.0.1:7002", "1", "0", "0", "corr=99990001"],
        );
        assert_eq!(reply, "OK vote granted epoch=1");
        let vote = streamlink_core::events::recent(streamlink_core::events::RING_CAPACITY)
            .into_iter()
            .find(|e| e.corr_id == Some(99_990_001))
            .expect("vote event recorded with the corr id");
        assert_eq!(vote.kind, EventKind::VoteGranted);
        assert_eq!(vote.epoch, 1);
        assert!(vote.detail.contains("127.0.0.1:7002"), "{}", vote.detail);
    }

    #[test]
    fn handoff_accepts_a_trailing_corr_without_corrupting_the_frame() {
        let (state, cluster) = cluster_state(true);
        for i in 1..=3u64 {
            state.insert_edge(VertexId(i), VertexId(i + 50)).unwrap();
        }
        {
            let mut tl = cluster.timeline();
            tl.record_fork(2, 3);
        }
        cluster.node().force_promote();
        cluster.refresh_cache();
        let entry = JournalEntry {
            seq: 4,
            u: VertexId(9),
            v: VertexId(90),
        };
        let line = entry.to_string();
        let mut args = vec!["HANDOFF", "1"];
        args.extend(line.split_whitespace());
        args.push("corr=55500177");
        let reply = handoff_command(&state, &args);
        assert_eq!(reply, "OK handoff accepted seq=4");
        let ev = streamlink_core::events::recent(streamlink_core::events::RING_CAPACITY)
            .into_iter()
            .find(|e| e.corr_id == Some(55_500_177))
            .expect("handoff event recorded with the corr id");
        assert_eq!(ev.kind, EventKind::HandoffAccepted);
        assert_eq!(ev.applied_seq, 4);
    }

    #[test]
    fn clusterz_snapshot_flags_unreachable_peers() {
        let (state, _cluster) = cluster_state(true);
        let (json, divergent) = clusterz_json(&state).expect("clustered node");
        assert!(
            json.starts_with("{\"schema\":\"streamlink.clusterz.v1\""),
            "{json}"
        );
        assert!(!json.contains('\n'), "snapshot must be one line");
        assert!(divergent, "dead peers must flag divergence: {json}");
        assert!(json.contains("\"unreachable\":2"), "{json}");
        assert!(json.contains("\"unreachable-members\""), "{json}");
        assert!(json.contains("\"role\":\"primary\""), "{json}");
        // The protocol command returns the same snapshot shape.
        let via_cmd = cluster_command(&state, &["STATUS"]);
        assert!(
            via_cmd.starts_with("{\"schema\":\"streamlink.clusterz.v1\""),
            "{via_cmd}"
        );
        // INFO answers locally with one parseable line.
        let info = cluster_command(&state, &["INFO"]);
        assert!(
            info.starts_with("OK cluster node=127.0.0.1:7001 role=primary epoch=1"),
            "{info}"
        );
        let view = NodeView::parse("127.0.0.1:7001", &info);
        assert!(view.reachable);
        assert_eq!(view.role, "primary");
        assert_eq!(view.epoch, 1);
        assert_eq!(view.believed, "127.0.0.1:7001");
    }
}
