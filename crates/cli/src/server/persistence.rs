//! The serving side of durability: open a data directory, keep the
//! journal, run the background checkpointer.
//!
//! The crash-safety protocol itself lives in `streamlink-core`
//! ([`streamlink_core::journal`], [`streamlink_core::durable`]); this
//! module wires it to the live server:
//!
//! * [`open`] recovers the store (snapshot + journal tail) and opens a
//!   fresh journal segment for new edges.
//! * [`checkpoint_now`] captures a snapshot and rotates the journal
//!   under the locks, then writes and prunes with no lock held, so
//!   ingestion stalls only for the in-memory capture.
//! * [`checkpoint_loop`] runs `checkpoint_now` whenever the journal lag
//!   passes the configured edge budget or the time interval elapses.

use std::io;
use std::path::{Path, PathBuf};
use std::thread;
use std::time::{Duration, Instant};

use streamlink_core::durable::{self, Recovery};
use streamlink_core::journal::{FsyncPolicy, Journal};
use streamlink_core::snapshot::StoreSnapshot;

use super::ServerState;

/// A live data directory: its path plus the journal accepting new
/// appends. Sits behind a `Mutex` inside [`ServerState`].
#[derive(Debug)]
pub struct Persist {
    pub(super) dir: PathBuf,
    pub(super) journal: Journal,
}

/// Recovers the store from `dir` (moving it out via
/// [`Recovery::store`]) and opens a journal segment for the edges this
/// process will ack. Returns the recovery report so the caller can log
/// what was rebuilt.
///
/// # Errors
/// Fails on unreadable files, a corrupt snapshot, or journal-creation
/// errors. A missing/empty directory is not an error (fresh start).
pub fn open(
    dir: &Path,
    config: streamlink_core::SketchConfig,
    fsync: FsyncPolicy,
) -> io::Result<(Persist, Recovery)> {
    std::fs::create_dir_all(dir)?;
    let recovery = durable::recover(dir, config)?;
    let journal = Journal::create(dir, recovery.store.edges_processed() + 1, fsync)?;
    Ok((
        Persist {
            dir: dir.to_path_buf(),
            journal,
        },
        recovery,
    ))
}

/// What one checkpoint accomplished.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointReport {
    /// `edges_processed` the snapshot covers.
    pub snapshot_seq: u64,
    /// Journal segments the snapshot made deletable.
    pub segments_pruned: usize,
}

/// Takes one checkpoint: capture + journal rotation under the locks
/// (brief), atomic snapshot write + prune without them (slow but
/// non-blocking for ingestion).
///
/// Safe against a crash at any point: the snapshot write is atomic, and
/// pruning only runs after it returns (see
/// [`streamlink_core::checkpoint`] for the ordering argument).
///
/// # Errors
/// Fails on IO errors; the journal still holds every acked edge, so a
/// failed checkpoint costs nothing but disk space.
pub fn checkpoint_now(state: &ServerState) -> io::Result<CheckpointReport> {
    let Some(persist) = state.persist.as_ref() else {
        return Ok(CheckpointReport {
            snapshot_seq: 0,
            segments_pruned: 0,
        });
    };
    fn lock(p: &std::sync::Mutex<Persist>) -> std::sync::MutexGuard<'_, Persist> {
        p.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    let metrics = streamlink_core::metrics::global();
    let start = std::time::Instant::now();
    let run = || -> io::Result<CheckpointReport> {
        let (snapshot, dir) = {
            let store = state.read_store();
            let mut persist = lock(persist);
            let snapshot = StoreSnapshot::capture(&store);
            persist.journal.rotate(snapshot.edges_processed + 1)?;
            (snapshot, persist.dir.clone())
        };
        snapshot.write_atomic(&durable::snapshot_path(&dir))?;
        let segments_pruned = lock(persist)
            .journal
            .prune_below(snapshot.edges_processed)?;
        state.set_last_snapshot_seq(snapshot.edges_processed);
        Ok(CheckpointReport {
            snapshot_seq: snapshot.edges_processed,
            segments_pruned,
        })
    };
    let result = run();
    match &result {
        Ok(_) => {
            metrics.checkpoints.incr();
            metrics.checkpoint_latency.observe(start);
        }
        Err(_) => {
            metrics.checkpoint_failures.incr();
        }
    }
    result
}

/// The checkpointer thread body: poll until shutdown, checkpointing
/// when the journal lag hits the edge budget or the interval elapses
/// with anything to persist. The final shutdown checkpoint is the
/// lifecycle's job ([`super::serve`]), not this loop's.
pub(super) fn checkpoint_loop(state: &ServerState) {
    let interval = state.config().snapshot_every;
    let edge_budget = state.config().snapshot_every_edges.max(1);
    let mut last_attempt = Instant::now();
    while !state.shutdown_requested() {
        thread::sleep(Duration::from_millis(25));
        let lag = state.journal_lag();
        let due = lag >= edge_budget || (lag > 0 && last_attempt.elapsed() >= interval);
        if !due {
            continue;
        }
        last_attempt = Instant::now();
        match checkpoint_now(state) {
            Ok(report) => eprintln!(
                "checkpoint: snapshot at seq {} ({} segment(s) pruned)",
                report.snapshot_seq, report.segments_pruned
            ),
            // Non-fatal: the journal still holds everything acked.
            Err(e) => eprintln!("checkpoint failed (will retry): {e}"),
        }
    }
}
