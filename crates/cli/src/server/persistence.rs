//! The serving side of durability: open a data directory, keep the
//! journal, run the background checkpointer.
//!
//! The crash-safety protocol itself lives in `streamlink-core`
//! ([`streamlink_core::journal`], [`streamlink_core::durable`]); this
//! module wires it to the live server:
//!
//! * [`open`] recovers the store (best snapshot generation + journal
//!   tail, falling back past corrupt generations) and opens a fresh
//!   journal segment at the recovered WAL high-water mark — *not* the
//!   store's edge count, which runs behind after corrupt records were
//!   quarantined.
//! * [`checkpoint_now`] captures a snapshot and rotates the journal
//!   under the locks, then writes a new generation, trims retention, and
//!   prunes with no store lock held, so ingestion stalls only for the
//!   in-memory capture.
//! * `checkpoint_loop` runs `checkpoint_now` whenever the journal lag
//!   passes the configured edge budget or the time interval elapses.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use streamlink_core::chaos::FaultPlan;
use streamlink_core::durable::{self, Recovery};
use streamlink_core::journal::{FsyncPolicy, Journal};
use streamlink_core::snapshot::StoreSnapshot;
use streamlink_core::WireFormat;

use super::ServerState;

/// A live data directory: its path plus the journal accepting new
/// appends. Sits behind a `Mutex` inside [`ServerState`].
#[derive(Debug)]
pub struct Persist {
    pub(super) dir: PathBuf,
    pub(super) journal: Journal,
}

/// Recovers the store from `dir` (moving it out via
/// [`Recovery::store`]) and opens a journal segment for the edges this
/// process will ack. New records — journal appends and checkpoint
/// snapshots — are written in `format`; recovery reads whatever formats
/// the directory already holds, so switching formats needs no
/// migration step. Returns the recovery report so the caller can log
/// what was rebuilt (fallbacks taken, records quarantined).
///
/// # Errors
/// Fails on environmental IO errors (unreadable directory, journal
/// creation). Corruption is not fatal: recovery falls back and
/// quarantines (see [`streamlink_core::recover`]). A missing/empty
/// directory is not an error (fresh start).
pub fn open(
    dir: &Path,
    config: streamlink_core::SketchConfig,
    fsync: FsyncPolicy,
    format: WireFormat,
) -> io::Result<(Persist, Recovery)> {
    open_with_faults(dir, config, fsync, format, None)
}

/// Like [`open`], but installs a scripted [`FaultPlan`] on the journal,
/// so tests can make exact appends/fsyncs/snapshot-writes of a *live*
/// server fail. Production callers use [`open`].
///
/// # Errors
/// As [`open`].
pub fn open_with_faults(
    dir: &Path,
    config: streamlink_core::SketchConfig,
    fsync: FsyncPolicy,
    format: WireFormat,
    faults: Option<Arc<FaultPlan>>,
) -> io::Result<(Persist, Recovery)> {
    fs::create_dir_all(dir)?;
    let recovery = durable::recover(dir, config)?;
    let journal = Journal::create_with_format(dir, recovery.next_seq(), fsync, format, faults)?;
    Ok((
        Persist {
            dir: dir.to_path_buf(),
            journal,
        },
        recovery,
    ))
}

/// What one checkpoint accomplished.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointReport {
    /// WAL seq the new snapshot generation covers.
    pub snapshot_seq: u64,
    /// Journal segments the retained generations made deletable.
    pub segments_pruned: usize,
}

/// Takes one checkpoint: capture + journal rotation under the locks
/// (brief), then — without the store lock — atomic generation write,
/// retention trim to `snapshot_keep`, and a journal prune back to the
/// oldest retained generation (so every retained generation can still
/// replay forward; see [`streamlink_core::checkpoint`] for the ordering
/// argument).
///
/// Safe against a crash at any point: the snapshot write is atomic, and
/// trimming/pruning only run after it returns.
///
/// # Errors
/// Fails on IO errors — real or injected via the journal's
/// [`FaultPlan`]; the journal still holds every acked edge, so a failed
/// checkpoint costs nothing but disk space.
pub fn checkpoint_now(state: &ServerState) -> io::Result<CheckpointReport> {
    let Some(persist) = state.persist.as_ref() else {
        return Ok(CheckpointReport {
            snapshot_seq: 0,
            segments_pruned: 0,
        });
    };
    fn lock(p: &std::sync::Mutex<Persist>) -> std::sync::MutexGuard<'_, Persist> {
        p.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    let metrics = streamlink_core::metrics::global();
    let start = std::time::Instant::now();
    let run = || -> io::Result<CheckpointReport> {
        let (snapshot, wal_seq, dir, format, faults) = {
            let store = state.read_store();
            let mut persist = lock(persist);
            let snapshot = StoreSnapshot::capture(&store);
            let wal_seq = persist.journal.next_seq() - 1;
            persist.journal.rotate(wal_seq + 1)?;
            (
                snapshot,
                wal_seq,
                persist.dir.clone(),
                persist.journal.format(),
                persist.journal.faults().cloned(),
            )
        };
        if let Some(plan) = &faults {
            plan.next_snapshot()?;
        }
        snapshot.write_atomic_as(&durable::generation_path(&dir, wal_seq), format)?;
        match fs::remove_file(durable::snapshot_path(&dir)) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        let mut generations = durable::list_generations(&dir)?;
        let keep = state.config().snapshot_keep.max(1);
        while generations.len() > keep {
            let (_, path) = generations.remove(0);
            fs::remove_file(&path)?;
        }
        metrics
            .snapshot_generations_kept
            .set(generations.len() as u64);
        let oldest_retained = generations.first().map_or(wal_seq, |(seq, _)| *seq);
        let segments_pruned = lock(persist).journal.prune_below(oldest_retained)?;
        state.set_last_snapshot_seq(snapshot.edges_processed);
        Ok(CheckpointReport {
            snapshot_seq: wal_seq,
            segments_pruned,
        })
    };
    let result = run();
    match &result {
        Ok(_) => {
            metrics.checkpoints.incr();
            metrics.checkpoint_latency.observe(start);
        }
        Err(_) => {
            metrics.checkpoint_failures.incr();
        }
    }
    result
}

/// The checkpointer thread body: poll until shutdown, checkpointing
/// when the journal lag hits the edge budget or the interval elapses
/// with anything to persist. The final shutdown checkpoint is the
/// lifecycle's job ([`super::serve`]), not this loop's.
pub(super) fn checkpoint_loop(state: &ServerState) {
    let interval = state.config().snapshot_every;
    let edge_budget = state.config().snapshot_every_edges.max(1);
    let mut last_attempt = Instant::now();
    while !state.shutdown_requested() {
        thread::sleep(Duration::from_millis(25));
        let lag = state.journal_lag();
        let due = lag >= edge_budget || (lag > 0 && last_attempt.elapsed() >= interval);
        if !due {
            continue;
        }
        last_attempt = Instant::now();
        match checkpoint_now(state) {
            Ok(report) => eprintln!(
                "checkpoint: snapshot at seq {} ({} segment(s) pruned)",
                report.snapshot_seq, report.segments_pruned
            ),
            // Non-fatal: the journal still holds everything acked.
            Err(e) => eprintln!("checkpoint failed (will retry): {e}"),
        }
    }
}
