//! The text protocol: one command in, one response line out.
//!
//! ```text
//! JACCARD u v | CN u v | AA u v | RA u v | PA u v | COSINE u v | OVERLAP u v
//!     -> OK <float>        measure estimate
//!     -> OK unseen         either endpoint never appeared
//! DEGREE u                 -> OK <int>
//! EXPLAIN <JACCARD|OVERLAP|DEGREE> u v
//!     -> OK measure=<m> u=<u> v=<v> estimate=<f> k=<k> fill_u=<n>
//!           fill_v=<n> epsilon95=<f> interval_low=<f> interval_high=<f>
//!           audit_u=<0|1> audit_v=<0|1> [...]   (one line; the estimate
//!           plus its 95%-confidence machinery — see docs/THEORY.md)
//!     -> OK unseen         either endpoint never appeared
//! INSERT u v               -> OK inserted          (journaled first when
//!                                                   a data dir is set)
//! STATS                    -> OK vertices=<n> edges=<m> memory=<bytes>
//!                                uptime_secs=<s> connections_active=<c>
//!                                journal_lag_edges=<l> shed_total=<n>
//!                                snapshot_generations=<k>
//!                                replay_quarantined=<q>
//!                                scrub_last_exit=<code>
//!                                process_uptime_secs=<s>
//!                                process_as_of_unix_ms=<ms>   (one line)
//! METRICS                  -> one key=value line per exported metric,
//!                             terminated by `OK <n> metrics`
//! TRACE [N]                -> newest N (default 16) completed trace
//!                             spans, one line each, terminated by
//!                             `OK <n> spans`
//! PROFILE [N]              -> one `streamlink.profilez.v1` JSON line:
//!                             the newest N (default: whole ring) spans
//!                             merged into a call-tree with
//!                             inclusive/exclusive time and the top-k
//!                             slowest ops, terminated by `OK <n> nodes`
//! HEALTH                   -> OK audit_cycles=<n> audit_pairs=<n>
//!                                tracked_vertices=<n> jaccard_mae=<f>
//!                                cn_rel_err_p95=<f> aa_mae=<f>
//!                                slow_ops=<n> spans_recorded=<n>
//!                                slow_op_threshold_ms=<n>
//!                                uptime_secs=<s>   (one line)
//! REPL HELLO <id>          -> OK repl hello primary_seq=<s> slots=<k>
//!                                seed=<s> backend=<b>   (handshake)
//! REPL PULL <id> <after> <n>
//!                          -> up to n WAL v2 lines (`F <seq> <u> <v>
//!                             <crc>`) with seq > after, terminated by
//!                             `OK <n> entries primary_seq=<s>`; or
//!                             `ERR resync` when the range was shed
//! REPL SNAPSHOT            -> `OK snapshot seq=<s> len=<n> crc32=<hex>`
//!                             + one line of StoreSnapshot JSON
//! REPL STATUS              -> one-line role/lag summary (either role)
//! REPL LEASE <id> <epoch> <applied_seq>
//!                          -> OK lease epoch=<e> primary_seq=<s>
//!                             tl=<timeline> | ERR fenced epoch=<e> |
//!                             ERR not-primary epoch=<e>  (cluster mode)
//! REPL VOTE <cand> <epoch> <seq>
//!                          -> OK vote granted epoch=<e> |
//!                             ERR vote denied epoch=<e>  (cluster mode)
//! REPL HANDOFF <old_epoch> F <seq> <u> <v> <crc>
//!                          -> OK handoff accepted seq=<s> | OK handoff
//!                             dup seq=<s> | ERR handoff gap expected=<s>
//! PROMOTE                  -> OK promoted epoch=<e>  (forced primary;
//!                             cluster mode only)
//! DEMOTE                   -> OK demoted epoch=<e>   (step down;
//!                             cluster mode only)
//! CLUSTER INFO             -> OK cluster node=<a> role=<r> epoch=<e>
//!                             data_epoch=<d> applied_seq=<n>
//!                             persisted_seq=<n> lag=<n> lag_slo=<n>
//!                             writable=<0|1> believed=<addr|?>
//!                             healthy=<0|1>   (this node's own belief)
//! CLUSTER STATUS           -> one `streamlink.clusterz.v1` JSON line:
//!                             the whole cluster as seen from here —
//!                             fans out CLUSTER INFO to every --peers
//!                             member and flags belief divergence
//!                             (two primaries, epoch skew, lag breach)
//! HELLO [v2|v3]            -> OK fmt=v2 | OK fmt=v3; `HELLO v3`
//!                             switches this connection's *responses*
//!                             to length-prefixed binary envelopes
//!                             (requests stay text lines) — see below
//! PING                     -> OK pong
//! QUIT                     -> OK bye (closes the connection)
//! anything else            -> ERR <reason>
//! ```
//!
//! ## Binary response mode (wire format v3)
//!
//! `HELLO v3` is answered with a plain `OK fmt=v3` text line; from the
//! next command on, every response is one self-delimiting
//! [`streamlink_core::codec`] envelope: a `TEXT_FRAME` carrying the
//! usual response text, except `REPL PULL`, whose batch ships as a
//! single `WAL_BATCH` record (CRC-covered, seqs delta-encoded), and
//! `REPL SNAPSHOT`, whose body ships as one compressed
//! `SNAPSHOT_FRAME` record. Because
//! frames are length-prefixed, clients can pipeline requests freely —
//! multi-line responses like `METRICS` arrive as one frame instead of a
//! parse-until-`OK` stream. The switch is per-connection and one-way;
//! `HELLO` inside binary mode just re-reports `OK fmt=v3`.
//!
//! ## Numeric argument hardening
//!
//! Every numeric protocol argument goes through one checked parser
//! (`parse_bounded`): ASCII digits only (no sign, no leading zeros,
//! no whitespace), overflow-checked, and bounds-checked against the
//! argument's documented range. Violations answer a uniform
//! `ERR bad-arg <name>: expected integer in <range>, got <raw>` line.
//!
//! On a read replica (`--replicate-from` or a non-primary cluster
//! node), `INSERT` and the serving `REPL` subcommands answer
//! `ERR readonly MOVED <addr> ...` — the fourth whitespace-separated
//! token is the primary's address, machine-parseable so clients can
//! follow the redirect; reads, `STATS`/`METRICS`/`HEALTH`, and
//! `REPL STATUS` keep serving. A cluster primary that lost its
//! majority lease answers `ERR fenced epoch=<e>` instead — see
//! [`super::failover`].
//!
//! Command words are case-insensitive, and leading/trailing whitespace —
//! including the `\r` a telnet/netcat client leaves on every line — is
//! ignored. Vertex-id and measure parsing stays strict. Every malformed
//! input maps to an `ERR` line — nothing a client sends can panic a
//! connection thread.
//!
//! `METRICS` is the complete counterpart of the one-line `STATS`: every
//! counter, gauge, and latency-histogram percentile in the global
//! [`streamlink_core::metrics`] registry, one `key=value` per line (see
//! `docs/OPERATIONS.md` §8 for the key catalogue). Clients read until
//! the `OK` line.
//!
//! `TRACE` and `HEALTH` surface the [`streamlink_core::trace`] ring and
//! the [`streamlink_core::audit`] rolling error state (§9): `TRACE`
//! answers "where did recent requests spend their time", `HEALTH`
//! answers "are the sketches still inside their error envelope". Both
//! follow the same CRLF/case tolerance as every other command.
//!
//! `EXPLAIN` turns the accuracy guarantee into a per-query answer: the
//! estimate, the slot evidence behind it (`k`, matches, slot fill), the
//! Hoeffding ε at 95% confidence, the Wilson interval implied by the
//! observed matches, and whether the online audit's shadow sample
//! covers either endpoint (`audit_u`/`audit_v`).

use graphstream::VertexId;
use linkpred::Measure;
use streamlink_core::{codec, metrics, trace};

use super::ServerState;

/// Parses one numeric protocol argument with explicit bounds: ASCII
/// digits only (no sign, no leading zeros beyond a lone `0`), checked
/// against `min..=max`. Every numeric argument in the protocol goes
/// through here so malformed input always earns the same
/// `bad-arg <name>` wording.
pub(super) fn parse_bounded(name: &str, raw: &str, min: u64, max: u64) -> Result<u64, String> {
    let bad = || format!("bad-arg {name}: expected integer in {min}..={max}, got {raw:?}");
    if raw.is_empty() || !raw.bytes().all(|b| b.is_ascii_digit()) {
        return Err(bad());
    }
    if raw.len() > 1 && raw.starts_with('0') {
        return Err(bad());
    }
    let value: u64 = raw.parse().map_err(|_| bad())?;
    if value < min || value > max {
        return Err(bad());
    }
    Ok(value)
}

/// Executes one protocol command against the shared state. Pure with
/// respect to IO, so the full command surface is unit-testable without
/// sockets.
///
/// Also the protocol-layer instrumentation point: every call bumps
/// `server.commands` (plus the per-class counters) and feeds the
/// command-latency histogram, so `METRICS` sees all traffic regardless
/// of which transport delivered the command.
#[must_use]
pub fn handle_command(state: &ServerState, line: &str) -> String {
    let m = metrics::global();
    // The trace span covers exactly what the latency histogram covers,
    // so a slow-op line and a histogram tail sample always agree.
    // Phase attribution: tokenization/dispatch cost vs execution cost.
    // The parse phase is tiny by design; if it ever grows, the serve
    // path — not the store — is the suspect.
    let parse_start = std::time::Instant::now();
    let span_name = command_span_name(line);
    m.serve_phase_parse.observe(parse_start);
    let t = trace::op(span_name);
    let start = std::time::Instant::now();
    let response = execute(state, line, &t);
    m.serve_phase_execute.observe(start);
    m.server_commands.incr();
    if response.starts_with("ERR") {
        m.server_command_errors.incr();
    }
    m.server_command_latency.observe(start);
    response
}

/// Static span name for a command line (span names must be `&'static`).
fn command_span_name(line: &str) -> &'static str {
    let Some(word) = line.split_whitespace().next() else {
        return "cmd.other";
    };
    match word.to_ascii_uppercase().as_str() {
        "INSERT" => "cmd.insert",
        "JACCARD" | "CN" | "AA" | "RA" | "PA" | "COSINE" | "OVERLAP" => "cmd.query",
        "DEGREE" => "cmd.degree",
        "EXPLAIN" => "cmd.explain",
        "STATS" => "cmd.stats",
        "METRICS" => "cmd.metrics",
        "TRACE" => "cmd.trace",
        "PROFILE" => "cmd.profile",
        "HEALTH" => "cmd.health",
        "REPL" => "cmd.repl",
        "CLUSTER" => "cmd.cluster",
        "PROMOTE" | "DEMOTE" => "cmd.failover",
        "HELLO" => "cmd.hello",
        "PING" => "cmd.ping",
        "QUIT" => "cmd.quit",
        _ => "cmd.other",
    }
}

fn execute(state: &ServerState, line: &str, t: &trace::OpGuard) -> String {
    // Telnet/netcat clients terminate lines with `\r\n`, and humans pad
    // with spaces; `split_whitespace` treats `\r`, tabs, and padding as
    // separators, so both parse like the bare command.
    let mut parts = line.split_whitespace();
    let Some(command) = parts.next() else {
        return "ERR empty command".into();
    };
    let args: Vec<&str> = parts.collect();

    let parse_vertex = |raw: &str| -> Result<VertexId, String> {
        parse_bounded("vertex-id", raw, 0, u64::MAX).map(VertexId)
    };
    let pair = |args: &[&str]| -> Result<(VertexId, VertexId), String> {
        if args.len() != 2 {
            return Err(format!("expected 2 vertex ids, got {}", args.len()));
        }
        Ok((parse_vertex(args[0])?, parse_vertex(args[1])?))
    };

    let upper = command.to_ascii_uppercase();
    match upper.as_str() {
        "PING" => "OK pong".into(),
        "QUIT" => "OK bye".into(),
        // Wire-format negotiation: the connection layer watches for the
        // `OK fmt=v3` answer and flips this connection's responses to
        // binary envelopes.
        "HELLO" => match args.as_slice() {
            [] => "OK fmt=v2".into(),
            [v] if v.eq_ignore_ascii_case("v2") => "OK fmt=v2".into(),
            [v] if v.eq_ignore_ascii_case("v3") => "OK fmt=v3".into(),
            _ => "ERR HELLO takes an optional wire format (v2 or v3)".into(),
        },
        "STATS" => {
            let (vertices, edges, memory) = {
                let guard = state.read_store();
                (
                    guard.vertex_count(),
                    guard.edges_processed(),
                    guard.memory_bytes(),
                )
            };
            let m = metrics::global();
            // The process_* timestamps mirror METRICS's
            // `process.uptime_secs` / `process.as_of_unix_ms` so the two
            // surfaces can be correlated sample-for-sample.
            format!(
                "OK version={} vertices={vertices} edges={edges} memory={memory} \
                 uptime_secs={} connections_active={} journal_lag_edges={} \
                 shed_total={} snapshot_generations={} replay_quarantined={} \
                 scrub_last_exit={} process_uptime_secs={} \
                 process_as_of_unix_ms={}",
                crate::build_version(),
                state.uptime_secs(),
                state.connections_active(),
                state.journal_lag(),
                m.connections_shed.get(),
                m.snapshot_generations_kept.get(),
                m.wal_replay_skipped.get(),
                m.scrub_last_exit.get(),
                metrics::uptime_secs(),
                metrics::as_of_unix_ms(),
            )
        }
        "METRICS" => {
            let m = metrics::global();
            // Gauges are levels, not events: refresh them at read time.
            m.connections_active.set(state.connections_active() as u64);
            m.journal_lag_edges.set(state.journal_lag());
            let snapshot = m.snapshot();
            // Per-peer replication gauges carry a dynamic peer id the
            // static-keyed registry cannot hold, so they are rendered
            // here at the exposition point; the terminator's announced
            // count covers them so clients can still trust it.
            let mut body = snapshot.render_text();
            let mut extra = 0usize;
            if let Some(repl) = state.primary_repl() {
                for peer in repl.peer_overview() {
                    body.push_str(&format!(
                        "\nrepl.peer.{id}.lag_seq={}\nrepl.peer.{id}.last_seen_ms={}\
                         \nrepl.peer.{id}.state={}",
                        peer.lag_seq,
                        peer.last_seen_ms,
                        u64::from(peer.live),
                        id = peer.id,
                    ));
                    extra += 3;
                }
            }
            format!("{body}\nOK {} metrics", snapshot.len() + extra)
        }
        "TRACE" => {
            let n = match args.as_slice() {
                [] => 16,
                // The count itself only needs to be a well-formed
                // integer; asks beyond the ring are capped, not errors.
                [raw] => match parse_bounded("count", raw, 1, u64::MAX) {
                    Ok(n) => usize::try_from(n)
                        .unwrap_or(trace::RING_CAPACITY)
                        .min(trace::RING_CAPACITY),
                    Err(e) => return format!("ERR {e}"),
                },
                _ => return "ERR TRACE takes at most one count".into(),
            };
            let spans = trace::recent(n);
            let mut out = String::new();
            for span in &spans {
                out.push_str(&span.render_line());
                out.push('\n');
            }
            out.push_str(&format!("OK {} spans", spans.len()));
            out
        }
        "PROFILE" => {
            let n = match args.as_slice() {
                [] => trace::RING_CAPACITY,
                // Like TRACE: the window only needs to be a well-formed
                // integer; asks beyond the ring are capped, not errors.
                [raw] => match parse_bounded("count", raw, 1, u64::MAX) {
                    Ok(n) => usize::try_from(n)
                        .unwrap_or(trace::RING_CAPACITY)
                        .min(trace::RING_CAPACITY),
                    Err(e) => return format!("ERR {e}"),
                },
                _ => return "ERR PROFILE takes at most one count".into(),
            };
            let profile = trace::profile(n);
            format!(
                "{}\nOK {} nodes",
                profile.render_json(),
                profile.nodes.len()
            )
        }
        "HEALTH" => {
            if !args.is_empty() {
                return "ERR HEALTH takes no arguments".into();
            }
            let m = metrics::global();
            // Prefer the auditor's live rolling state; a server without
            // an auditor (in-memory, audit disabled) reports the last
            // published gauges, which stay at zero.
            let (cycles, pairs, tracked, j_mae, cn_p95, aa_mae) = match state.audit_snapshot() {
                Some(s) => (
                    s.cycles,
                    s.pairs_evaluated,
                    s.tracked as u64,
                    s.jaccard_mae,
                    s.cn_rel_err_p95,
                    s.aa_mae,
                ),
                None => (
                    m.audit_cycles.get(),
                    m.audit_pairs.get(),
                    m.audit_tracked_vertices.get(),
                    m.audit_jaccard_mae_ppm.get() as f64 / 1e6,
                    m.audit_cn_rel_err_p95_ppm.get() as f64 / 1e6,
                    m.audit_aa_mae_ppm.get() as f64 / 1e6,
                ),
            };
            format!(
                "OK audit_cycles={cycles} audit_pairs={pairs} \
                 tracked_vertices={tracked} jaccard_mae={j_mae:.6} \
                 cn_rel_err_p95={cn_p95:.6} aa_mae={aa_mae:.6} \
                 slow_ops={} spans_recorded={} slow_op_threshold_ms={} \
                 uptime_secs={}",
                m.trace_slow_ops.get(),
                trace::spans_recorded(),
                trace::slow_op_threshold_ns() / 1_000_000,
                state.uptime_secs(),
            )
        }
        "DEGREE" => match args.as_slice() {
            [raw] => match parse_vertex(raw) {
                Ok(v) => {
                    metrics::global().server_queries.incr();
                    let d = state.read_store().degree(v);
                    t.note_degree(d);
                    format!("OK {d}")
                }
                Err(e) => format!("ERR {e}"),
            },
            _ => "ERR DEGREE takes exactly one vertex id".into(),
        },
        "REPL" => super::replication::repl_command(state, &args),
        "CLUSTER" => super::failover::cluster_command(state, &args),
        "PROMOTE" => {
            if !args.is_empty() {
                return "ERR PROMOTE takes no arguments".into();
            }
            super::failover::promote_command(state)
        }
        "DEMOTE" => {
            if !args.is_empty() {
                return "ERR DEMOTE takes no arguments".into();
            }
            super::failover::demote_command(state)
        }
        "INSERT" => {
            // Replicas are readonly (their store is the primary's, and
            // a local write would fork it permanently) and a fenced
            // cluster primary must not ack what a successor may not
            // have; the failover gate covers both.
            if let Some(refusal) = super::failover::write_gate(state) {
                return refusal;
            }
            match pair(&args) {
                Ok((u, v)) => match state.insert_edge(u, v) {
                    Ok(_) => {
                        metrics::global().server_inserts.incr();
                        let guard = state.read_store();
                        t.note_degree(guard.degree(u).max(guard.degree(v)));
                        "OK inserted".into()
                    }
                    // Not acked: the edge was neither journaled nor
                    // applied. The connection stays up and reads keep
                    // serving — a failing disk degrades writes, it does
                    // not kill the server.
                    Err(e) => {
                        metrics::global().storage_errors.incr();
                        format!("ERR storage: {e}")
                    }
                },
                Err(e) => format!("ERR {e}"),
            }
        }
        "EXPLAIN" => {
            if args.len() != 3 {
                return "ERR EXPLAIN takes <JACCARD|OVERLAP|DEGREE> u v".into();
            }
            let what = args[0].to_ascii_uppercase();
            if !matches!(what.as_str(), "JACCARD" | "OVERLAP" | "DEGREE") {
                return format!(
                    "ERR EXPLAIN supports JACCARD, OVERLAP, or DEGREE, got {:?}",
                    args[0]
                );
            }
            match pair(&args[1..]) {
                Ok((u, v)) => {
                    metrics::global().server_queries.incr();
                    let guard = state.read_store();
                    t.note_degree(guard.degree(u).max(guard.degree(v)));
                    explain(state, &guard, &what, u, v)
                }
                Err(e) => format!("ERR {e}"),
            }
        }
        "JACCARD" | "CN" | "AA" | "RA" | "PA" | "COSINE" | "OVERLAP" => {
            let Some(measure) = Measure::parse(&upper) else {
                return format!("ERR unknown measure {upper:?}");
            };
            match pair(&args) {
                Ok((u, v)) => {
                    metrics::global().server_queries.incr();
                    let guard = state.read_store();
                    t.note_degree(guard.degree(u).max(guard.degree(v)));
                    let score = match measure {
                        Measure::Jaccard => guard.jaccard(u, v),
                        Measure::CommonNeighbors => guard.common_neighbors(u, v),
                        Measure::AdamicAdar => guard.adamic_adar(u, v),
                        Measure::ResourceAllocation => guard.resource_allocation(u, v),
                        Measure::PreferentialAttachment => guard.preferential_attachment(u, v),
                        Measure::Cosine => guard.cosine(u, v),
                        Measure::Overlap => guard.overlap(u, v),
                    };
                    match score {
                        Some(s) => format!("OK {s:.6}"),
                        None => "OK unseen".into(),
                    }
                }
                Err(e) => format!("ERR {e}"),
            }
        }
        other => format!(
            "ERR unknown command {other:?} (commands: INSERT, JACCARD, CN, AA, \
             RA, PA, COSINE, OVERLAP, DEGREE, EXPLAIN, STATS, METRICS, TRACE, \
             PROFILE, HEALTH, REPL, CLUSTER, PROMOTE, DEMOTE, HELLO, PING, QUIT)"
        ),
    }
}

/// Executes one command in binary (v3) response mode: the reply is one
/// self-delimiting codec envelope — a `WAL_BATCH` record for
/// `REPL PULL`, a compressed `SNAPSHOT_FRAME` for `REPL SNAPSHOT`, a
/// `TEXT_FRAME` carrying the usual response text for
/// everything else. Returns the frame bytes plus whether the connection
/// should close (`QUIT`). Shares [`handle_command`]'s instrumentation,
/// so `METRICS` counts traffic identically in both modes.
pub(super) fn handle_command_framed(state: &ServerState, line: &str) -> (Vec<u8>, bool) {
    let mut words = line.split_whitespace();
    let first = words.next().unwrap_or("");
    if first.eq_ignore_ascii_case("HELLO") {
        // The switch is one-way and per-connection: once framed, a
        // re-negotiation attempt just re-reports the active format.
        metrics::global().server_commands.incr();
        return (codec::encode_text_frame("OK fmt=v3"), false);
    }
    let sub = if first.eq_ignore_ascii_case("REPL") {
        words.next().map(str::to_ascii_uppercase)
    } else {
        None
    };
    // PULL and SNAPSHOT have dedicated binary encodings (WAL_BATCH and
    // SNAPSHOT_FRAME); every other REPL subcommand stays a text frame.
    if matches!(sub.as_deref(), Some("PULL" | "SNAPSHOT")) {
        let m = metrics::global();
        let t = trace::op("cmd.repl");
        let start = std::time::Instant::now();
        let args: Vec<&str> = line.split_whitespace().skip(1).collect();
        let (frame, is_err) = if sub.as_deref() == Some("PULL") {
            super::replication::repl_pull_frame(state, &args)
        } else if args.len() == 1 {
            super::replication::repl_snapshot_frame(state)
        } else {
            (
                codec::encode_text_frame("ERR REPL SNAPSHOT takes no arguments"),
                true,
            )
        };
        drop(t);
        m.server_commands.incr();
        if is_err {
            m.server_command_errors.incr();
        }
        m.server_command_latency.observe(start);
        return (frame, false);
    }
    let response = handle_command(state, line);
    let closing = response == "OK bye";
    (codec::encode_text_frame(&response), closing)
}

/// Builds the one-line `EXPLAIN` response: the estimate plus the
/// `(ε, δ)` machinery behind it, so an operator can see not just a
/// number but how much to trust it.
///
/// `what` is pre-validated to one of `JACCARD`, `OVERLAP`, `DEGREE`.
fn explain(
    state: &ServerState,
    store: &streamlink_core::SketchStore,
    what: &str,
    u: VertexId,
    v: VertexId,
) -> String {
    use streamlink_core::AccuracyPlan;

    /// z-score for a two-sided 95% confidence interval.
    const Z95: f64 = 1.959_964;

    let (Some(su), Some(sv)) = (store.sketch(u), store.sketch(v)) else {
        return "OK unseen".into();
    };
    let k = store.config().slots();
    let (du, dv) = (store.degree(u), store.degree(v));
    let matches = su.match_count(sv);
    let covered = |x: VertexId| u8::from(state.auditor().is_some_and(|a| a.covers(x)));
    let common = format!(
        "u={} v={} k={k} fill_u={} fill_v={} audit_u={} audit_v={}",
        u.0,
        v.0,
        su.filled_slots(),
        sv.filled_slots(),
        covered(u),
        covered(v),
    );
    match what {
        "JACCARD" => {
            let estimate = matches as f64 / k as f64;
            let (lo, hi) = AccuracyPlan::wilson_interval(matches, k, Z95);
            format!(
                "OK measure=JACCARD {common} estimate={estimate:.6} matches={matches} \
                 epsilon95={:.6} interval_low={lo:.6} interval_high={hi:.6}",
                AccuracyPlan::error_bound(k, 0.05),
            )
        }
        "OVERLAP" => {
            // Overlap = CN / min(d(u), d(v)); propagate the CN interval
            // through the same denominator the estimator uses.
            let denom = du.min(dv).max(1) as f64;
            let estimate = store.overlap(u, v).unwrap_or(0.0);
            let (cn_lo, cn_hi) = AccuracyPlan::cn_interval(matches, k, du, dv, Z95);
            format!(
                "OK measure=OVERLAP {common} estimate={estimate:.6} matches={matches} \
                 epsilon95={:.6} interval_low={:.6} interval_high={:.6}",
                AccuracyPlan::error_bound(k, 0.05),
                (cn_lo / denom).clamp(0.0, 1.0),
                (cn_hi / denom).clamp(0.0, 1.0),
            )
        }
        // DEGREE: exact counters, so the interval is degenerate and the
        // error bound is zero — included so clients can treat every
        // EXPLAIN response uniformly.
        _ => format!(
            "OK measure=DEGREE {common} estimate={du} degree_u={du} degree_v={dv} \
             epsilon95=0.000000 interval_low={du}.000000 interval_high={du}.000000"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServerConfig, ServerState};
    use streamlink_core::{SketchConfig, SketchStore};

    fn state() -> ServerState {
        let mut s = SketchStore::new(SketchConfig::with_slots(64).seed(1));
        for w in 10..30u64 {
            s.insert_edge(VertexId(0), VertexId(w));
            s.insert_edge(VertexId(1), VertexId(w));
        }
        ServerState::in_memory(s, ServerConfig::default())
    }

    #[test]
    fn ping_and_quit() {
        let s = state();
        assert_eq!(handle_command(&s, "PING"), "OK pong");
        assert_eq!(handle_command(&s, "quit"), "OK bye");
    }

    #[test]
    fn measure_queries() {
        let s = state();
        assert_eq!(handle_command(&s, "JACCARD 0 1"), "OK 1.000000");
        assert!(handle_command(&s, "CN 0 1").starts_with("OK 20"));
        assert!(handle_command(&s, "AA 0 1").starts_with("OK "));
        assert!(handle_command(&s, "cosine 0 1").starts_with("OK "));
        assert_eq!(handle_command(&s, "JACCARD 0 9999"), "OK unseen");
    }

    #[test]
    fn degree_and_stats() {
        let s = state();
        assert_eq!(handle_command(&s, "DEGREE 0"), "OK 20");
        assert_eq!(handle_command(&s, "DEGREE 404"), "OK 0");
        let stats = handle_command(&s, "STATS");
        assert!(
            stats.contains("vertices=22") && stats.contains(" edges=40"),
            "{stats}"
        );
    }

    #[test]
    fn stats_reports_serving_fields() {
        let s = state();
        let stats = handle_command(&s, "STATS");
        assert!(
            stats.contains(&format!("version={}", crate::build_version())),
            "{stats}"
        );
        assert!(stats.contains("uptime_secs="), "{stats}");
        assert!(stats.contains("connections_active=0"), "{stats}");
        // In-memory serving has no journal, hence no lag.
        assert!(stats.contains("journal_lag_edges=0"), "{stats}");
        // The self-healing-storage fields are always present.
        assert!(stats.contains("shed_total="), "{stats}");
        assert!(stats.contains("snapshot_generations="), "{stats}");
        assert!(stats.contains("replay_quarantined="), "{stats}");
        assert!(stats.contains("scrub_last_exit="), "{stats}");
    }

    #[test]
    fn insert_degrades_to_err_storage_and_reads_keep_serving() {
        // A failing journal append must nack the INSERT with
        // `ERR storage`, leave the store untouched, and leave the server
        // serving reads — never panic or half-apply.
        use crate::server::persistence;
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        use streamlink_core::chaos::{FaultKind, FaultPlan};
        use streamlink_core::journal::FsyncPolicy;

        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "streamlink-proto-storage-{}-{n}",
            std::process::id()
        ));

        let plan = Arc::new(FaultPlan::new());
        plan.fail_append(1, FaultKind::Enospc);
        let (persist, recovery) = persistence::open_with_faults(
            &dir,
            SketchConfig::with_slots(16).seed(3),
            FsyncPolicy::Never,
            streamlink_core::WireFormat::TextV2,
            Some(plan),
        )
        .unwrap();
        let before = metrics::global().storage_errors.get();
        let s = ServerState::with_persistence(
            recovery.store,
            persist,
            recovery.snapshot_seq,
            ServerConfig::default(),
        );

        assert_eq!(handle_command(&s, "INSERT 1 2"), "OK inserted");
        let nack = handle_command(&s, "INSERT 3 4");
        assert!(nack.starts_with("ERR storage"), "{nack}");
        assert!(nack.contains("injected fault"), "{nack}");
        assert_eq!(metrics::global().storage_errors.get(), before + 1);
        // The failed edge was never applied; reads still serve.
        assert_eq!(handle_command(&s, "DEGREE 3"), "OK 0");
        assert_eq!(handle_command(&s, "DEGREE 1"), "OK 1");
        // One-shot fault: the write path heals.
        assert_eq!(handle_command(&s, "INSERT 3 4"), "OK inserted");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crlf_and_surrounding_whitespace_are_trimmed() {
        // What telnet/netcat actually deliver: trailing `\r`, padding.
        let s = state();
        assert!(handle_command(&s, "stats\r").starts_with("OK version="));
        assert_eq!(handle_command(&s, "  INSERT 1 2  "), "OK inserted");
        assert_eq!(handle_command(&s, "\tPING\r"), "OK pong");
        assert_eq!(handle_command(&s, "degree 0\r"), "OK 20");
        // Strictness is preserved where it matters: a vertex id with
        // embedded garbage still errors.
        assert!(handle_command(&s, "INSERT 1\r2 3").starts_with("ERR"));
    }

    #[test]
    fn commands_are_case_insensitive() {
        let s = state();
        assert_eq!(handle_command(&s, "ping"), "OK pong");
        assert!(handle_command(&s, "jaccard 0 1").starts_with("OK 1.0"));
        assert_eq!(handle_command(&s, "Insert 0 600"), "OK inserted");
        assert!(handle_command(&s, "metrics\r").ends_with(" metrics"));
    }

    #[test]
    fn metrics_returns_key_value_lines_with_ok_terminator() {
        let s = state();
        // Generate some traffic so counters are visibly nonzero.
        let _ = handle_command(&s, "JACCARD 0 1");
        let _ = handle_command(&s, "INSERT 5 6");
        let response = handle_command(&s, "METRICS");
        let lines: Vec<&str> = response.lines().collect();
        let last = lines.last().unwrap();
        assert!(
            last.starts_with("OK ") && last.ends_with(" metrics"),
            "terminator: {last}"
        );
        let body = &lines[..lines.len() - 1];
        assert_eq!(
            body.len().to_string(),
            last.split_whitespace().nth(1).unwrap(),
            "OK line must announce the metric count"
        );
        for line in body {
            let (k, v) = line.split_once('=').expect("key=value line");
            assert!(!k.is_empty(), "{line}");
            v.parse::<u64>()
                .unwrap_or_else(|_| panic!("bad value in {line}"));
        }
        let find = |key: &str| {
            body.iter()
                .find_map(|l| l.strip_prefix(&format!("{key}=")))
                .unwrap_or_else(|| panic!("missing {key}"))
                .parse::<u64>()
                .unwrap()
        };
        assert!(find("core.insert.edges") >= 41, "ingest counter");
        assert!(find("server.queries") >= 1, "query counter");
        assert!(find("server.inserts") >= 1);
        let (p50, p99) = (
            find("core.insert.latency_ns.p50"),
            find("core.insert.latency_ns.p99"),
        );
        assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
        assert_eq!(find("server.connections_active"), 0);
        assert_eq!(find("journal.lag_edges"), 0);
    }

    #[test]
    fn trace_returns_span_lines_with_ok_terminator() {
        let s = state();
        // Generate traced traffic first.
        let _ = handle_command(&s, "JACCARD 0 1");
        let _ = handle_command(&s, "INSERT 7 8");
        let response = handle_command(&s, "TRACE 8");
        let lines: Vec<&str> = response.lines().collect();
        let last = lines.last().unwrap();
        assert!(
            last.starts_with("OK ") && last.ends_with(" spans"),
            "terminator: {last}"
        );
        let announced: usize = last.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert_eq!(lines.len() - 1, announced, "count must match body");
        assert!(announced >= 1, "previous commands must have left spans");
        for line in &lines[..lines.len() - 1] {
            assert!(line.contains("seq="), "{line}");
            assert!(line.contains("op="), "{line}");
            assert!(line.contains("dur_ns="), "{line}");
            assert!(line.contains("degree_class="), "{line}");
        }
        // The query span carries the degree class of its endpoints.
        assert!(
            response.contains("op=cmd.query"),
            "expected a cmd.query span: {response}"
        );
    }

    #[test]
    fn trace_and_health_are_crlf_and_case_tolerant() {
        let s = state();
        let _ = handle_command(&s, "PING");
        assert!(handle_command(&s, "trace\r").ends_with(" spans"));
        assert!(handle_command(&s, "  Trace 4  \r").ends_with(" spans"));
        assert!(handle_command(&s, "health\r").starts_with("OK audit_cycles="));
        assert!(handle_command(&s, "\tHEALTH\r").starts_with("OK audit_cycles="));
    }

    #[test]
    fn trace_and_health_bad_arguments_are_err() {
        let s = state();
        assert!(
            handle_command(&s, "TRACE 0").starts_with("ERR"),
            "zero count"
        );
        assert!(
            handle_command(&s, "TRACE abc").starts_with("ERR"),
            "non-numeric"
        );
        assert!(
            handle_command(&s, "TRACE -3").starts_with("ERR"),
            "negative"
        );
        assert!(
            handle_command(&s, "TRACE 1 2").starts_with("ERR"),
            "extra args"
        );
        assert!(
            handle_command(&s, "HEALTH now").starts_with("ERR"),
            "HEALTH args"
        );
    }

    #[test]
    fn profile_returns_json_call_tree_with_ok_terminator() {
        let s = state();
        // Generate traced traffic so the profile has nodes to merge.
        let _ = handle_command(&s, "JACCARD 0 1");
        let _ = handle_command(&s, "INSERT 7 8");
        let response = handle_command(&s, "PROFILE");
        let lines: Vec<&str> = response.lines().collect();
        assert_eq!(lines.len(), 2, "one JSON line + terminator: {response}");
        let body: serde_json::Value =
            serde_json::from_str(lines[0]).expect("PROFILE body must be valid JSON");
        assert_eq!(
            body.get("schema").and_then(serde_json::Value::as_str),
            Some("streamlink.profilez.v1")
        );
        let nodes = body
            .get("nodes")
            .and_then(serde_json::Value::as_array)
            .expect("nodes array");
        assert!(!nodes.is_empty(), "traffic must have produced nodes");
        let last = lines.last().unwrap();
        assert!(
            last.starts_with("OK ") && last.ends_with(" nodes"),
            "terminator: {last}"
        );
        let announced: usize = last.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert_eq!(nodes.len(), announced, "count must match the node list");
    }

    #[test]
    fn profile_is_crlf_and_case_tolerant_and_rejects_bad_args() {
        let s = state();
        let _ = handle_command(&s, "PING");
        assert!(handle_command(&s, "profile\r").ends_with(" nodes"));
        assert!(handle_command(&s, "  Profile 4  \r").ends_with(" nodes"));
        assert!(handle_command(&s, "PROFILE 0").starts_with("ERR"), "zero");
        assert!(
            handle_command(&s, "PROFILE abc").starts_with("ERR"),
            "non-numeric"
        );
        assert!(
            handle_command(&s, "PROFILE 010").starts_with("ERR bad-arg count"),
            "leading zeros"
        );
        assert!(
            handle_command(&s, "PROFILE 1 2").starts_with("ERR"),
            "extra args"
        );
        // Asks beyond the ring are capped, not errors.
        assert!(
            handle_command(&s, &format!("PROFILE {}", trace::RING_CAPACITY * 10))
                .ends_with(" nodes")
        );
    }

    #[test]
    fn explain_jaccard_reports_estimate_with_interval() {
        let s = state();
        let reply = handle_command(&s, "EXPLAIN JACCARD 0 1");
        let body = reply.strip_prefix("OK ").expect("OK response");
        let fields: std::collections::HashMap<&str, &str> = body
            .split_whitespace()
            .map(|kv| kv.split_once('=').expect("key=value field"))
            .collect();
        assert_eq!(fields["measure"], "JACCARD");
        assert_eq!(fields["k"], "64");
        // The fixture populates the store before the server (and its
        // auditor) exists, so no endpoint is shadow-covered.
        assert_eq!(fields["audit_u"], "0");
        assert_eq!(fields["audit_v"], "0");
        let estimate: f64 = fields["estimate"].parse().unwrap();
        let matches: usize = fields["matches"].parse().unwrap();
        let lo: f64 = fields["interval_low"].parse().unwrap();
        let hi: f64 = fields["interval_high"].parse().unwrap();
        let eps: f64 = fields["epsilon95"].parse().unwrap();
        // Perfect overlap: every slot matches, estimate 1.0.
        assert_eq!(matches, 64);
        assert!((estimate - 1.0).abs() < 1e-9);
        assert!(
            lo <= estimate && estimate <= hi,
            "{lo} <= {estimate} <= {hi}"
        );
        assert!(
            lo > 0.9,
            "Wilson low bound at p=1, k=64 should be tight: {lo}"
        );
        assert!(eps > 0.0 && eps < 1.0);
        let fill: usize = fields["fill_u"].parse().unwrap();
        assert!((1..=64).contains(&fill));
    }

    #[test]
    fn explain_overlap_and_degree_variants() {
        let s = state();
        let overlap = handle_command(&s, "EXPLAIN OVERLAP 0 1");
        assert!(overlap.contains("measure=OVERLAP"), "{overlap}");
        assert!(overlap.contains("interval_low="), "{overlap}");
        let degree = handle_command(&s, "EXPLAIN DEGREE 0 1");
        assert!(degree.contains("measure=DEGREE"), "{degree}");
        assert!(degree.contains("degree_u=20"), "{degree}");
        assert!(degree.contains("degree_v=20"), "{degree}");
        assert!(degree.contains("epsilon95=0.000000"), "{degree}");
        assert_eq!(handle_command(&s, "EXPLAIN JACCARD 0 9999"), "OK unseen");
    }

    #[test]
    fn explain_is_crlf_and_case_tolerant() {
        // Mirrors the TRACE/HEALTH hygiene suite: telnet-style CRLF
        // terminators, padding, and any case must all parse.
        let s = state();
        assert!(handle_command(&s, "explain jaccard 0 1\r").starts_with("OK measure=JACCARD"));
        assert!(handle_command(&s, "  Explain Overlap 0 1  \r").starts_with("OK measure=OVERLAP"));
        assert!(handle_command(&s, "\tEXPLAIN degree 0 1\r").starts_with("OK measure=DEGREE"));
    }

    #[test]
    fn explain_bad_arguments_are_err() {
        let s = state();
        assert!(handle_command(&s, "EXPLAIN").starts_with("ERR"), "no args");
        assert!(
            handle_command(&s, "EXPLAIN JACCARD 0").starts_with("ERR"),
            "one vertex"
        );
        assert!(
            handle_command(&s, "EXPLAIN JACCARD 0 1 2").starts_with("ERR"),
            "extra args"
        );
        assert!(
            handle_command(&s, "EXPLAIN COSINE 0 1").starts_with("ERR EXPLAIN supports"),
            "unsupported measure"
        );
        assert!(
            handle_command(&s, "EXPLAIN JACCARD a b").starts_with("ERR bad-arg vertex-id"),
            "non-numeric ids"
        );
    }

    #[test]
    fn parse_bounded_is_strict() {
        assert_eq!(parse_bounded("n", "0", 0, 9), Ok(0));
        assert_eq!(parse_bounded("n", "9", 0, 9), Ok(9));
        assert_eq!(
            parse_bounded("n", &u64::MAX.to_string(), 0, u64::MAX),
            Ok(u64::MAX)
        );
        for raw in [
            "",
            "-1",
            "+1",
            " 1",
            "1 ",
            "01",
            "007",
            "1.0",
            "1e3",
            "0x10",
            "ten",
            "18446744073709551616", // u64::MAX + 1
            "99999999999999999999999999",
        ] {
            let err = parse_bounded("n", raw, 0, u64::MAX).unwrap_err();
            assert!(err.starts_with("bad-arg n:"), "{raw:?} -> {err}");
        }
        // Bounds are enforced, and the error names them.
        let err = parse_bounded("count", "10", 1, 9).unwrap_err();
        assert!(err.contains("1..=9") && err.contains("\"10\""), "{err}");
        assert!(parse_bounded("count", "0", 1, 9).is_err());
    }

    #[test]
    fn numeric_args_use_uniform_bad_arg_wording() {
        let s = state();
        for cmd in [
            "DEGREE 01",
            "DEGREE +1",
            "DEGREE 18446744073709551616",
            "INSERT 1 -2",
            "JACCARD 1.0 2",
            "EXPLAIN JACCARD 0 0x1",
        ] {
            let reply = handle_command(&s, cmd);
            assert!(reply.starts_with("ERR bad-arg vertex-id"), "{cmd}: {reply}");
        }
        assert!(handle_command(&s, "TRACE 010").starts_with("ERR bad-arg count"));
    }

    #[test]
    fn hello_negotiates_wire_format() {
        let s = state();
        assert_eq!(handle_command(&s, "HELLO"), "OK fmt=v2");
        assert_eq!(handle_command(&s, "HELLO v2"), "OK fmt=v2");
        assert_eq!(handle_command(&s, "HELLO v3"), "OK fmt=v3");
        assert_eq!(handle_command(&s, "hello V3\r"), "OK fmt=v3");
        assert!(handle_command(&s, "HELLO v9").starts_with("ERR HELLO"));
        assert!(handle_command(&s, "HELLO v2 v3").starts_with("ERR HELLO"));
    }

    #[test]
    fn framed_mode_wraps_responses_in_envelopes() {
        use streamlink_core::codec;
        let s = state();
        let (frame, closing) = handle_command_framed(&s, "PING");
        assert!(!closing);
        let env = codec::decode_envelope(&frame).unwrap();
        assert_eq!(env.mode, codec::MODE_TEXT_FRAME);
        assert_eq!(env.body, b"OK pong");
        // Multi-line responses arrive as one frame.
        let (frame, _) = handle_command_framed(&s, "METRICS");
        let env = codec::decode_envelope(&frame).unwrap();
        let text = std::str::from_utf8(env.body).unwrap();
        assert!(text.lines().last().unwrap().ends_with(" metrics"), "{text}");
        // QUIT closes, HELLO re-reports v3, and REPL PULL ships a
        // WAL_BATCH record.
        assert!(handle_command_framed(&s, "QUIT").1);
        let (frame, _) = handle_command_framed(&s, "HELLO v2");
        let env = codec::decode_envelope(&frame).unwrap();
        assert_eq!(env.body, b"OK fmt=v3");
        let _ = handle_command(&s, "INSERT 900 901");
        let (frame, _) = handle_command_framed(&s, "REPL PULL r1 40 10");
        let env = codec::decode_envelope(&frame).unwrap();
        assert_eq!(env.mode, codec::MODE_WAL_BATCH);
        let (entries, primary_seq) = codec::decode_wal_batch_body(env.body).unwrap();
        assert!(!entries.is_empty());
        assert!(primary_seq >= entries.last().unwrap().seq);
    }

    #[test]
    fn unknown_command_help_lists_explain() {
        let s = state();
        let reply = handle_command(&s, "FROBNICATE");
        assert!(reply.starts_with("ERR unknown command"), "{reply}");
        for cmd in ["EXPLAIN", "INSERT", "METRICS", "TRACE", "PROFILE", "HEALTH"] {
            assert!(reply.contains(cmd), "help text missing {cmd}: {reply}");
        }
    }

    #[test]
    fn stats_carries_process_timestamps_matching_metrics() {
        let s = state();
        let stats = handle_command(&s, "STATS");
        assert!(stats.contains("process_uptime_secs="), "{stats}");
        let stats_ms: u64 = stats
            .split_whitespace()
            .find_map(|kv| kv.strip_prefix("process_as_of_unix_ms="))
            .expect("process_as_of_unix_ms field")
            .parse()
            .expect("u64 ms");
        let response = handle_command(&s, "METRICS");
        let metrics_ms: u64 = response
            .lines()
            .find_map(|l| l.strip_prefix("process.as_of_unix_ms="))
            .expect("METRICS as_of")
            .parse()
            .expect("u64 ms");
        // Taken moments apart in the same process: within 10 s.
        assert!(
            metrics_ms.abs_diff(stats_ms) < 10_000,
            "STATS ({stats_ms}) and METRICS ({metrics_ms}) disagree"
        );
    }

    #[test]
    fn trace_caps_requested_count_at_ring_capacity() {
        let s = state();
        let response = handle_command(&s, &format!("TRACE {}", trace::RING_CAPACITY * 10));
        assert!(response.ends_with(" spans"), "{response}");
    }

    #[test]
    fn health_reports_parseable_fields() {
        let s = state();
        let response = handle_command(&s, "HEALTH");
        let body = response.strip_prefix("OK ").expect("OK response");
        let mut keys = Vec::new();
        for field in body.split_whitespace() {
            let (k, v) = field.split_once('=').expect("key=value field");
            keys.push(k);
            // Error gauges are fixed-precision floats; everything else
            // is an integer.
            if k.ends_with("_mae") || k.ends_with("_p95") {
                let f: f64 = v.parse().unwrap_or_else(|_| panic!("bad float {field}"));
                assert!(f >= 0.0, "{field}");
            } else {
                v.parse::<u64>()
                    .unwrap_or_else(|_| panic!("bad integer {field}"));
            }
        }
        for expect in [
            "audit_cycles",
            "audit_pairs",
            "tracked_vertices",
            "jaccard_mae",
            "cn_rel_err_p95",
            "aa_mae",
            "slow_ops",
            "spans_recorded",
            "slow_op_threshold_ms",
            "uptime_secs",
        ] {
            assert!(keys.contains(&expect), "missing {expect} in {response}");
        }
    }

    fn replica() -> ServerState {
        use crate::server::replication::{ReplicaRuntime, ReplicaTuning};
        use std::sync::Arc;
        let runtime = Arc::new(ReplicaRuntime::new(
            "127.0.0.1:9".into(),
            "test-replica".into(),
            100_000,
            ReplicaTuning::default(),
        ));
        let store = SketchStore::new(SketchConfig::with_slots(64).seed(1));
        ServerState::replica(store, ServerConfig::default(), runtime)
    }

    #[test]
    fn repl_commands_are_crlf_and_case_tolerant() {
        let s = state();
        let _ = handle_command(&s, "INSERT 50 51");
        assert!(handle_command(&s, "repl status\r").starts_with("OK role=primary"));
        assert!(handle_command(&s, "  Repl Hello r1  \r").starts_with("OK repl hello"));
        // The fixture store carries 40 pre-server edges, so the ring
        // starts at seq 40 and the INSERT above is seq 41.
        assert!(
            handle_command(&s, "\tREPL pull r1 40 10\r").ends_with("OK 1 entries primary_seq=41")
        );
        assert!(handle_command(&s, "repl snapshot\r").starts_with("OK snapshot seq="));
    }

    #[test]
    fn repl_bad_arguments_are_err_lines() {
        let s = state();
        assert!(handle_command(&s, "REPL").starts_with("ERR"));
        assert!(handle_command(&s, "REPL HELLO").starts_with("ERR"));
        assert!(handle_command(&s, "REPL PULL r1").starts_with("ERR"));
        assert!(handle_command(&s, "REPL PULL r1 x 10").starts_with("ERR"));
        assert!(handle_command(&s, "REPL PULL r1 0 0").starts_with("ERR"));
        assert!(handle_command(&s, "REPL SNAPSHOT now").starts_with("ERR"));
        assert!(handle_command(&s, "REPL FROBNICATE").starts_with("ERR unknown REPL"));
    }

    #[test]
    fn replica_rejects_writes_with_err_readonly() {
        let s = replica();
        let nack = handle_command(&s, "INSERT 1 2");
        assert!(nack.starts_with("ERR readonly"), "{nack}");
        assert!(nack.contains("127.0.0.1:9"), "{nack}");
        // Nothing was applied, and reads keep serving.
        assert_eq!(handle_command(&s, "DEGREE 1"), "OK 0");
        assert!(handle_command(&s, "STATS").contains(" vertices=0 "));
        assert!(handle_command(&s, "JACCARD 1 2").starts_with("OK"));
        assert!(handle_command(&s, "HEALTH").starts_with("OK audit_cycles="));
        // Case/CRLF tolerance applies to the readonly gate too.
        assert!(handle_command(&s, "insert 1 2\r").starts_with("ERR readonly"));
        // Serving REPL subcommands are also refused on a replica.
        assert!(handle_command(&s, "REPL HELLO x").starts_with("ERR readonly"));
        assert!(handle_command(&s, "REPL STATUS").starts_with("OK role=replica"));
    }

    #[test]
    fn readonly_refusal_is_moved_with_parseable_address() {
        let s = replica();
        let nack = handle_command(&s, "INSERT 1 2");
        assert!(
            nack.starts_with("ERR readonly MOVED 127.0.0.1:9 "),
            "{nack}"
        );
        // The 4th whitespace token is the address a client should
        // redirect to — the machine-parseable part of the hint.
        assert_eq!(nack.split_whitespace().nth(3), Some("127.0.0.1:9"));
        // CRLF/case tolerance holds on the refusal path too.
        let nack = handle_command(&s, "  insert 1 2\r");
        assert_eq!(nack.split_whitespace().nth(3), Some("127.0.0.1:9"));
    }

    #[test]
    fn promote_and_demote_answer_err_outside_cluster_mode() {
        let s = state();
        assert!(handle_command(&s, "PROMOTE").starts_with("ERR not clustered"));
        assert!(handle_command(&s, "DEMOTE").starts_with("ERR not clustered"));
        // CRLF/case tolerant, argument-strict.
        assert!(handle_command(&s, "  promote \r").starts_with("ERR not clustered"));
        assert!(handle_command(&s, "\tDemote\r").starts_with("ERR not clustered"));
        assert!(handle_command(&s, "PROMOTE now").starts_with("ERR PROMOTE takes"));
        assert!(handle_command(&s, "DEMOTE now").starts_with("ERR DEMOTE takes"));
        // They appear in the help text.
        let help = handle_command(&s, "FROBNICATE");
        assert!(
            help.contains("PROMOTE") && help.contains("DEMOTE"),
            "{help}"
        );
    }

    #[test]
    fn cluster_commands_are_crlf_case_tolerant_and_argument_strict() {
        // Outside cluster mode every CLUSTER subcommand answers the
        // same refusal the other failover verbs use, through any
        // spelling a telnet client can produce.
        let s = state();
        assert!(handle_command(&s, "CLUSTER INFO").starts_with("ERR not clustered"));
        assert!(handle_command(&s, "cluster info\r").starts_with("ERR not clustered"));
        assert!(handle_command(&s, "  Cluster Status  \r").starts_with("ERR not clustered"));
        // A trailing correlation token is stripped before dispatch.
        assert!(handle_command(&s, "CLUSTER STATUS corr=17\r").starts_with("ERR not clustered"));
        // Arity and spelling stay strict.
        assert!(handle_command(&s, "CLUSTER").starts_with("ERR CLUSTER takes"));
        assert!(handle_command(&s, "CLUSTER INFO now").starts_with("ERR CLUSTER"));
        assert!(handle_command(&s, "CLUSTER FROBNICATE").starts_with("ERR unknown CLUSTER"));
        // And the verb appears in the help text.
        let help = handle_command(&s, "FROBNICATE");
        assert!(help.contains("CLUSTER"), "{help}");
    }

    #[test]
    fn repl_corr_tokens_round_trip_through_the_command_surface() {
        // A trailing `corr=<id>` rides any REPL verb without changing
        // the reply grammar; a malformed one is left in place so the
        // arity check rejects it loudly.
        let s = state();
        let _ = handle_command(&s, "INSERT 50 51");
        assert!(handle_command(&s, "\tREPL pull r1 40 10 corr=9000001\r")
            .ends_with("OK 1 entries primary_seq=41"));
        assert!(handle_command(&s, "REPL PULL r1 40 10 corr=xyz").starts_with("ERR REPL PULL"));
        // Cluster-only verbs still answer not-clustered with a corr.
        assert!(
            handle_command(&s, "repl lease n2 1 0 corr=9000002\r").starts_with("ERR not clustered")
        );
        assert!(
            handle_command(&s, "REPL VOTE n2 2 0 corr=9000003").starts_with("ERR not clustered")
        );
    }

    #[test]
    fn metrics_exposes_per_peer_replication_gauges() {
        let s = state();
        // Two replicas check in at different lags. The fixture ring
        // starts at seq 40, so alpha's ask-from-5 earns a resync nack —
        // but its ack mark (and so its lag) is recorded regardless.
        assert!(handle_command(&s, "REPL HELLO alpha").starts_with("OK repl hello"));
        assert!(handle_command(&s, "REPL PULL alpha 5 5").starts_with("ERR resync"));
        assert!(handle_command(&s, "REPL HELLO beta").starts_with("OK repl hello"));
        assert!(handle_command(&s, "REPL PULL beta 40 5").ends_with("primary_seq=40"));
        let response = handle_command(&s, "METRICS");
        let lines: Vec<&str> = response.lines().collect();
        let last = lines.last().unwrap();
        let announced: usize = last.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert_eq!(lines.len() - 1, announced, "count must cover peer rows");
        for key in [
            "repl.peer.alpha.lag_seq=",
            "repl.peer.alpha.last_seen_ms=",
            "repl.peer.alpha.state=1",
            "repl.peer.beta.lag_seq=0",
            "repl.peer.beta.state=1",
        ] {
            assert!(
                lines.iter().any(|l| l.starts_with(key)),
                "missing {key}: {response}"
            );
        }
        // alpha stopped at seq 5-of-40, so its lag is visible.
        let alpha_lag: u64 = lines
            .iter()
            .find_map(|l| l.strip_prefix("repl.peer.alpha.lag_seq="))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(alpha_lag, 35);
    }

    #[test]
    fn framed_repl_snapshot_ships_a_compressed_frame() {
        use streamlink_core::codec;
        let s = state();
        let (frame, closing) = handle_command_framed(&s, "REPL SNAPSHOT");
        assert!(!closing);
        let env = codec::decode_envelope(&frame).unwrap();
        assert_eq!(env.mode, codec::MODE_SNAPSHOT_FRAME);
        let (seq, body) = codec::decode_snapshot_frame_body(env.body).unwrap();
        assert_eq!(seq, 40, "fixture pre-seeds 40 edges");
        let json = String::from_utf8(body).unwrap();
        assert!(json.contains("\"slots\""), "snapshot JSON: {json:.40}");
        // Arguments are still refused, as a text frame.
        let (frame, _) = handle_command_framed(&s, "REPL SNAPSHOT now");
        let env = codec::decode_envelope(&frame).unwrap();
        assert_eq!(env.mode, codec::MODE_TEXT_FRAME);
    }

    #[test]
    fn insert_updates_state() {
        let s = state();
        assert_eq!(handle_command(&s, "INSERT 0 500"), "OK inserted");
        assert_eq!(handle_command(&s, "DEGREE 500"), "OK 1");
        assert_eq!(handle_command(&s, "DEGREE 0"), "OK 21");
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let s = state();
        assert!(handle_command(&s, "").starts_with("ERR"));
        assert!(handle_command(&s, "FROBNICATE 1 2").starts_with("ERR"));
        assert!(handle_command(&s, "JACCARD 1").starts_with("ERR"));
        assert!(handle_command(&s, "JACCARD a b").starts_with("ERR"));
        assert!(handle_command(&s, "DEGREE").starts_with("ERR"));
        assert!(handle_command(&s, "INSERT 1 2 3").starts_with("ERR"));
        assert!(handle_command(&s, "INSERT x 2").starts_with("ERR"));
    }
}
