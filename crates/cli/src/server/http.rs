//! The optional HTTP exposition plane behind `--http-addr`.
//!
//! A deliberately minimal std-only HTTP/1.1 listener — no framework, no
//! keep-alive, one response per connection — serving the observability
//! surfaces to standard scrapers:
//!
//! * `GET /metrics` — the full registry in Prometheus text exposition
//!   format 0.0.4 ([`MetricsSnapshot::render_prometheus`]).
//! * `GET /healthz` — liveness verdict: `200` when storage is healthy
//!   and the audit error gauges sit inside the accuracy envelope,
//!   `503` otherwise, with a JSON body explaining which leg failed.
//! * `GET /tracez[?n=N]` — the most recent `N` spans from the trace
//!   ring as `streamlink.trace.v1` JSON.
//! * `GET /profilez[?n=N]` — the most recent `N` spans merged into a
//!   call-tree profile (inclusive/exclusive time, counts, slowest
//!   spans) as `streamlink.profilez.v1` JSON.
//! * `GET /memz` — the live component memory breakdown as
//!   `streamlink.memz.v1` JSON (also refreshes the `mem.*` gauges).
//! * `GET /clusterz` — the single-pane cluster view: this node fans
//!   out `CLUSTER INFO` to every `--peers` member and answers one
//!   `streamlink.clusterz.v1` JSON snapshot — `200` when the members'
//!   beliefs agree, `503` when they diverge (two primaries, epoch
//!   skew, lag-SLO breach, unreachable members) so the endpoint can
//!   drive an alert directly. `503` with an `error` body outside
//!   cluster mode.
//!
//! ## Why a stuck scraper cannot stall ingest
//!
//! The plane runs on its own accept thread with per-connection handler
//! threads, capped at [`MAX_SCRAPER_CONNS`] (extras are shed with a
//! `503`). Every socket gets a short read/write timeout and request
//! heads are bounded to [`MAX_REQUEST_BYTES`], so the worst a hostile
//! or wedged scraper can do is occupy a capped scraper slot for a
//! couple of seconds. The ingest plane shares nothing with this module
//! except the atomic metrics registry and short-lived store read locks.
//!
//! [`MetricsSnapshot::render_prometheus`]: streamlink_core::MetricsSnapshot::render_prometheus

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use streamlink_core::{trace, AccuracyPlan};

use super::{ServerState, POLL_INTERVAL};

/// Maximum simultaneous scraper connections; extras get an immediate
/// `503` and a `Retry-After` hint.
pub const MAX_SCRAPER_CONNS: usize = 8;

/// Per-socket read/write timeout: a scraper that cannot send a request
/// line or drain a response this fast forfeits its slot.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// Upper bound on the request head (request line + headers) in bytes.
pub const MAX_REQUEST_BYTES: usize = 8192;

/// Default span count for `/tracez` without an `n` parameter.
const DEFAULT_TRACEZ_SPANS: usize = 64;

/// Content type for the Prometheus text exposition format.
const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// One routed HTTP response, independent of the socket that carries it.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code (200, 400, 404, 405, 503).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body (already rendered).
    pub body: String,
}

impl Response {
    fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body,
        }
    }

    fn status_text(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        }
    }
}

/// Starts the exposition plane on an already-bound listener. Returns
/// the accept thread's handle; the thread exits when the shared
/// shutdown flag flips.
///
/// # Errors
/// Fails if the listener cannot be switched to non-blocking mode or the
/// accept thread cannot be spawned.
pub fn spawn(listener: TcpListener, state: Arc<ServerState>) -> io::Result<JoinHandle<()>> {
    listener.set_nonblocking(true)?;
    thread::Builder::new()
        .name("http".into())
        .spawn(move || accept_loop(&listener, &state))
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    let live = Arc::new(AtomicUsize::new(0));
    while !state.shutdown_requested() {
        match listener.accept() {
            Ok((stream, _)) => {
                if live.fetch_add(1, Ordering::SeqCst) >= MAX_SCRAPER_CONNS {
                    live.fetch_sub(1, Ordering::SeqCst);
                    shed(stream);
                    continue;
                }
                let st = Arc::clone(state);
                let slots = Arc::clone(&live);
                let spawned = thread::Builder::new()
                    .name("http-conn".into())
                    .spawn(move || {
                        handle_connection(stream, &st);
                        slots.fetch_sub(1, Ordering::SeqCst);
                    });
                if let Err(e) = spawned {
                    live.fetch_sub(1, Ordering::SeqCst);
                    eprintln!("cannot spawn http connection thread: {e}");
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                eprintln!("http accept failed: {e}");
                thread::sleep(POLL_INTERVAL);
            }
        }
    }
}

/// Sheds a connection over the scraper cap: counted as a served (error)
/// request so the cap itself is observable.
fn shed(stream: TcpStream) {
    let m = streamlink_core::metrics::global();
    m.http_requests.incr();
    m.http_errors.incr();
    m.sheds_http_cap.incr();
    let mut stream = stream;
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let body = "{\"error\":\"scraper connection cap reached\"}";
    let _ = write!(
        stream,
        "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nRetry-After: 1\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
}

/// Serves exactly one request on `stream`: read a bounded head, route,
/// respond, close. Every outcome is counted and timed.
fn handle_connection(stream: TcpStream, state: &ServerState) {
    let m = streamlink_core::metrics::global();
    let start = Instant::now();
    let mut stream = stream;
    let _ = stream.set_nodelay(true);
    if stream.set_nonblocking(false).is_err()
        || stream.set_read_timeout(Some(IO_TIMEOUT)).is_err()
        || stream.set_write_timeout(Some(IO_TIMEOUT)).is_err()
    {
        m.http_requests.incr();
        m.http_errors.incr();
        return;
    }
    let response = match read_request_head(&mut stream) {
        Some(head) => match parse_request_line(&head) {
            Some((method, target)) => respond(state, method, target),
            None => Response::json(400, "{\"error\":\"malformed request line\"}".into()),
        },
        None => Response::json(
            400,
            "{\"error\":\"incomplete or oversized request\"}".into(),
        ),
    };
    m.http_requests.incr();
    if response.status != 200 {
        m.http_errors.incr();
    }
    let _ = write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        response.status,
        response.status_text(),
        response.content_type,
        response.body.len(),
        response.body
    );
    let _ = stream.flush();
    m.http_request_latency.observe(start);
}

/// Reads until the end of the request head (blank line), an EOF, a
/// timeout, or the [`MAX_REQUEST_BYTES`] bound. Returns `None` unless a
/// complete head arrived within bounds.
fn read_request_head(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
                {
                    return Some(String::from_utf8_lossy(&buf).into_owned());
                }
                if buf.len() > MAX_REQUEST_BYTES {
                    return None;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return None, // timeout or reset: forfeit the slot
        }
    }
}

/// Extracts `(method, target)` from the request line, requiring an
/// `HTTP/1.x` version tag.
fn parse_request_line(head: &str) -> Option<(&str, &str)> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let (method, target, version) = (parts.next()?, parts.next()?, parts.next()?);
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return None;
    }
    Some((method, target))
}

/// Routes one parsed request to its endpoint. Public so tests can
/// exercise routing without sockets.
#[must_use]
pub fn respond(state: &ServerState, method: &str, target: &str) -> Response {
    if method != "GET" {
        return Response::json(
            405,
            format!(
                "{{\"error\":\"method {} not allowed\"}}",
                json_safe(method, 16)
            ),
        );
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    match path {
        "/metrics" => {
            state.refresh_observable_gauges();
            let mut body = streamlink_core::metrics::global()
                .snapshot()
                .render_prometheus();
            append_labeled_gauges(state, &mut body);
            Response {
                status: 200,
                content_type: PROMETHEUS_CONTENT_TYPE,
                body,
            }
        }
        "/healthz" => healthz(state),
        "/clusterz" => clusterz(state),
        "/tracez" => {
            let n = query
                .and_then(|q| {
                    q.split('&')
                        .find_map(|kv| kv.strip_prefix("n=").and_then(|v| v.parse().ok()))
                })
                .unwrap_or(DEFAULT_TRACEZ_SPANS)
                .clamp(1, trace::RING_CAPACITY);
            Response::json(200, trace::render_trace_json(n))
        }
        "/profilez" => {
            let n = query
                .and_then(|q| {
                    q.split('&')
                        .find_map(|kv| kv.strip_prefix("n=").and_then(|v| v.parse().ok()))
                })
                .unwrap_or(trace::RING_CAPACITY)
                .clamp(1, trace::RING_CAPACITY);
            Response::json(200, trace::render_profilez_json(n))
        }
        "/memz" => {
            let report = state.memory_report();
            report.publish();
            Response::json(200, report.render_json())
        }
        _ => Response::json(
            404,
            format!("{{\"error\":\"no such path {}\"}}", json_safe(path, 64)),
        ),
    }
}

/// Client-controlled text echoed into a JSON error body: keep only
/// printable ASCII that cannot terminate a JSON string, and bound the
/// length so an absurd request line cannot inflate the response.
fn json_safe(raw: &str, max: usize) -> String {
    raw.chars()
        .filter(|c| c.is_ascii_graphic() && *c != '"' && *c != '\\')
        .take(max)
        .collect()
}

/// Appends the dynamically-labeled gauges the static registry cannot
/// hold to the Prometheus body: one `streamlink_repl_peer_*` series
/// per checked-in replica, plus the `streamlink_repl_believed_primary_info`
/// info-style gauge whose label carries the MOVED hint this node would
/// answer — so a dashboard can show "who does each node think is
/// primary" without parsing the TCP protocol.
fn append_labeled_gauges(state: &ServerState, body: &mut String) {
    use std::fmt::Write as _;
    if !body.is_empty() && !body.ends_with('\n') {
        body.push('\n');
    }
    // The Prometheus "info metric" convention: a constant-1 gauge whose
    // labels carry the build identity, joinable onto any other series.
    let _ = writeln!(body, "# TYPE streamlink_build_info gauge");
    let _ = writeln!(
        body,
        "streamlink_build_info{{version=\"{}\"}} 1",
        json_safe(crate::build_version(), 64)
    );
    if let Some(repl) = state.primary_repl() {
        let peers = repl.peer_overview();
        if !peers.is_empty() {
            let _ = writeln!(body, "# TYPE streamlink_repl_peer_lag_seq gauge");
            for p in &peers {
                let _ = writeln!(
                    body,
                    "streamlink_repl_peer_lag_seq{{peer=\"{}\"}} {}",
                    json_safe(&p.id, 64),
                    p.lag_seq
                );
            }
            let _ = writeln!(body, "# TYPE streamlink_repl_peer_last_seen_ms gauge");
            for p in &peers {
                let _ = writeln!(
                    body,
                    "streamlink_repl_peer_last_seen_ms{{peer=\"{}\"}} {}",
                    json_safe(&p.id, 64),
                    p.last_seen_ms
                );
            }
            let _ = writeln!(body, "# TYPE streamlink_repl_peer_state gauge");
            for p in &peers {
                let _ = writeln!(
                    body,
                    "streamlink_repl_peer_state{{peer=\"{}\"}} {}",
                    json_safe(&p.id, 64),
                    u64::from(p.live)
                );
            }
        }
    }
    if let Some(primary) = state.cluster().and_then(|c| c.believed_primary()) {
        let _ = writeln!(body, "# TYPE streamlink_repl_believed_primary_info gauge");
        let _ = writeln!(
            body,
            "streamlink_repl_believed_primary_info{{primary=\"{}\"}} 1",
            json_safe(&primary, 64)
        );
    }
}

/// The `/clusterz` verdict: the whole-cluster snapshot from this
/// node's vantage point. Divergence (or an unreachable member) answers
/// `503` so the endpoint doubles as an alert probe; a server without
/// `--peers` has no cluster plane to describe.
fn clusterz(state: &ServerState) -> Response {
    match super::failover::clusterz_json(state) {
        Some((json, divergent)) => Response::json(if divergent { 503 } else { 200 }, json),
        None => Response::json(
            503,
            "{\"error\":\"not clustered: start with --peers to enable the cluster plane\"}".into(),
        ),
    }
}

/// The `/healthz` verdict: `200` iff storage is healthy, the rolling
/// audit Jaccard MAE sits inside twice the offline Hoeffding envelope
/// for the deployed `k` (the OPERATIONS.md §9 alert rule), *and* — on a
/// read replica — *durable* replication lag (`primary_seq -
/// persisted_seq`) sits inside the `--repl-lag-slo` budget (the §11
/// alert rule; an in-memory replica's persisted seq tracks its applied
/// seq, so the check degrades gracefully). Legs with nothing to report
/// pass vacuously. In cluster mode the body also carries a `failover`
/// object (epoch, role, writable, believed primary) so one scrape
/// answers "who is the primary right now" — informational only, the
/// verdict does not depend on it.
fn healthz(state: &ServerState) -> Response {
    let storage_ok = !state.storage_degraded();
    let k = state.read_store().config().slots();
    let envelope = 2.0 * AccuracyPlan::error_bound(k, 0.01);
    let audit = state.audit_snapshot();
    let (audit_ok, audit_json) = match &audit {
        Some(snap) => {
            let scored = snap.cycles > 0 && snap.pairs_evaluated > 0;
            let ok = !scored || snap.jaccard_mae <= envelope;
            (
                ok,
                format!(
                    "{{\"cycles\":{},\"pairs\":{},\"tracked\":{},\"jaccard_mae\":{:.6},\
                     \"envelope\":{envelope:.6}}}",
                    snap.cycles, snap.pairs_evaluated, snap.tracked, snap.jaccard_mae
                ),
            )
        }
        None => (true, "null".to_string()),
    };
    // A cluster node carries a replica runtime in both roles; route on
    // the *current* role, not on which structs exist.
    let (repl_ok, repl_json) = if state.is_replica() {
        match state.replica_runtime() {
            Some(runtime) => {
                let primary = state
                    .cluster()
                    .and_then(|c| c.believed_primary())
                    .unwrap_or_else(|| runtime.primary_addr.clone());
                (
                    !runtime.lag_exceeds_slo(),
                    format!(
                        "{{\"role\":\"replica\",\"primary\":\"{primary}\",\"connected\":{},\
                         \"applied_seq\":{},\"persisted_seq\":{},\"primary_seq\":{},\
                         \"lag_edges\":{},\"durable_lag_edges\":{},\"lag_slo\":{}}}",
                        runtime.connected(),
                        runtime.applied_seq(),
                        runtime.persisted_seq(),
                        runtime.primary_seq(),
                        runtime.lag(),
                        runtime.durable_lag(),
                        runtime.lag_slo,
                    ),
                )
            }
            None => (true, "null".to_string()),
        }
    } else {
        match state.primary_repl() {
            Some(repl) => {
                // A primary's own health does not depend on its replicas —
                // lag is surfaced for alerting, never flips this endpoint.
                let (connected, max_lag) = repl.lag_overview();
                // The believed-primary field mirrors the MOVED hint the
                // TCP plane answers; on a healthy primary that is its
                // own advertise address.
                let believed = state
                    .cluster()
                    .and_then(|c| c.believed_primary())
                    .map_or_else(|| "null".to_string(), |p| format!("\"{p}\""));
                (
                    true,
                    format!(
                        "{{\"role\":\"primary\",\"believed_primary\":{believed},\
                         \"replicas_connected\":{connected},\
                         \"max_lag_edges\":{max_lag}}}"
                    ),
                )
            }
            None => (true, "null".to_string()),
        }
    };
    let failover_json =
        match state.cluster() {
            Some(cluster) => {
                format!(
            "{{\"epoch\":{},\"role\":\"{}\",\"writable\":{},\"lease_ms\":{},\"primary\":{}}}",
            cluster.epoch(),
            if cluster.is_primary() { "primary" } else { "replica" },
            cluster.writable_now(),
            cluster.lease_ms(),
            cluster
                .believed_primary()
                .map_or_else(|| "null".to_string(), |p| format!("\"{p}\"")),
        )
            }
            None => "null".to_string(),
        };
    let healthy = storage_ok && audit_ok && repl_ok;
    let body = format!(
        "{{\"schema\":\"streamlink.healthz.v1\",\"status\":\"{}\",\"version\":\"{}\",\
         \"storage_ok\":{storage_ok},\
         \"audit_ok\":{audit_ok},\"repl_ok\":{repl_ok},\"uptime_secs\":{},\"audit\":{audit_json},\
         \"replication\":{repl_json},\"failover\":{failover_json}}}",
        if healthy { "ok" } else { "degraded" },
        json_safe(crate::build_version(), 64),
        state.uptime_secs()
    );
    Response::json(if healthy { 200 } else { 503 }, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;
    use streamlink_core::{SketchConfig, SketchStore};

    fn state() -> ServerState {
        let store = SketchStore::new(SketchConfig::with_slots(64).seed(3));
        ServerState::in_memory(store, ServerConfig::default())
    }

    #[test]
    fn request_line_parsing_accepts_http1_gets_only() {
        assert_eq!(
            parse_request_line("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n"),
            Some(("GET", "/metrics"))
        );
        assert_eq!(
            parse_request_line("POST /metrics HTTP/1.0\r\n\r\n"),
            Some(("POST", "/metrics"))
        );
        assert_eq!(parse_request_line("GET /metrics\r\n\r\n"), None);
        assert_eq!(parse_request_line("GET /metrics HTTP/2\r\n\r\n"), None);
        assert_eq!(parse_request_line("GET /a b HTTP/1.1\r\n\r\n"), None);
        assert_eq!(parse_request_line(""), None);
    }

    #[test]
    fn metrics_route_renders_prometheus() {
        let s = state();
        let r = respond(&s, "GET", "/metrics");
        assert_eq!(r.status, 200);
        assert_eq!(r.content_type, PROMETHEUS_CONTENT_TYPE);
        assert!(r
            .body
            .contains("# TYPE streamlink_core_insert_edges_total counter"));
        assert!(r.body.contains("streamlink_mem_total_bytes"));
        assert!(r.body.contains(&format!(
            "streamlink_build_info{{version=\"{}\"}} 1",
            crate::build_version()
        )));
    }

    #[test]
    fn healthz_is_ok_on_a_fresh_in_memory_server() {
        let s = state();
        let r = respond(&s, "GET", "/healthz");
        assert_eq!(r.status, 200);
        assert!(r.body.contains("\"status\":\"ok\""));
        assert!(r
            .body
            .contains(&format!("\"version\":\"{}\"", crate::build_version())));
        assert!(r.body.contains("\"storage_ok\":true"));
    }

    #[test]
    fn tracez_clamps_and_parses_span_count() {
        let s = state();
        for target in ["/tracez", "/tracez?n=5", "/tracez?n=0", "/tracez?n=junk"] {
            let r = respond(&s, "GET", target);
            assert_eq!(r.status, 200, "{target}");
            assert!(r.body.starts_with("{\"schema\":\"streamlink.trace.v1\""));
        }
    }

    #[test]
    fn profilez_clamps_and_parses_span_count() {
        let s = state();
        drop(trace::op("profilez.test"));
        for target in [
            "/profilez",
            "/profilez?n=5",
            "/profilez?n=0",
            "/profilez?n=junk",
        ] {
            let r = respond(&s, "GET", target);
            assert_eq!(r.status, 200, "{target}");
            assert!(r.body.starts_with("{\"schema\":\"streamlink.profilez.v1\""));
            let profile = trace::Profile::parse_json(&r.body).expect("parseable profile");
            for node in &profile.nodes {
                assert!(node.exclusive_ns <= node.inclusive_ns, "{}", node.op);
            }
        }
    }

    #[test]
    fn memz_reports_all_components() {
        let s = state();
        let r = respond(&s, "GET", "/memz");
        assert_eq!(r.status, 200);
        assert!(r.body.starts_with("{\"schema\":\"streamlink.memz.v1\""));
        for name in ["store.sketch_slots", "trace.ring", "journal.write_buffer"] {
            assert!(r.body.contains(name), "missing component {name}");
        }
    }

    #[test]
    fn healthz_flips_503_when_replica_lag_exceeds_the_slo() {
        use crate::server::replication::{ReplicaRuntime, ReplicaTuning};
        use std::sync::Arc;
        let runtime = Arc::new(ReplicaRuntime::new(
            "127.0.0.1:9".into(),
            "lag-test".into(),
            1_000,
            ReplicaTuning::default(),
        ));
        let store = SketchStore::new(SketchConfig::with_slots(64).seed(3));
        let s = ServerState::replica(store, ServerConfig::default(), Arc::clone(&runtime));

        // Caught up: healthy, and the replication leg is reported.
        let r = respond(&s, "GET", "/healthz");
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(r.body.contains("\"repl_ok\":true"), "{}", r.body);
        assert!(r.body.contains("\"role\":\"replica\""), "{}", r.body);

        // The primary runs ahead of what we've applied by more than the
        // SLO: degraded.
        runtime.note_primary_seq(1_001);
        let r = respond(&s, "GET", "/healthz");
        assert_eq!(r.status, 503, "{}", r.body);
        assert!(r.body.contains("\"status\":\"degraded\""), "{}", r.body);
        assert!(r.body.contains("\"repl_ok\":false"), "{}", r.body);
        assert!(r.body.contains("\"lag_edges\":1001"), "{}", r.body);
        // The durable watermark rides along: the SLO verdict is driven
        // by persisted_seq, not just applied_seq.
        assert!(r.body.contains("\"persisted_seq\":0"), "{}", r.body);
        assert!(r.body.contains("\"durable_lag_edges\":1001"), "{}", r.body);
    }

    #[test]
    fn healthz_slo_uses_the_durable_watermark_not_the_applied_one() {
        use crate::server::replication::{ReplicaRuntime, ReplicaTuning};
        use std::sync::Arc;
        let runtime = Arc::new(ReplicaRuntime::new(
            "127.0.0.1:9".into(),
            "durable-lag-test".into(),
            1_000,
            ReplicaTuning::default(),
        ));
        let store = SketchStore::new(SketchConfig::with_slots(64).seed(3));
        let s = ServerState::replica(store, ServerConfig::default(), Arc::clone(&runtime));
        // Everything applied AND persisted up to the primary's seq:
        // healthy even at a high watermark.
        runtime.seed_applied(2_000);
        runtime.note_primary_seq(2_000);
        let r = respond(&s, "GET", "/healthz");
        assert_eq!(r.status, 200, "{}", r.body);
        // Applied keeps up but the journal stalls: the durable lag
        // blows the SLO even though lag_edges stays 0.
        runtime.set_persisted(500);
        runtime.note_primary_seq(2_000);
        let r = respond(&s, "GET", "/healthz");
        assert_eq!(r.status, 503, "{}", r.body);
        assert!(r.body.contains("\"lag_edges\":0"), "{}", r.body);
        assert!(r.body.contains("\"durable_lag_edges\":1500"), "{}", r.body);
    }

    #[test]
    fn healthz_reports_the_failover_leg_in_cluster_mode() {
        use crate::server::failover::{ClusterConfig, ClusterRuntime};
        use crate::server::replication::{ReplicaRuntime, ReplicaTuning};
        use std::sync::Arc;
        use std::time::Duration;
        let config = ClusterConfig {
            advertise: "127.0.0.1:7101".into(),
            peers: vec!["127.0.0.1:7102".into()],
            lease: Duration::from_millis(200),
            bootstrap_primary: true,
        };
        let cluster = Arc::new(ClusterRuntime::new(&config, None, 0).unwrap());
        let runtime = Arc::new(ReplicaRuntime::new(
            "127.0.0.1:7102".into(),
            "127.0.0.1:7101".into(),
            100_000,
            ReplicaTuning::default(),
        ));
        let store = SketchStore::new(SketchConfig::with_slots(64).seed(3));
        let s =
            ServerState::with_cluster(store, None, 0, ServerConfig::default(), runtime, cluster);
        let r = respond(&s, "GET", "/healthz");
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(r.body.contains("\"failover\":{\"epoch\":1"), "{}", r.body);
        assert!(r.body.contains("\"role\":\"primary\""), "{}", r.body);
        assert!(r.body.contains("\"writable\":true"), "{}", r.body);
        assert!(
            r.body.contains("\"primary\":\"127.0.0.1:7101\""),
            "{}",
            r.body
        );
        // Non-clustered servers report the leg as null.
        let plain = state();
        let r = respond(&plain, "GET", "/healthz");
        assert!(r.body.contains("\"failover\":null"), "{}", r.body);
    }

    #[test]
    fn healthz_reports_the_primary_replication_leg_without_flipping() {
        // A primary with lagging replicas stays 200 — replica lag is an
        // alerting signal, not a primary liveness failure.
        let s = state();
        let r = respond(&s, "GET", "/healthz");
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(r.body.contains("\"role\":\"primary\""), "{}", r.body);
        assert!(r.body.contains("\"repl_ok\":true"), "{}", r.body);
    }

    #[test]
    fn clusterz_is_503_with_an_error_outside_cluster_mode() {
        let s = state();
        let r = respond(&s, "GET", "/clusterz");
        assert_eq!(r.status, 503);
        assert!(r.body.contains("not clustered"), "{}", r.body);
    }

    #[test]
    fn clusterz_answers_503_and_flags_when_members_diverge() {
        use crate::server::failover::{ClusterConfig, ClusterRuntime};
        use crate::server::replication::{ReplicaRuntime, ReplicaTuning};
        use std::sync::Arc;
        use std::time::Duration;
        // A bootstrapped primary whose two peers are dead sockets: the
        // snapshot must come back divergent with both members flagged
        // unreachable, and the endpoint must turn that into a 503.
        let config = ClusterConfig {
            advertise: "127.0.0.1:7111".into(),
            peers: vec!["127.0.0.1:1".into(), "127.0.0.1:2".into()],
            lease: Duration::from_millis(200),
            bootstrap_primary: true,
        };
        let cluster = Arc::new(ClusterRuntime::new(&config, None, 0).unwrap());
        let runtime = Arc::new(ReplicaRuntime::new(
            "127.0.0.1:1".into(),
            "127.0.0.1:7111".into(),
            100_000,
            ReplicaTuning::default(),
        ));
        let store = SketchStore::new(SketchConfig::with_slots(64).seed(3));
        let s =
            ServerState::with_cluster(store, None, 0, ServerConfig::default(), runtime, cluster);
        let r = respond(&s, "GET", "/clusterz");
        assert_eq!(r.status, 503, "{}", r.body);
        assert!(
            r.body.starts_with("{\"schema\":\"streamlink.clusterz.v1\""),
            "{}",
            r.body
        );
        assert!(r.body.contains("\"divergent\":true"), "{}", r.body);
        assert!(r.body.contains("unreachable-members"), "{}", r.body);
        // The believed-primary info gauge rides the Prometheus surface.
        let m = respond(&s, "GET", "/metrics");
        assert!(
            m.body
                .contains("streamlink_repl_believed_primary_info{primary=\"127.0.0.1:7111\"} 1"),
            "{}",
            m.body.lines().rev().take(8).collect::<Vec<_>>().join("\n")
        );
    }

    #[test]
    fn metrics_exposes_per_peer_series_once_replicas_check_in() {
        let mut store = SketchStore::new(SketchConfig::with_slots(64).seed(3));
        for v in 0..10u64 {
            store.insert_edge(graphstream::VertexId(v), graphstream::VertexId(v + 100));
        }
        let s = ServerState::in_memory(store, ServerConfig::default());
        let repl = s.primary_repl().expect("primary has a ship ring");
        repl.note_peer("gamma", 4);
        let r = respond(&s, "GET", "/metrics");
        assert!(
            r.body.contains("# TYPE streamlink_repl_peer_lag_seq gauge"),
            "missing TYPE header"
        );
        assert!(
            r.body
                .contains("streamlink_repl_peer_lag_seq{peer=\"gamma\"} 6"),
            "{}",
            r.body.lines().rev().take(12).collect::<Vec<_>>().join("\n")
        );
        assert!(r
            .body
            .contains("streamlink_repl_peer_state{peer=\"gamma\"} 1"));
        assert!(r
            .body
            .contains("streamlink_repl_peer_last_seen_ms{peer=\"gamma\"}"));
    }

    #[test]
    fn healthz_primary_leg_reports_the_believed_primary_in_cluster_mode() {
        use crate::server::failover::{ClusterConfig, ClusterRuntime};
        use crate::server::replication::{ReplicaRuntime, ReplicaTuning};
        use std::sync::Arc;
        use std::time::Duration;
        let config = ClusterConfig {
            advertise: "127.0.0.1:7112".into(),
            peers: vec!["127.0.0.1:1".into()],
            lease: Duration::from_millis(200),
            bootstrap_primary: true,
        };
        let cluster = Arc::new(ClusterRuntime::new(&config, None, 0).unwrap());
        let runtime = Arc::new(ReplicaRuntime::new(
            "127.0.0.1:1".into(),
            "127.0.0.1:7112".into(),
            100_000,
            ReplicaTuning::default(),
        ));
        let store = SketchStore::new(SketchConfig::with_slots(64).seed(3));
        let s =
            ServerState::with_cluster(store, None, 0, ServerConfig::default(), runtime, cluster);
        let r = respond(&s, "GET", "/healthz");
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(
            r.body.contains("\"believed_primary\":\"127.0.0.1:7112\""),
            "{}",
            r.body
        );
        // Outside cluster mode the field is null, not absent.
        let plain = state();
        let r = respond(&plain, "GET", "/healthz");
        assert!(r.body.contains("\"believed_primary\":null"), "{}", r.body);
    }

    #[test]
    fn unknown_paths_and_methods_are_errors() {
        let s = state();
        assert_eq!(respond(&s, "GET", "/nope").status, 404);
        assert_eq!(respond(&s, "POST", "/metrics").status, 405);
        assert_eq!(respond(&s, "DELETE", "/healthz").status, 405);
    }
}
