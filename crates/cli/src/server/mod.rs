//! The serving runtime behind `streamlink serve`.
//!
//! [`commands::serve`](crate::commands::serve) parses flags; everything
//! that actually runs lives here, split by concern:
//!
//! * [`protocol`] — executes one text command against the shared state
//!   (pure with respect to IO, unit-testable without sockets).
//! * [`connection`] — per-connection loop: read/poll with a timeout,
//!   idle disconnect, drain on shutdown.
//! * [`signals`] — SIGINT/SIGTERM handlers flipping the shutdown flag.
//! * [`persistence`] — data-directory recovery, the edge journal, and
//!   the background checkpointer.
//! * [`http`] — the optional scrape plane (`--http-addr`): Prometheus
//!   `/metrics`, `/healthz`, `/tracez`, and `/memz` over a bounded,
//!   timeboxed std-only HTTP/1.1 listener.
//! * [`replication`] — WAL shipping: the primary's bounded ship ring
//!   and `REPL` command family, and the replica's puller thread with
//!   anti-entropy (see `docs/OPERATIONS.md` §11).
//! * [`failover`] — cluster mode (`--peers`): the lease/vote/handoff
//!   wire handlers around [`streamlink_core::failover`], the single
//!   cluster loop that replaces the plain puller, and the epoch fence
//!   in front of every write.
//!
//! ## Lifecycle
//!
//! [`serve`] accepts connections (shedding with `ERR busy retry` past
//! the connection cap) until shutdown is requested, then stops accepting,
//! drains live connections up to a deadline, writes a final snapshot
//! when a data directory is configured, and returns — so the process
//! exits 0 on SIGINT/SIGTERM.
//!
//! ## Durability contract
//!
//! With a data directory, every `INSERT` is appended to the journal
//! *before* it is acked (see [`ServerState::insert_edge`]); a crash at
//! any instant loses at most un-acked work. The checkpointer
//! periodically folds the journal into an atomic snapshot so recovery
//! stays fast and the journal stays short.

pub mod connection;
pub mod failover;
pub mod http;
pub mod persistence;
pub mod protocol;
pub mod replication;
pub mod signals;

use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::thread;
use std::time::{Duration, Instant};

use graphstream::VertexId;
use streamlink_core::journal::JournalEntry;
use streamlink_core::{AccuracyAuditor, AuditConfig, AuditSnapshot, MemoryReport, SketchStore};

use persistence::Persist;

/// How often the accept loop and connection loops wake up to poll the
/// shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// How often the accept loop refreshes the `mem.*` gauges from a fresh
/// [`MemoryReport`] (scrapes also refresh on demand; this keeps the TCP
/// `METRICS` view current even with no scraper attached).
pub const MEM_REFRESH_INTERVAL: Duration = Duration::from_secs(5);

/// Tunables for one server instance. All have serving-grade defaults;
/// `streamlink serve` exposes each as a flag.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum simultaneous connections; extras are shed with
    /// `ERR busy retry`.
    pub max_conns: usize,
    /// Close a connection after this long without a complete command.
    pub idle_timeout: Duration,
    /// How long shutdown waits for live connections before giving up.
    pub drain_deadline: Duration,
    /// Checkpoint at least this often while new edges exist.
    pub snapshot_every: Duration,
    /// Checkpoint as soon as the journal lag reaches this many edges.
    pub snapshot_every_edges: u64,
    /// Snapshot generations each checkpoint retains (the recovery
    /// chain's depth; at least 1).
    pub snapshot_keep: usize,
    /// Log a one-line metrics summary this often (zero disables).
    pub metrics_log_every: Duration,
    /// Run an accuracy-audit cycle this often (zero disables the
    /// auditor entirely — no shadow tracking, no background thread).
    pub audit_interval: Duration,
    /// Vertex pairs scored per audit cycle.
    pub audit_pairs: usize,
    /// Capacity (entries) of the replication ship ring on a primary;
    /// zero disables serving `REPL` pulls entirely.
    pub repl_buffer: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_conns: 1024,
            idle_timeout: Duration::from_secs(30),
            drain_deadline: Duration::from_secs(5),
            snapshot_every: Duration::from_secs(30),
            snapshot_every_edges: 50_000,
            snapshot_keep: streamlink_core::DEFAULT_SNAPSHOT_KEEP,
            metrics_log_every: Duration::from_secs(60),
            audit_interval: Duration::from_secs(30),
            audit_pairs: 64,
            repl_buffer: 65_536,
        }
    }
}

/// Everything the serving threads share: the store, the optional
/// persistence layer, counters, and the shutdown flag.
///
/// Lock order is `store` then `persist` everywhere; both locks recover
/// from poisoning (a panicked connection thread must not take the
/// server down with it).
pub struct ServerState {
    store: RwLock<SketchStore>,
    persist: Option<Mutex<Persist>>,
    config: ServerConfig,
    started: Instant,
    active: AtomicUsize,
    last_snapshot_seq: AtomicU64,
    local_shutdown: AtomicBool,
    /// False after a journal append fails, true again after the next
    /// success — the `/healthz` degraded-storage signal. Always true
    /// for in-memory deployments.
    storage_ok: AtomicBool,
    /// Online accuracy auditor (`None` when `audit_interval` is zero).
    /// Lock order: the store lock is always taken before the auditor's
    /// internal lock — both the insert path (write store → observe) and
    /// the audit cycle (read store → score) follow it.
    auditor: Option<AccuracyAuditor>,
    /// Primary-side replication: the bounded ship ring + peer registry
    /// (`None` when `repl_buffer` is zero or this node is a replica).
    /// Lock order: the ring's lock is taken under the store write lock
    /// on the insert path, so store → ring everywhere.
    repl: Option<replication::PrimaryRepl>,
    /// Replica-side replication: where the primary is and how far apply
    /// has gotten (`None` on primaries).
    replica: Option<Arc<replication::ReplicaRuntime>>,
    /// Cluster membership and the failover state machine (`None`
    /// outside `--peers` mode). Cluster nodes carry *both* `repl` and
    /// `replica`, switching sides as their role changes.
    cluster: Option<Arc<failover::ClusterRuntime>>,
}

impl ServerState {
    /// A server over an in-memory store: no journal, no snapshots.
    #[must_use]
    pub fn in_memory(store: SketchStore, config: ServerConfig) -> Self {
        Self::new(store, None, 0, config)
    }

    /// A server backed by a data directory (opened via
    /// [`persistence::open`]); `snapshot_seq` is the recovered
    /// snapshot's high-water mark.
    #[must_use]
    pub fn with_persistence(
        store: SketchStore,
        persist: Persist,
        snapshot_seq: u64,
        config: ServerConfig,
    ) -> Self {
        Self::new(store, Some(persist), snapshot_seq, config)
    }

    /// A read replica: in-memory store, no journal, writes rejected at
    /// the protocol layer, state pulled from `runtime.primary_addr` by
    /// the puller thread [`serve`] spawns.
    #[must_use]
    pub fn replica(
        store: SketchStore,
        config: ServerConfig,
        runtime: Arc<replication::ReplicaRuntime>,
    ) -> Self {
        let mut state = Self::new(store, None, 0, config);
        state.repl = None; // replicas do not re-ship
        state.replica = Some(runtime);
        state
    }

    /// A read replica with its own data directory: applied WAL entries
    /// are journaled locally (see `replication::apply_entry`), so a
    /// restart resumes from the local disk seq instead of re-pulling
    /// the world. The caller seeds the runtime's applied seq from the
    /// recovery high-water mark.
    #[must_use]
    pub fn durable_replica(
        store: SketchStore,
        persist: Persist,
        snapshot_seq: u64,
        config: ServerConfig,
        runtime: Arc<replication::ReplicaRuntime>,
    ) -> Self {
        let mut state = Self::new(store, Some(persist), snapshot_seq, config);
        state.repl = None; // replicas do not re-ship
        state.replica = Some(runtime);
        state
    }

    /// A failover-cluster node. Unlike [`Self::replica`], it keeps its
    /// ship ring (a promotion turns it into the serving primary) and may
    /// carry a data directory (durable replicas journal what they
    /// apply). Whether it currently *acts* as a replica is decided by
    /// the cluster runtime's role, not by construction.
    #[must_use]
    pub fn with_cluster(
        store: SketchStore,
        persist: Option<Persist>,
        snapshot_seq: u64,
        config: ServerConfig,
        runtime: Arc<replication::ReplicaRuntime>,
        cluster: Arc<failover::ClusterRuntime>,
    ) -> Self {
        let mut state = Self::new(store, persist, snapshot_seq, config);
        state.replica = Some(runtime);
        state.cluster = Some(cluster);
        state
    }

    fn new(
        store: SketchStore,
        persist: Option<Persist>,
        snapshot_seq: u64,
        config: ServerConfig,
    ) -> Self {
        let auditor = (!config.audit_interval.is_zero())
            .then(|| AccuracyAuditor::new(AuditConfig::default()));
        // Seed the ship ring at the primary's current WAL position so
        // replicated seqs line up with what is already on disk; a
        // journal-less primary numbers from its edge count instead.
        let repl = (config.repl_buffer > 0).then(|| {
            let last_seq = persist.as_ref().map_or_else(
                || store.edges_processed(),
                |p| p.journal.next_seq().saturating_sub(1),
            );
            replication::PrimaryRepl::new(config.repl_buffer, last_seq)
        });
        ServerState {
            store: RwLock::new(store),
            persist: persist.map(Mutex::new),
            config,
            started: Instant::now(),
            active: AtomicUsize::new(0),
            last_snapshot_seq: AtomicU64::new(snapshot_seq),
            local_shutdown: AtomicBool::new(false),
            storage_ok: AtomicBool::new(true),
            auditor,
            repl,
            replica: None,
            cluster: None,
        }
    }

    /// The server's tunables.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Read access to the store, recovering from lock poisoning.
    pub fn read_store(&self) -> RwLockReadGuard<'_, SketchStore> {
        self.store.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Write access to the store, recovering from lock poisoning.
    pub fn write_store(&self) -> RwLockWriteGuard<'_, SketchStore> {
        self.store.write().unwrap_or_else(PoisonError::into_inner)
    }

    fn persist_guard(&self) -> Option<MutexGuard<'_, Persist>> {
        self.persist
            .as_ref()
            .map(|p| p.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Applies one edge: journal first (when persistence is on), then
    /// the in-memory store. Returns the seq the write was assigned
    /// (WAL/ship-ring; the post-insert edge count on bare in-memory
    /// servers), and only after the edge is at least crash-durable —
    /// callers ack the client on `Ok` and must not on `Err`.
    ///
    /// The seq comes from the journal's own high-water mark, not the
    /// store's edge count: after recovery has quarantined corrupt
    /// records the two diverge, and deriving seqs from the count would
    /// reuse numbers already on disk (replay would then silently skip
    /// the new edges).
    ///
    /// # Errors
    /// Fails if the journal append fails — real disk trouble or an
    /// injected fault; the store is then left untouched, so an errored
    /// (un-acked) edge is never half-applied, and the server keeps
    /// serving reads.
    pub fn insert_edge(&self, u: VertexId, v: VertexId) -> io::Result<u64> {
        // Cheap hash check first: only audited edges pay for the two
        // pre-insert degree lookups and the auditor lock.
        let audit = self.auditor.as_ref().filter(|a| a.wants(u) || a.wants(v));
        let mut store = self.write_store();
        let degrees_before = audit.map(|_| (store.degree(u), store.degree(v)));
        let mut wal_seq = None;
        if let Some(mut persist) = self.persist_guard() {
            let seq = persist.journal.next_seq();
            let append_start = std::time::Instant::now();
            if let Err(e) = persist.journal.append(JournalEntry { seq, u, v }) {
                self.storage_ok.store(false, Ordering::SeqCst);
                return Err(e);
            }
            streamlink_core::metrics::global()
                .serve_phase_journal_append
                .observe(append_start);
            self.storage_ok.store(true, Ordering::SeqCst);
            wal_seq = Some(seq);
        }
        store.insert_edge(u, v);
        let mut assigned = wal_seq;
        // Ship-ring record happens under the store write lock, so a
        // `REPL SNAPSHOT` (read store, then ring) always sees a ring
        // seq consistent with the captured store.
        if let Some(repl) = &self.repl {
            let mut log = repl.log();
            match wal_seq {
                Some(seq) => log.record(JournalEntry { seq, u, v }),
                None => {
                    assigned = Some(log.assign_and_record(u, v));
                }
            }
        }
        let assigned = assigned.unwrap_or_else(|| store.edges_processed());
        if let (Some(a), Some((du, dv))) = (audit, degrees_before) {
            a.observe_edge(u, v, du, dv);
        }
        Ok(assigned)
    }

    /// Primary-side replication state, when this node ships WAL entries.
    #[must_use]
    pub fn primary_repl(&self) -> Option<&replication::PrimaryRepl> {
        self.repl.as_ref()
    }

    /// Replica-side replication state, when this node is a replica.
    #[must_use]
    pub fn replica_runtime(&self) -> Option<&Arc<replication::ReplicaRuntime>> {
        self.replica.as_ref()
    }

    /// Cluster failover state, when this node runs with `--peers`.
    #[must_use]
    pub fn cluster(&self) -> Option<&Arc<failover::ClusterRuntime>> {
        self.cluster.as_ref()
    }

    /// Whether this node currently acts as a read replica (writes get
    /// `ERR readonly MOVED ...`). Static for classic replicas; for
    /// cluster nodes it follows the live failover role.
    #[must_use]
    pub fn is_replica(&self) -> bool {
        match &self.cluster {
            Some(cluster) => !cluster.is_primary(),
            None => self.replica.is_some(),
        }
    }

    /// The auditor's current rolling error state, if auditing is on.
    #[must_use]
    pub fn audit_snapshot(&self) -> Option<AuditSnapshot> {
        self.auditor.as_ref().map(AccuracyAuditor::snapshot)
    }

    /// The online accuracy auditor, if auditing is on ( `EXPLAIN` uses
    /// it to report shadow-sample coverage of the queried endpoints).
    #[must_use]
    pub fn auditor(&self) -> Option<&AccuracyAuditor> {
        self.auditor.as_ref()
    }

    /// Whether the most recent journal append failed — the storage leg
    /// of the `/healthz` verdict. Heals itself on the next successful
    /// append.
    #[must_use]
    pub fn storage_degraded(&self) -> bool {
        !self.storage_ok.load(Ordering::SeqCst)
    }

    /// Assembles a fresh component [`MemoryReport`] over the live store,
    /// journal, trace ring, and audit shadow state.
    ///
    /// Takes the persistence lock and the store read lock in sequence
    /// (never nested), so it is safe from any thread.
    #[must_use]
    pub fn memory_report(&self) -> MemoryReport {
        let journal_buffer = self.persist_guard().map_or(0, |p| p.journal.buffer_bytes());
        let repl_buffer = self.repl.as_ref().map_or(0, |r| r.buffer_bytes());
        let store = self.read_store();
        MemoryReport::collect(&store, self.auditor.as_ref(), journal_buffer, repl_buffer)
    }

    /// Refreshes every observation-time gauge: live connections,
    /// journal lag, and the full `mem.*` breakdown. Called by the
    /// accept loop every [`MEM_REFRESH_INTERVAL`] and by `/metrics` so
    /// scrapes are never staler than one request.
    pub fn refresh_observable_gauges(&self) {
        let m = streamlink_core::metrics::global();
        m.connections_active.set(self.connections_active() as u64);
        m.journal_lag_edges.set(self.journal_lag());
        if let Some(repl) = &self.repl {
            repl.update_gauges();
        }
        if let Some(replica) = &self.replica {
            replica.update_gauges();
        }
        self.memory_report().publish();
    }

    /// Runs one accuracy-audit cycle against the live store (the
    /// background audit thread's body; public so tests and tools can
    /// force a cycle). `None` when auditing is disabled.
    pub fn run_audit_cycle(&self) -> Option<AuditSnapshot> {
        let auditor = self.auditor.as_ref()?;
        let store = self.read_store();
        Some(auditor.run_cycle(&store, self.config.audit_pairs))
    }

    /// Whether shutdown was requested, by signal or programmatically.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.local_shutdown.load(Ordering::SeqCst) || signals::shutdown_requested()
    }

    /// Requests shutdown without a signal (used by tests).
    pub fn request_shutdown(&self) {
        self.local_shutdown.store(true, Ordering::SeqCst);
    }

    /// Connections currently being served.
    #[must_use]
    pub fn connections_active(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Seconds since this server state was created.
    #[must_use]
    pub fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Acked edges not yet covered by a durable snapshot (0 when
    /// serving purely in memory).
    #[must_use]
    pub fn journal_lag(&self) -> u64 {
        if self.persist.is_none() {
            return 0;
        }
        let edges = self.read_store().edges_processed();
        edges.saturating_sub(self.last_snapshot_seq.load(Ordering::SeqCst))
    }

    fn set_last_snapshot_seq(&self, seq: u64) {
        self.last_snapshot_seq.store(seq, Ordering::SeqCst);
    }
}

/// Decrements the active-connection counter when dropped, so a panicked
/// handler thread still releases its slot.
struct ActiveGuard<'a>(&'a ServerState);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Runs the full server lifecycle: accept until shutdown, drain, write
/// the final checkpoint. Returns `Ok(())` on a clean shutdown so the
/// process can exit 0.
///
/// # Errors
/// Fails if the listener cannot be configured or the final checkpoint
/// cannot be written (acked edges are still safe in the journal).
pub fn serve(listener: TcpListener, state: &Arc<ServerState>) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let checkpointer = if state.persist.is_some() {
        let st = Arc::clone(state);
        Some(
            thread::Builder::new()
                .name("checkpointer".into())
                .spawn(move || persistence::checkpoint_loop(&st))?,
        )
    } else {
        None
    };
    let audit_thread = if state.auditor.is_some() && !state.config.audit_interval.is_zero() {
        let st = Arc::clone(state);
        Some(
            thread::Builder::new()
                .name("auditor".into())
                .spawn(move || audit_loop(&st))?,
        )
    } else {
        None
    };
    let repl_thread = match (&state.cluster, &state.replica) {
        // Cluster mode: one loop owns both sides — it pulls while the
        // node is a replica and maintains the lease while it is primary.
        (Some(cluster), _) => {
            let st = Arc::clone(state);
            let cl = Arc::clone(cluster);
            Some(
                thread::Builder::new()
                    .name("failover".into())
                    .spawn(move || failover::cluster_loop(&st, &cl))?,
            )
        }
        (None, Some(runtime)) => {
            let st = Arc::clone(state);
            let rt = Arc::clone(runtime);
            Some(
                thread::Builder::new()
                    .name("replication".into())
                    .spawn(move || replication::replica_loop(&st, &rt))?,
            )
        }
        (None, None) => None,
    };

    state.refresh_observable_gauges();
    let mut last_metrics_log = Instant::now();
    let mut last_mem_refresh = Instant::now();
    // Phase attribution: how long the acceptor idled before each
    // connection arrived. Near-zero accept waits under load mean the
    // listener itself is the bottleneck; large waits mean it is starved
    // for work and latency lives elsewhere.
    let mut last_accept = Instant::now();
    while !state.shutdown_requested() {
        let log_every = state.config.metrics_log_every;
        if !log_every.is_zero() && last_metrics_log.elapsed() >= log_every {
            last_metrics_log = Instant::now();
            eprintln!("{}", metrics_log_line(state));
        }
        if last_mem_refresh.elapsed() >= MEM_REFRESH_INTERVAL {
            last_mem_refresh = Instant::now();
            state.refresh_observable_gauges();
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let m = streamlink_core::metrics::global();
                m.connections_accepted.incr();
                m.serve_accept_wait_ms
                    .set(u64::try_from(last_accept.elapsed().as_millis()).unwrap_or(u64::MAX));
                last_accept = Instant::now();
                let previous = state.active.fetch_add(1, Ordering::SeqCst);
                if previous >= state.config.max_conns {
                    state.active.fetch_sub(1, Ordering::SeqCst);
                    shed(stream, state.config.max_conns);
                    continue;
                }
                let st = Arc::clone(state);
                let spawned = thread::Builder::new()
                    .name("connection".into())
                    .spawn(move || {
                        let _slot = ActiveGuard(&st);
                        connection::handle(stream, &st);
                    });
                if let Err(e) = spawned {
                    state.active.fetch_sub(1, Ordering::SeqCst);
                    eprintln!("cannot spawn connection thread: {e}");
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(POLL_INTERVAL),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => {
                eprintln!("accept failed: {e}");
                thread::sleep(POLL_INTERVAL);
            }
        }
    }
    drop(listener); // stop accepting before draining

    let deadline = Instant::now() + state.config.drain_deadline;
    while state.connections_active() > 0 && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(10));
    }
    let stragglers = state.connections_active();
    if stragglers > 0 {
        eprintln!("drain deadline hit with {stragglers} connection(s) still open");
    }

    if let Some(handle) = checkpointer {
        let _ = handle.join();
    }
    if let Some(handle) = audit_thread {
        let _ = handle.join();
    }
    if let Some(handle) = repl_thread {
        let _ = handle.join();
    }
    if state.persist.is_some() {
        let report = persistence::checkpoint_now(state)?;
        eprintln!(
            "final snapshot at seq {} ({} journal segment(s) pruned)",
            report.snapshot_seq, report.segments_pruned
        );
    }
    Ok(())
}

/// The accuracy-audit thread body: one cycle per `audit_interval`,
/// polling the shutdown flag between sleeps so draining stays prompt.
fn audit_loop(state: &ServerState) {
    let mut last = Instant::now();
    while !state.shutdown_requested() {
        if last.elapsed() >= state.config.audit_interval {
            last = Instant::now();
            let _ = state.run_audit_cycle();
        }
        thread::sleep(POLL_INTERVAL);
    }
}

/// Rejects a connection past the cap: one `ERR busy retry` line with a
/// back-off hint (so clients can distinguish "retry later" from a hard
/// failure), then close.
fn shed(stream: TcpStream, cap: usize) {
    let m = streamlink_core::metrics::global();
    m.connections_shed.incr();
    m.sheds_busy.incr();
    let mut stream = stream;
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = writeln!(
        stream,
        "ERR busy retry: connection cap {cap} reached, back off and reconnect"
    );
}

/// The periodic one-line metrics summary the accept loop logs: the
/// load-bearing subset of `METRICS` (full catalogue via the protocol
/// command).
fn metrics_log_line(state: &ServerState) -> String {
    let m = streamlink_core::metrics::global();
    m.connections_active.set(state.connections_active() as u64);
    m.journal_lag_edges.set(state.journal_lag());
    let snap = m.snapshot();
    let insert = snap
        .histogram("core.insert.latency_ns")
        .copied()
        .unwrap_or_default();
    let cmd = snap
        .histogram("server.command_latency_ns")
        .copied()
        .unwrap_or_default();
    let audit = state.audit_snapshot().unwrap_or_default();
    format!(
        "metrics: edges={} commands={} errors={} conns={} shed={} \
         journal_lag={} insert_p99_ns={} cmd_p50_ns={} cmd_p99_ns={} \
         slow_ops={} audit_cycles={} audit_tracked={} \
         audit_jaccard_mae={:.6} audit_cn_rel_err_p95={:.6}",
        snap.value("core.insert.edges").unwrap_or(0),
        snap.value("server.commands").unwrap_or(0),
        snap.value("server.command_errors").unwrap_or(0),
        state.connections_active(),
        snap.value("server.connections_shed").unwrap_or(0),
        state.journal_lag(),
        insert.p99_ns,
        cmd.p50_ns,
        cmd.p99_ns,
        snap.value("trace.slow_ops").unwrap_or(0),
        audit.cycles,
        audit.tracked,
        audit.jaccard_mae,
        audit.cn_rel_err_p95,
    )
}
