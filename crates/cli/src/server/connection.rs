//! One connection: a line-in/line-out loop with timeouts.
//!
//! The socket read timeout doubles as the poll tick: every tick the
//! loop checks the shutdown flag (drain) and the idle clock (slow or
//! stuck clients are disconnected instead of pinning a thread and a
//! connection slot forever).
//!
//! A read timeout can fire mid-line; the partially read bytes stay in
//! the line buffer across ticks, so a slow writer loses nothing.
//!
//! Requests are newline-terminated text in both wire modes. After the
//! client sends `HELLO v3` (and the server answers `OK fmt=v3` as a
//! plain text line), every subsequent response on the connection is a
//! self-delimiting codec envelope instead of a text line. The switch
//! is one-way and per-connection.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use super::{protocol, ServerState, POLL_INTERVAL};

/// Commands currently being handled (request read → response flushed)
/// across every connection thread; exported as the
/// `serve.conn_queue_depth` gauge.
static IN_FLIGHT: AtomicU64 = AtomicU64::new(0);

struct InFlightGuard;

impl InFlightGuard {
    fn enter() -> Self {
        let depth = IN_FLIGHT.fetch_add(1, Ordering::Relaxed) + 1;
        streamlink_core::metrics::global()
            .serve_conn_queue_depth
            .set(depth);
        InFlightGuard
    }
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        let depth = IN_FLIGHT.fetch_sub(1, Ordering::Relaxed).saturating_sub(1);
        streamlink_core::metrics::global()
            .serve_conn_queue_depth
            .set(depth);
    }
}

/// Serves one accepted connection until the client quits, goes idle,
/// errors out, or the server drains.
pub(super) fn handle(stream: TcpStream, state: &ServerState) {
    let peer = stream
        .peer_addr()
        .map_or_else(|_| "?".into(), |a| a.to_string());
    let poll = POLL_INTERVAL.max(Duration::from_millis(1));
    if stream.set_read_timeout(Some(poll)).is_err()
        || stream
            .set_write_timeout(Some(Duration::from_secs(5)))
            .is_err()
    {
        return;
    }
    // One write per response below; without this, Nagle + delayed ACK
    // add tens of milliseconds to every request round-trip.
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{peer}: clone failed: {e}");
            return;
        }
    });
    let mut writer = stream;
    let mut line = String::new();
    let mut last_activity = Instant::now();
    let mut binary = false;
    loop {
        let buffered = line.len();
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {
                last_activity = Instant::now();
                let in_flight = InFlightGuard::enter();
                let trimmed = line.trim_end_matches(['\r', '\n']);
                let (payload, closing) = if binary {
                    protocol::handle_command_framed(state, trimmed)
                } else {
                    let mut response = protocol::handle_command(state, trimmed);
                    let closing = response == "OK bye";
                    if response == "OK fmt=v3" {
                        binary = true;
                    }
                    response.push('\n');
                    (response.into_bytes(), closing)
                };
                let respond_start = Instant::now();
                let write_failed = writer.write_all(&payload).is_err();
                streamlink_core::metrics::global()
                    .serve_phase_respond
                    .observe(respond_start);
                drop(in_flight);
                if write_failed || closing {
                    break;
                }
                line.clear();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if line.len() > buffered {
                    // Partial progress mid-line still counts as activity.
                    last_activity = Instant::now();
                }
                if state.shutdown_requested() && line.is_empty() {
                    // Quiet connection during drain: close it so the
                    // server can finish shutting down.
                    break;
                }
                if last_activity.elapsed() >= state.config().idle_timeout {
                    streamlink_core::metrics::global().sheds_idle_timeout.incr();
                    let _ = writeln!(writer, "ERR idle timeout, closing");
                    break;
                }
            }
            Err(_) => break,
        }
    }
}
