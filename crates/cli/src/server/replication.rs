//! WAL-shipping replication: the primary's ship buffer + peer registry
//! and the replica's puller loop.
//!
//! ## Topology
//!
//! One primary accepts writes; N read replicas pull its CRC-framed WAL
//! entries (`F <seq> <u> <v> <crc>`) over the same TCP protocol port via
//! the `REPL` command family ([`repl_command`]):
//!
//! ```text
//! REPL HELLO <id>            handshake: primary seq + sketch shape
//! REPL PULL <id> <after> <n> up to n WAL lines with seq > after, then
//!            [corr=<id>]     `OK <n> entries primary_seq=<s>`; or
//!                            `ERR resync` when the range was shed
//! REPL SNAPSHOT              `OK snapshot seq=<s> len=<n> crc32=<hex>`
//!                            + one line of StoreSnapshot JSON
//! REPL STATUS                one-line role/lag summary (any node)
//! ```
//!
//! Cluster mode (`--peers`) adds three more subcommands — `REPL LEASE`,
//! `REPL VOTE` and `REPL HANDOFF` — which delegate to
//! [`super::failover`]: lease renewal drives epoch fencing, votes drive
//! automatic promotion, and handoff re-acks a dead timeline's tail on
//! the new primary.
//!
//! ## Binary WAL shipping (wire format v3)
//!
//! A replica launched with `--format v3` offers `HELLO v3` right after
//! connecting; a primary that understands it answers `OK fmt=v3` and
//! ships every `REPL PULL` batch as one CRC-covered
//! [`streamlink_core::codec`] `WAL_BATCH` envelope (seqs
//! delta-encoded) instead of per-line text frames — one checksum per
//! batch, no per-line re-parse. An old primary answers
//! `ERR unknown command` and the link transparently stays on text
//! lines, so mixed-version pairs keep replicating.
//!
//! ## Why the primary can never stall
//!
//! Shipping is pull-based over a bounded in-memory ring
//! ([`streamlink_core::ReplLog`]): the insert path appends to the ring
//! under the store write lock and never blocks on any replica. A slow or
//! stuck replica simply falls behind; once the ring sheds its range it
//! is told to resync from a snapshot (durable primaries first try the
//! on-disk WAL tail via [`streamlink_core::journal::read_entries_after`],
//! which is cheaper than a full snapshot).
//!
//! ## Why replicas converge
//!
//! Replicas apply entries through the monotone-seq gate
//! ([`streamlink_core::ReplicaApplier`]), so duplicated or reordered
//! frames never double-count degrees; dropped frames leave gaps that the
//! periodic anti-entropy round repairs by pulling a snapshot and joining
//! it with [`streamlink_core::merge::merge_join`] (slot min / degree max
//! / edge-count max). Experiment E23 asserts byte-exact convergence
//! under randomized drop/duplicate/reorder/crash schedules.
//!
//! ## Failure behavior
//!
//! The puller reconnects with jittered exponential backoff and resumes
//! from its last applied seq — a replica killed mid-stream loses nothing
//! it already applied. A primary that restarted into a lower seq space
//! is detected at handshake and answered with a full local reset.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use streamlink_core::journal::{self, JournalEntry, LineCheck};
use streamlink_core::merge::merge_join;
use streamlink_core::snapshot::StoreSnapshot;
use streamlink_core::{
    codec, metrics, trace, ApplyOutcome, HasherBackend, PullOutcome, ReplLog, ReplicaApplier,
    SketchConfig, SketchStore, WireFormat,
};

use super::protocol::parse_bounded;
use super::{persistence, ServerState, POLL_INTERVAL};

/// Hard cap on entries served per `REPL PULL`, whatever the client asks.
pub const MAX_PULL_BATCH: usize = 65_536;

/// A peer that has not pulled for this long no longer counts as
/// connected in the `repl.replicas_connected` / `repl.max_lag_edges`
/// gauges.
pub const PEER_LIVENESS: Duration = Duration::from_secs(10);

/// Connect timeout for the replica's link to its primary.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(3);

/// Per-socket read/write timeout on the replication link. `REPL PULL`
/// always answers promptly (an empty batch is still an `OK` line), so a
/// healthy link never comes close to this.
const IO_TIMEOUT: Duration = Duration::from_secs(5);

/// Splits an optional trailing `corr=<id>` token off a REPL argument
/// list, stamping the enclosing trace span with the correlation id
/// when one is present. A malformed value is left in place so the
/// caller's arity check rejects it loudly instead of it being parsed
/// as a positional argument.
pub(super) fn take_corr<'a, 'b>(args: &'a [&'b str]) -> (&'a [&'b str], Option<u64>) {
    if let Some(v) = args.last().and_then(|last| last.strip_prefix("corr=")) {
        if let Ok(corr) = v.parse::<u64>() {
            trace::note_corr(corr);
            return (&args[..args.len() - 1], Some(corr));
        }
    }
    (args, None)
}

/// Mints a fresh correlation id: node-seeded, time-mixed, counter-
/// disambiguated, never zero — unique enough to grep one election or
/// replication session out of a merged multi-node timeline.
pub(super) fn new_corr_id(node_id: &str, now_ms: u64) -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    (id_seed(node_id) ^ now_ms.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (n << 20)) | 1
}

/// Replica-side tunables, all flag-settable via `--repl-*`.
#[derive(Debug, Clone)]
pub struct ReplicaTuning {
    /// Entries requested per `REPL PULL` (capped at
    /// [`MAX_PULL_BATCH`]).
    pub pull_batch: usize,
    /// Wire format offered to the primary at connect time
    /// (`--format`): `BinaryV3` negotiates framed `WAL_BATCH`
    /// shipping, falling back to text when the primary is older.
    pub wire: WireFormat,
    /// Sleep between pulls once caught up.
    pub poll_interval: Duration,
    /// Period between anti-entropy snapshot joins (zero disables the
    /// periodic rounds; resync-on-demand still works).
    pub anti_entropy_every: Duration,
    /// First reconnect backoff after a link failure.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
}

impl Default for ReplicaTuning {
    fn default() -> Self {
        ReplicaTuning {
            pull_batch: 4096,
            wire: WireFormat::TextV2,
            poll_interval: Duration::from_millis(100),
            anti_entropy_every: Duration::from_secs(30),
            backoff_base: Duration::from_millis(100),
            backoff_max: Duration::from_secs(5),
        }
    }
}

/// Primary-side replication state: the bounded ship ring plus a registry
/// of the replicas that have pulled recently.
pub struct PrimaryRepl {
    log: Mutex<ReplLog>,
    peers: Mutex<HashMap<String, PeerStatus>>,
}

#[derive(Debug, Clone, Copy)]
struct PeerStatus {
    acked_seq: u64,
    last_seen: Instant,
}

/// One registered replica's standing on the primary, as exposed by
/// the per-peer `repl.peer.<id>.{lag_seq,last_seen_ms,state}` gauges.
#[derive(Debug, Clone)]
pub struct PeerOverview {
    /// The replica id it pulls under (its advertised address in
    /// cluster mode).
    pub id: String,
    /// Entries the primary has that this peer has not acked.
    pub lag_seq: u64,
    /// Milliseconds since this peer last pulled.
    pub last_seen_ms: u64,
    /// Whether the peer counts as connected (seen within
    /// [`PEER_LIVENESS`]).
    pub live: bool,
}

impl PrimaryRepl {
    /// A ship ring holding at most `capacity` entries, seeded with the
    /// primary's current WAL high-water mark.
    #[must_use]
    pub fn new(capacity: usize, last_seq: u64) -> Self {
        PrimaryRepl {
            log: Mutex::new(ReplLog::new(capacity, last_seq)),
            peers: Mutex::new(HashMap::new()),
        }
    }

    /// The ship ring, recovering from lock poisoning.
    pub fn log(&self) -> MutexGuard<'_, ReplLog> {
        self.log.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn peers(&self) -> MutexGuard<'_, HashMap<String, PeerStatus>> {
        self.peers.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records that replica `id` has applied everything up to
    /// `acked_seq` (it asked for entries strictly after that mark).
    pub(super) fn note_peer(&self, id: &str, acked_seq: u64) {
        self.peers().insert(
            id.to_string(),
            PeerStatus {
                acked_seq,
                last_seen: Instant::now(),
            },
        );
    }

    /// Bytes held by the ship ring (the `mem.repl.buffer` component).
    #[must_use]
    pub fn buffer_bytes(&self) -> usize {
        self.log().memory_bytes()
    }

    /// One row per registered peer — the raw material for the
    /// `repl.peer.<id>.*` gauges and `/clusterz`. Sorted by id so
    /// exposition output is stable across scrapes.
    #[must_use]
    pub fn peer_overview(&self) -> Vec<PeerOverview> {
        let last_seq = self.log().last_seq();
        let peers = self.peers();
        let mut rows: Vec<PeerOverview> = peers
            .iter()
            .map(|(id, status)| {
                let since = status.last_seen.elapsed();
                PeerOverview {
                    id: id.clone(),
                    lag_seq: last_seq.saturating_sub(status.acked_seq),
                    last_seen_ms: u64::try_from(since.as_millis()).unwrap_or(u64::MAX),
                    live: since <= PEER_LIVENESS,
                }
            })
            .collect();
        drop(peers);
        rows.sort_by(|a, b| a.id.cmp(&b.id));
        rows
    }

    /// `(connected replicas, worst lag in edges)` over peers seen within
    /// [`PEER_LIVENESS`].
    #[must_use]
    pub fn lag_overview(&self) -> (usize, u64) {
        let last_seq = self.log().last_seq();
        let peers = self.peers();
        let mut connected = 0usize;
        let mut max_lag = 0u64;
        for status in peers.values() {
            if status.last_seen.elapsed() <= PEER_LIVENESS {
                connected += 1;
                max_lag = max_lag.max(last_seq.saturating_sub(status.acked_seq));
            }
        }
        (connected, max_lag)
    }

    /// Refreshes the primary-side replication gauges.
    pub fn update_gauges(&self) {
        let (connected, max_lag) = self.lag_overview();
        let m = metrics::global();
        m.repl_replicas_connected.set(connected as u64);
        m.repl_max_lag_edges.set(max_lag);
    }
}

/// Replica-side shared state: where the primary is, how far we have
/// applied, and the tunables the puller thread runs with.
pub struct ReplicaRuntime {
    /// `HOST:PORT` of the primary this node replicates from.
    pub primary_addr: String,
    /// This replica's id, echoed in `REPL PULL` so the primary's peer
    /// registry and lag gauges can tell replicas apart.
    pub id: String,
    /// Replica lag (edges) beyond which `/healthz` reports 503.
    pub lag_slo: u64,
    /// Puller tunables.
    pub tuning: ReplicaTuning,
    applier: Mutex<ReplicaApplier>,
    applied_seq: AtomicU64,
    persisted_seq: AtomicU64,
    primary_seq: AtomicU64,
    connected: AtomicBool,
    /// Correlation id threaded through this runtime's `REPL PULL`s
    /// (0 = unset; set per session by the cluster loop).
    corr_id: AtomicU64,
}

impl ReplicaRuntime {
    /// A fresh runtime that has applied nothing yet.
    #[must_use]
    pub fn new(primary_addr: String, id: String, lag_slo: u64, tuning: ReplicaTuning) -> Self {
        ReplicaRuntime {
            primary_addr,
            id,
            lag_slo,
            tuning,
            applier: Mutex::new(ReplicaApplier::new(0)),
            applied_seq: AtomicU64::new(0),
            persisted_seq: AtomicU64::new(0),
            primary_seq: AtomicU64::new(0),
            connected: AtomicBool::new(false),
            corr_id: AtomicU64::new(0),
        }
    }

    /// Sets the correlation id every subsequent `REPL PULL` carries
    /// (0 clears it).
    pub fn set_corr(&self, corr: u64) {
        self.corr_id.store(corr, Ordering::Relaxed);
    }

    /// The current pull correlation id, if one is set.
    #[must_use]
    pub fn corr(&self) -> Option<u64> {
        match self.corr_id.load(Ordering::Relaxed) {
            0 => None,
            c => Some(c),
        }
    }

    pub(super) fn applier(&self) -> MutexGuard<'_, ReplicaApplier> {
        self.applier.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Re-seats the dedup gate at `seq`, treating everything up to it as
    /// both applied and locally durable. Used when a durable replica
    /// boots from its own journal, and when a demoted primary rejoins as
    /// a replica of the new timeline.
    pub fn seed_applied(&self, seq: u64) {
        self.applier().reset_to(seq);
        self.applied_seq.store(seq, Ordering::Relaxed);
        self.persisted_seq.store(seq, Ordering::Relaxed);
    }

    /// Highest primary seq reflected in the local store.
    #[must_use]
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq.load(Ordering::Relaxed)
    }

    /// Highest primary seq that is durable on this node's own disk (for
    /// in-memory replicas this tracks `applied_seq`, since RAM is all
    /// the durability they have).
    #[must_use]
    pub fn persisted_seq(&self) -> u64 {
        self.persisted_seq.load(Ordering::Relaxed)
    }

    pub(super) fn note_persisted(&self, seq: u64) {
        self.persisted_seq.fetch_max(seq, Ordering::Relaxed);
    }

    pub(super) fn set_persisted(&self, seq: u64) {
        self.persisted_seq.store(seq, Ordering::Relaxed);
    }

    /// The primary's WAL position as of the last exchange.
    #[must_use]
    pub fn primary_seq(&self) -> u64 {
        self.primary_seq.load(Ordering::Relaxed)
    }

    /// Records a primary seq observation (never lowers the mark — a
    /// stale `OK` line racing a snapshot must not shrink reported lag).
    pub fn note_primary_seq(&self, seq: u64) {
        self.primary_seq.fetch_max(seq, Ordering::Relaxed);
    }

    /// Replication lag in edges: entries the primary has that this
    /// replica has not applied.
    #[must_use]
    pub fn lag(&self) -> u64 {
        self.primary_seq().saturating_sub(self.applied_seq())
    }

    /// Durable lag in edges: entries the primary has that this replica
    /// has not journaled locally. This is the mark that matters for
    /// failover (a promoted replica can only serve what survived on its
    /// own disk), so the SLO judges it rather than the in-memory mark.
    #[must_use]
    pub fn durable_lag(&self) -> u64 {
        self.primary_seq().saturating_sub(self.persisted_seq())
    }

    /// Whether the lag SLO is currently violated (the `/healthz` leg).
    /// Judged on [`Self::durable_lag`].
    #[must_use]
    pub fn lag_exceeds_slo(&self) -> bool {
        self.durable_lag() > self.lag_slo
    }

    /// Whether the puller currently holds a live link to the primary.
    #[must_use]
    pub fn connected(&self) -> bool {
        self.connected.load(Ordering::Relaxed)
    }

    pub(super) fn set_connected(&self, up: bool) {
        self.connected.store(up, Ordering::Relaxed);
    }

    /// Refreshes the replica-side replication gauges.
    pub fn update_gauges(&self) {
        let m = metrics::global();
        m.repl_connected.set(u64::from(self.connected()));
        m.repl_applied_seq.set(self.applied_seq());
        m.repl_persisted_seq.set(self.persisted_seq());
        m.repl_lag_edges.set(self.lag());
    }
}

// ---------------------------------------------------------------------
// Primary side: serving the REPL command family.
// ---------------------------------------------------------------------

/// Executes one `REPL <sub>` command (the text after the `REPL` word is
/// in `args`). Called from the protocol dispatcher; every malformed
/// input maps to an `ERR` line.
#[must_use]
pub fn repl_command(state: &ServerState, args: &[&str]) -> String {
    let Some(sub) = args.first() else {
        return "ERR REPL takes a subcommand (HELLO, PULL, SNAPSHOT, STATUS, LEASE, VOTE, HANDOFF)"
            .into();
    };
    match sub.to_ascii_uppercase().as_str() {
        "STATUS" => status_line(state),
        "LEASE" => super::failover::lease_command(state, args),
        "VOTE" => super::failover::vote_command(state, args),
        "HANDOFF" => super::failover::handoff_command(state, args),
        "HELLO" => {
            let Some(repl) = serving_repl(state) else {
                return repl_unavailable(state);
            };
            match args {
                [_, id] => {
                    repl.note_peer(id, 0);
                    let store = state.read_store();
                    let cfg = store.config();
                    let last_seq = repl.log().last_seq();
                    let cluster_part = match state.cluster() {
                        Some(cluster) => {
                            format!(" epoch={} tl={}", cluster.epoch(), cluster.timeline_spec())
                        }
                        None => String::new(),
                    };
                    format!(
                        "OK repl hello primary_seq={last_seq} slots={} seed={} \
                         backend={}{cluster_part}",
                        cfg.slots(),
                        cfg.base_seed(),
                        backend_name(cfg.hasher_backend()),
                    )
                }
                _ => "ERR REPL HELLO takes exactly one replica id".into(),
            }
        }
        "PULL" => match pull_entries(state, args) {
            Ok((entries, last_seq)) => render_pull(&entries, last_seq),
            Err(line) => line,
        },
        "SNAPSHOT" => {
            let Some(repl) = serving_repl(state) else {
                return repl_unavailable(state);
            };
            if args.len() != 1 {
                return "ERR REPL SNAPSHOT takes no arguments".into();
            }
            // Holding the store read lock blocks inserts, and inserts
            // record into the ring under the write lock — so the ring's
            // last_seq read here is exactly the snapshot's high-water
            // mark.
            let (snap, seq) = {
                let store = state.read_store();
                let seq = repl.log().last_seq();
                (StoreSnapshot::capture(&store), seq)
            };
            match serde_json::to_string(&snap) {
                Ok(json) => {
                    metrics::global().repl_snapshots_shipped.incr();
                    format!(
                        "OK snapshot seq={seq} len={} crc32={:08x}\n{json}",
                        json.len(),
                        hashkit::crc32(json.as_bytes()),
                    )
                }
                Err(e) => format!("ERR cannot serialize snapshot: {e}"),
            }
        }
        other => format!(
            "ERR unknown REPL subcommand {other:?} \
             (HELLO, PULL, SNAPSHOT, STATUS, LEASE, VOTE, HANDOFF)"
        ),
    }
}

/// The shared body of `REPL PULL`, used by both response framings.
/// `Ok` carries the batch and the ring's high-water seq; `Err` carries
/// a complete `ERR ...` line.
fn pull_entries(state: &ServerState, args: &[&str]) -> Result<(Vec<JournalEntry>, u64), String> {
    let Some(repl) = serving_repl(state) else {
        return Err(repl_unavailable(state));
    };
    let (args, _corr) = take_corr(args);
    let [_, id, after, max] = args else {
        return Err("ERR REPL PULL takes <id> <after_seq> <max> [corr=<id>]".into());
    };
    let after = parse_bounded("after_seq", after, 0, u64::MAX).map_err(|e| format!("ERR {e}"))?;
    let max = parse_bounded("batch", max, 1, MAX_PULL_BATCH as u64)
        .map_err(|e| format!("ERR {e}"))? as usize;
    repl.note_peer(id, after);
    let (outcome, last_seq) = {
        let log = repl.log();
        (log.entries_after(after, max), log.last_seq())
    };
    let shipped = |entries: Vec<JournalEntry>| {
        metrics::global()
            .repl_entries_shipped
            .add(entries.len() as u64);
        Ok((entries, last_seq))
    };
    match outcome {
        PullOutcome::Entries(entries) => shipped(entries),
        PullOutcome::ResyncRequired => {
            // Durable primaries keep the full WAL on disk; serve the
            // tail from there before forcing a snapshot.
            if let Some(dir) = state.persist_guard().map(|p| p.dir.clone()) {
                if let Ok(entries) = journal::read_entries_after(&dir, after, max) {
                    if entries.first().map(|e| e.seq) == Some(after + 1) {
                        return shipped(entries);
                    }
                }
            }
            metrics::global().repl_resyncs.incr();
            Err(format!(
                "ERR resync: entries after seq {after} are no longer buffered; \
                 pull REPL SNAPSHOT"
            ))
        }
    }
}

/// Binary-mode `REPL PULL`: the whole batch as one `WAL_BATCH`
/// envelope; errors ship as a `TEXT_FRAME` carrying the usual `ERR`
/// line. Returns `(frame bytes, is_err)`.
pub(super) fn repl_pull_frame(state: &ServerState, args: &[&str]) -> (Vec<u8>, bool) {
    match pull_entries(state, args) {
        Ok((entries, last_seq)) => (codec::encode_wal_batch(&entries, last_seq), false),
        Err(line) => (codec::encode_text_frame(&line), true),
    }
}

/// Binary-mode `REPL SNAPSHOT`: the whole payload as one compressed
/// `SNAPSHOT_FRAME` envelope (the envelope CRC covers the body, so no
/// separate len/crc header is needed); errors ship as a `TEXT_FRAME`
/// carrying the usual `ERR` line. Returns `(frame bytes, is_err)`.
pub(super) fn repl_snapshot_frame(state: &ServerState) -> (Vec<u8>, bool) {
    let Some(repl) = serving_repl(state) else {
        return (codec::encode_text_frame(&repl_unavailable(state)), true);
    };
    let (snap, seq) = {
        let store = state.read_store();
        let seq = repl.log().last_seq();
        (StoreSnapshot::capture(&store), seq)
    };
    match serde_json::to_string(&snap) {
        Ok(json) => {
            metrics::global().repl_snapshots_shipped.incr();
            (codec::encode_snapshot_frame(seq, json.as_bytes()), false)
        }
        Err(e) => (
            codec::encode_text_frame(&format!("ERR cannot serialize snapshot: {e}")),
            true,
        ),
    }
}

/// The primary-side replication handle, unless this node is a replica
/// (replicas do not re-ship).
fn serving_repl(state: &ServerState) -> Option<&PrimaryRepl> {
    if state.is_replica() {
        None
    } else {
        state.primary_repl()
    }
}

/// The machine-parseable redirect every write/serve refusal carries:
/// `ERR readonly MOVED <addr> ...`. The fourth whitespace token is the
/// primary's address (`?` when no primary is currently known), so
/// clients can follow it with `split_whitespace().nth(3)`.
pub(super) fn readonly_moved(state: &ServerState) -> String {
    let target = if let Some(cluster) = state.cluster() {
        cluster.believed_primary()
    } else {
        state
            .replica_runtime()
            .map(|runtime| runtime.primary_addr.clone())
    };
    let target = target.unwrap_or_else(|| "?".into());
    format!("ERR readonly MOVED {target} (this node is a read replica; retry on the primary)")
}

fn repl_unavailable(state: &ServerState) -> String {
    if state.is_replica() {
        readonly_moved(state)
    } else {
        "ERR replication disabled (--repl-buffer 0)".into()
    }
}

fn render_pull(entries: &[JournalEntry], last_seq: u64) -> String {
    let mut out = String::with_capacity(entries.len() * 24 + 40);
    for e in entries {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out.push_str(&format!(
        "OK {} entries primary_seq={last_seq}",
        entries.len()
    ));
    out
}

/// The `REPL STATUS` line for either role. Cluster nodes append their
/// fencing epoch; non-cluster lines keep the exact v2 shape.
fn status_line(state: &ServerState) -> String {
    let epoch_part = match state.cluster() {
        Some(cluster) => format!(" epoch={}", cluster.epoch()),
        None => String::new(),
    };
    if state.is_replica() {
        let Some(runtime) = state.replica_runtime() else {
            return "ERR replica state missing".into();
        };
        let primary = state
            .cluster()
            .and_then(|cluster| cluster.believed_primary())
            .unwrap_or_else(|| runtime.primary_addr.clone());
        return format!(
            "OK role=replica primary={} connected={} applied_seq={} persisted_seq={} \
             primary_seq={} lag_edges={} lag_slo={}{epoch_part}",
            primary,
            u64::from(runtime.connected()),
            runtime.applied_seq(),
            runtime.persisted_seq(),
            runtime.primary_seq(),
            runtime.lag(),
            runtime.lag_slo,
        );
    }
    match state.primary_repl() {
        Some(repl) => {
            let (last_seq, buffered) = {
                let log = repl.log();
                (log.last_seq(), log.buffered())
            };
            let (connected, max_lag) = repl.lag_overview();
            // Cluster primaries also say where they believe the
            // primary is (themselves, unless mid-transition) — the
            // same address the `MOVED` hint would carry.
            let believed_part = match state.cluster() {
                Some(cluster) => format!(
                    " believed_primary={}",
                    cluster.believed_primary().unwrap_or_else(|| "?".into())
                ),
                None => String::new(),
            };
            format!(
                "OK role=primary last_seq={last_seq} buffered={buffered} \
                 replicas_connected={connected} max_lag_edges={max_lag}{epoch_part}{believed_part}"
            )
        }
        None => "OK role=primary replication=disabled".into(),
    }
}

fn backend_name(backend: HasherBackend) -> &'static str {
    match backend {
        HasherBackend::Mixer => "mixer",
        HasherBackend::Tabulation => "tabulation",
    }
}

fn parse_backend(name: &str) -> Option<HasherBackend> {
    match name {
        "mixer" => Some(HasherBackend::Mixer),
        "tabulation" => Some(HasherBackend::Tabulation),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Replica side: the puller thread.
// ---------------------------------------------------------------------

/// The replica puller thread body: connect, handshake, pull until
/// shutdown; on any link error back off (jittered exponential) and
/// reconnect, resuming from the last applied seq.
pub fn replica_loop(state: &Arc<ServerState>, runtime: &Arc<ReplicaRuntime>) {
    // Cheap deterministic jitter source, seeded per replica id so a
    // fleet restarting together does not reconnect in lockstep.
    let mut rng = Lcg::new(id_seed(&runtime.id));
    let mut backoff = runtime.tuning.backoff_base;
    while !state.shutdown_requested() {
        match run_session(state, runtime, &mut backoff) {
            Ok(()) => break, // clean shutdown
            Err(e) => {
                runtime.set_connected(false);
                runtime.update_gauges();
                metrics::global().repl_reconnects.incr();
                if state.shutdown_requested() {
                    break;
                }
                let delay = jittered(&mut rng, backoff);
                eprintln!(
                    "replication: link to {}: {e}; retrying in {}ms",
                    runtime.primary_addr,
                    delay.as_millis(),
                );
                sleep_poll(state, delay);
                backoff = next_backoff(backoff, runtime.tuning.backoff_max);
            }
        }
    }
    runtime.set_connected(false);
    runtime.update_gauges();
}

/// Folds a node id into a jitter seed (distinct ids, distinct phases).
pub(super) fn id_seed(id: &str) -> u64 {
    id.bytes().fold(0x9E37_79B9_7F4A_7C15u64, |acc, b| {
        acc.rotate_left(8) ^ u64::from(b)
    })
}

/// One reconnect backoff step: double, saturating at the ceiling.
pub(super) fn next_backoff(cur: Duration, max: Duration) -> Duration {
    cur.saturating_mul(2).min(max)
}

/// One connected session: handshake, then pull/anti-entropy until the
/// link errors or shutdown is requested.
fn run_session(
    state: &ServerState,
    runtime: &ReplicaRuntime,
    backoff: &mut Duration,
) -> io::Result<()> {
    let mut link = PrimaryLink::connect(&runtime.primary_addr, runtime.tuning.wire)?;
    handshake(state, runtime, &mut link)?;
    // A completed handshake proves the primary is healthy: reset the
    // reconnect backoff so the next outage starts from the base delay.
    *backoff = runtime.tuning.backoff_base;
    runtime.set_connected(true);
    runtime.update_gauges();
    let mut last_anti_entropy = Instant::now();
    loop {
        if state.shutdown_requested() {
            return Ok(());
        }
        let advanced = pull_once(state, runtime, &mut link)?;
        if !runtime.tuning.anti_entropy_every.is_zero()
            && last_anti_entropy.elapsed() >= runtime.tuning.anti_entropy_every
        {
            last_anti_entropy = Instant::now();
            snapshot_round(state, runtime, &mut link)?;
            metrics::global().repl_anti_entropy_rounds.incr();
        }
        runtime.update_gauges();
        if !advanced {
            sleep_poll(state, runtime.tuning.poll_interval);
        }
    }
}

/// `REPL HELLO` + config adoption / divergence handling (the classic,
/// non-cluster handshake: a lower primary seq means a dead timeline and
/// forces a full local reset).
fn handshake(
    state: &ServerState,
    runtime: &ReplicaRuntime,
    link: &mut PrimaryLink,
) -> io::Result<()> {
    let hello = say_hello(&runtime.id, link)?;
    adopt_config(state, runtime, &hello)?;
    if hello.primary_seq < runtime.applied_seq() {
        // The primary restarted into a lower seq space: our state
        // belongs to a dead timeline. Start over.
        eprintln!(
            "replication: primary seq {} behind local {}; full resync",
            hello.primary_seq,
            runtime.applied_seq(),
        );
        let mut store = state.write_store();
        let mut applier = runtime.applier();
        *store = SketchStore::new(*store.config());
        applier.reset_to(0);
        metrics::global().repl_resyncs.incr();
        runtime
            .applied_seq
            .store(applier.applied_seq(), Ordering::Relaxed);
        runtime.set_persisted(0);
    }
    runtime.note_primary_seq(hello.primary_seq);
    Ok(())
}

/// Sends `REPL HELLO` and parses the reply. No local side effects.
pub(super) fn say_hello(id: &str, link: &mut PrimaryLink) -> io::Result<Hello> {
    link.send(&format!("REPL HELLO {id}"))?;
    let line = link.recv()?;
    parse_hello(&line).ok_or_else(|| bad_data(format!("bad REPL HELLO response: {line:?}")))
}

/// Adopts the primary's sketch shape when this node is still empty;
/// errors on a genuine config mismatch.
pub(super) fn adopt_config(
    state: &ServerState,
    runtime: &ReplicaRuntime,
    hello: &Hello,
) -> io::Result<()> {
    let primary_cfg = SketchConfig::with_slots(hello.slots)
        .seed(hello.seed)
        .backend(hello.backend);
    let mut store = state.write_store();
    let mut applier = runtime.applier();
    if *store.config() != primary_cfg {
        if store.vertex_count() == 0 && store.edges_processed() == 0 {
            // Fresh replica: adopt the primary's sketch shape.
            *store = SketchStore::new(primary_cfg);
            applier.reset_to(0);
            runtime.set_persisted(0);
        } else {
            return Err(bad_data(format!(
                "sketch config mismatch with primary (local {:?}, primary {:?}); \
                 wipe this replica or fix the flags",
                store.config(),
                primary_cfg
            )));
        }
    }
    runtime
        .applied_seq
        .store(applier.applied_seq(), Ordering::Relaxed);
    Ok(())
}

pub(super) struct Hello {
    pub(super) primary_seq: u64,
    slots: usize,
    seed: u64,
    backend: HasherBackend,
    /// The remote's fencing epoch (cluster primaries only).
    pub(super) epoch: Option<u64>,
    /// The remote's rendered timeline (cluster primaries only).
    pub(super) timeline: Option<String>,
}

fn parse_hello(line: &str) -> Option<Hello> {
    if !line.starts_with("OK repl hello ") {
        return None;
    }
    let field = |key: &str| {
        line.split_whitespace()
            .find_map(|kv| kv.strip_prefix(key))
            .map(str::to_string)
    };
    Some(Hello {
        primary_seq: field("primary_seq=")?.parse().ok()?,
        slots: field("slots=")?.parse().ok()?,
        seed: field("seed=")?.parse().ok()?,
        backend: parse_backend(&field("backend=")?)?,
        epoch: field("epoch=").and_then(|v| v.parse().ok()),
        timeline: field("tl="),
    })
}

/// One `REPL PULL` round. Returns whether the round made progress (so
/// the caller knows to skip the idle sleep).
pub(super) fn pull_once(
    state: &ServerState,
    runtime: &ReplicaRuntime,
    link: &mut PrimaryLink,
) -> io::Result<bool> {
    let after = runtime.applied_seq();
    let batch = runtime.tuning.pull_batch.min(MAX_PULL_BATCH);
    let corr_part = runtime
        .corr()
        .map_or_else(String::new, |c| format!(" corr={c}"));
    link.send(&format!(
        "REPL PULL {} {after} {batch}{corr_part}",
        runtime.id
    ))?;
    if link.binary {
        return pull_once_binary(state, runtime, link);
    }
    let mut applied_any = false;
    loop {
        let line = link.recv()?;
        if let Some(rest) = line.strip_prefix("OK ") {
            if let Some(seq) = rest
                .split_whitespace()
                .find_map(|kv| kv.strip_prefix("primary_seq="))
                .and_then(|v| v.parse::<u64>().ok())
            {
                runtime.note_primary_seq(seq);
            }
            return Ok(applied_any);
        }
        if line.starts_with("ERR resync") {
            snapshot_round(state, runtime, link)?;
            return Ok(true);
        }
        if line.starts_with("ERR") {
            return Err(bad_data(format!("primary rejected pull: {line}")));
        }
        // A WAL v2 frame: CRC-verify before applying. A corrupt frame
        // means the link (or primary) is lying — drop the session and
        // resync rather than apply garbage.
        let entry = match JournalEntry::check_line(&line) {
            LineCheck::Verified(entry) | LineCheck::Legacy(entry) => entry,
            LineCheck::Malformed | LineCheck::BadCrc => {
                return Err(bad_data(format!("corrupt replication frame: {line:?}")));
            }
        };
        apply_entry(state, runtime, entry);
        applied_any = true;
    }
}

/// The framed-mode pull response: one `WAL_BATCH` envelope, or a
/// `TEXT_FRAME` carrying an `ERR` line. The envelope CRC covers the
/// whole batch, so there is no per-entry re-verification.
fn pull_once_binary(
    state: &ServerState,
    runtime: &ReplicaRuntime,
    link: &mut PrimaryLink,
) -> io::Result<bool> {
    match link.recv_frame()? {
        (codec::MODE_WAL_BATCH, body) => {
            let (entries, primary_seq) =
                codec::decode_wal_batch_body(&body).map_err(io::Error::from)?;
            let applied_any = !entries.is_empty();
            for entry in entries {
                apply_entry(state, runtime, entry);
            }
            runtime.note_primary_seq(primary_seq);
            Ok(applied_any)
        }
        (codec::MODE_TEXT_FRAME, body) => {
            let line = String::from_utf8(body).map_err(|_| bad_data("text frame not UTF-8"))?;
            if line.starts_with("ERR resync") {
                snapshot_round(state, runtime, link)?;
                Ok(true)
            } else {
                Err(bad_data(format!("primary rejected pull: {line}")))
            }
        }
        (mode, _) => Err(bad_data(format!("unexpected frame mode {mode:#04x}"))),
    }
}

/// Applies one shipped entry through the seq-dedup gate, under the store
/// write lock (lock order: store, then applier, then persist — a strict
/// extension of the insert path's store → persist order).
///
/// Durable replicas journal the primary's entry (with the primary's seq
/// — the journal tolerates gaps) before applying it, so a restart
/// resumes from the local disk seq instead of seq 0, and a promoted
/// replica's journal becomes the new timeline's WAL.
pub(super) fn apply_entry(state: &ServerState, runtime: &ReplicaRuntime, entry: JournalEntry) {
    let mut store = state.write_store();
    let mut applier = runtime.applier();
    if entry.seq > applier.applied_seq() {
        match state.persist_guard() {
            Some(mut persist) => match persist.journal.append(entry) {
                Ok(()) => runtime.note_persisted(entry.seq),
                Err(e) => {
                    // Keep applying in memory: availability over local
                    // durability. persisted_seq stops advancing, so the
                    // durable-lag SLO (and /healthz) surface the stall.
                    eprintln!(
                        "replication: journal append failed at seq {}: {e}",
                        entry.seq
                    );
                }
            },
            None => runtime.note_persisted(entry.seq),
        }
    }
    match applier.offer(&mut store, entry) {
        ApplyOutcome::Applied => {
            metrics::global().repl_entries_applied.incr();
        }
        ApplyOutcome::Deduped => {
            metrics::global().repl_entries_deduped.incr();
        }
    }
    runtime
        .applied_seq
        .store(applier.applied_seq(), Ordering::Relaxed);
}

/// One anti-entropy round: pull a primary snapshot and union it into the
/// local store with the idempotent join, then advance the dedup gate to
/// the snapshot's seq.
pub(super) fn snapshot_round(
    state: &ServerState,
    runtime: &ReplicaRuntime,
    link: &mut PrimaryLink,
) -> io::Result<()> {
    snapshot_round_with(state, runtime, link, false)
}

/// [`snapshot_round`] with an explicit replace switch: `force_replace`
/// installs the snapshot wholesale even when its seq is ahead of the
/// local mark — the rejoin path after a failover, where the local store
/// belongs to a dead timeline whose seq numbers no longer mean anything.
pub(super) fn snapshot_round_with(
    state: &ServerState,
    runtime: &ReplicaRuntime,
    link: &mut PrimaryLink,
    force_replace: bool,
) -> io::Result<()> {
    link.send("REPL SNAPSHOT")?;
    let (seq, json) = recv_snapshot(link)?;
    let snap: StoreSnapshot =
        serde_json::from_str(&json).map_err(|e| bad_data(format!("bad snapshot JSON: {e}")))?;
    let incoming = snap.restore();
    {
        let mut store = state.write_store();
        let mut applier = runtime.applier();
        if *store.config() != *incoming.config() {
            if store.vertex_count() == 0 && store.edges_processed() == 0 {
                *store = incoming;
                applier.reset_to(seq);
            } else {
                return Err(bad_data("snapshot config mismatch with local store"));
            }
        } else if force_replace || seq < applier.applied_seq() {
            // The snapshot is from a different timeline than our applied
            // mark (a primary reset the handshake did not see, or a
            // post-failover rejoin). Replace wholesale.
            *store = incoming;
            applier.reset_to(seq);
            metrics::global().repl_resyncs.incr();
        } else {
            merge_join(&mut store, &incoming)
                .map_err(|e| bad_data(format!("anti-entropy join failed: {e}")))?;
            applier.advance_to(seq);
        }
        runtime
            .applied_seq
            .store(applier.applied_seq(), Ordering::Relaxed);
    }
    runtime.note_primary_seq(seq);
    realign_durable(state, runtime, seq);
    Ok(())
}

/// Receives one snapshot payload. On a v3 link the primary ships a
/// single compressed `SNAPSHOT_FRAME` envelope (its CRC covers the
/// body, so there is no separate len/crc line); text links — and v3
/// links talking to an older primary — use the
/// `OK snapshot seq= len= crc32=` header plus one JSON line.
fn recv_snapshot(link: &mut PrimaryLink) -> io::Result<(u64, String)> {
    if link.binary && link.pending.is_empty() {
        match link.recv_frame()? {
            (codec::MODE_SNAPSHOT_FRAME, body) => {
                let (seq, bytes) =
                    codec::decode_snapshot_frame_body(&body).map_err(io::Error::from)?;
                let json =
                    String::from_utf8(bytes).map_err(|_| bad_data("snapshot frame not UTF-8"))?;
                return Ok((seq, json));
            }
            (codec::MODE_TEXT_FRAME, body) => {
                // An older primary wraps the text response in a frame;
                // queue its lines and fall through to the text parser.
                let text = String::from_utf8(body).map_err(|_| bad_data("text frame not UTF-8"))?;
                link.pending.extend(text.split('\n').map(str::to_string));
            }
            (mode, _) => {
                return Err(bad_data(format!("unexpected frame mode {mode:#04x}")));
            }
        }
    }
    let header = link.recv()?;
    let rest = header
        .strip_prefix("OK snapshot ")
        .ok_or_else(|| bad_data(format!("bad REPL SNAPSHOT response: {header:?}")))?;
    let field = |key: &str| {
        rest.split_whitespace()
            .find_map(|kv| kv.strip_prefix(key))
            .map(str::to_string)
    };
    let seq: u64 = field("seq=")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| bad_data("snapshot header missing seq"))?;
    let len: usize = field("len=")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| bad_data("snapshot header missing len"))?;
    let crc: u32 = field("crc32=")
        .and_then(|v| u32::from_str_radix(&v, 16).ok())
        .ok_or_else(|| bad_data("snapshot header missing crc32"))?;
    let json = link.recv()?;
    if json.len() != len || hashkit::crc32(json.as_bytes()) != crc {
        return Err(bad_data(format!(
            "snapshot integrity check failed (len {} vs {len}, crc mismatch)",
            json.len()
        )));
    }
    Ok((seq, json))
}

/// After a snapshot install moved the applied mark without journal
/// entries backing it, realign a durable node's journal to the new seq
/// space and checkpoint immediately, so a restart recovers the
/// snapshotted state instead of replaying a journal with a hole.
fn realign_durable(state: &ServerState, runtime: &ReplicaRuntime, seq: u64) {
    let realigned = {
        let Some(mut persist) = state.persist_guard() else {
            // In-memory node: RAM is the only durability there is.
            runtime.set_persisted(runtime.applied_seq());
            return;
        };
        if persist.journal.next_seq() == seq + 1 {
            false
        } else {
            match persist.journal.rotate(seq + 1) {
                Ok(()) => true,
                Err(e) => {
                    eprintln!(
                        "replication: journal realign to seq {} failed: {e}",
                        seq + 1
                    );
                    return;
                }
            }
        }
    };
    if realigned {
        match persistence::checkpoint_now(state) {
            Ok(_) => runtime.set_persisted(seq),
            Err(e) => eprintln!("replication: post-resync checkpoint failed: {e}"),
        }
    } else {
        runtime.note_persisted(seq);
    }
}

/// The replica's client connection to the primary. Requests are always
/// text lines; responses are text lines too until `HELLO v3` upgrades
/// the link, after which they arrive as codec envelopes.
pub(super) struct PrimaryLink {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Whether the primary agreed to v3 framed responses.
    binary: bool,
    /// Lines split out of the last `TEXT_FRAME`, oldest first, so the
    /// line-oriented handshake/snapshot code works unchanged in binary
    /// mode.
    pending: VecDeque<String>,
}

impl PrimaryLink {
    pub(super) fn connect(addr: &str, wire: WireFormat) -> io::Result<Self> {
        let target = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| bad_data(format!("cannot resolve primary address {addr:?}")))?;
        let stream = TcpStream::connect_timeout(&target, CONNECT_TIMEOUT)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        let mut link = PrimaryLink {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            binary: false,
            pending: VecDeque::new(),
        };
        if wire == WireFormat::BinaryV3 {
            // Offer framed responses. The negotiation reply is always a
            // plain text line; an old primary answers `ERR unknown
            // command` and the link stays on text.
            link.send("HELLO v3")?;
            if link.recv_text_line()? == "OK fmt=v3" {
                link.binary = true;
            }
        }
        Ok(link)
    }

    pub(super) fn send(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    pub(super) fn recv(&mut self) -> io::Result<String> {
        if !self.binary {
            return self.recv_text_line();
        }
        if let Some(line) = self.pending.pop_front() {
            return Ok(line);
        }
        let (mode, body) = self.recv_frame()?;
        if mode != codec::MODE_TEXT_FRAME {
            return Err(bad_data(format!(
                "expected a text frame, got mode {mode:#04x}"
            )));
        }
        let text = String::from_utf8(body).map_err(|_| bad_data("text frame not UTF-8"))?;
        self.pending.extend(text.split('\n').map(str::to_string));
        self.pending
            .pop_front()
            .ok_or_else(|| bad_data("empty text frame"))
    }

    fn recv_frame(&mut self) -> io::Result<(u8, Vec<u8>)> {
        codec::read_envelope_blocking(&mut self.reader)
    }

    fn recv_text_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "primary closed the replication link",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}

pub(super) fn bad_data(msg: impl ToString) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Sleeps up to `total`, polling the shutdown flag so draining stays
/// prompt even mid-backoff.
pub(super) fn sleep_poll(state: &ServerState, total: Duration) {
    let deadline = Instant::now() + total;
    while !state.shutdown_requested() {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        thread::sleep(POLL_INTERVAL.min(deadline - now));
    }
}

/// Minimal multiplicative congruential generator for backoff jitter —
/// quality does not matter here, only cheap decorrelation.
pub(super) struct Lcg(u64);

impl Lcg {
    pub(super) fn new(seed: u64) -> Self {
        Lcg(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0
    }
}

/// `base` scaled to a uniform value in `[0.75 * base, 1.25 * base)`.
pub(super) fn jittered(rng: &mut Lcg, base: Duration) -> Duration {
    let nanos = base.as_nanos().min(u128::from(u64::MAX)) as u64;
    let spread = nanos / 2;
    let offset = if spread == 0 { 0 } else { rng.next() % spread };
    Duration::from_nanos(nanos - spread / 2 + offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{ServerConfig, ServerState};
    use graphstream::VertexId;

    fn primary_state() -> ServerState {
        let store = SketchStore::new(SketchConfig::with_slots(32).seed(5));
        ServerState::in_memory(store, ServerConfig::default())
    }

    fn replica_state() -> (ServerState, Arc<ReplicaRuntime>) {
        let runtime = Arc::new(ReplicaRuntime::new(
            "127.0.0.1:1".into(),
            "r1".into(),
            100_000,
            ReplicaTuning::default(),
        ));
        let store = SketchStore::new(SketchConfig::with_slots(32).seed(5));
        let state = ServerState::replica(store, ServerConfig::default(), Arc::clone(&runtime));
        (state, runtime)
    }

    #[test]
    fn hello_reports_seq_and_sketch_shape() {
        let state = primary_state();
        state.insert_edge(VertexId(1), VertexId(2)).unwrap();
        let reply = repl_command(&state, &["HELLO", "r1"]);
        assert_eq!(
            reply,
            "OK repl hello primary_seq=1 slots=32 seed=5 backend=mixer"
        );
        let parsed = parse_hello(&reply).expect("round-trips");
        assert_eq!(parsed.primary_seq, 1);
        assert_eq!(parsed.slots, 32);
        assert_eq!(parsed.seed, 5);
        assert_eq!(parsed.backend, HasherBackend::Mixer);
    }

    #[test]
    fn pull_ships_crc_framed_lines_with_ok_terminator() {
        let state = primary_state();
        for i in 1..=5u64 {
            state.insert_edge(VertexId(i), VertexId(i + 100)).unwrap();
        }
        let reply = repl_command(&state, &["PULL", "r1", "2", "10"]);
        let lines: Vec<&str> = reply.lines().collect();
        assert_eq!(lines.len(), 4, "{reply}");
        assert_eq!(*lines.last().unwrap(), "OK 3 entries primary_seq=5");
        for line in &lines[..3] {
            match JournalEntry::check_line(line) {
                LineCheck::Verified(_) => {}
                other => panic!("expected CRC-verified frame, got {other:?}: {line}"),
            }
        }
        // Caught-up pull: empty body, still OK.
        let reply = repl_command(&state, &["PULL", "r1", "5", "10"]);
        assert_eq!(reply, "OK 0 entries primary_seq=5");
    }

    #[test]
    fn pull_frame_ships_a_wal_batch_envelope() {
        let state = primary_state();
        for i in 1..=5u64 {
            state.insert_edge(VertexId(i), VertexId(i + 100)).unwrap();
        }
        let (frame, closing) = repl_pull_frame(&state, &["PULL", "r1", "2", "10"]);
        assert!(!closing);
        let env = codec::decode_envelope(&frame).expect("valid envelope");
        assert_eq!(env.mode, codec::MODE_WAL_BATCH);
        assert_eq!(env.consumed, frame.len());
        let (entries, primary_seq) = codec::decode_wal_batch_body(env.body).unwrap();
        assert_eq!(primary_seq, 5);
        let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5]);
        assert_eq!(entries[0].u, VertexId(3));
        assert_eq!(entries[0].v, VertexId(103));
    }

    #[test]
    fn pull_frame_errors_arrive_as_text_frames() {
        let state = primary_state();
        // Bad batch argument: over the cap.
        let over = (MAX_PULL_BATCH + 1).to_string();
        let (frame, closing) = repl_pull_frame(&state, &["PULL", "r1", "0", &over]);
        assert!(closing);
        let env = codec::decode_envelope(&frame).unwrap();
        assert_eq!(env.mode, codec::MODE_TEXT_FRAME);
        let line = std::str::from_utf8(env.body).unwrap();
        assert!(line.starts_with("ERR bad-arg batch"), "{line}");

        // Malformed after_seq gets the same uniform wording.
        let (frame, _) = repl_pull_frame(&state, &["PULL", "r1", "-1", "10"]);
        let env = codec::decode_envelope(&frame).unwrap();
        let line = std::str::from_utf8(env.body).unwrap();
        assert!(line.starts_with("ERR bad-arg after_seq"), "{line}");
    }

    #[test]
    fn pull_batch_above_cap_is_rejected() {
        let state = primary_state();
        state.insert_edge(VertexId(1), VertexId(2)).unwrap();
        let over = (MAX_PULL_BATCH + 1).to_string();
        let reply = repl_command(&state, &["PULL", "r1", "0", &over]);
        assert!(reply.starts_with("ERR bad-arg batch"), "{reply}");
        let reply = repl_command(&state, &["PULL", "r1", "0", "0"]);
        assert!(reply.starts_with("ERR bad-arg batch"), "{reply}");
        // The cap itself is fine.
        let at_cap = MAX_PULL_BATCH.to_string();
        let reply = repl_command(&state, &["PULL", "r1", "0", &at_cap]);
        assert!(reply.ends_with("OK 1 entries primary_seq=1"), "{reply}");
    }

    #[test]
    fn pull_past_the_ring_requires_resync() {
        let store = SketchStore::new(SketchConfig::with_slots(16).seed(1));
        let state = ServerState::in_memory(
            store,
            ServerConfig {
                repl_buffer: 4,
                ..ServerConfig::default()
            },
        );
        for i in 1..=10u64 {
            state.insert_edge(VertexId(i), VertexId(i + 50)).unwrap();
        }
        let reply = repl_command(&state, &["PULL", "r1", "0", "100"]);
        assert!(reply.starts_with("ERR resync"), "{reply}");
        // The tail that is still buffered serves fine.
        let reply = repl_command(&state, &["PULL", "r1", "6", "100"]);
        assert!(reply.ends_with("OK 4 entries primary_seq=10"), "{reply}");
    }

    #[test]
    fn snapshot_response_is_integrity_checkable() {
        let state = primary_state();
        for i in 1..=7u64 {
            state
                .insert_edge(VertexId(i), VertexId(i % 3 + 200))
                .unwrap();
        }
        let reply = repl_command(&state, &["SNAPSHOT"]);
        let (header, json) = reply.split_once('\n').expect("header + JSON");
        let rest = header.strip_prefix("OK snapshot ").expect("OK header");
        let field = |key: &str| {
            rest.split_whitespace()
                .find_map(|kv| kv.strip_prefix(key))
                .map(str::to_string)
                .unwrap()
        };
        assert_eq!(field("seq="), "7");
        assert_eq!(field("len="), json.len().to_string());
        assert_eq!(
            u32::from_str_radix(&field("crc32="), 16).unwrap(),
            hashkit::crc32(json.as_bytes())
        );
        let snap: StoreSnapshot = serde_json::from_str(json).expect("valid snapshot JSON");
        assert_eq!(snap.restore().edges_processed(), 7);
    }

    #[test]
    fn peer_registry_feeds_lag_overview() {
        let state = primary_state();
        for i in 1..=20u64 {
            state.insert_edge(VertexId(i), VertexId(i + 70)).unwrap();
        }
        let _ = repl_command(&state, &["PULL", "a", "20", "10"]);
        let _ = repl_command(&state, &["PULL", "b", "5", "10"]);
        let repl = state.primary_repl().expect("primary has a ship ring");
        let (connected, max_lag) = repl.lag_overview();
        assert_eq!(connected, 2);
        assert_eq!(max_lag, 15);
        let status = repl_command(&state, &["STATUS"]);
        assert_eq!(
            status,
            "OK role=primary last_seq=20 buffered=20 replicas_connected=2 max_lag_edges=15"
        );
    }

    #[test]
    fn pull_accepts_a_trailing_corr_token_and_peer_overview_reports_rows() {
        let state = primary_state();
        for i in 1..=10u64 {
            state.insert_edge(VertexId(i), VertexId(i + 70)).unwrap();
        }
        let reply = repl_command(&state, &["PULL", "a", "10", "10", "corr=123"]);
        assert_eq!(reply, "OK 0 entries primary_seq=10");
        let _ = repl_command(&state, &["PULL", "b", "4", "10"]);
        let repl = state.primary_repl().expect("primary has a ship ring");
        let rows = repl.peer_overview();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].id, "a");
        assert_eq!(rows[0].lag_seq, 0);
        assert!(rows[0].live);
        assert_eq!(rows[1].id, "b");
        assert_eq!(rows[1].lag_seq, 6);
        // A malformed corr value fails the arity check loudly.
        let reply = repl_command(&state, &["PULL", "a", "0", "5", "corr=zap"]);
        assert!(reply.starts_with("ERR REPL PULL takes"), "{reply}");
    }

    #[test]
    fn corr_ids_are_nonzero_and_distinct() {
        let a = new_corr_id("127.0.0.1:7001", 5);
        let b = new_corr_id("127.0.0.1:7001", 5);
        let c = new_corr_id("127.0.0.1:7002", 5);
        assert_ne!(a, 0);
        assert_ne!(a, b, "counter disambiguates same node+tick");
        assert_ne!(a, c);
    }

    #[test]
    fn repl_bad_arguments_are_err() {
        let state = primary_state();
        assert!(repl_command(&state, &[]).starts_with("ERR"));
        assert!(repl_command(&state, &["HELLO"]).starts_with("ERR"));
        assert!(repl_command(&state, &["HELLO", "a", "b"]).starts_with("ERR"));
        assert!(repl_command(&state, &["PULL", "r1", "x", "5"]).starts_with("ERR"));
        assert!(repl_command(&state, &["PULL", "r1", "0", "zero"]).starts_with("ERR"));
        assert!(repl_command(&state, &["PULL", "r1", "0", "0"]).starts_with("ERR"));
        assert!(repl_command(&state, &["PULL", "r1"]).starts_with("ERR"));
        assert!(repl_command(&state, &["SNAPSHOT", "now"]).starts_with("ERR"));
        assert!(repl_command(&state, &["FROB"]).starts_with("ERR unknown REPL"));
    }

    #[test]
    fn replica_rejects_repl_serving_but_answers_status() {
        let (state, runtime) = replica_state();
        assert!(repl_command(&state, &["HELLO", "x"]).starts_with("ERR readonly"));
        assert!(repl_command(&state, &["PULL", "x", "0", "1"]).starts_with("ERR readonly"));
        runtime.note_primary_seq(42);
        let status = repl_command(&state, &["STATUS"]);
        assert!(
            status.starts_with("OK role=replica primary=127.0.0.1:1"),
            "{status}"
        );
        assert!(status.contains("lag_edges=42"), "{status}");
        assert!(status.contains("lag_slo=100000"), "{status}");
    }

    #[test]
    fn replica_runtime_tracks_lag_and_slo() {
        let (_state, runtime) = replica_state();
        assert_eq!(runtime.lag(), 0);
        assert!(!runtime.lag_exceeds_slo());
        runtime.note_primary_seq(200_001);
        assert_eq!(runtime.lag(), 200_001);
        assert!(runtime.lag_exceeds_slo());
        // note_primary_seq never lowers the mark.
        runtime.note_primary_seq(10);
        assert_eq!(runtime.primary_seq(), 200_001);
    }

    #[test]
    fn apply_entry_dedupes_and_updates_the_runtime() {
        let (state, runtime) = replica_state();
        let e = JournalEntry {
            seq: 1,
            u: VertexId(1),
            v: VertexId(2),
        };
        apply_entry(&state, &runtime, e);
        apply_entry(&state, &runtime, e);
        assert_eq!(state.read_store().edges_processed(), 1);
        assert_eq!(runtime.applied_seq(), 1);
    }

    #[test]
    fn hello_parses_optional_epoch_and_timeline() {
        let hello = parse_hello(
            "OK repl hello primary_seq=9 slots=32 seed=5 backend=mixer epoch=3 tl=1:0,2:7",
        )
        .expect("parses");
        assert_eq!(hello.epoch, Some(3));
        assert_eq!(hello.timeline.as_deref(), Some("1:0,2:7"));
        let plain =
            parse_hello("OK repl hello primary_seq=9 slots=32 seed=5 backend=mixer").unwrap();
        assert_eq!(plain.epoch, None);
        assert_eq!(plain.timeline, None);
    }

    #[test]
    fn readonly_refusals_carry_a_machine_parseable_moved_hint() {
        let (state, _runtime) = replica_state();
        let refusal = repl_command(&state, &["HELLO", "x"]);
        assert!(
            refusal.starts_with("ERR readonly MOVED 127.0.0.1:1 "),
            "{refusal}"
        );
        // The documented client recipe: the 4th whitespace token is the
        // primary address.
        assert_eq!(
            refusal.split_whitespace().nth(3),
            Some("127.0.0.1:1"),
            "{refusal}"
        );
    }

    #[test]
    fn backoff_schedule_doubles_and_saturates_at_the_ceiling() {
        let max = Duration::from_secs(5);
        let mut cur = Duration::from_millis(100);
        let mut seen = Vec::new();
        for _ in 0..8 {
            cur = next_backoff(cur, max);
            seen.push(cur.as_millis() as u64);
        }
        assert_eq!(seen, vec![200, 400, 800, 1600, 3200, 5000, 5000, 5000]);
        // Jitter keeps every step inside [0.75x, 1.25x), so the whole
        // schedule is bounded by 1.25 * ceiling.
        let mut rng = Lcg::new(3);
        for &ms in &seen {
            let d = jittered(&mut rng, Duration::from_millis(ms));
            assert!(d >= Duration::from_millis(ms * 3 / 4), "{d:?}");
            assert!(d < Duration::from_millis(ms * 5 / 4), "{d:?}");
        }
    }

    #[test]
    fn handshake_resets_a_replica_whose_timeline_died() {
        use std::net::TcpListener;

        let (state, runtime) = replica_state();
        // The replica has applied up to seq 5 on the old timeline.
        for seq in 1..=5u64 {
            apply_entry(
                &state,
                &runtime,
                JournalEntry {
                    seq,
                    u: VertexId(seq),
                    v: VertexId(seq + 10),
                },
            );
        }
        assert_eq!(runtime.applied_seq(), 5);
        assert_eq!(state.read_store().edges_processed(), 5);

        // A scripted primary that restarted into a lower seq space.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let fake = thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("REPL HELLO"), "{line}");
            let mut writer = stream;
            writer
                .write_all(b"OK repl hello primary_seq=1 slots=32 seed=5 backend=mixer\n")
                .unwrap();
        });
        let mut link = PrimaryLink::connect(&addr, WireFormat::TextV2).unwrap();
        handshake(&state, &runtime, &mut link).unwrap();
        fake.join().unwrap();

        // Everything local was wiped: the dead timeline's seqs mean
        // nothing, so the replica starts over from 0.
        assert_eq!(runtime.applied_seq(), 0);
        assert_eq!(state.read_store().edges_processed(), 0);
        assert_eq!(runtime.primary_seq(), 1);
    }

    #[test]
    fn jitter_stays_within_a_quarter_of_base() {
        let mut rng = Lcg::new(7);
        let base = Duration::from_millis(400);
        for _ in 0..200 {
            let d = jittered(&mut rng, base);
            assert!(d >= Duration::from_millis(300), "{d:?}");
            assert!(d < Duration::from_millis(500), "{d:?}");
        }
    }

    #[test]
    fn disabled_replication_reports_clean_errors() {
        let store = SketchStore::new(SketchConfig::with_slots(16).seed(2));
        let state = ServerState::in_memory(
            store,
            ServerConfig {
                repl_buffer: 0,
                ..ServerConfig::default()
            },
        );
        assert_eq!(
            repl_command(&state, &["HELLO", "r"]),
            "ERR replication disabled (--repl-buffer 0)"
        );
        assert_eq!(
            repl_command(&state, &["STATUS"]),
            "OK role=primary replication=disabled"
        );
    }
}
