//! The `streamlink` binary: thin wrapper over the CLI library.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match streamlink_cli::run(&argv) {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
