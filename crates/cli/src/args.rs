//! Minimal `--flag value` argument parsing with typed getters.

use std::collections::HashMap;

/// Parsed `--key value` flags (repeated flags accumulate).
pub struct Flags {
    values: HashMap<String, Vec<String>>,
}

impl Flags {
    /// Parses `argv` of the form `--key value --key2 value2 ...`.
    pub fn parse(argv: &[String]) -> Result<Flags, String> {
        let mut values: HashMap<String, Vec<String>> = HashMap::new();
        let mut i = 0;
        while i < argv.len() {
            let flag = &argv[i];
            let Some(key) = flag.strip_prefix("--") else {
                return Err(format!("expected a --flag, found {flag:?}"));
            };
            let Some(value) = argv.get(i + 1) else {
                return Err(format!("flag --{key} is missing its value"));
            };
            values
                .entry(key.to_string())
                .or_default()
                .push(value.clone());
            i += 2;
        }
        Ok(Flags { values })
    }

    /// The last value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values
            .get(key)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    /// All values of a repeated flag.
    pub fn get_all(&self, key: &str) -> &[String] {
        self.values.get(key).map_or(&[], Vec::as_slice)
    }

    /// A required string flag.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// An optional parsed flag with a default.
    pub fn get_parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|e| format!("flag --{key}: cannot parse {raw:?}: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_pairs() {
        let f = Flags::parse(&argv(&["--a", "1", "--b", "two"])).unwrap();
        assert_eq!(f.get("a"), Some("1"));
        assert_eq!(f.get("b"), Some("two"));
        assert_eq!(f.get("c"), None);
    }

    #[test]
    fn repeated_flags_accumulate() {
        let f = Flags::parse(&argv(&["--pair", "1:2", "--pair", "3:4"])).unwrap();
        assert_eq!(f.get_all("pair"), &["1:2".to_string(), "3:4".to_string()]);
        assert_eq!(f.get("pair"), Some("3:4"), "get returns the last value");
    }

    #[test]
    fn missing_value_is_error() {
        assert!(Flags::parse(&argv(&["--a"])).is_err());
    }

    #[test]
    fn non_flag_is_error() {
        assert!(Flags::parse(&argv(&["a", "1"])).is_err());
    }

    #[test]
    fn typed_getters() {
        let f = Flags::parse(&argv(&["--n", "42"])).unwrap();
        assert_eq!(f.get_parsed_or("n", 0usize).unwrap(), 42);
        assert_eq!(f.get_parsed_or("missing", 7usize).unwrap(), 7);
        assert!(f.require("n").is_ok());
        assert!(f.require("missing").is_err());
    }

    #[test]
    fn bad_parse_is_descriptive() {
        let f = Flags::parse(&argv(&["--n", "potato"])).unwrap();
        let err = f.get_parsed_or("n", 0usize).unwrap_err();
        assert!(err.contains("potato") && err.contains("--n"), "{err}");
    }
}
