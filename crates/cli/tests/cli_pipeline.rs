//! End-to-end CLI pipeline tests: generate → stats → ingest → query →
//! top, driven through the library entry point against a temp directory.

use streamlink_cli::run;

fn argv(parts: &[&str]) -> Vec<String> {
    parts.iter().map(ToString::to_string).collect()
}

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("streamlink_cli_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Self(dir)
    }
    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn full_pipeline_csv() {
    let dir = TempDir::new("csv");
    let data = dir.path("dblp.csv");
    let snap = dir.path("snap.json");

    run(&argv(&[
        "generate",
        "--dataset",
        "dblp",
        "--scale",
        "small",
        "--out",
        &data,
    ]))
    .expect("generate");
    assert!(std::fs::metadata(&data).unwrap().len() > 1000);

    run(&argv(&["stats", "--input", &data])).expect("stats");

    run(&argv(&[
        "ingest",
        "--input",
        &data,
        "--slots",
        "64",
        "--snapshot",
        &snap,
    ]))
    .expect("ingest");
    let snapshot = std::fs::read_to_string(&snap).unwrap();
    assert!(snapshot.contains("\"config\""), "snapshot missing config");

    run(&argv(&[
        "query",
        "--snapshot",
        &snap,
        "--measure",
        "jaccard",
        "--pair",
        "1:2",
    ]))
    .expect("query");
    run(&argv(&[
        "query",
        "--snapshot",
        &snap,
        "--measure",
        "aa",
        "--pair",
        "0:1",
        "--pair",
        "2:3",
    ]))
    .expect("multi-pair query");

    run(&argv(&[
        "top",
        "--snapshot",
        &snap,
        "--vertex",
        "2",
        "--bands",
        "16",
        "--rows",
        "2",
    ]))
    .expect("top");
}

#[test]
fn binary_format_roundtrips_through_ingest() {
    let dir = TempDir::new("bin");
    let data = dir.path("wiki.bin");
    let snap = dir.path("snap.json");
    run(&argv(&[
        "generate",
        "--dataset",
        "wiki",
        "--scale",
        "small",
        "--out",
        &data,
        "--format",
        "bin",
    ]))
    .expect("generate bin");
    run(&argv(&["ingest", "--input", &data, "--snapshot", &snap])).expect("ingest bin");
    run(&argv(&[
        "query",
        "--snapshot",
        &snap,
        "--measure",
        "cn",
        "--pair",
        "5:6",
    ]))
    .expect("query");
}

#[test]
fn evaluate_runs_end_to_end() {
    run(&argv(&[
        "evaluate",
        "--dataset",
        "youtube",
        "--scale",
        "small",
        "--slots",
        "32",
    ]))
    .expect("evaluate");
}

#[test]
fn errors_are_descriptive() {
    let err = run(&argv(&["frobnicate"])).unwrap_err();
    assert!(err.contains("frobnicate"), "{err}");

    let err = run(&argv(&[
        "generate",
        "--dataset",
        "nope",
        "--out",
        "/dev/null",
    ]))
    .unwrap_err();
    assert!(err.contains("nope"), "{err}");

    let err = run(&argv(&[
        "query",
        "--snapshot",
        "/no/such/file",
        "--measure",
        "jaccard",
        "--pair",
        "1:2",
    ]))
    .unwrap_err();
    assert!(err.contains("/no/such/file"), "{err}");

    let err = run(&argv(&[
        "ingest",
        "--input",
        "/no/such/file",
        "--snapshot",
        "/tmp/x",
    ]))
    .unwrap_err();
    assert!(err.contains("/no/such/file"), "{err}");

    let dir = TempDir::new("badpair");
    let data = dir.path("d.csv");
    let snap = dir.path("s.json");
    run(&argv(&[
        "generate",
        "--dataset",
        "flickr",
        "--scale",
        "small",
        "--out",
        &data,
    ]))
    .unwrap();
    run(&argv(&["ingest", "--input", &data, "--snapshot", &snap])).unwrap();
    let err = run(&argv(&[
        "query",
        "--snapshot",
        &snap,
        "--measure",
        "jaccard",
        "--pair",
        "xy",
    ]))
    .unwrap_err();
    assert!(err.contains("xy"), "{err}");
}

#[test]
fn help_succeeds_and_empty_fails() {
    run(&argv(&["help"])).expect("help");
    assert!(run(&[]).is_err());
}

#[test]
fn corrupt_snapshot_is_rejected() {
    let dir = TempDir::new("corrupt");
    let snap = dir.path("bad.json");
    std::fs::write(&snap, "{ not json").unwrap();
    let err = run(&argv(&[
        "query",
        "--snapshot",
        &snap,
        "--measure",
        "aa",
        "--pair",
        "1:2",
    ]))
    .unwrap_err();
    assert!(err.contains("snapshot"), "{err}");
}

#[test]
fn convert_roundtrips_between_formats() {
    let dir = TempDir::new("convert");
    let csv = dir.path("d.csv");
    let compact = dir.path("d.slk2");
    let back = dir.path("d2.csv");
    run(&argv(&[
        "generate",
        "--dataset",
        "wiki",
        "--scale",
        "small",
        "--out",
        &csv,
    ]))
    .unwrap();
    run(&argv(&[
        "convert", "--input", &csv, "--out", &compact, "--format", "compact",
    ]))
    .expect("csv -> compact");
    run(&argv(&[
        "convert", "--input", &compact, "--out", &back, "--format", "csv",
    ]))
    .expect("compact -> csv");
    // Compact file is much smaller; round trip preserves content.
    let csv_size = std::fs::metadata(&csv).unwrap().len();
    let compact_size = std::fs::metadata(&compact).unwrap().len();
    assert!(
        compact_size * 2 < csv_size,
        "compact {compact_size} vs csv {csv_size}"
    );
    assert_eq!(std::fs::read(&csv).unwrap(), std::fs::read(&back).unwrap());
}

#[test]
fn recommend_produces_ranked_output() {
    let dir = TempDir::new("recommend");
    let data = dir.path("dblp.csv");
    let snap = dir.path("snap.json");
    run(&argv(&[
        "generate",
        "--dataset",
        "dblp",
        "--scale",
        "small",
        "--out",
        &data,
    ]))
    .unwrap();
    run(&argv(&[
        "ingest",
        "--input",
        &data,
        "--slots",
        "128",
        "--snapshot",
        &snap,
    ]))
    .unwrap();
    run(&argv(&[
        "recommend",
        "--snapshot",
        &snap,
        "--vertex",
        "2",
        "--k",
        "5",
        "--measure",
        "aa",
        "--bands",
        "48",
        "--rows",
        "2",
    ]))
    .expect("recommend");
    // Unseen vertex is a clean error.
    let err = run(&argv(&[
        "recommend",
        "--snapshot",
        &snap,
        "--vertex",
        "99999999",
    ]))
    .unwrap_err();
    assert!(err.contains("never appeared"), "{err}");
}
