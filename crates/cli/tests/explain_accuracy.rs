//! Offline calibration of `EXPLAIN` error bars.
//!
//! Builds a sketch store and an exact adjacency graph from the same
//! deterministic Barabási–Albert stream, then checks that the 95%
//! Wilson interval reported by `EXPLAIN JACCARD u v` contains the exact
//! Jaccard for at least 95% of sampled pairs. MinHash slot agreement is
//! Binomial(k, J) under an ideal hash, so the interval's nominal
//! coverage should hold on a stationary fixture; this test is the
//! empirical pin for that claim.

use std::collections::HashMap;

use graphstream::{AdjacencyGraph, BarabasiAlbert, EdgeStream, VertexId};
use streamlink_cli::server::protocol::handle_command;
use streamlink_cli::server::{ServerConfig, ServerState};
use streamlink_core::{SketchConfig, SketchStore};

fn explain_fields(state: &ServerState, command: &str) -> HashMap<String, String> {
    let reply = handle_command(state, command);
    let body = reply
        .strip_prefix("OK ")
        .unwrap_or_else(|| panic!("{command:?} failed: {reply}"));
    body.split_whitespace()
        .filter_map(|kv| kv.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

#[test]
fn explain_jaccard_interval_covers_exact_value_on_offline_fixture() {
    const SLOTS: usize = 256;
    const MIN_COVERAGE: f64 = 0.95;

    let edges: Vec<_> = BarabasiAlbert::new(600, 5, 42).edges().collect();
    let mut store = SketchStore::new(SketchConfig::with_slots(SLOTS).seed(7));
    let mut exact = AdjacencyGraph::new();
    for e in &edges {
        store.insert_edge(e.src, e.dst);
        exact.insert_edge(e.src, e.dst);
    }
    let state = ServerState::in_memory(store, ServerConfig::default());

    // Sample pairs across the degree spectrum: early BA vertices are
    // hubs (high, varied Jaccard), late ones are leaves (near-zero
    // Jaccard), so the interval is exercised at both ends.
    let mut sampled = 0u32;
    let mut covered = 0u32;
    let mut widths = Vec::new();
    for u in 0u64..100 {
        for dv in 1u64..=4 {
            let v = u + dv * 37;
            let (vu, vv) = (VertexId(u), VertexId(v % 600));
            if vu == vv || exact.degree(vu) == 0 || exact.degree(vv) == 0 {
                continue;
            }
            let fields = explain_fields(&state, &format!("EXPLAIN JACCARD {} {}", vu.0, vv.0));
            let lo: f64 = fields["interval_low"].parse().expect("interval_low f64");
            let hi: f64 = fields["interval_high"].parse().expect("interval_high f64");
            let estimate: f64 = fields["estimate"].parse().expect("estimate f64");
            assert!(
                lo <= estimate && estimate <= hi,
                "estimate {estimate} outside its own interval [{lo}, {hi}]"
            );
            let truth = exact.jaccard(vu, vv);
            sampled += 1;
            if (lo..=hi).contains(&truth) {
                covered += 1;
            }
            widths.push(hi - lo);
        }
    }

    assert!(sampled >= 300, "fixture produced only {sampled} pairs");
    let coverage = f64::from(covered) / f64::from(sampled);
    assert!(
        coverage >= MIN_COVERAGE,
        "95% interval covered exact Jaccard on only {covered}/{sampled} pairs ({coverage:.3})"
    );
    // The interval is informative, not vacuous: at k=256 the Wilson
    // width tops out near 2·1.96·sqrt(0.25/256) ≈ 0.125.
    let max_width = widths.iter().fold(0.0f64, |a, &w| a.max(w));
    assert!(
        max_width < 0.2,
        "interval width {max_width} too loose for k={SLOTS}"
    );
}

#[test]
fn explain_overlap_interval_covers_exact_value_on_hub_pairs() {
    const SLOTS: usize = 256;

    let edges: Vec<_> = BarabasiAlbert::new(600, 5, 43).edges().collect();
    let mut store = SketchStore::new(SketchConfig::with_slots(SLOTS).seed(9));
    let mut exact = AdjacencyGraph::new();
    for e in &edges {
        store.insert_edge(e.src, e.dst);
        exact.insert_edge(e.src, e.dst);
    }
    let state = ServerState::in_memory(store, ServerConfig::default());

    // Hub pairs only: overlap = CN / min-degree needs a meaningful
    // denominator for the propagated interval to be exercised.
    let mut sampled = 0u32;
    let mut covered = 0u32;
    for u in 0u64..40 {
        for v in (u + 1)..40 {
            let (vu, vv) = (VertexId(u), VertexId(v));
            if exact.degree(vu) < 5 || exact.degree(vv) < 5 {
                continue;
            }
            let fields = explain_fields(&state, &format!("EXPLAIN OVERLAP {u} {v}"));
            let lo: f64 = fields["interval_low"].parse().unwrap();
            let hi: f64 = fields["interval_high"].parse().unwrap();
            let truth = exact.common_neighbors(vu, vv) as f64
                / exact.degree(vu).min(exact.degree(vv)) as f64;
            sampled += 1;
            if (lo..=hi).contains(&truth) {
                covered += 1;
            }
        }
    }

    assert!(sampled >= 200, "fixture produced only {sampled} hub pairs");
    // The CN interval inherits Jaccard's coverage but propagates
    // through degree counters measured on the same stream; hold it to
    // the same nominal floor.
    let coverage = f64::from(covered) / f64::from(sampled);
    assert!(
        coverage >= 0.95,
        "OVERLAP interval covered truth on only {covered}/{sampled} pairs ({coverage:.3})"
    );
}
