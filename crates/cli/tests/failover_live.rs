//! Live automatic-failover test against the real `streamlink` binary.
//!
//! Boots a three-node cluster over loopback TCP with a short lease,
//! SIGKILLs the primary mid-stream, and drives a client that follows
//! `ERR readonly MOVED <addr>` hints until its writes land on the
//! self-promoted successor. The revived old primary must come back
//! fenced (its `--primary` flag loudly ignored), rejoin as a replica,
//! and reconverge to the new timeline's exact answers.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SLOTS: &str = "64";
const SEED: &str = "42";
const LEASE_MS: &str = "300";

/// Reserves `n` distinct loopback ports by binding and dropping OS
/// listeners. Cluster mode needs every member's address known up front,
/// so `--addr 127.0.0.1:0` is not an option here.
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect()
}

/// One cluster member as a child process on a fixed address.
struct Node {
    child: Child,
    addr: String,
}

impl Node {
    /// Boots `streamlink serve` in cluster mode and waits for its
    /// `LISTENING` + `CLUSTER` announcement lines.
    fn start(addrs: &[String], me: usize, data_dir: &std::path::Path, primary: bool) -> Node {
        let peers: Vec<&str> = addrs
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != me)
            .map(|(_, a)| a.as_str())
            .collect();
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_streamlink"));
        cmd.arg("serve")
            .args(["--addr", &addrs[me], "--slots", SLOTS, "--seed", SEED])
            .args(["--peers", &peers.join(",")])
            .args(["--lease-ms", LEASE_MS, "--repl-poll-ms", "20"])
            .args(["--data-dir", data_dir.to_str().unwrap()])
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if primary {
            cmd.args(["--primary", "true"]);
        }
        let mut child = cmd.spawn().expect("spawn streamlink serve");
        let stdout = child.stdout.take().expect("child stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        loop {
            match lines.next() {
                Some(Ok(line)) => {
                    if line.starts_with("CLUSTER ") {
                        break;
                    }
                }
                _ => panic!("node {me} exited before announcing CLUSTER"),
            }
        }
        std::thread::spawn(move || for _ in lines {});
        Node {
            child,
            addr: addrs[me].clone(),
        }
    }

    /// SIGKILL: the crash. Nothing gets to run, flush, or clean up.
    fn kill(&mut self) {
        self.child.kill().expect("SIGKILL child");
        self.child.wait().expect("reap child");
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Client {
    conn: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Option<Client> {
        let conn = TcpStream::connect(addr).ok()?;
        conn.set_read_timeout(Some(Duration::from_secs(10))).ok()?;
        conn.set_nodelay(true).ok()?;
        let reader = BufReader::new(conn.try_clone().ok()?);
        Some(Client { conn, reader })
    }

    fn ask(&mut self, cmd: &str) -> Option<String> {
        writeln!(self.conn, "{cmd}").ok()?;
        let mut line = String::new();
        self.reader.read_line(&mut line).ok()?;
        if line.is_empty() {
            return None; // peer closed the connection
        }
        Some(line.trim_end().to_string())
    }
}

/// Extracts `key=value` from a status line.
fn field(line: &str, key: &str) -> u64 {
    line.split_whitespace()
        .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key}= in {line:?}"))
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key}= in {line:?}"))
}

/// Polls `probe` until it returns true or the deadline passes.
fn wait_for(what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Blocks until the node at `addr` reports `applied_seq=want`.
fn wait_applied(addr: &str, want: u64, what: &str) {
    wait_for(what, || {
        Client::connect(addr)
            .and_then(|mut c| c.ask("REPL STATUS"))
            .is_some_and(|s| s.contains("role=replica") && field(&s, "applied_seq") == want)
    });
}

/// The exact failover client contract: start anywhere, follow the 4th
/// whitespace token of `ERR readonly MOVED <addr>` replies, retry
/// through fencing and dead peers, and return the address that finally
/// acked the write. Rotation through `addrs` covers hints that still
/// point at a corpse mid-election.
fn insert_following_moved(addrs: &[String], start: &str, u: u64, v: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut target = start.to_string();
    let mut rotate = 0usize;
    while Instant::now() < deadline {
        let reply = Client::connect(&target).and_then(|mut c| c.ask(&format!("INSERT {u} {v}")));
        match reply.as_deref() {
            Some("OK inserted") => return target,
            Some(r) if r.starts_with("ERR readonly MOVED ") => {
                let hint = r.split_whitespace().nth(3).expect("MOVED carries an addr");
                if hint == target {
                    std::thread::sleep(Duration::from_millis(50));
                } else {
                    target = hint.to_string();
                }
            }
            // Fenced, electing, or dead: try the next member.
            _ => {
                std::thread::sleep(Duration::from_millis(50));
                rotate += 1;
                target.clone_from(&addrs[rotate % addrs.len()]);
            }
        }
    }
    panic!("no node acked INSERT {u} {v} within the deadline");
}

const QUERY_PAIRS: &[(u64, u64)] = &[(1, 2), (1, 3), (3, 4), (2, 999)];

/// Every estimate the node serves for the standard query pairs.
fn answers(addr: &str) -> Vec<String> {
    let mut client = Client::connect(addr).expect("connect for answers");
    let mut out = Vec::new();
    for &(u, v) in QUERY_PAIRS {
        for cmd in [
            format!("JACCARD {u} {v}"),
            format!("CN {u} {v}"),
            format!("AA {u} {v}"),
            format!("DEGREE {u}"),
        ] {
            out.push(client.ask(&cmd).expect("answer"));
        }
    }
    out
}

#[test]
fn sigkilled_primary_fails_over_and_client_follows_moved() {
    let addrs = reserve_addrs(3);
    let base =
        std::env::temp_dir().join(format!("streamlink-failover-live-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let dirs: Vec<_> = (0..3).map(|i| base.join(format!("n{i}"))).collect();
    for d in &dirs {
        std::fs::create_dir_all(d).unwrap();
    }

    let mut n0 = Node::start(&addrs, 0, &dirs[0], true);
    let n1 = Node::start(&addrs, 1, &dirs[1], false);
    let n2 = Node::start(&addrs, 2, &dirs[2], false);

    // A fresh primary is fenced until a majority of leases arrives;
    // the first ack means the cluster is writable.
    let mut feed = Client::connect(&n0.addr).expect("connect primary");
    wait_for("the bootstrap primary to collect majority leases", || {
        feed.ask("INSERT 1 100").as_deref() == Some("OK inserted")
    });
    // Seed the epoch-1 timeline and let both replicas fully converge,
    // so either is eligible to succeed the primary.
    for w in 1..30u64 {
        assert_eq!(
            feed.ask(&format!("INSERT {} {}", 1 + w % 5, 100 + w))
                .as_deref(),
            Some("OK inserted"),
        );
    }
    wait_applied(&n1.addr, 30, "n1 to catch up");
    wait_applied(&n2.addr, 30, "n2 to catch up");

    // A replica refuses writes with a machine-parseable hint at the
    // *current* primary (the hint is `?` until discovery settles).
    wait_for("n1 to hint MOVED at the bootstrap primary", || {
        Client::connect(&n1.addr)
            .and_then(|mut c| c.ask("INSERT 9 9000"))
            .is_some_and(|refusal| {
                assert!(refusal.starts_with("ERR readonly MOVED "), "{refusal}");
                refusal.split_whitespace().nth(3) == Some(n0.addr.as_str())
            })
    });

    // Crash the primary. Within a few lease windows one replica must
    // detect the expired lease, win the vote, and self-promote into
    // epoch 2 — and a MOVED-following client's write must land on it.
    n0.kill();
    let new_primary = insert_following_moved(&addrs, &n1.addr, 7, 7000);
    assert_ne!(new_primary, n0.addr, "the corpse cannot serve writes");
    for w in 0..10u64 {
        insert_following_moved(&addrs, &new_primary, 8, 8000 + w);
    }
    let promoted = Client::connect(&new_primary)
        .and_then(|mut c| c.ask("REPL STATUS"))
        .expect("new primary status");
    assert!(promoted.starts_with("OK role=primary"), "{promoted}");
    assert!(field(&promoted, "epoch") >= 2, "{promoted}");

    // Revive the old primary on its old address, still flying the
    // --primary flag: the persisted epoch must refuse the re-bootstrap,
    // and the node must rejoin the new timeline as a fenced replica.
    let n0 = Node::start(&addrs, 0, &dirs[0], true);
    wait_for("revived n0 to rejoin as a replica of the successor", || {
        Client::connect(&n0.addr)
            .and_then(|mut c| c.ask("REPL STATUS"))
            .is_some_and(|s| {
                s.starts_with("OK role=replica")
                    && field(&s, "epoch") >= 2
                    && field(&s, "lag_edges") == 0
            })
    });
    wait_for("revived n0 to hint MOVED at the successor", || {
        Client::connect(&n0.addr)
            .and_then(|mut c| c.ask("INSERT 9 9001"))
            .is_some_and(|refusal| {
                assert!(refusal.starts_with("ERR readonly MOVED "), "{refusal}");
                refusal.split_whitespace().nth(3) == Some(new_primary.as_str())
            })
    });

    // Every surviving node converges to the successor's exact answers.
    let reference = answers(&new_primary);
    let others: Vec<&Node> = [&n0, &n1, &n2]
        .into_iter()
        .filter(|node| node.addr != new_primary)
        .collect();
    for node in others {
        let addr = node.addr.clone();
        wait_for("node to match the new primary's answers", || {
            answers(&addr) == reference
        });
    }

    drop((n0, n1, n2));
    let _ = std::fs::remove_dir_all(&base);
}
