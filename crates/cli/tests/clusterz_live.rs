//! Live single-pane observability test against the real `streamlink`
//! binary.
//!
//! Boots a three-node cluster over loopback TCP with the HTTP scrape
//! plane enabled, proves `/clusterz` reports a healthy (200,
//! `divergent:false`) picture, SIGKILLs the primary, and asserts the
//! surviving members' `/clusterz` flips to 503 with honest divergence
//! flags — first `unreachable-members` (the corpse), and a converged
//! single successor primary at a higher epoch. Reviving the old
//! primary must return the pane to 200/`divergent:false`. Finally the
//! on-disk event journals the three nodes wrote through the whole
//! incident are merged with `streamlink cluster-events`, which must
//! certify the at-most-one-primary-per-epoch invariant (exit 0).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SLOTS: &str = "64";
const SEED: &str = "42";
const LEASE_MS: &str = "300";

/// Reserves `n` distinct loopback ports by binding and dropping OS
/// listeners. Cluster mode needs every member's address known up front.
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect()
}

/// One cluster member as a child process, with both planes up.
struct Node {
    child: Child,
    addr: String,
    http_addr: String,
}

impl Node {
    /// Boots `streamlink serve` in cluster mode with `--http-addr :0`
    /// and waits for the `CLUSTER` announcement followed by
    /// `HTTP LISTENING <addr>` (printed in that order), capturing the
    /// kernel-assigned scrape-plane address.
    fn start(addrs: &[String], me: usize, data_dir: &std::path::Path, primary: bool) -> Node {
        let peers: Vec<&str> = addrs
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != me)
            .map(|(_, a)| a.as_str())
            .collect();
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_streamlink"));
        cmd.arg("serve")
            .args(["--addr", &addrs[me], "--slots", SLOTS, "--seed", SEED])
            .args(["--peers", &peers.join(",")])
            .args(["--lease-ms", LEASE_MS, "--repl-poll-ms", "20"])
            .args(["--data-dir", data_dir.to_str().unwrap()])
            .args(["--http-addr", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if primary {
            cmd.args(["--primary", "true"]);
        }
        let mut child = cmd.spawn().expect("spawn streamlink serve");
        let stdout = child.stdout.take().expect("child stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let mut saw_cluster = false;
        let http_addr = loop {
            match lines.next() {
                Some(Ok(line)) => {
                    if line.starts_with("CLUSTER ") {
                        saw_cluster = true;
                    } else if let Some(addr) = line.strip_prefix("HTTP LISTENING ") {
                        break addr.to_string();
                    }
                }
                _ => panic!("node {me} exited before announcing its HTTP plane"),
            }
        };
        assert!(saw_cluster, "node {me} never announced CLUSTER");
        std::thread::spawn(move || for _ in lines {});
        Node {
            child,
            addr: addrs[me].clone(),
            http_addr,
        }
    }

    /// SIGKILL: the crash. Nothing gets to run, flush, or clean up.
    fn kill(&mut self) {
        self.child.kill().expect("SIGKILL child");
        self.child.wait().expect("reap child");
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Client {
    conn: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Option<Client> {
        let conn = TcpStream::connect(addr).ok()?;
        conn.set_read_timeout(Some(Duration::from_secs(10))).ok()?;
        conn.set_nodelay(true).ok()?;
        let reader = BufReader::new(conn.try_clone().ok()?);
        Some(Client { conn, reader })
    }

    fn ask(&mut self, cmd: &str) -> Option<String> {
        writeln!(self.conn, "{cmd}").ok()?;
        let mut line = String::new();
        self.reader.read_line(&mut line).ok()?;
        if line.is_empty() {
            return None;
        }
        Some(line.trim_end().to_string())
    }
}

/// One hand-rolled HTTP/1.1 GET: returns `(status_code, body)`.
fn http_get(addr: &str, path: &str) -> Option<(u16, String)> {
    let mut conn = TcpStream::connect(addr).ok()?;
    conn.set_read_timeout(Some(Duration::from_secs(10))).ok()?;
    write!(
        conn,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .ok()?;
    let mut raw = String::new();
    conn.read_to_string(&mut raw).ok()?;
    let status: u16 = raw.split_whitespace().nth(1)?.parse().ok()?;
    let body = raw.split_once("\r\n\r\n")?.1.to_string();
    Some((status, body))
}

/// Polls `probe` until it returns true or the deadline passes.
fn wait_for(what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Fetches `/clusterz` from `http_addr` if the snapshot passes `check`.
fn clusterz_matches(http_addr: &str, check: impl Fn(u16, &str) -> bool) -> bool {
    http_get(http_addr, "/clusterz").is_some_and(|(status, body)| {
        assert!(
            body.contains("\"schema\":\"streamlink.clusterz.v1\""),
            "unexpected /clusterz payload: {body}"
        );
        check(status, &body)
    })
}

#[test]
fn clusterz_tracks_a_sigkilled_primary_through_failover_and_recovery() {
    let addrs = reserve_addrs(3);
    let base =
        std::env::temp_dir().join(format!("streamlink-clusterz-live-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let dirs: Vec<_> = (0..3).map(|i| base.join(format!("n{i}"))).collect();
    for d in &dirs {
        std::fs::create_dir_all(d).unwrap();
    }

    let mut n0 = Node::start(&addrs, 0, &dirs[0], true);
    let n1 = Node::start(&addrs, 1, &dirs[1], false);
    let n2 = Node::start(&addrs, 2, &dirs[2], false);

    // Wait for the bootstrap primary to collect majority leases, then
    // seed the epoch-1 timeline so both replicas have real lag gauges.
    let mut feed = Client::connect(&n0.addr).expect("connect primary");
    wait_for("the bootstrap primary to become writable", || {
        feed.ask("INSERT 1 100").as_deref() == Some("OK inserted")
    });
    for w in 1..30u64 {
        assert_eq!(
            feed.ask(&format!("INSERT {} {}", 1 + w % 5, 100 + w))
                .as_deref(),
            Some("OK inserted"),
        );
    }

    // Healthy steady state: every member's pane must settle on 200
    // with no flags and exactly one primary — the same truth from any
    // observer.
    for node in [&n0, &n1, &n2] {
        let http = node.http_addr.clone();
        wait_for("a healthy 200 /clusterz from every member", || {
            clusterz_matches(&http, |status, body| {
                status == 200
                    && body.contains("\"divergent\":false")
                    && body.contains("\"primaries\":1")
                    && body.contains("\"flags\":[]")
            })
        });
    }

    // The TCP aggregation answers the same snapshot for operators
    // without HTTP access.
    let via_cmd = Client::connect(&n1.addr)
        .and_then(|mut c| c.ask("CLUSTER STATUS"))
        .expect("CLUSTER STATUS");
    assert!(
        via_cmd.contains("\"schema\":\"streamlink.clusterz.v1\""),
        "{via_cmd}"
    );
    assert!(
        via_cmd.contains(&format!("\"observer\":\"{}\"", n1.addr)),
        "{via_cmd}"
    );

    // Crash the primary. A surviving member's pane must flip to 503
    // and name the corpse: `unreachable-members` persists for as long
    // as the dead peer stays down, so this assertion has no race with
    // the election finishing first.
    n0.kill();
    wait_for("/clusterz to flag the SIGKILLed primary", || {
        clusterz_matches(&n1.http_addr, |status, body| {
            status == 503
                && body.contains("\"divergent\":true")
                && body.contains("unreachable-members")
        })
    });

    // The election must complete while the corpse is still down: one
    // reachable primary again, at a strictly higher epoch, with the
    // pane still honest about the unreachable member.
    wait_for("a self-promoted successor visible in /clusterz", || {
        clusterz_matches(&n2.http_addr, |status, body| {
            status == 503
                && body.contains("\"primaries\":1")
                && body.contains("\"role\":\"primary\"")
                && !body.contains("no-reachable-primary")
        })
    });

    // Revive the old primary on its old address and data dir. It must
    // rejoin fenced as a replica, and every pane returns to a clean
    // 200 at a converged epoch >= 2.
    let n0 = Node::start(&addrs, 0, &dirs[0], true);
    for node in [&n0, &n1, &n2] {
        let http = node.http_addr.clone();
        wait_for("/clusterz to settle healthy after the revival", || {
            clusterz_matches(&http, |status, body| {
                status == 200
                    && body.contains("\"divergent\":false")
                    && body.contains("\"primaries\":1")
                    && body.contains("\"flags\":[]")
            })
        });
    }
    let healthy = http_get(&n0.http_addr, "/clusterz")
        .expect("final snapshot")
        .1;
    let epoch_min: u64 = healthy
        .split("\"epoch_min\":")
        .nth(1)
        .and_then(|rest| rest.split(',').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no epoch_min in {healthy}"));
    assert!(
        epoch_min >= 2,
        "failover must have advanced the epoch: {healthy}"
    );

    // Shut everything down, then reconstruct the incident from the
    // journals the nodes wrote: the merged timeline must print and
    // certify at most one primary per epoch (exit 0).
    drop((n0, n1, n2));
    let merged = Command::new(env!("CARGO_BIN_EXE_streamlink"))
        .arg("cluster-events")
        .args(["--merge", dirs[0].to_str().unwrap()])
        .args(["--merge", dirs[1].to_str().unwrap()])
        .args(["--merge", dirs[2].to_str().unwrap()])
        .output()
        .expect("run streamlink cluster-events");
    let stdout = String::from_utf8_lossy(&merged.stdout);
    let stderr = String::from_utf8_lossy(&merged.stderr);
    assert!(
        merged.status.success(),
        "merged timeline violated the invariant:\n{stdout}\n{stderr}"
    );
    assert!(stdout.contains("\"kind\":\"promotion\""), "{stdout}");
    assert!(stderr.contains("at most one primary per epoch"), "{stderr}");

    let _ = std::fs::remove_dir_all(&base);
}
