//! Live tracing + audit tests over a real `streamlink serve` process.
//!
//! Drives the TCP line protocol end to end: ingests a stationary
//! overlapping-neighborhood stream, waits for the background auditor to
//! complete a cycle, and checks that `HEALTH` reports sane rolling
//! error gauges, that `TRACE` returns well-formed span lines, and that
//! the slow-op log is installed at its default data-dir path.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A `streamlink serve` child that is killed on drop.
struct ServeChild(Child);

impl Drop for ServeChild {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

struct Session {
    reader: BufReader<TcpStream>,
    conn: TcpStream,
}

impl Session {
    fn send(&mut self, command: &str) -> String {
        writeln!(self.conn, "{command}").expect("write command");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        line.trim_end().to_string()
    }

    /// Sends a multi-line command and reads until the `OK ...` line.
    fn send_multiline(&mut self, command: &str) -> Vec<String> {
        writeln!(self.conn, "{command}").expect("write command");
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            assert!(
                self.reader.read_line(&mut line).expect("read line") > 0,
                "EOF mid-response to {command:?}"
            );
            let trimmed = line.trim_end().to_string();
            let done = trimmed.starts_with("OK ") || trimmed.starts_with("ERR");
            lines.push(trimmed);
            if done {
                break;
            }
        }
        lines
    }
}

fn spawn_server(data_dir: &std::path::Path) -> (ServeChild, Session) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_streamlink"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--slots",
            "256",
            "--data-dir",
            data_dir.to_str().unwrap(),
            "--fsync",
            "never",
            "--audit-secs",
            "1",
            "--audit-pairs",
            "32",
            "--slow-op-ms",
            "1",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn streamlink serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let child = ServeChild(child);
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(a) = line.strip_prefix("LISTENING ") {
                    break a.to_string();
                }
            }
            _ => panic!("server exited before LISTENING"),
        }
    };
    let conn = TcpStream::connect(&addr).expect("connect");
    conn.set_nodelay(true).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let reader = BufReader::new(conn.try_clone().unwrap());
    (child, Session { reader, conn })
}

/// Parses the single-line `HEALTH` reply into its key=value fields.
fn parse_health(reply: &str) -> HashMap<String, String> {
    let body = reply.strip_prefix("OK ").expect("HEALTH reply is OK");
    body.split_whitespace()
        .map(|kv| {
            let (k, v) = kv.split_once('=').expect("key=value field");
            (k.to_string(), v.to_string())
        })
        .collect()
}

#[test]
fn health_and_trace_work_over_live_tcp_session() {
    let data_dir =
        std::env::temp_dir().join(format!("streamlink-trace-live-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let (child, mut session) = spawn_server(&data_dir);

    // Stationary stream with heavy neighborhood overlap: consecutive
    // hubs share 15 of their 20 neighbors, so exact Jaccard is high and
    // the k=256 sketch estimate should track it closely.
    for hub in 0u64..120 {
        for j in 0u64..20 {
            let neighbor = 10_000 + hub * 5 + j;
            let reply = session.send(&format!("INSERT {hub} {neighbor}"));
            assert!(reply.starts_with("OK"), "insert reply: {reply}");
        }
    }

    // Wait for the 1 s background auditor to complete at least one
    // cycle that actually scored pairs.
    let deadline = Instant::now() + Duration::from_secs(30);
    let health = loop {
        let fields = parse_health(&session.send("HEALTH"));
        let cycles: u64 = fields["audit_cycles"].parse().expect("audit_cycles u64");
        let pairs: u64 = fields["audit_pairs"].parse().expect("audit_pairs u64");
        if cycles >= 1 && pairs >= 1 {
            break fields;
        }
        assert!(
            Instant::now() < deadline,
            "auditor never completed a cycle; last HEALTH: {fields:?}"
        );
        std::thread::sleep(Duration::from_millis(200));
    };

    // Every advertised field is present and typed as expected.
    for key in [
        "audit_cycles",
        "audit_pairs",
        "tracked_vertices",
        "slow_ops",
        "spans_recorded",
        "slow_op_threshold_ms",
        "uptime_secs",
    ] {
        health[key].parse::<u64>().unwrap_or_else(|_| {
            panic!("HEALTH field {key}={:?} is not a u64", health[key]);
        });
    }
    for key in ["jaccard_mae", "cn_rel_err_p95", "aa_mae"] {
        let v: f64 = health[key]
            .parse()
            .unwrap_or_else(|_| panic!("HEALTH field {key}={:?} is not an f64", health[key]));
        assert!(v.is_finite() && v >= 0.0, "{key}={v} out of range");
    }
    // Sketch-vs-exact Jaccard error on a stationary stream with k=256
    // slots: the offline E2 accuracy envelope at this k is ~0.06 MAE,
    // so 2× that plus small-sample slack stays well under 0.25.
    let mae: f64 = health["jaccard_mae"].parse().unwrap();
    assert!(mae <= 0.25, "audit jaccard_mae {mae} outside 2x envelope");
    assert_eq!(health["slow_op_threshold_ms"], "1");

    // TRACE returns well-formed span lines for the command roots above.
    let trace = session.send_multiline("trace 5\r");
    let terminator = trace.last().expect("nonempty TRACE reply");
    assert!(
        terminator.starts_with("OK ") && terminator.ends_with(" spans"),
        "bad TRACE terminator: {terminator:?}"
    );
    let announced: usize = terminator
        .split_whitespace()
        .nth(1)
        .and_then(|n| n.parse().ok())
        .expect("span count in terminator");
    assert_eq!(announced, 5);
    assert_eq!(trace.len(), announced + 1);
    for span in &trace[..announced] {
        for field in ["seq=", "op=", "dur_ns=", "degree_class=", "parent="] {
            assert!(span.contains(field), "span line missing {field}: {span:?}");
        }
    }
    // The most recent roots are the HEALTH polls and INSERTs above, so
    // at least one command span must be visible.
    assert!(
        trace[..announced].iter().any(|s| s.contains("op=cmd.")),
        "no command root span in TRACE output: {trace:?}"
    );

    // The slow-op log is installed at its default data-dir path, and
    // anything it has captured is valid single-line JSON.
    let slowops = data_dir.join("slowops.jsonl");
    assert!(slowops.exists(), "slowops.jsonl not installed in data dir");
    let contents = std::fs::read_to_string(&slowops).expect("read slowops.jsonl");
    for line in contents.lines() {
        let v: serde_json::Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("slow-op line is not JSON ({e}): {line:?}"));
        assert!(v.get("op").and_then(|o| o.as_str()).is_some());
        assert!(v.get("dur_ns").and_then(|d| d.as_u64()).is_some());
    }

    let bye = session.send("QUIT");
    assert_eq!(bye, "OK bye");
    drop(child);
    let _ = std::fs::remove_dir_all(&data_dir);
}
