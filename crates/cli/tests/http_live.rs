//! Live HTTP exposition-plane tests over a real `streamlink serve`
//! process.
//!
//! The first test spawns the binary with both `--addr` and
//! `--http-addr`, ingests over the TCP line protocol, and scrapes
//! `/metrics` with a raw HTTP/1.1 request: the Prometheus counter for
//! ingested edges must land between the `METRICS` readings taken just
//! before and just after the scrape, and `/healthz`, `/tracez`, and
//! `/memz` must all answer with their advertised schemas. The second
//! test drives the router in-process against a journal with a scripted
//! disk fault and checks that `/healthz` flips to 503 while storage is
//! degraded and recovers to 200 once a write succeeds again.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// A `streamlink serve` child that is killed on drop.
struct ServeChild(Child);

impl Drop for ServeChild {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Spawns `streamlink serve` with both planes on ephemeral ports and
/// returns the child plus the protocol and HTTP addresses.
fn spawn_server() -> (ServeChild, String, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_streamlink"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--http-addr",
            "127.0.0.1:0",
            "--slots",
            "64",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn streamlink serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let child = ServeChild(child);
    let mut lines = BufReader::new(stdout).lines();
    let mut proto_addr = None;
    let mut http_addr = None;
    while proto_addr.is_none() || http_addr.is_none() {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(a) = line.strip_prefix("HTTP LISTENING ") {
                    http_addr = Some(a.to_string());
                } else if let Some(a) = line.strip_prefix("LISTENING ") {
                    proto_addr = Some(a.to_string());
                }
            }
            _ => panic!("server exited before announcing both listeners"),
        }
    }
    (child, proto_addr.unwrap(), http_addr.unwrap())
}

struct Session {
    reader: BufReader<TcpStream>,
    conn: TcpStream,
}

impl Session {
    fn connect(addr: &str) -> Self {
        let conn = TcpStream::connect(addr).expect("connect protocol port");
        conn.set_nodelay(true).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let reader = BufReader::new(conn.try_clone().unwrap());
        Session { reader, conn }
    }

    fn send(&mut self, command: &str) -> String {
        writeln!(self.conn, "{command}").expect("write command");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read reply");
        line.trim_end().to_string()
    }

    /// Sends `METRICS` and parses the multi-line reply into key=value.
    fn metrics(&mut self) -> HashMap<String, u64> {
        writeln!(self.conn, "METRICS").expect("write METRICS");
        let mut out = HashMap::new();
        loop {
            let mut line = String::new();
            assert!(
                self.reader.read_line(&mut line).expect("read line") > 0,
                "EOF mid-METRICS"
            );
            let trimmed = line.trim_end();
            if trimmed.starts_with("OK ") {
                break;
            }
            let (k, v) = trimmed.split_once('=').expect("key=value metric line");
            out.insert(k.to_string(), v.parse::<u64>().expect("u64 metric"));
        }
        out
    }
}

/// Issues one raw HTTP/1.1 GET and returns (status, content-type, body).
fn http_get(addr: &str, target: &str) -> (u16, String, String) {
    let mut conn = TcpStream::connect(addr).expect("connect http port");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        conn,
        "GET {target} HTTP/1.1\r\nHost: streamlink-test\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    let mut raw = String::new();
    conn.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("no header/body split in response: {raw:?}"));
    let status_line = head.lines().next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {status_line:?}"));
    let content_type = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-type")
                .then(|| value.trim().to_string())
        })
        .unwrap_or_default();
    (status, content_type, body.to_string())
}

/// Extracts the value of a bare (unlabeled) Prometheus sample line.
fn prometheus_value(exposition: &str, name: &str) -> f64 {
    exposition
        .lines()
        .find_map(|line| {
            let rest = line.strip_prefix(name)?;
            let rest = rest.strip_prefix(' ')?;
            rest.parse::<f64>().ok()
        })
        .unwrap_or_else(|| panic!("sample {name} not found in exposition"))
}

#[test]
fn scrape_plane_agrees_with_tcp_metrics_over_live_session() {
    let (child, proto_addr, http_addr) = spawn_server();
    let mut session = Session::connect(&proto_addr);

    const INSERTS: u64 = 60;
    for i in 0..INSERTS {
        let reply = session.send(&format!("INSERT {} {}", i % 7, 100 + i));
        assert!(reply.starts_with("OK"), "insert reply: {reply}");
    }

    // The Prometheus view of a counter must land between two TCP
    // `METRICS` readings that bracket the scrape.
    let before = session.metrics();
    let (status, content_type, exposition) = http_get(&http_addr, "/metrics");
    let after = session.metrics();
    assert_eq!(status, 200);
    assert!(
        content_type.starts_with("text/plain; version=0.0.4"),
        "unexpected /metrics content type: {content_type}"
    );
    for key in ["core.insert.edges", "server.commands", "http.requests"] {
        let mangled = format!("streamlink_{}_total", key.replace('.', "_"));
        let scraped = prometheus_value(&exposition, &mangled);
        let (lo, hi) = (before[key] as f64, after[key] as f64);
        assert!(
            scraped >= lo && scraped <= hi,
            "{mangled}={scraped} outside METRICS bracket [{lo}, {hi}]"
        );
    }
    assert_eq!(
        prometheus_value(&exposition, "streamlink_core_insert_edges_total") as u64,
        INSERTS,
        "all inserts visible in the scrape"
    );
    // /metrics refreshes the memory gauges before rendering, so the
    // live accounting is present without waiting for the background
    // cycle.
    assert!(prometheus_value(&exposition, "streamlink_mem_total_bytes") > 0.0);
    assert!(prometheus_value(&exposition, "streamlink_mem_bytes_per_vertex") > 0.0);
    // Histograms render cumulatively: the +Inf bucket equals _count.
    let count = prometheus_value(&exposition, "streamlink_server_command_latency_ns_count");
    assert!(count >= INSERTS as f64);
    let inf = exposition
        .lines()
        .find(|l| l.starts_with("streamlink_server_command_latency_ns_bucket{le=\"+Inf\"}"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<f64>().ok())
        .expect("+Inf bucket for command latency");
    assert_eq!(inf, count, "+Inf bucket vs _count");

    // STATS carries the same process clock the registry exports.
    let stats = session.send("STATS");
    let stats_fields: HashMap<&str, &str> = stats
        .strip_prefix("OK ")
        .expect("STATS reply is OK")
        .split_whitespace()
        .filter_map(|kv| kv.split_once('='))
        .collect();
    let stats_ms: u64 = stats_fields["process_as_of_unix_ms"]
        .parse()
        .expect("process_as_of_unix_ms u64");
    let metrics_ms = session.metrics()["process.as_of_unix_ms"];
    assert!(
        metrics_ms.abs_diff(stats_ms) < 10_000,
        "STATS clock {stats_ms} vs METRICS clock {metrics_ms} disagree"
    );
    let uptime: u64 = stats_fields["process_uptime_secs"]
        .parse()
        .expect("process_uptime_secs u64");
    assert!(
        uptime < 3600,
        "implausible uptime {uptime}s in a fresh test"
    );

    // The sibling endpoints answer with their advertised schemas.
    let (status, content_type, body) = http_get(&http_addr, "/healthz");
    assert_eq!(status, 200, "fresh server should be healthy: {body}");
    assert!(content_type.starts_with("application/json"));
    let health: serde_json::Value = serde_json::from_str(&body).expect("healthz JSON");
    assert_eq!(
        health.get("schema").and_then(|v| v.as_str()),
        Some("streamlink.healthz.v1")
    );
    assert_eq!(health.get("status").and_then(|v| v.as_str()), Some("ok"));

    let (status, _, body) = http_get(&http_addr, "/memz");
    assert_eq!(status, 200);
    let memz: serde_json::Value = serde_json::from_str(&body).expect("memz JSON");
    assert_eq!(
        memz.get("schema").and_then(|v| v.as_str()),
        Some("streamlink.memz.v1")
    );
    let components = memz
        .get("components")
        .and_then(|v| v.as_array())
        .expect("memz components array");
    assert!(!components.is_empty());
    let total = memz
        .get("total_bytes")
        .and_then(|v| v.as_u64())
        .expect("memz total_bytes");
    assert!(total > 0);

    let (status, _, body) = http_get(&http_addr, "/tracez?n=8");
    assert_eq!(status, 200);
    let trace: serde_json::Value = serde_json::from_str(&body).expect("tracez JSON");
    assert_eq!(
        trace.get("schema").and_then(|v| v.as_str()),
        Some("streamlink.trace.v1")
    );
    let spans = trace
        .get("spans")
        .and_then(|v| v.as_array())
        .expect("tracez spans array");
    assert!(spans.len() <= 8, "tracez honored n=8: {}", spans.len());

    // Unknown paths 404 with a valid-JSON error body; the scrape plane
    // never panics the server.
    let (status, _, body) = http_get(&http_addr, "/nope");
    assert_eq!(status, 404);
    let err: serde_json::Value = serde_json::from_str(&body).expect("404 body is JSON");
    assert!(err
        .get("error")
        .and_then(|e| e.as_str())
        .is_some_and(|e| e.contains("/nope")));
    assert_eq!(session.send("PING"), "OK pong");

    assert_eq!(session.send("QUIT"), "OK bye");
    drop(child);
}

#[test]
fn healthz_flips_to_503_while_storage_is_degraded() {
    use std::sync::Arc;
    use streamlink_cli::server::protocol::handle_command;
    use streamlink_cli::server::{http, persistence, ServerConfig, ServerState};
    use streamlink_core::chaos::{FaultKind, FaultPlan};
    use streamlink_core::journal::FsyncPolicy;
    use streamlink_core::SketchConfig;

    let dir = std::env::temp_dir().join(format!("streamlink-http-healthz-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let plan = Arc::new(FaultPlan::new());
    plan.fail_append(1, FaultKind::Enospc);
    let (persist, recovery) = persistence::open_with_faults(
        &dir,
        SketchConfig::with_slots(16).seed(11),
        FsyncPolicy::Never,
        streamlink_core::WireFormat::TextV2,
        Some(plan),
    )
    .unwrap();
    let state = ServerState::with_persistence(
        recovery.store,
        persist,
        recovery.snapshot_seq,
        ServerConfig::default(),
    );

    // Healthy while writes succeed.
    assert_eq!(handle_command(&state, "INSERT 1 2"), "OK inserted");
    let r = http::respond(&state, "GET", "/healthz");
    assert_eq!(r.status, 200, "healthy before the fault: {}", r.body);
    assert!(r.body.contains("\"storage_ok\":true"));

    // The scripted fault nacks the next INSERT and degrades /healthz.
    let nack = handle_command(&state, "INSERT 3 4");
    assert!(nack.starts_with("ERR storage"), "{nack}");
    let r = http::respond(&state, "GET", "/healthz");
    assert_eq!(r.status, 503, "degraded while storage fails: {}", r.body);
    assert!(r.body.contains("\"status\":\"degraded\""));
    assert!(r.body.contains("\"storage_ok\":false"));

    // One successful write heals the verdict.
    assert_eq!(handle_command(&state, "INSERT 3 4"), "OK inserted");
    let r = http::respond(&state, "GET", "/healthz");
    assert_eq!(r.status, 200, "healed after a good write: {}", r.body);

    std::fs::remove_dir_all(&dir).unwrap();
}
