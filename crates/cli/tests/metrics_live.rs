//! Live metrics coherence tests.
//!
//! The registry is read lock-free while writers are hot, so the
//! interesting failures are torn or regressing snapshots: a counter
//! that appears to go backwards between two `METRICS` responses, or a
//! histogram whose p50 exceeds its p99. The first test hammers
//! `METRICS` from several reader threads while a writer ingests through
//! the real command path; the second drives a real `streamlink serve`
//! process over TCP and checks the multi-line `METRICS` response shape
//! end to end.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use streamlink_cli::server::protocol::handle_command;
use streamlink_cli::server::{ServerConfig, ServerState};
use streamlink_core::{SketchConfig, SketchStore};

/// Parses a `METRICS` response body into `(key, value)` pairs, checking
/// the `OK <n> metrics` terminator and that every value is a bare u64.
fn parse_metrics(response: &str) -> std::collections::HashMap<String, u64> {
    let mut lines: Vec<&str> = response.lines().collect();
    let terminator = lines.pop().expect("empty METRICS response");
    assert!(
        terminator.starts_with("OK ") && terminator.ends_with(" metrics"),
        "bad terminator: {terminator:?}"
    );
    let announced: usize = terminator
        .split_whitespace()
        .nth(1)
        .and_then(|n| n.parse().ok())
        .expect("terminator count");
    assert_eq!(lines.len(), announced, "terminator count vs body lines");
    lines
        .iter()
        .map(|line| {
            let (k, v) = line.split_once('=').expect("key=value line");
            (k.to_string(), v.parse::<u64>().expect("u64 metric value"))
        })
        .collect()
}

/// Asserts every histogram in a parsed snapshot reports ordered
/// percentiles (p50 ≤ p95 ≤ p99 ≤ p999 ≤ max when non-empty) and that
/// its per-bucket lines sum back to the recorded count.
fn assert_percentiles_ordered(m: &std::collections::HashMap<String, u64>) {
    for (key, &count) in m {
        let Some(base) = key.strip_suffix(".count") else {
            continue;
        };
        if count == 0 {
            continue;
        }
        let get = |s: &str| m[&format!("{base}.{s}")];
        let (p50, p95, p99, p999) = (get("p50"), get("p95"), get("p99"), get("p999"));
        assert!(p50 <= p95 && p95 <= p99, "{base}: {p50} > {p95} > {p99}?");
        assert!(p99 <= p999, "{base}: p99 {p99} above p999 {p999}");
        assert!(
            p999 <= get("max").max(p999),
            "{base}: p999 above max bucket"
        );
        let bucket_sum: u64 = m
            .iter()
            .filter(|(k, _)| {
                k.strip_prefix(base)
                    .is_some_and(|rest| rest.starts_with(".bucket_le_"))
            })
            .map(|(_, v)| v)
            .sum();
        assert_eq!(bucket_sum, count, "{base}: bucket counts vs count");
    }
}

#[test]
fn metrics_stay_coherent_under_concurrent_ingest() {
    const EDGES: u64 = 20_000;
    const READERS: usize = 3;

    let store = SketchStore::new(SketchConfig::with_slots(32).seed(7));
    let state = Arc::new(ServerState::in_memory(store, ServerConfig::default()));
    let baseline = parse_metrics(&handle_command(&state, "METRICS"))["core.insert.edges"];

    let writer = {
        let state = Arc::clone(&state);
        std::thread::spawn(move || {
            for i in 0..EDGES {
                let reply = handle_command(&state, &format!("INSERT {} {}", i % 97, 1000 + i));
                assert!(reply.starts_with("OK"), "insert failed: {reply}");
            }
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                let mut last_edges = 0u64;
                let mut last_commands = 0u64;
                for _ in 0..200 {
                    let snap = parse_metrics(&handle_command(&state, "METRICS"));
                    let edges = snap["core.insert.edges"];
                    let commands = snap["server.commands"];
                    assert!(edges >= last_edges, "edges went backwards: {edges}");
                    assert!(commands >= last_commands, "commands went backwards");
                    assert_percentiles_ordered(&snap);
                    last_edges = edges;
                    last_commands = commands;
                }
            })
        })
        .collect();

    writer.join().expect("writer panicked");
    for r in readers {
        r.join().expect("reader panicked");
    }

    let final_snap = parse_metrics(&handle_command(&state, "METRICS"));
    assert!(
        final_snap["core.insert.edges"] >= baseline + EDGES,
        "final edge count {} below baseline {baseline} + {EDGES}",
        final_snap["core.insert.edges"]
    );
    assert!(final_snap["server.inserts"] >= EDGES);
    assert_percentiles_ordered(&final_snap);
}

/// A `streamlink serve` child for the TCP end-to-end check.
struct ServeChild(Child);

impl Drop for ServeChild {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn metrics_command_works_over_live_tcp_session() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_streamlink"))
        .args(["serve", "--addr", "127.0.0.1:0", "--slots", "32"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn streamlink serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let child = ServeChild(child);
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        match lines.next() {
            Some(Ok(line)) => {
                if let Some(a) = line.strip_prefix("LISTENING ") {
                    break a.to_string();
                }
            }
            _ => panic!("server exited before LISTENING"),
        }
    };

    let conn = TcpStream::connect(&addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut conn = conn;
    let mut line = String::new();

    const INSERTS: u64 = 50;
    for i in 0..INSERTS {
        writeln!(conn, "insert {i} {}", i + 1).unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("OK"), "insert reply: {line:?}");
    }

    // METRICS is multi-line: read until the OK terminator.
    writeln!(conn, "METRICS").unwrap();
    let mut body = String::new();
    loop {
        line.clear();
        assert!(reader.read_line(&mut line).unwrap() > 0, "EOF mid-METRICS");
        body.push_str(&line);
        if line.starts_with("OK ") {
            break;
        }
    }
    let snap = parse_metrics(body.trim_end());
    assert!(snap["core.insert.edges"] >= INSERTS);
    assert!(snap["server.inserts"] >= INSERTS);
    // The in-flight METRICS command itself is counted only after it
    // renders its own snapshot, so equality is the floor here.
    assert!(snap["server.commands"] >= INSERTS);
    assert_eq!(snap["server.connections_active"], 1);
    assert_percentiles_ordered(&snap);

    writeln!(conn, "QUIT").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "OK bye");
    drop(child);
}
