//! Wire/storage format v3 end-to-end: a v2 data directory migrates to
//! v3 in place (recovery reads both formats, new records are written
//! v3, scrub exits 0 on the mixed directory), the line protocol
//! upgrades to framed binary responses after `HELLO v3`, and a
//! `--format v3` replica converges over binary WAL shipping.

use std::fs;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use streamlink_core::codec;

const SLOTS: &str = "64";
const SEED: &str = "42";

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("streamlink-codec-{}-{tag}-{n}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn start(extra: &[&str], replica: bool) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_streamlink"))
            .arg("serve")
            .args(["--addr", "127.0.0.1:0", "--slots", SLOTS, "--seed", SEED])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn streamlink serve");
        let stdout = child.stdout.take().expect("child stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            match lines.next() {
                Some(Ok(line)) => {
                    if let Some(addr) = line.strip_prefix("LISTENING ") {
                        break addr.to_string();
                    }
                }
                _ => panic!("server exited before announcing LISTENING"),
            }
        };
        if replica {
            match lines.next() {
                Some(Ok(line)) => assert!(
                    line.starts_with("REPLICATING "),
                    "expected REPLICATING after LISTENING, got {line:?}"
                ),
                other => panic!("replica exited before announcing REPLICATING: {other:?}"),
            }
        }
        std::thread::spawn(move || for _ in lines {});
        Server { child, addr }
    }

    fn durable(dir: &Path, format: &str) -> Server {
        Server::start(
            &[
                "--data-dir",
                dir.to_str().unwrap(),
                "--fsync",
                "always",
                "--format",
                format,
            ],
            false,
        )
    }

    fn connect(&self) -> Client {
        Client::connect(&self.addr)
    }

    fn kill(&mut self) {
        self.child.kill().expect("SIGKILL child");
        self.child.wait().expect("reap child");
    }

    /// Graceful SIGTERM: drains and writes a final snapshot.
    fn terminate(&mut self) {
        let ok = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .expect("run kill")
            .success();
        assert!(ok, "kill -TERM failed");
        let start = Instant::now();
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                assert!(status.success(), "SIGTERM exit: {status:?}");
                return;
            }
            assert!(start.elapsed() < Duration::from_secs(8), "SIGTERM hang");
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream
                        .set_read_timeout(Some(Duration::from_secs(5)))
                        .unwrap();
                    let reader = BufReader::new(stream.try_clone().unwrap());
                    return Client { stream, reader };
                }
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => panic!("connect {addr}: {e}"),
            }
        }
    }

    fn ask(&mut self, cmd: &str) -> String {
        writeln!(self.stream, "{cmd}").unwrap();
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    /// Reads one framed response; only meaningful after `HELLO v3`.
    fn read_frame(&mut self) -> (u8, Vec<u8>) {
        codec::read_envelope_blocking(&mut self.reader).expect("read envelope")
    }
}

fn scrub(dir: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_streamlink"))
        .args(["scrub", "--data-dir", dir.to_str().unwrap()])
        .output()
        .expect("run streamlink scrub")
}

/// The migration path: a directory written by a v2 server keeps
/// serving under `--format v3` (both formats recover), new journal
/// entries and checkpoints come out binary, a crash replays the v3
/// WAL, and scrub audits the mixed directory clean.
#[test]
fn v2_directory_migrates_to_v3_in_place() {
    let dir = temp_dir("migrate");

    // Lifetime 1: plain v2. Graceful exit writes a v2 snapshot.
    let mut server = Server::durable(&dir, "v2");
    let mut c = server.connect();
    for i in 0..40u64 {
        assert_eq!(c.ask(&format!("INSERT 1 {}", 100 + i)), "OK inserted");
    }
    assert_eq!(c.ask("DEGREE 1"), "OK 40");
    drop(c);
    server.terminate();

    // Lifetime 2: same directory, --format v3. Old state recovers;
    // new appends are binary envelopes. SIGKILL forces the next boot
    // to replay them from the WAL.
    let mut server = Server::durable(&dir, "v3");
    let mut c = server.connect();
    assert_eq!(c.ask("DEGREE 1"), "OK 40");
    for i in 0..40u64 {
        assert_eq!(c.ask(&format!("INSERT 2 {}", 200 + i)), "OK inserted");
    }
    drop(c);
    server.kill();

    // The live segment now holds binary records.
    let has_binary_wal = fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().starts_with("wal."))
        .any(|e| {
            fs::read(e.path())
                .map(|b| b.starts_with(&codec::BINARY_MAGIC))
                .unwrap_or(false)
        });
    assert!(has_binary_wal, "no binary WAL segment written under v3");

    // Lifetime 3: everything acked survives the mixed directory, and a
    // graceful exit checkpoints a binary snapshot.
    let mut server = Server::durable(&dir, "v3");
    let mut c = server.connect();
    assert_eq!(c.ask("DEGREE 1"), "OK 40");
    assert_eq!(c.ask("DEGREE 2"), "OK 40");
    drop(c);
    server.terminate();

    let snapshot_binary = fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| {
            let name = e.file_name().to_string_lossy().to_string();
            name.starts_with("snapshot.") && name.ends_with(".json")
        })
        .any(|e| {
            fs::read(e.path())
                .map(|b| b.starts_with(&codec::BINARY_MAGIC))
                .unwrap_or(false)
        });
    assert!(snapshot_binary, "graceful v3 exit left no binary snapshot");

    // The mixed directory audits clean.
    let out = scrub(&dir);
    assert_eq!(out.status.code(), Some(0), "scrub: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("CLEAN"), "{stdout}");
}

/// `HELLO v3` flips one connection to framed responses: requests stay
/// text lines, every answer afterwards is a checksummed envelope, and
/// pipelined requests come back as distinct frames in order.
#[test]
fn hello_v3_upgrades_responses_to_envelopes() {
    let server = Server::start(&[], false);
    let mut c = server.connect();

    // Before the upgrade: plain text, and HELLO v2 is a no-op.
    assert_eq!(c.ask("PING"), "OK pong");
    assert_eq!(c.ask("HELLO v2"), "OK fmt=v2");
    // The acceptance itself is the last text line on the connection.
    assert_eq!(c.ask("HELLO v3"), "OK fmt=v3");

    // Pipeline a batch of requests; each response is one envelope.
    write!(c.stream, "PING\nDEGREE 7\nINSERT 7 8\nDEGREE 7\nHELLO v3\n").unwrap();
    let expect = ["OK pong", "OK 0", "OK inserted", "OK 1", "OK fmt=v3"];
    for want in expect {
        let (mode, body) = c.read_frame();
        assert_eq!(mode, codec::MODE_TEXT_FRAME);
        assert_eq!(String::from_utf8(body).unwrap(), want);
    }

    // Multi-line responses arrive as a single frame.
    writeln!(c.stream, "METRICS").unwrap();
    let (mode, body) = c.read_frame();
    assert_eq!(mode, codec::MODE_TEXT_FRAME);
    let text = String::from_utf8(body).unwrap();
    assert!(text.lines().count() > 1, "METRICS should be multi-line");
    let last = text.lines().last().unwrap();
    assert!(
        last.starts_with("OK ") && last.ends_with("metrics"),
        "{last}"
    );

    // QUIT is framed too, then the server closes the connection.
    writeln!(c.stream, "QUIT").unwrap();
    let (mode, body) = c.read_frame();
    assert_eq!(mode, codec::MODE_TEXT_FRAME);
    assert_eq!(body, b"OK bye");
    let mut rest = Vec::new();
    assert_eq!(c.reader.read_to_end(&mut rest).unwrap(), 0, "clean close");
}

/// A `--format v3` replica negotiates binary WAL shipping with the
/// primary and converges to its exact state.
#[test]
fn v3_replica_converges_over_binary_shipping() {
    let primary = Server::start(&[], false);
    let mut p = primary.connect();
    for i in 0..50u64 {
        assert_eq!(p.ask(&format!("INSERT 5 {}", 500 + i)), "OK inserted");
    }

    let replica = Server::start(
        &[
            "--replicate-from",
            &primary.addr,
            "--repl-id",
            "r-v3",
            "--repl-poll-ms",
            "20",
            "--format",
            "v3",
        ],
        true,
    );
    let mut r = replica.connect();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if r.ask("DEGREE 5") == "OK 50" {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replica did not converge over binary shipping"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    // Writes keep flowing after convergence (steady-state pulls).
    assert_eq!(p.ask("INSERT 5 999"), "OK inserted");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if r.ask("DEGREE 5") == "OK 51" {
            break;
        }
        assert!(Instant::now() < deadline, "steady-state pull stalled");
        std::thread::sleep(Duration::from_millis(50));
    }
    let nack = r.ask("INSERT 1 2");
    assert!(nack.starts_with("ERR readonly"), "{nack}");
}
