//! Live replication tests against the real `streamlink` binary.
//!
//! Each test boots a primary and read replicas as child processes over
//! loopback TCP, then exercises the replication contract end to end:
//! replicas converge to the primary's exact state and serve every read,
//! writes on a replica are refused with `ERR readonly`, a SIGKILLed
//! replica rejoins and reconverges without the primary ever stalling,
//! and both roles expose their lag through `REPL STATUS`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SLOTS: &str = "64";
const SEED: &str = "42";

/// A `streamlink serve` child plus the address it actually bound.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    /// Boots `streamlink serve --addr 127.0.0.1:0 <extra>` and waits for
    /// its `LISTENING <addr>` line (and, for replicas, the following
    /// `REPLICATING <primary>` line).
    fn start(extra: &[&str], replica: bool) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_streamlink"))
            .arg("serve")
            .args(["--addr", "127.0.0.1:0", "--slots", SLOTS, "--seed", SEED])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn streamlink serve");
        let stdout = child.stdout.take().expect("child stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            match lines.next() {
                Some(Ok(line)) => {
                    if let Some(addr) = line.strip_prefix("LISTENING ") {
                        break addr.to_string();
                    }
                }
                _ => panic!("server exited before announcing LISTENING"),
            }
        };
        if replica {
            match lines.next() {
                Some(Ok(line)) => assert!(
                    line.starts_with("REPLICATING "),
                    "expected REPLICATING after LISTENING, got {line:?}"
                ),
                other => panic!("replica exited before announcing REPLICATING: {other:?}"),
            }
        }
        // Keep draining stdout so the child can never block (or die on a
        // closed pipe) if it prints again.
        std::thread::spawn(move || for _ in lines {});
        Server { child, addr }
    }

    /// A primary with a fast checkpoint-free in-memory configuration.
    fn primary() -> Server {
        Server::start(&[], false)
    }

    /// A replica of `primary` polling fast enough for test deadlines.
    fn replica(primary: &str, id: &str) -> Server {
        Server::start(
            &[
                "--replicate-from",
                primary,
                "--repl-id",
                id,
                "--repl-poll-ms",
                "20",
                "--repl-anti-entropy-secs",
                "1",
            ],
            true,
        )
    }

    fn connect(&self) -> Client {
        Client::connect(&self.addr)
    }

    /// SIGKILL: the crash. Nothing gets to run, flush, or clean up.
    fn kill(&mut self) {
        self.child.kill().expect("SIGKILL child");
        self.child.wait().expect("reap child");
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Client {
    conn: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let conn = TcpStream::connect(addr).expect("connect to server");
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        conn.set_nodelay(true).unwrap();
        let reader = BufReader::new(conn.try_clone().unwrap());
        Client { conn, reader }
    }

    fn ask(&mut self, cmd: &str) -> String {
        writeln!(self.conn, "{cmd}").expect("send command");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        line.trim_end().to_string()
    }
}

/// Extracts `key=value` from a status line.
fn field(line: &str, key: &str) -> u64 {
    line.split_whitespace()
        .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key}= in {line:?}"))
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key}= in {line:?}"))
}

/// Polls `probe` until it returns true or the deadline passes.
fn wait_for(what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !probe() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Blocks until a replica reports `applied_seq=want` over `REPL STATUS`.
fn wait_applied(server: &Server, want: u64, what: &str) {
    let mut client = server.connect();
    wait_for(what, || {
        let status = client.ask("REPL STATUS");
        field(&status, "applied_seq") == want
    });
}

/// A deterministic edge stream with shared neighborhoods so similarity
/// queries are non-trivial.
fn edges(n: u64) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for w in 0..n {
        out.push((1, 100 + w % 17));
        out.push((2, 100 + w % 13));
        out.push((w % 5 + 3, 200 + w));
    }
    out
}

const QUERY_PAIRS: &[(u64, u64)] = &[(1, 2), (1, 3), (3, 4), (2, 999)];

/// Every estimate the node serves for the standard query pairs.
fn answers(client: &mut Client) -> Vec<String> {
    let mut out = Vec::new();
    for &(u, v) in QUERY_PAIRS {
        out.push(client.ask(&format!("JACCARD {u} {v}")));
        out.push(client.ask(&format!("CN {u} {v}")));
        out.push(client.ask(&format!("AA {u} {v}")));
        out.push(client.ask(&format!("DEGREE {u}")));
    }
    out
}

#[test]
fn replicas_converge_serve_reads_and_refuse_writes() {
    let primary = Server::primary();
    let r1 = Server::replica(&primary.addr, "r1");
    let r2 = Server::replica(&primary.addr, "r2");

    let stream = edges(60);
    let mut feed = primary.connect();
    for &(u, v) in &stream {
        assert_eq!(feed.ask(&format!("INSERT {u} {v}")), "OK inserted");
    }
    let want = stream.len() as u64;
    wait_applied(&r1, want, "r1 to catch up");
    wait_applied(&r2, want, "r2 to catch up");

    // Replicas serve every read with exactly the primary's estimates.
    let reference = answers(&mut feed);
    assert_eq!(answers(&mut r1.connect()), reference, "r1 diverges");
    assert_eq!(answers(&mut r2.connect()), reference, "r2 diverges");

    // Writes on a replica are refused with a machine-parseable MOVED
    // hint: the 4th whitespace token is the primary's address.
    let mut write = r1.connect();
    let refusal = write.ask("INSERT 9 9000");
    assert!(refusal.starts_with("ERR readonly MOVED "), "{refusal}");
    assert_eq!(
        refusal.split_whitespace().nth(3),
        Some(primary.addr.as_str()),
        "{refusal}"
    );
    assert_eq!(write.ask("DEGREE 9000"), "OK 0", "refused write leaked");

    // Both roles expose lag. The replica is caught up and connected;
    // the primary sees both peers at zero lag.
    let r1_status = r1.connect().ask("REPL STATUS");
    assert!(r1_status.starts_with("OK role=replica"), "{r1_status}");
    assert_eq!(field(&r1_status, "connected"), 1, "{r1_status}");
    assert_eq!(field(&r1_status, "lag_edges"), 0, "{r1_status}");
    // The durable watermark is exposed alongside the applied one; an
    // in-memory replica's persisted seq tracks its applied seq.
    assert_eq!(field(&r1_status, "persisted_seq"), want, "{r1_status}");
    wait_for("primary to see two caught-up peers", || {
        let status = feed.ask("REPL STATUS");
        field(&status, "replicas_connected") == 2 && field(&status, "max_lag_edges") == 0
    });
}

#[test]
fn sigkilled_replica_rejoins_and_reconverges() {
    let primary = Server::primary();
    let r1 = Server::replica(&primary.addr, "r1");
    let mut r2 = Server::replica(&primary.addr, "r2");

    let stream = edges(80);
    let cut = stream.len() / 2;
    let mut feed = primary.connect();
    for &(u, v) in &stream[..cut] {
        assert_eq!(feed.ask(&format!("INSERT {u} {v}")), "OK inserted");
    }
    wait_applied(&r2, cut as u64, "r2 to reach the cut");

    // Crash one replica mid-stream. The primary keeps acking writes and
    // the surviving replica keeps converging: slow or dead peers never
    // stall ingest.
    r2.kill();
    for &(u, v) in &stream[cut..] {
        assert_eq!(feed.ask(&format!("INSERT {u} {v}")), "OK inserted");
    }
    let want = stream.len() as u64;
    wait_applied(&r1, want, "r1 to converge past the crash");

    // The crashed replica rejoins under the same id, resumes from the
    // primary's ship buffer, and reconverges to the exact same answers.
    let r2 = Server::replica(&primary.addr, "r2");
    wait_applied(&r2, want, "restarted r2 to reconverge");
    let reference = answers(&mut feed);
    assert_eq!(answers(&mut r1.connect()), reference, "r1 diverges");
    assert_eq!(
        answers(&mut r2.connect()),
        reference,
        "rejoined r2 diverges"
    );
    wait_for("primary to see both peers again", || {
        let status = feed.ask("REPL STATUS");
        field(&status, "replicas_connected") == 2 && field(&status, "max_lag_edges") == 0
    });
}
