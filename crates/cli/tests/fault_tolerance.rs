//! Fault-injection tests against the real `streamlink` binary.
//!
//! Each test boots `streamlink serve` as a child process, talks the
//! line protocol over TCP, and then does something hostile: SIGKILL
//! mid-ingest, SIGTERM mid-serve, tearing the journal tail, planting a
//! half-written snapshot, going silent, or piling on connections. The
//! assertions pin the durability contract: **every acked edge survives,
//! and recovered estimates match an uninterrupted run.**

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use graphstream::VertexId;
use streamlink_core::{SketchConfig, SketchStore};

const SLOTS: &str = "64";
const SEED: &str = "42";

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("streamlink-fault-{}-{tag}-{n}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// A `streamlink serve` child plus the address it actually bound.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    /// Boots `streamlink serve --addr 127.0.0.1:0 <extra>` and waits
    /// for its `LISTENING <addr>` line.
    fn start(extra: &[&str]) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_streamlink"))
            .arg("serve")
            .args(["--addr", "127.0.0.1:0", "--slots", SLOTS, "--seed", SEED])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn streamlink serve");
        let stdout = child.stdout.take().expect("child stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            match lines.next() {
                Some(Ok(line)) => {
                    if let Some(addr) = line.strip_prefix("LISTENING ") {
                        break addr.to_string();
                    }
                }
                _ => panic!("server exited before announcing LISTENING"),
            }
        };
        Server { child, addr }
    }

    fn connect(&self) -> Client {
        // The listener is live once LISTENING is printed; no retry loop
        // needed.
        Client::connect(&self.addr)
    }

    fn pid(&self) -> u32 {
        self.child.id()
    }

    /// SIGKILL: the crash. Nothing gets to run, flush, or clean up.
    fn kill(&mut self) {
        self.child.kill().expect("SIGKILL child");
        self.child.wait().expect("reap child");
    }

    /// SIGTERM: the orderly shutdown request. Returns the exit status
    /// observed within `deadline`.
    fn terminate(&mut self, deadline: Duration) -> std::process::ExitStatus {
        let ok = Command::new("kill")
            .args(["-TERM", &self.pid().to_string()])
            .status()
            .expect("run kill")
            .success();
        assert!(ok, "kill -TERM failed");
        let start = Instant::now();
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status;
            }
            assert!(
                start.elapsed() < deadline,
                "server did not exit within {deadline:?} of SIGTERM"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Client {
    conn: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let conn = TcpStream::connect(addr).expect("connect to server");
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        conn.set_nodelay(true).unwrap();
        let reader = BufReader::new(conn.try_clone().unwrap());
        Client { conn, reader }
    }

    fn ask(&mut self, cmd: &str) -> String {
        writeln!(self.conn, "{cmd}").expect("send command");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        line.trim_end().to_string()
    }

    /// Like [`Client::ask`] but maps IO failures (e.g. the server shed
    /// this connection mid-handshake) to `None` instead of panicking.
    fn try_ask(&mut self, cmd: &str) -> Option<String> {
        writeln!(self.conn, "{cmd}").ok()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).ok()?;
        (n > 0).then(|| line.trim_end().to_string())
    }
}

/// A deterministic edge stream with real structure: two hubs sharing a
/// neighborhood (so JACCARD/CN/AA are non-trivial) plus a long tail.
fn edges(n: u64) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    for w in 0..n {
        out.push((1, 100 + w % 17));
        out.push((2, 100 + w % 13));
        out.push((w % 5 + 3, 200 + w));
    }
    out
}

/// The estimates an uninterrupted in-process run produces, formatted
/// exactly as the server formats them.
fn reference_answers(stream: &[(u64, u64)], pairs: &[(u64, u64)]) -> Vec<String> {
    let slots: usize = SLOTS.parse().unwrap();
    let seed: u64 = SEED.parse().unwrap();
    let mut store = SketchStore::new(SketchConfig::with_slots(slots).seed(seed));
    for &(u, v) in stream {
        store.insert_edge(VertexId(u), VertexId(v));
    }
    let fmt = |score: Option<f64>| match score {
        Some(s) => format!("OK {s:.6}"),
        None => "OK unseen".to_string(),
    };
    let mut out = Vec::new();
    for &(u, v) in pairs {
        out.push(fmt(store.jaccard(VertexId(u), VertexId(v))));
        out.push(fmt(store.common_neighbors(VertexId(u), VertexId(v))));
        out.push(fmt(store.adamic_adar(VertexId(u), VertexId(v))));
    }
    out
}

fn server_answers(client: &mut Client, pairs: &[(u64, u64)]) -> Vec<String> {
    let mut out = Vec::new();
    for &(u, v) in pairs {
        out.push(client.ask(&format!("JACCARD {u} {v}")));
        out.push(client.ask(&format!("CN {u} {v}")));
        out.push(client.ask(&format!("AA {u} {v}")));
    }
    out
}

fn stats_field(stats: &str, key: &str) -> u64 {
    stats
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key}= in {stats:?}"))
        .parse()
        .unwrap()
}

const QUERY_PAIRS: &[(u64, u64)] = &[(1, 2), (1, 3), (3, 4), (2, 999)];

#[test]
fn sigkill_mid_ingest_loses_no_acked_edges() {
    let dir = temp_dir("sigkill");
    let stream = edges(120);
    let cut = stream.len() / 2;

    let mut server = Server::start(&[
        "--data-dir",
        dir.to_str().unwrap(),
        "--fsync",
        "always",
        // A tiny edge budget forces checkpoints *during* ingest, so the
        // crash lands with both a snapshot and a journal tail on disk.
        "--snapshot-every-edges",
        "37",
    ]);
    let mut client = server.connect();
    for &(u, v) in &stream[..cut] {
        assert_eq!(client.ask(&format!("INSERT {u} {v}")), "OK inserted");
    }
    server.kill(); // crash: no drain, no final snapshot

    // Restart over the same directory: every acked edge must be back.
    let server = Server::start(&["--data-dir", dir.to_str().unwrap()]);
    let mut client = server.connect();
    let stats = client.ask("STATS");
    assert_eq!(stats_field(&stats, "edges"), cut as u64, "{stats}");

    // Finish the stream and compare every estimate against an
    // uninterrupted in-process run of the same configuration.
    for &(u, v) in &stream[cut..] {
        assert_eq!(client.ask(&format!("INSERT {u} {v}")), "OK inserted");
    }
    assert_eq!(
        server_answers(&mut client, QUERY_PAIRS),
        reference_answers(&stream, QUERY_PAIRS),
        "recovered estimates diverge from the uninterrupted run"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sigterm_drains_writes_final_snapshot_and_exits_zero() {
    let dir = temp_dir("sigterm");
    let stream = edges(40);

    let mut server = Server::start(&["--data-dir", dir.to_str().unwrap(), "--drain-secs", "3"]);
    let mut client = server.connect();
    for &(u, v) in &stream {
        assert_eq!(client.ask(&format!("INSERT {u} {v}")), "OK inserted");
    }
    drop(client);
    let status = server.terminate(Duration::from_secs(8));
    assert!(status.success(), "expected exit 0, got {status:?}");

    // The final snapshot generation covers everything: recovery needs
    // no replay. Generations are v2-framed (`STREAMLINK-SNAP` header);
    // read through the verifying path, exactly as recovery does.
    let generations = streamlink_core::durable::list_generations(&dir).unwrap();
    let (_, newest) = generations.last().expect("no final snapshot written");
    let (payload, integrity) = streamlink_core::snapshot::read_verified(newest).unwrap();
    assert_eq!(
        integrity,
        streamlink_core::snapshot::SnapshotIntegrity::Verified
    );
    let json: serde_json::Value = serde_json::from_str(&payload).unwrap();
    assert_eq!(
        json.get("edges_processed").and_then(|v| v.as_u64()),
        Some(stream.len() as u64)
    );

    // And a restarted server agrees with the uninterrupted run.
    let server = Server::start(&["--data-dir", dir.to_str().unwrap()]);
    let mut client = server.connect();
    let stats = client.ask("STATS");
    assert_eq!(stats_field(&stats, "edges"), stream.len() as u64);
    assert_eq!(stats_field(&stats, "journal_lag_edges"), 0, "{stats}");
    assert_eq!(
        server_answers(&mut client, QUERY_PAIRS),
        reference_answers(&stream, QUERY_PAIRS),
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_journal_tail_is_dropped_on_restart() {
    let dir = temp_dir("torn");
    let stream = edges(30);

    let mut server = Server::start(&["--data-dir", dir.to_str().unwrap()]);
    let mut client = server.connect();
    for &(u, v) in &stream {
        assert_eq!(client.ask(&format!("INSERT {u} {v}")), "OK inserted");
    }
    server.kill();

    // Simulate a crash mid-append: a half-written, never-acked entry at
    // the tail of the newest journal segment.
    let newest = newest_wal_segment(&dir);
    streamlink_core::chaos::append_garbage(&newest, b"E 99999 12").unwrap();

    let server = Server::start(&["--data-dir", dir.to_str().unwrap()]);
    let mut client = server.connect();
    let stats = client.ask("STATS");
    assert_eq!(
        stats_field(&stats, "edges"),
        stream.len() as u64,
        "torn tail must cost exactly the un-acked entry: {stats}"
    );
    // The server keeps serving and ingesting past the repair.
    assert_eq!(client.ask("INSERT 7 7000"), "OK inserted");
    assert_eq!(client.ask("DEGREE 7000"), "OK 1");
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn partial_snapshot_write_is_harmless() {
    let dir = temp_dir("tmpsnap");
    let stream = edges(25);

    let mut server = Server::start(&["--data-dir", dir.to_str().unwrap()]);
    let mut client = server.connect();
    for &(u, v) in &stream {
        assert_eq!(client.ask(&format!("INSERT {u} {v}")), "OK inserted");
    }
    server.kill();

    // A crash mid-checkpoint leaves the temp file but never the rename:
    // recovery must ignore it and use the journal.
    fs::write(dir.join("snapshot.json.tmp"), b"{\"config\": {\"slo").unwrap();

    let server = Server::start(&["--data-dir", dir.to_str().unwrap()]);
    let mut client = server.connect();
    let stats = client.ask("STATS");
    assert_eq!(stats_field(&stats, "edges"), stream.len() as u64, "{stats}");
    assert_eq!(
        server_answers(&mut client, QUERY_PAIRS),
        reference_answers(&stream, QUERY_PAIRS),
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn idle_client_is_disconnected() {
    let server = Server::start(&["--idle-timeout-ms", "300"]);
    let mut client = server.connect();
    assert_eq!(client.ask("PING"), "OK pong");

    // Go silent; the server must hang up on its own.
    let start = Instant::now();
    let mut line = String::new();
    client.reader.read_line(&mut line).expect("read disconnect");
    assert_eq!(line.trim_end(), "ERR idle timeout, closing");
    let mut rest = String::new();
    assert_eq!(client.reader.read_line(&mut rest).unwrap(), 0, "then EOF");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "disconnect took {:?}",
        start.elapsed()
    );

    // A fresh, active connection is still welcome.
    let mut again = server.connect();
    assert_eq!(again.ask("PING"), "OK pong");
}

#[test]
fn busy_shedding_beyond_connection_cap() {
    let server = Server::start(&["--max-conns", "2"]);
    let mut a = server.connect();
    let mut b = server.connect();
    assert_eq!(a.ask("PING"), "OK pong");
    assert_eq!(b.ask("PING"), "OK pong");

    let mut shed = server.connect();
    let mut line = String::new();
    shed.reader.read_line(&mut line).expect("read shed notice");
    assert_eq!(
        line.trim_end(),
        "ERR busy retry: connection cap 2 reached, back off and reconnect"
    );
    let mut rest = String::new();
    assert_eq!(shed.reader.read_line(&mut rest).unwrap(), 0, "then EOF");

    // Held connections are unaffected, and a freed slot is reusable.
    assert_eq!(a.ask("PING"), "OK pong");
    assert_eq!(a.ask("QUIT"), "OK bye");
    drop(a);
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut c = loop {
        let mut c = server.connect();
        match c.try_ask("PING").as_deref() {
            Some("OK pong") => break c,
            _ if Instant::now() < deadline => {
                // The freed slot may take a poll tick to release.
                std::thread::sleep(Duration::from_millis(25));
            }
            other => panic!("slot never freed after QUIT (last answer: {other:?})"),
        }
    };
    assert_eq!(c.ask("PING"), "OK pong");
    drop(b);
}

#[test]
fn corrupt_newest_snapshot_generation_falls_back_on_restart() {
    let dir = temp_dir("snapfall");
    let stream = edges(20);
    let thirds: Vec<_> = stream.chunks(stream.len() / 3).collect();

    // Three serve/SIGTERM cycles leave three snapshot generations (the
    // shutdown checkpoint writes one each), all within the default
    // retention of 3, with the WAL kept back to the oldest generation.
    for chunk in &thirds {
        let mut server = Server::start(&["--data-dir", dir.to_str().unwrap()]);
        let mut client = server.connect();
        for &(u, v) in *chunk {
            assert_eq!(client.ask(&format!("INSERT {u} {v}")), "OK inserted");
        }
        drop(client);
        let status = server.terminate(Duration::from_secs(8));
        assert!(status.success(), "expected exit 0, got {status:?}");
    }
    let generations = streamlink_core::durable::list_generations(&dir).unwrap();
    assert!(
        generations.len() >= 2,
        "need at least two generations to fall back, got {generations:?}"
    );

    // Rot a bit inside the newest generation's JSON payload; recovery
    // must quarantine it and rebuild from the previous generation plus
    // the retained WAL tail — losing nothing that was acked.
    let (_, newest) = generations.last().unwrap();
    streamlink_core::chaos::flip_bit(newest, 200, 3).unwrap();

    let server = Server::start(&["--data-dir", dir.to_str().unwrap()]);
    let mut client = server.connect();
    let stats = client.ask("STATS");
    assert_eq!(stats_field(&stats, "edges"), stream.len() as u64, "{stats}");
    assert_eq!(
        server_answers(&mut client, QUERY_PAIRS),
        reference_answers(&stream, QUERY_PAIRS),
        "fallback recovery diverges from the uninterrupted run"
    );
    let quarantined: Vec<_> = fs::read_dir(dir.join("quarantine"))
        .expect("quarantine dir created")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert!(
        quarantined.iter().any(|n| n.starts_with("snapshot.")),
        "corrupt generation should be quarantined, got {quarantined:?}"
    );
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bit_flip_mid_journal_is_quarantined_not_fatal() {
    let dir = temp_dir("bitflip");
    let stream = edges(10);

    let mut server = Server::start(&["--data-dir", dir.to_str().unwrap(), "--fsync", "always"]);
    let mut client = server.connect();
    for &(u, v) in &stream {
        assert_eq!(client.ask(&format!("INSERT {u} {v}")), "OK inserted");
    }
    server.kill();

    // Flip one bit in a digit of a mid-file record (not the tail), so
    // restart sees a CRC mismatch with valid records after it.
    let segment = newest_wal_segment(&dir);
    let content = fs::read_to_string(&segment).unwrap();
    let lines: Vec<&str> = content.lines().collect();
    assert!(lines.len() > 4, "expected a populated segment");
    let offset: usize = lines[..2].iter().map(|l| l.len() + 1).sum::<usize>() + 2;
    streamlink_core::chaos::flip_bit(&segment, offset as u64, 0).unwrap();

    let mut server = Server::start(&["--data-dir", dir.to_str().unwrap(), "--fsync", "always"]);
    let mut client = server.connect();
    let stats = client.ask("STATS");
    assert_eq!(
        stats_field(&stats, "edges"),
        stream.len() as u64 - 1,
        "exactly the corrupted record is lost: {stats}"
    );
    assert_eq!(stats_field(&stats, "replay_quarantined"), 1, "{stats}");
    let quarantine: Vec<_> = fs::read_dir(dir.join("quarantine"))
        .expect("quarantine dir created")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    assert_eq!(
        quarantine.len(),
        1,
        "one record quarantined: {quarantine:?}"
    );

    // The server keeps ingesting, and the fresh ack survives another
    // crash/restart cycle: new seqs skip past the quarantined gap
    // instead of colliding with on-disk history.
    assert_eq!(client.ask("INSERT 7 7000"), "OK inserted");
    server.kill();
    let server = Server::start(&["--data-dir", dir.to_str().unwrap()]);
    let mut client = server.connect();
    let stats = client.ask("STATS");
    assert_eq!(stats_field(&stats, "edges"), stream.len() as u64, "{stats}");
    assert_eq!(client.ask("DEGREE 7000"), "OK 1");
    fs::remove_dir_all(&dir).unwrap();
}

fn newest_wal_segment(dir: &Path) -> PathBuf {
    let mut segments: Vec<_> = fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let path = e.unwrap().path();
            let name = path.file_name()?.to_str()?;
            let seq: u64 = name
                .strip_prefix("wal.")?
                .strip_suffix(".log")?
                .parse()
                .ok()?;
            Some((seq, path))
        })
        .collect();
    segments.sort();
    segments.pop().expect("at least one wal segment").1
}
