//! The scrub fault matrix: build a real data directory with the
//! `streamlink` binary, damage it the way disks do (bit rot, truncation,
//! garbage appends), then assert `streamlink scrub` classifies the
//! damage with the right exit code, `--repair` heals what is healable,
//! and a restarted server recovers every acked edge that a good
//! artifact still covers.
//!
//! Exit-code contract under test: 0 = clean, 1 = damage repaired (or
//! repairable) with no acked loss, 2 = acked records unrecoverable.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Output, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const SLOTS: &str = "64";
const SEED: &str = "42";

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("streamlink-scrub-{}-{tag}-{n}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

struct Server {
    child: Child,
    addr: String,
}

impl Server {
    fn start(dir: &Path) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_streamlink"))
            .arg("serve")
            .args(["--addr", "127.0.0.1:0", "--slots", SLOTS, "--seed", SEED])
            .args(["--data-dir", dir.to_str().unwrap(), "--fsync", "always"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn streamlink serve");
        let stdout = child.stdout.take().expect("child stdout piped");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            match lines.next() {
                Some(Ok(line)) => {
                    if let Some(addr) = line.strip_prefix("LISTENING ") {
                        break addr.to_string();
                    }
                }
                _ => panic!("server exited before announcing LISTENING"),
            }
        };
        Server { child, addr }
    }

    fn kill(&mut self) {
        self.child.kill().expect("SIGKILL child");
        self.child.wait().expect("reap child");
    }

    fn terminate(&mut self) {
        let ok = Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .expect("run kill")
            .success();
        assert!(ok, "kill -TERM failed");
        let start = Instant::now();
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                assert!(status.success(), "SIGTERM exit: {status:?}");
                return;
            }
            assert!(start.elapsed() < Duration::from_secs(8), "SIGTERM hang");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn ask(&self, cmd: &str) -> String {
        let mut conn = TcpStream::connect(&self.addr).expect("connect");
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        writeln!(conn, "{cmd}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn insert_all(server: &Server, edges: &[(u64, u64)]) {
    let mut conn = TcpStream::connect(&server.addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    for &(u, v) in edges {
        writeln!(conn, "INSERT {u} {v}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "OK inserted");
    }
}

fn edges_stat(server: &Server) -> u64 {
    let stats = server.ask("STATS");
    stats
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("edges="))
        .unwrap_or_else(|| panic!("no edges= in {stats:?}"))
        .parse()
        .unwrap()
}

/// 80 acked edges across three server lifetimes. Two SIGTERM
/// checkpoints leave generations at seq 30 and 60; retention prunes the
/// WAL only below the *oldest* generation, so `wal.31.log` (seq
/// 31..=60, redundant with generation 60) stays on disk. A final
/// SIGKILL strands seq 61..=80 as a journal-only tail in `wal.61.log`.
fn build_fixture(tag: &str) -> (PathBuf, Vec<(u64, u64)>) {
    let stream: Vec<(u64, u64)> = (0..80u64).map(|i| (i % 7, 100 + i)).collect();
    let dir = temp_dir(tag);
    for (range, clean_exit) in [(0..30, true), (30..60, true), (60..80, false)] {
        let mut server = Server::start(&dir);
        insert_all(&server, &stream[range]);
        if clean_exit {
            server.terminate();
        } else {
            server.kill();
        }
    }
    (dir, stream)
}

fn scrub(dir: &Path, repair: bool) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_streamlink"));
    cmd.args(["scrub", "--data-dir", dir.to_str().unwrap()]);
    if repair {
        cmd.arg("--repair");
    }
    cmd.output().expect("run streamlink scrub")
}

fn exit_code(out: &Output) -> i32 {
    out.status.code().expect("scrub exit code")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// The WAL segment whose records start at `first_seq`.
fn segment(dir: &Path, first_seq: u64) -> PathBuf {
    let path = dir.join(format!("wal.{first_seq}.log"));
    assert!(path.exists(), "fixture lacks {path:?}");
    path
}

/// Byte offset of `line_idx`'s third byte (a digit of the seq field),
/// where a single flipped bit breaks the record CRC.
fn record_offset(path: &Path, line_idx: usize) -> u64 {
    let content = fs::read_to_string(path).unwrap();
    let lines: Vec<&str> = content.lines().collect();
    assert!(lines.len() > line_idx, "segment shorter than expected");
    (lines[..line_idx].iter().map(|l| l.len() + 1).sum::<usize>() + 2) as u64
}

#[test]
fn clean_directory_scrubs_exit_zero() {
    let (dir, _) = build_fixture("clean");
    let out = scrub(&dir, false);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));
    assert!(stdout(&out).contains("CLEAN"), "{}", stdout(&out));
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bit_flip_under_snapshot_coverage_repairs_with_zero_loss() {
    let (dir, stream) = build_fixture("bitflip");
    let seg = segment(&dir, 31);
    streamlink_core::chaos::flip_bit(&seg, record_offset(&seg, 4), 0).unwrap();

    // Check-only: damage reported, nothing mutated, repairable → 1.
    let before = fs::read(&seg).unwrap();
    let out = scrub(&dir, false);
    assert_eq!(exit_code(&out), 1, "{}", stdout(&out));
    assert!(stdout(&out).contains("DAMAGED"), "{}", stdout(&out));
    assert_eq!(
        fs::read(&seg).unwrap(),
        before,
        "check-only run must not write"
    );

    // Repair quarantines the rotted record; a second pass is clean.
    let out = scrub(&dir, true);
    assert_eq!(exit_code(&out), 1, "{}", stdout(&out));
    assert!(stdout(&out).contains("REPAIRED"), "{}", stdout(&out));
    assert!(dir.join("quarantine").is_dir(), "quarantine dir created");
    let out = scrub(&dir, false);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));

    // The record was covered by the snapshot generation: zero acked loss.
    let mut server = Server::start(&dir);
    assert_eq!(edges_stat(&server), stream.len() as u64);
    server.kill();
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn garbage_append_is_a_torn_tail_truncated_by_repair() {
    let (dir, stream) = build_fixture("garbage");
    let seg = segment(&dir, 61);
    streamlink_core::chaos::append_garbage(&seg, b"F 99 7 7 deadbeef trailing junk").unwrap();

    let out = scrub(&dir, true);
    assert_eq!(exit_code(&out), 1, "{}", stdout(&out));
    assert!(stdout(&out).contains("torn tail"), "{}", stdout(&out));
    let out = scrub(&dir, false);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));

    // The junk was never acked; everything that was survives.
    let mut server = Server::start(&dir);
    assert_eq!(edges_stat(&server), stream.len() as u64);
    server.kill();
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_snapshot_generation_is_quarantined_and_wal_rebuilds() {
    let (dir, stream) = build_fixture("snaptrunc");
    let generations = streamlink_core::durable::list_generations(&dir).unwrap();
    let (_, newest) = generations.last().expect("fixture has a generation");
    streamlink_core::chaos::tear_file(newest, 10).unwrap();

    // Generation 30 plus the WAL from seq 31 still covers everything,
    // so the newest generation is redundant: repairable, zero loss.
    let out = scrub(&dir, true);
    assert_eq!(exit_code(&out), 1, "{}", stdout(&out));
    assert!(stdout(&out).contains("CORRUPT"), "{}", stdout(&out));
    let out = scrub(&dir, false);
    assert_eq!(exit_code(&out), 0, "{}", stdout(&out));

    let mut server = Server::start(&dir);
    assert_eq!(edges_stat(&server), stream.len() as u64);
    server.kill();
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bit_flip_above_coverage_is_reported_as_loss() {
    let (dir, stream) = build_fixture("loss");
    let seg = segment(&dir, 61);
    streamlink_core::chaos::flip_bit(&seg, record_offset(&seg, 2), 0).unwrap();

    // Seq 63 lives only in the WAL: no snapshot can rebuild it.
    let out = scrub(&dir, false);
    assert_eq!(exit_code(&out), 2, "{}", stdout(&out));
    assert!(stdout(&out).contains("LOSS"), "{}", stdout(&out));
    let out = scrub(&dir, true);
    assert_eq!(exit_code(&out), 2, "{}", stdout(&out));

    // The loss is explicit — quarantined, never silent: the restarted
    // server is exactly one acked edge short.
    let mut server = Server::start(&dir);
    assert_eq!(edges_stat(&server), stream.len() as u64 - 1);
    server.kill();
    fs::remove_dir_all(&dir).unwrap();
}
