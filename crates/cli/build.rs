//! Bakes the build version into the binary as the
//! `STREAMLINK_BUILD_VERSION` compile-time env var: the crate version,
//! suffixed with `git describe` output when a git checkout is present.
//! `STATS`, `/healthz`, the Prometheus build-info gauge, and load
//! reports all name this exact build, so a latency regression in a
//! report artifact can be traced to a commit.
//!
//! Builds from a source tarball (no `.git`, or no `git` binary) fall
//! back to the bare crate version — the stamp degrades, it never fails
//! the build.

use std::process::Command;

fn main() {
    // Re-stamp when the checked-out commit moves.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
    let described = Command::new("git")
        .args(["describe", "--tags", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|raw| raw.trim().to_string())
        .filter(|described| !described.is_empty());
    let version = match described {
        Some(git) => format!("{}+g{git}", env!("CARGO_PKG_VERSION")),
        None => env!("CARGO_PKG_VERSION").to_string(),
    };
    println!("cargo:rustc-env=STREAMLINK_BUILD_VERSION={version}");
}
