//! The dataset registry: four simulated streams at three scales.

use serde::{Deserialize, Serialize};

use graphstream::{
    BarabasiAlbert, EdgeStream, ForestFire, MemoryStream, PowerLawConfig, WattsStrogatz,
};

use crate::coauthor::CoauthorshipModel;

/// How large to instantiate a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Unit-test size (hundreds of vertices, sub-second everywhere).
    Small,
    /// Experiment size (tens of thousands of vertices) — the default for
    /// the benchmark harness.
    Standard,
    /// Stress size (hundreds of thousands of vertices) for the
    /// scalability experiment E12.
    Large,
}

/// One of the four simulated real-world streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SimulatedDataset {
    /// Collaboration-graph stand-in (paper-clique model): high clustering,
    /// large Jaccard values.
    DblpLike,
    /// Photo-sharing-social-network stand-in (preferential attachment):
    /// heavy degree skew.
    FlickrLike,
    /// Communication-graph stand-in (power-law configuration model,
    /// α ≈ 2.3): sparse, low-overlap — the hardest relative-error regime.
    WikiTalkLike,
    /// Friendship-graph stand-in (forest fire): densification and
    /// community mixing.
    YoutubeLike,
    /// Clustered static-network stand-in (Watts–Strogatz small world):
    /// high clustering with future edges among already-seen vertices —
    /// the stream where temporal link prediction has the most signal.
    SmallWorldLike,
}

/// Static description of a dataset, used in the E1 table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Registry key (`dblp`, `flickr`, `wiki`, `youtube`).
    pub key: &'static str,
    /// Human-readable name.
    pub name: &'static str,
    /// The real dataset this one stands in for.
    pub paper_counterpart: &'static str,
    /// The generative model used.
    pub model: &'static str,
    /// Why the substitution preserves the relevant behaviour.
    pub rationale: &'static str,
}

impl SimulatedDataset {
    /// All five datasets, in canonical order.
    pub const ALL: [SimulatedDataset; 5] = [
        SimulatedDataset::DblpLike,
        SimulatedDataset::FlickrLike,
        SimulatedDataset::WikiTalkLike,
        SimulatedDataset::YoutubeLike,
        SimulatedDataset::SmallWorldLike,
    ];

    /// The dataset's static description.
    #[must_use]
    pub fn spec(self) -> DatasetSpec {
        match self {
            SimulatedDataset::DblpLike => DatasetSpec {
                key: "dblp",
                name: "DBLP-like co-authorship",
                paper_counterpart: "DBLP collaboration stream",
                model: "paper-clique co-authorship with overlapping communities",
                rationale: "reproduces high clustering and large-Jaccard pairs \
                            that drive collaboration-graph overlap distributions",
            },
            SimulatedDataset::FlickrLike => DatasetSpec {
                key: "flickr",
                name: "Flickr-like growth",
                paper_counterpart: "Flickr friendship growth stream",
                model: "Barabási-Albert preferential attachment",
                rationale: "reproduces the power-law degree tail that dominates \
                            MinHash match variance and AA weighting",
            },
            SimulatedDataset::WikiTalkLike => DatasetSpec {
                key: "wiki",
                name: "Wiki-talk-like communication",
                paper_counterpart: "Wikipedia talk-page stream",
                model: "power-law configuration model (alpha = 2.3)",
                rationale: "stresses the sparse low-overlap regime (small J), \
                            the hardest case for relative error",
            },
            SimulatedDataset::SmallWorldLike => DatasetSpec {
                key: "smallworld",
                name: "Small-world friendship",
                paper_counterpart: "clustered static friendship network",
                model: "Watts-Strogatz small world (p = 0.1)",
                rationale: "high clustering with future edges among seen \
                            vertices, the regime where temporal evaluation \
                            (E5) has full signal",
            },
            SimulatedDataset::YoutubeLike => DatasetSpec {
                key: "youtube",
                name: "YouTube-like friendship",
                paper_counterpart: "YouTube friendship stream",
                model: "forest fire growth",
                rationale: "mixes hubs with clustered tails, exercising \
                            degree-tier drift in the biased sketch",
            },
        }
    }

    /// Looks a dataset up by its registry key.
    #[must_use]
    pub fn from_key(key: &str) -> Option<SimulatedDataset> {
        Self::ALL
            .into_iter()
            .find(|d| d.spec().key == key.to_ascii_lowercase())
    }

    /// Materializes the stream at the given scale (deterministic: the
    /// seed is part of the dataset identity).
    #[must_use]
    pub fn stream(self, scale: Scale) -> MemoryStream {
        match self {
            SimulatedDataset::DblpLike => {
                let (a, p, c) = match scale {
                    Scale::Small => (600, 900, 12),
                    Scale::Standard => (30_000, 60_000, 300),
                    Scale::Large => (120_000, 260_000, 1_000),
                };
                CoauthorshipModel::new(a, p, c, 0xD31B).materialize()
            }
            SimulatedDataset::FlickrLike => {
                let (n, m) = match scale {
                    Scale::Small => (700, 4),
                    Scale::Standard => (40_000, 8),
                    Scale::Large => (200_000, 8),
                };
                BarabasiAlbert::new(n, m, 0xF11C).materialize()
            }
            SimulatedDataset::WikiTalkLike => {
                let (n, dmax) = match scale {
                    Scale::Small => (800, 60),
                    Scale::Standard => (50_000, 2_000),
                    Scale::Large => (250_000, 5_000),
                };
                PowerLawConfig::new(n, 2.3, dmax, 0x3141).materialize()
            }
            SimulatedDataset::YoutubeLike => {
                let (n, p) = match scale {
                    Scale::Small => (700, 0.33),
                    Scale::Standard => (40_000, 0.36),
                    Scale::Large => (200_000, 0.36),
                };
                ForestFire::new(n, p, 0x707B).materialize()
            }
            SimulatedDataset::SmallWorldLike => {
                // Seed 0xE0 deliberately matches the harness seed so the
                // published E5 numbers (formerly from an inline stream)
                // are reproduced exactly.
                let (n, deg) = match scale {
                    Scale::Small => (600, 8),
                    Scale::Standard => (20_000, 12),
                    Scale::Large => (100_000, 12),
                };
                WattsStrogatz::new(n, deg, 0.1, 0xE0).materialize()
            }
        }
    }
}

impl std::fmt::Display for SimulatedDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.spec().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphstream::StreamStats;

    #[test]
    fn keys_roundtrip() {
        for d in SimulatedDataset::ALL {
            assert_eq!(SimulatedDataset::from_key(d.spec().key), Some(d));
        }
        assert_eq!(SimulatedDataset::from_key("nope"), None);
        assert_eq!(
            SimulatedDataset::from_key("DBLP"),
            Some(SimulatedDataset::DblpLike)
        );
    }

    #[test]
    fn small_streams_are_nonempty_and_deterministic() {
        for d in SimulatedDataset::ALL {
            let a = d.stream(Scale::Small);
            assert!(!a.is_empty(), "{d} is empty");
            assert_eq!(a, d.stream(Scale::Small), "{d} not deterministic");
        }
    }

    #[test]
    fn datasets_are_pairwise_distinct() {
        let streams: Vec<_> = SimulatedDataset::ALL
            .iter()
            .map(|d| d.stream(Scale::Small))
            .collect();
        for i in 0..streams.len() {
            for j in (i + 1)..streams.len() {
                assert_ne!(streams[i], streams[j]);
            }
        }
    }

    #[test]
    fn regimes_differ_as_documented() {
        let skew = |d: SimulatedDataset| {
            StreamStats::from_edges(d.stream(Scale::Small).as_slice().iter().copied())
                .summary()
                .skew
        };
        // The growth models must out-skew the configuration model at
        // small scale is not guaranteed, but flickr must beat dblp's
        // near-regular collaboration core.
        assert!(
            skew(SimulatedDataset::FlickrLike) > 2.0,
            "flickr-like lost its hubs"
        );
    }

    #[test]
    fn spec_fields_nonempty() {
        for d in SimulatedDataset::ALL {
            let s = d.spec();
            assert!(!s.key.is_empty());
            assert!(!s.rationale.is_empty());
            assert!(!s.paper_counterpart.is_empty());
        }
    }

    #[test]
    fn display_uses_name() {
        assert_eq!(
            SimulatedDataset::DblpLike.to_string(),
            "DBLP-like co-authorship"
        );
    }
}
