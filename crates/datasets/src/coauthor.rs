//! A paper-clique co-authorship stream (the DBLP-like model).
//!
//! Collaboration graphs are streams of *events*, not independent edges: a
//! publication adds a clique over its authors. This model reproduces that
//! structure directly:
//!
//! 1. Authors belong to overlapping research communities.
//! 2. Each "paper" draws 2–5 authors from one community, favoring authors
//!    who have published before (preferential, rich-get-richer).
//! 3. The paper emits the clique edges over its authors (deduplicated
//!    against earlier papers).
//!
//! The result has exactly the properties that make collaboration graphs
//! the *easy-but-interesting* regime for neighborhood sketches: high
//! clustering, many vertex pairs with large Jaccard overlap, and a
//! heavy-tailed author productivity distribution.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use graphstream::{Edge, EdgeStream};

/// The co-authorship stream generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoauthorshipModel {
    authors: u64,
    papers: u64,
    communities: u64,
    seed: u64,
}

impl CoauthorshipModel {
    /// `authors` potential authors in `communities` communities, emitting
    /// `papers` paper events.
    ///
    /// # Panics
    /// Panics if any parameter is zero or there are fewer than 5 authors
    /// per community on average (cliques would degenerate).
    #[must_use]
    pub fn new(authors: u64, papers: u64, communities: u64, seed: u64) -> Self {
        assert!(
            authors > 0 && papers > 0 && communities > 0,
            "parameters must be positive"
        );
        assert!(
            authors / communities >= 5,
            "need >= 5 authors per community, got {}",
            authors / communities
        );
        Self {
            authors,
            papers,
            communities,
            seed,
        }
    }

    /// Number of potential authors.
    #[must_use]
    pub fn author_count(&self) -> u64 {
        self.authors
    }
}

impl EdgeStream for CoauthorshipModel {
    type Iter = std::vec::IntoIter<Edge>;

    fn edges(&self) -> Self::Iter {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Community membership: author a belongs primarily to community
        // a % c, giving communities of near-equal size with deterministic
        // assignment; 10% of draws cross communities (collaboration).
        let per_community = self.authors / self.communities;
        // Productivity endpoint list for preferential author choice.
        let mut productive: Vec<u64> = Vec::new();
        let mut seen_edges: HashSet<(u64, u64)> = HashSet::new();
        let mut edges: Vec<Edge> = Vec::new();

        for _ in 0..self.papers {
            let community = rng.gen_range(0..self.communities);
            let team_size = rng.gen_range(2..=5usize);
            let mut team: Vec<u64> = Vec::with_capacity(team_size);
            let mut guard = 0;
            while team.len() < team_size && guard < 100 {
                guard += 1;
                // 60%: preferential (an author who already published, from
                // any community — keeps hubs global). 40%: fresh uniform
                // draw from the paper's community.
                let author = if !productive.is_empty() && rng.gen::<f64>() < 0.6 {
                    productive[rng.gen_range(0..productive.len())]
                } else {
                    let cross = rng.gen::<f64>() < 0.1;
                    let c = if cross {
                        rng.gen_range(0..self.communities)
                    } else {
                        community
                    };
                    c * per_community + rng.gen_range(0..per_community)
                };
                if !team.contains(&author) {
                    team.push(author);
                }
            }
            if team.len() < 2 {
                continue;
            }
            for a in &team {
                productive.push(*a);
            }
            for i in 0..team.len() {
                for j in (i + 1)..team.len() {
                    let (u, v) = (team[i].min(team[j]), team[i].max(team[j]));
                    if seen_edges.insert((u, v)) {
                        edges.push(Edge::new(u, v, edges.len() as u64));
                    }
                }
            }
        }
        edges.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphstream::{AdjacencyGraph, StreamStats};

    fn model() -> CoauthorshipModel {
        CoauthorshipModel::new(2000, 3000, 20, 7)
    }

    #[test]
    fn stream_is_simple() {
        let edges: Vec<Edge> = model().edges().collect();
        let mut seen = HashSet::new();
        for (i, e) in edges.iter().enumerate() {
            assert!(!e.is_loop());
            assert!(seen.insert(e.key()), "duplicate at {i}");
            assert_eq!(e.ts, i as u64);
        }
        assert!(edges.len() > 1000, "too few edges: {}", edges.len());
    }

    #[test]
    fn deterministic() {
        let a: Vec<Edge> = model().edges().collect();
        let b: Vec<Edge> = model().edges().collect();
        assert_eq!(a, b);
        let c: Vec<Edge> = CoauthorshipModel::new(2000, 3000, 20, 8).edges().collect();
        assert_ne!(a, c);
    }

    #[test]
    fn produces_triangles() {
        // Every 3+-author paper is a triangle; clustering must be heavy.
        let g = AdjacencyGraph::from_edges(model().edges());
        let mut closed = 0usize;
        let mut checked = 0usize;
        for (u, v) in g.edges().take(2000) {
            checked += 1;
            if g.common_neighbors(u, v) > 0 {
                closed += 1;
            }
        }
        let frac = closed as f64 / checked as f64;
        assert!(frac > 0.3, "too little clustering: {frac}");
    }

    #[test]
    fn productivity_is_skewed() {
        let stats = StreamStats::from_edges(model().edges());
        let s = stats.summary();
        assert!(s.skew > 5.0, "no productive-author tail: skew {}", s.skew);
    }

    #[test]
    fn large_jaccard_pairs_exist() {
        // Frequent co-authors should share most of their neighborhoods.
        let g = AdjacencyGraph::from_edges(model().edges());
        let mut best: f64 = 0.0;
        for (u, v) in g.edges().take(5000) {
            best = best.max(g.jaccard(u, v));
        }
        assert!(best > 0.3, "no high-overlap pairs: best J = {best}");
    }

    #[test]
    #[should_panic(expected = "authors per community")]
    fn degenerate_communities_rejected() {
        let _ = CoauthorshipModel::new(10, 100, 5, 0);
    }
}
