//! # datasets
//!
//! Synthetic stand-ins for the paper's real-world graph streams.
//!
//! The original evaluation ran on real social / collaboration / web graph
//! streams that are not redistributable here. Per the substitution rule in
//! DESIGN.md §5, this crate ships four **matched-statistics synthetic
//! equivalents**, each exercising a different regime of the estimators:
//!
//! | Dataset | Model | Regime it stresses |
//! |---------|-------|--------------------|
//! | [`SimulatedDataset::DblpLike`] | paper-clique co-authorship ([`coauthor`]) | high clustering, large Jaccard values |
//! | [`SimulatedDataset::FlickrLike`] | preferential attachment | heavy degree skew, hub-dominated AA |
//! | [`SimulatedDataset::WikiTalkLike`] | power-law configuration model | sparse low-overlap pairs (small J — hardest for relative error) |
//! | [`SimulatedDataset::YoutubeLike`] | forest fire | densification + community mixing |
//!
//! Every dataset is deterministic under its built-in seed and comes in
//! three [`Scale`]s so tests stay fast while benches run at full size.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coauthor;
pub mod spec;

pub use coauthor::CoauthorshipModel;
pub use spec::{DatasetSpec, Scale, SimulatedDataset};
