//! Shared harness for the experiment binaries (`src/bin/exp_*`).
//!
//! Every binary regenerates one table or figure of the paper's
//! evaluation (see DESIGN.md §4 for the index), prints it as an aligned
//! text table, and appends machine-readable JSON rows to
//! `results/<experiment>.jsonl` so EXPERIMENTS.md can cite exact numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write as _;
use std::path::PathBuf;

use serde::Serialize;

use datasets::{Scale, SimulatedDataset};
use graphstream::{AdjacencyGraph, EdgeStream, MemoryStream, VertexId};
use linkpred::Measure;
use streamlink_core::{SketchConfig, SketchStore};

/// The sketch sizes every accuracy sweep uses (the x-axis of the paper's
/// error figures).
pub const K_SWEEP: [usize; 6] = [16, 32, 64, 128, 256, 512];

/// Default seed for experiment determinism.
pub const EXP_SEED: u64 = 0xE0;

/// Writes experiment rows as JSON lines under `results/`, creating the
/// directory on first use, and echoes a human-readable table to stdout.
pub struct ResultWriter {
    file: std::fs::File,
    experiment: String,
}

impl ResultWriter {
    /// Opens (truncates) `results/<experiment>.jsonl`.
    ///
    /// # Panics
    /// Panics if the results directory cannot be created — experiments
    /// cannot meaningfully continue without an output channel.
    #[must_use]
    pub fn new(experiment: &str) -> Self {
        let dir = results_dir();
        std::fs::create_dir_all(&dir).expect("cannot create results directory");
        let path = dir.join(format!("{experiment}.jsonl"));
        let file = std::fs::File::create(&path)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
        println!("# {experiment} -> {}", path.display());
        Self {
            file,
            experiment: experiment.to_string(),
        }
    }

    /// Appends one JSON row.
    ///
    /// # Panics
    /// Panics on serialization or IO failure.
    pub fn write_row<T: Serialize>(&mut self, row: &T) {
        let json = serde_json::to_string(row)
            .unwrap_or_else(|e| panic!("{}: row serialization failed: {e}", self.experiment));
        writeln!(self.file, "{json}")
            .unwrap_or_else(|e| panic!("{}: write failed: {e}", self.experiment));
    }
}

/// Where experiment outputs go: `$STREAMLINK_RESULTS` or `./results`.
#[must_use]
pub fn results_dir() -> PathBuf {
    std::env::var_os("STREAMLINK_RESULTS").map_or_else(|| PathBuf::from("results"), PathBuf::from)
}

/// Parses `--scale small|standard|large` from argv (default standard —
/// experiments are meant to run at paper scale; tests pass small).
#[must_use]
pub fn scale_from_args(args: &[String]) -> Scale {
    match flag_value(args, "--scale").unwrap_or("standard") {
        "small" => Scale::Small,
        "large" => Scale::Large,
        _ => Scale::Standard,
    }
}

/// Returns the value following `flag` in `args`.
#[must_use]
pub fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Builds a sketch store over a stream with `k` slots.
#[must_use]
pub fn build_store(stream: &MemoryStream, k: usize, seed: u64) -> SketchStore {
    let mut store = SketchStore::new(SketchConfig::with_slots(k).seed(seed));
    store.insert_stream(stream.edges());
    store
}

/// Scores a pair with a [`SketchStore`] under a measure.
#[must_use]
pub fn sketch_score(
    store: &SketchStore,
    measure: Measure,
    u: VertexId,
    v: VertexId,
) -> Option<f64> {
    match measure {
        Measure::Jaccard => store.jaccard(u, v),
        Measure::CommonNeighbors => store.common_neighbors(u, v),
        Measure::AdamicAdar => store.adamic_adar(u, v),
        Measure::ResourceAllocation => store.resource_allocation(u, v),
        Measure::PreferentialAttachment => store.preferential_attachment(u, v),
        Measure::Cosine => store.cosine(u, v),
        Measure::Overlap => store.overlap(u, v),
    }
}

/// Scores a pair exactly on an adjacency graph.
#[must_use]
pub fn exact_score(g: &AdjacencyGraph, measure: Measure, u: VertexId, v: VertexId) -> f64 {
    match measure {
        Measure::Jaccard => g.jaccard(u, v),
        Measure::CommonNeighbors => g.common_neighbors(u, v) as f64,
        Measure::AdamicAdar => g.adamic_adar(u, v),
        Measure::ResourceAllocation => g.resource_allocation(u, v),
        Measure::PreferentialAttachment => g.preferential_attachment(u, v),
        Measure::Cosine => g.cosine(u, v),
        Measure::Overlap => g.overlap(u, v),
    }
}

/// Materializes every dataset at a scale, with its stream, once.
#[must_use]
pub fn all_datasets(scale: Scale) -> Vec<(SimulatedDataset, MemoryStream)> {
    SimulatedDataset::ALL
        .iter()
        .map(|&d| (d, d.stream(scale)))
        .collect()
}

/// Prints an aligned table header.
pub fn table_header(columns: &[&str]) {
    let row: Vec<String> = columns.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", row.join(" "));
    println!("{}", "-".repeat(15 * columns.len()));
}

/// Prints one aligned row.
pub fn table_row(cells: &[String]) {
    let row: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", row.join(" "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_value_finds_pairs() {
        let args: Vec<String> = ["--scale", "small", "--k", "64"]
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(flag_value(&args, "--scale"), Some("small"));
        assert_eq!(flag_value(&args, "--k"), Some("64"));
        assert_eq!(flag_value(&args, "--missing"), None);
    }

    #[test]
    fn scale_parsing_defaults_to_standard() {
        assert_eq!(scale_from_args(&[]), Scale::Standard);
        let args: Vec<String> = ["--scale", "small"]
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(scale_from_args(&args), Scale::Small);
    }

    #[test]
    fn build_store_ingests_everything() {
        let stream = SimulatedDataset::FlickrLike.stream(Scale::Small);
        let store = build_store(&stream, 16, 1);
        assert_eq!(store.edges_processed() as usize, stream.len());
    }

    #[test]
    fn scores_agree_between_backends_at_high_k() {
        let stream = SimulatedDataset::DblpLike.stream(Scale::Small);
        let g = AdjacencyGraph::from_edges(stream.edges());
        let store = build_store(&stream, 512, 2);
        let (u, v) = (VertexId(0), VertexId(1));
        for m in Measure::ALL {
            if let Some(est) = sketch_score(&store, m, u, v) {
                let exact = exact_score(&g, m, u, v);
                if m == Measure::Jaccard {
                    assert!((est - exact).abs() < 0.2, "{m}: {est} vs {exact}");
                }
            }
        }
    }

    #[test]
    fn result_writer_writes_jsonl() {
        let dir = std::env::temp_dir().join("streamlink_test_results");
        std::env::set_var("STREAMLINK_RESULTS", &dir);
        {
            let mut w = ResultWriter::new("unit_test");
            w.write_row(&serde_json::json!({"a": 1}));
            w.write_row(&serde_json::json!({"a": 2}));
        }
        let content = std::fs::read_to_string(dir.join("unit_test.jsonl")).unwrap();
        assert_eq!(content.lines().count(), 2);
        std::env::remove_var("STREAMLINK_RESULTS");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
