//! **E2–E4 (accuracy figures)** — average relative error of the Jaccard,
//! common-neighbor and Adamic–Adar estimates as the sketch size `k`
//! sweeps 16 → 512, per dataset.
//!
//! Paper shape to reproduce: error falls roughly as `1/√k`; Jaccard is
//! the most accurate, AA the noisiest; the sparse low-overlap stream
//! (wiki-like) shows the largest relative errors.
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_accuracy \
//!     [-- --scale small|standard|large] [--measure jaccard|cn|aa] [--pairs N]
//! ```

use graphstream::{AdjacencyGraph, EdgeStream};
use linkpred::evaluate::sample_overlap_pairs;
use linkpred::{metrics, Measure};
use serde::Serialize;
use streamlink_bench::{
    all_datasets, build_store, exact_score, flag_value, scale_from_args, sketch_score,
    table_header, table_row, ResultWriter, EXP_SEED, K_SWEEP,
};

#[derive(Serialize)]
struct Row {
    dataset: String,
    measure: String,
    k: usize,
    pairs: usize,
    are: Option<f64>,
    mae: f64,
    rmse: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let measures: Vec<Measure> = match flag_value(&args, "--measure") {
        Some(key) => vec![Measure::parse(key).expect("unknown --measure")],
        None => Measure::PAPER_TARGETS.to_vec(),
    };
    let n_pairs: usize =
        flag_value(&args, "--pairs").map_or(1000, |v| v.parse().expect("bad --pairs"));

    let mut out = ResultWriter::new("e2_e4_accuracy");
    println!(
        "\nE2–E4 — average relative error vs sketch size ({scale:?}, {n_pairs} query pairs)\n"
    );

    for (dataset, stream) in all_datasets(scale) {
        let exact = AdjacencyGraph::from_edges(stream.edges());
        let pairs = sample_overlap_pairs(&exact, n_pairs, EXP_SEED);
        println!(
            "dataset {} ({} usable pairs)",
            dataset.spec().key,
            pairs.len()
        );
        table_header(&["measure", "k", "ARE", "MAE", "RMSE"]);
        for measure in &measures {
            for &k in &K_SWEEP {
                let store = build_store(&stream, k, EXP_SEED);
                let mut est = Vec::with_capacity(pairs.len());
                let mut truth = Vec::with_capacity(pairs.len());
                for &(u, v) in &pairs {
                    if let Some(e) = sketch_score(&store, *measure, u, v) {
                        est.push(e);
                        truth.push(exact_score(&exact, *measure, u, v));
                    }
                }
                let row = Row {
                    dataset: dataset.spec().key.to_string(),
                    measure: measure.key().to_string(),
                    k,
                    pairs: est.len(),
                    are: metrics::average_relative_error(&est, &truth, 1e-12),
                    mae: metrics::mae(&est, &truth),
                    rmse: metrics::rmse(&est, &truth),
                };
                table_row(&[
                    row.measure.clone(),
                    k.to_string(),
                    row.are.map_or("n/a".into(), |v| format!("{v:.4}")),
                    format!("{:.4}", row.mae),
                    format!("{:.4}", row.rmse),
                ]);
                out.write_row(&row);
            }
        }
        println!();
    }
}
