//! **E17 (extension figure)** — robustness under hostile streams, two
//! scenarios:
//!
//! 1. **Duplication** — estimator error vs stream re-delivery rate: the
//!    plain store (raw degree counters) against the duplicate-robust
//!    store (HyperLogLog distinct degrees). Shape to establish:
//!    plain-store CN error grows linearly with the re-delivery rate
//!    (degrees scale by `1 + rate`), while the robust store's error is
//!    flat at the HLL noise floor; Jaccard is flat for both (slots are
//!    idempotent).
//! 2. **Crash recovery** — a journaled ingest is killed at a stream
//!    fraction (with a torn tail planted, as a real crash mid-append
//!    leaves), recovered from snapshot + journal, and resumed. Shape to
//!    establish: the resumed store's JACCARD/CN/AA estimates are
//!    **bit-identical** to an uninterrupted run — durability costs no
//!    accuracy.
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_robust [-- --scale ...] [--k N]
//! ```

use std::path::PathBuf;

use datasets::Scale;
use graphstream::adapters::NoiseInjector;
use graphstream::{AdjacencyGraph, BarabasiAlbert, EdgeStream};
use linkpred::evaluate::sample_overlap_pairs;
use linkpred::metrics;
use serde::Serialize;
use streamlink_bench::{
    flag_value, scale_from_args, table_header, table_row, ResultWriter, EXP_SEED,
};
use streamlink_core::journal::{self, FsyncPolicy, Journal, JournalEntry};
use streamlink_core::snapshot::StoreSnapshot;
use streamlink_core::{chaos, durable, RobustStore, SketchConfig, SketchStore};

#[derive(Serialize)]
struct Row {
    duplicate_prob: f64,
    backend: String,
    cn_are: Option<f64>,
    cn_mae: f64,
    jaccard_mae: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let k: usize = flag_value(&args, "--k").map_or(256, |v| v.parse().expect("bad --k"));
    let n = match scale {
        Scale::Small => 1_000,
        Scale::Standard => 20_000,
        Scale::Large => 100_000,
    };
    let clean = BarabasiAlbert::new(n, 4, EXP_SEED);
    let exact = AdjacencyGraph::from_edges(clean.edges());
    let pairs = sample_overlap_pairs(&exact, 600, EXP_SEED);
    let cn_truth: Vec<f64> = pairs
        .iter()
        .map(|&(u, v)| exact.common_neighbors(u, v) as f64)
        .collect();
    let j_truth: Vec<f64> = pairs.iter().map(|&(u, v)| exact.jaccard(u, v)).collect();

    let mut out = ResultWriter::new("e17_robust");
    println!("\nE17 — error vs duplication rate (k = {k}, BA n = {n})\n");
    table_header(&["dup rate", "backend", "CN ARE", "CN MAE", "J MAE"]);
    for duplicate_prob in [0.0f64, 0.25, 0.5, 1.0] {
        let injector = NoiseInjector {
            duplicate_prob,
            self_loop_prob: 0.02,
            max_reorder: 8,
            seed: 3,
        };
        let noisy = injector.apply(&clean);

        let mut plain = SketchStore::new(SketchConfig::with_slots(k).seed(EXP_SEED));
        plain.insert_stream(noisy.as_slice().iter().copied());
        let mut robust = RobustStore::new(SketchConfig::with_slots(k).seed(EXP_SEED), 10);
        robust.insert_stream(noisy.as_slice().iter().copied());

        type CnFn<'a> = Box<
            dyn Fn(graphstream::VertexId, graphstream::VertexId) -> (Option<f64>, Option<f64>) + 'a,
        >;
        let backends: [(&str, CnFn); 2] = [
            (
                "plain",
                Box::new(|u, v| (plain.common_neighbors(u, v), plain.jaccard(u, v))),
            ),
            (
                "robust",
                Box::new(|u, v| (robust.common_neighbors(u, v), robust.jaccard(u, v))),
            ),
        ];
        for (name, score) in &backends {
            let mut cn_est = Vec::new();
            let mut cn_t = Vec::new();
            let mut j_est = Vec::new();
            let mut j_t = Vec::new();
            for (i, &(u, v)) in pairs.iter().enumerate() {
                let (cn, j) = score(u, v);
                if let Some(cn) = cn {
                    cn_est.push(cn);
                    cn_t.push(cn_truth[i]);
                }
                if let Some(j) = j {
                    j_est.push(j);
                    j_t.push(j_truth[i]);
                }
            }
            let row = Row {
                duplicate_prob,
                backend: (*name).to_string(),
                cn_are: metrics::average_relative_error(&cn_est, &cn_t, 1e-12),
                cn_mae: metrics::mae(&cn_est, &cn_t),
                jaccard_mae: metrics::mae(&j_est, &j_t),
            };
            table_row(&[
                format!("{:.0}%", duplicate_prob * 100.0),
                (*name).into(),
                row.cn_are.map_or("n/a".into(), |v| format!("{v:.4}")),
                format!("{:.4}", row.cn_mae),
                format!("{:.4}", row.jaccard_mae),
            ]);
            out.write_row(&row);
        }
    }

    crash_recovery_experiment(scale, k);
}

#[derive(Serialize)]
struct RecoveryRow {
    crash_fraction: f64,
    edges_acked: u64,
    edges_recovered: u64,
    snapshot_seq: u64,
    journal_replayed: u64,
    journal_skipped: u64,
    torn_tail_dropped: bool,
    jaccard_max_dev: f64,
    cn_max_dev: f64,
    aa_max_dev: f64,
}

/// Kill a journaled ingest at `crash_fraction` of the stream (leaving a
/// torn half-entry behind, as a crash mid-append does), recover, resume,
/// and compare every estimate against an uninterrupted run.
fn crash_recovery_experiment(scale: Scale, k: usize) {
    let n = match scale {
        Scale::Small => 1_000,
        Scale::Standard => 20_000,
        Scale::Large => 100_000,
    };
    let edges: Vec<_> = BarabasiAlbert::new(n, 4, EXP_SEED).edges().collect();
    let exact = AdjacencyGraph::from_edges(edges.iter().copied());
    let pairs = sample_overlap_pairs(&exact, 600, EXP_SEED);
    let config = || SketchConfig::with_slots(k).seed(EXP_SEED);

    let mut uninterrupted = SketchStore::new(config());
    uninterrupted.insert_stream(edges.iter().copied());

    let mut out = ResultWriter::new("e17_recovery");
    println!("\nE17b — crash recovery vs uninterrupted run (k = {k}, BA n = {n})\n");
    table_header(&[
        "crash at",
        "acked",
        "recovered",
        "replayed",
        "torn",
        "max |ΔJ|",
        "max |ΔCN|",
        "max |ΔAA|",
    ]);
    for crash_fraction in [0.25f64, 0.5, 0.75] {
        let dir = recovery_dir(crash_fraction);
        let crash_at = ((edges.len() as f64) * crash_fraction) as usize;
        let checkpoint_at = crash_at / 2;

        // The serving protocol: journal-then-apply per edge, one
        // checkpoint mid-stream.
        let mut store = SketchStore::new(config());
        let mut journal = Journal::create(&dir, 1, FsyncPolicy::OnRotate).expect("create journal");
        for (i, e) in edges[..crash_at].iter().enumerate() {
            let seq = store.edges_processed() + 1;
            journal
                .append(JournalEntry {
                    seq,
                    u: e.src,
                    v: e.dst,
                })
                .expect("journal append");
            store.insert_edge(e.src, e.dst);
            if i + 1 == checkpoint_at {
                let snap = StoreSnapshot::capture(&store);
                journal.rotate(snap.edges_processed + 1).expect("rotate");
                streamlink_core::checkpoint(
                    &snap,
                    snap.edges_processed,
                    &dir,
                    &mut journal,
                    streamlink_core::DEFAULT_SNAPSHOT_KEEP,
                )
                .expect("checkpoint");
            }
        }
        drop(store); // crash: the in-memory store is gone,
        drop(journal); // the journal file stops mid-entry:
        let segments = journal::list_segments(&dir).expect("list segments");
        let (_, last_segment) = segments.last().expect("an active segment");
        chaos::append_garbage(last_segment, format!("E {} 17", crash_at + 1).as_bytes())
            .expect("plant torn tail");

        let recovery = durable::recover(&dir, config()).expect("recover");
        let mut resumed = recovery.store;
        assert_eq!(
            resumed.edges_processed(),
            crash_at as u64,
            "recovery must restore exactly the acked prefix"
        );
        resumed.insert_stream(edges[crash_at..].iter().copied());

        let mut devs = [0.0f64; 3]; // max |Δ| for J, CN, AA
        for &(u, v) in &pairs {
            let estimates = [
                (uninterrupted.jaccard(u, v), resumed.jaccard(u, v)),
                (
                    uninterrupted.common_neighbors(u, v),
                    resumed.common_neighbors(u, v),
                ),
                (uninterrupted.adamic_adar(u, v), resumed.adamic_adar(u, v)),
            ];
            for (slot, (reference, recovered)) in devs.iter_mut().zip(estimates) {
                match (reference, recovered) {
                    (Some(a), Some(b)) => *slot = slot.max((a - b).abs()),
                    (None, None) => {}
                    _ => *slot = f64::INFINITY, // seen on one side only
                }
            }
        }
        let row = RecoveryRow {
            crash_fraction,
            edges_acked: crash_at as u64,
            edges_recovered: crash_at as u64,
            snapshot_seq: recovery.snapshot_seq,
            journal_replayed: recovery.journal.replayed,
            journal_skipped: recovery.journal.skipped,
            torn_tail_dropped: recovery.journal.torn_tail,
            jaccard_max_dev: devs[0],
            cn_max_dev: devs[1],
            aa_max_dev: devs[2],
        };
        table_row(&[
            format!("{:.0}%", crash_fraction * 100.0),
            row.edges_acked.to_string(),
            row.edges_recovered.to_string(),
            row.journal_replayed.to_string(),
            row.torn_tail_dropped.to_string(),
            format!("{:.1e}", row.jaccard_max_dev),
            format!("{:.1e}", row.cn_max_dev),
            format!("{:.1e}", row.aa_max_dev),
        ]);
        out.write_row(&row);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

fn recovery_dir(fraction: f64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "streamlink-e17-recovery-{}-{}",
        std::process::id(),
        (fraction * 100.0) as u64
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create recovery dir");
    dir
}
