//! **E17 (extension figure)** — estimator error vs stream duplication
//! rate: the plain store (raw degree counters) against the
//! duplicate-robust store (HyperLogLog distinct degrees).
//!
//! Shape to establish: plain-store CN error grows linearly with the
//! re-delivery rate (degrees scale by `1 + rate`), while the robust
//! store's error is flat at the HLL noise floor; Jaccard is flat for
//! both (slots are idempotent).
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_robust [-- --scale ...] [--k N]
//! ```

use datasets::Scale;
use graphstream::adapters::NoiseInjector;
use graphstream::{AdjacencyGraph, BarabasiAlbert, EdgeStream};
use linkpred::evaluate::sample_overlap_pairs;
use linkpred::metrics;
use serde::Serialize;
use streamlink_bench::{
    flag_value, scale_from_args, table_header, table_row, ResultWriter, EXP_SEED,
};
use streamlink_core::{RobustStore, SketchConfig, SketchStore};

#[derive(Serialize)]
struct Row {
    duplicate_prob: f64,
    backend: String,
    cn_are: Option<f64>,
    cn_mae: f64,
    jaccard_mae: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let k: usize = flag_value(&args, "--k").map_or(256, |v| v.parse().expect("bad --k"));
    let n = match scale {
        Scale::Small => 1_000,
        Scale::Standard => 20_000,
        Scale::Large => 100_000,
    };
    let clean = BarabasiAlbert::new(n, 4, EXP_SEED);
    let exact = AdjacencyGraph::from_edges(clean.edges());
    let pairs = sample_overlap_pairs(&exact, 600, EXP_SEED);
    let cn_truth: Vec<f64> = pairs
        .iter()
        .map(|&(u, v)| exact.common_neighbors(u, v) as f64)
        .collect();
    let j_truth: Vec<f64> = pairs.iter().map(|&(u, v)| exact.jaccard(u, v)).collect();

    let mut out = ResultWriter::new("e17_robust");
    println!("\nE17 — error vs duplication rate (k = {k}, BA n = {n})\n");
    table_header(&["dup rate", "backend", "CN ARE", "CN MAE", "J MAE"]);
    for duplicate_prob in [0.0f64, 0.25, 0.5, 1.0] {
        let injector = NoiseInjector {
            duplicate_prob,
            self_loop_prob: 0.02,
            max_reorder: 8,
            seed: 3,
        };
        let noisy = injector.apply(&clean);

        let mut plain = SketchStore::new(SketchConfig::with_slots(k).seed(EXP_SEED));
        plain.insert_stream(noisy.as_slice().iter().copied());
        let mut robust = RobustStore::new(SketchConfig::with_slots(k).seed(EXP_SEED), 10);
        robust.insert_stream(noisy.as_slice().iter().copied());

        type CnFn<'a> = Box<
            dyn Fn(graphstream::VertexId, graphstream::VertexId) -> (Option<f64>, Option<f64>) + 'a,
        >;
        let backends: [(&str, CnFn); 2] = [
            (
                "plain",
                Box::new(|u, v| (plain.common_neighbors(u, v), plain.jaccard(u, v))),
            ),
            (
                "robust",
                Box::new(|u, v| (robust.common_neighbors(u, v), robust.jaccard(u, v))),
            ),
        ];
        for (name, score) in &backends {
            let mut cn_est = Vec::new();
            let mut cn_t = Vec::new();
            let mut j_est = Vec::new();
            let mut j_t = Vec::new();
            for (i, &(u, v)) in pairs.iter().enumerate() {
                let (cn, j) = score(u, v);
                if let Some(cn) = cn {
                    cn_est.push(cn);
                    cn_t.push(cn_truth[i]);
                }
                if let Some(j) = j {
                    j_est.push(j);
                    j_t.push(j_truth[i]);
                }
            }
            let row = Row {
                duplicate_prob,
                backend: (*name).to_string(),
                cn_are: metrics::average_relative_error(&cn_est, &cn_t, 1e-12),
                cn_mae: metrics::mae(&cn_est, &cn_t),
                jaccard_mae: metrics::mae(&j_est, &j_t),
            };
            table_row(&[
                format!("{:.0}%", duplicate_prob * 100.0),
                (*name).into(),
                row.cn_are.map_or("n/a".into(), |v| format!("{v:.4}")),
                format!("{:.4}", row.cn_mae),
                format!("{:.4}", row.jaccard_mae),
            ]);
            out.write_row(&row);
        }
    }
}
