//! **E27 (performance observability plane)** — two gated legs proving
//! the loadgen + `/profilez` plane measures the server without
//! becoming the load:
//!
//! 1. **Overhead leg.** Serve-path command throughput (the real
//!    [`protocol::handle_command`] path: parse/execute phase
//!    histograms, trace spans, registry counters all hot) with the
//!    profiling plane *exercised* vs idle. Exercised means what a
//!    monitored production box sees, densified: an HTTP scraper
//!    polling `/metrics` and `/profilez` once a second, plus a
//!    profile aggregation over the full span ring every
//!    [`PROFILE_PERIOD`] — ~20× denser than any real operator
//!    dashboard. `--max-overhead-pct N` gates the delta (CI runs 10;
//!    the docs/OPERATIONS.md §14 budget is 5% on release builds).
//!
//! 2. **SLO leg.** A live durable server (WAL + checkpoints + accuracy
//!    auditor + HTTP scrape plane, all on) is driven by the *real*
//!    `streamlink loadgen` command — open-loop, coordinated-omission-
//!    safe — at the scale's offered rate, while a scraper hammers the
//!    observability endpoints. The run's `streamlink.loadreport.v1`
//!    verdict (p99 against the pinned SLO) is the gate, and the report
//!    row lands in `results/e27_loadgen.jsonl`.
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_loadgen -- \
//!     [--scale small|standard|large] [--max-overhead-pct 10] [--slo-p99-ms MS]
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use datasets::{Scale, SimulatedDataset};
use graphstream::EdgeStream;
use serde::Serialize;
use streamlink_bench::{
    flag_value, scale_from_args, table_header, table_row, ResultWriter, EXP_SEED,
};
use streamlink_cli::server::{http, persistence, protocol, ServerConfig, ServerState};
use streamlink_core::journal::FsyncPolicy;
use streamlink_core::loadgen::LoadReport;
use streamlink_core::{trace, SketchConfig, SketchStore, WireFormat};

/// Serve-path repetitions per mode; best-of-N is reported.
const REPS: usize = 5;

/// Profile-aggregation cadence in exercised mode — far denser than the
/// 1 Hz an operator dashboard would use, so the gate bounds from above.
const PROFILE_PERIOD: Duration = Duration::from_millis(50);

/// HTTP scrape cadence in exercised mode (the Prometheus default).
const SCRAPE_PERIOD: Duration = Duration::from_secs(1);

#[derive(Serialize)]
struct OverheadRow {
    leg: &'static str,
    dataset: String,
    k: usize,
    edges: u64,
    reps: usize,
    idle_best_secs: f64,
    exercised_best_secs: f64,
    overhead_pct: f64,
    profiles_aggregated: u64,
    scrapes_completed: u64,
}

#[derive(Serialize)]
struct SloRow {
    leg: &'static str,
    scale: String,
    offered_ops_per_sec: u64,
    achieved_ops_per_sec: f64,
    ops_ok: u64,
    ops_err: u64,
    ops_shed: u64,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    slo_p99_ms: u64,
    slo_pass: bool,
    profile_nodes: u64,
}

/// One timed pass through the full serve path: every edge becomes an
/// `INSERT` command line handled exactly as a connection thread would.
fn serve_path_secs(edges: &[graphstream::Edge], state: &ServerState) -> f64 {
    let t = Instant::now();
    for e in edges {
        let reply = protocol::handle_command(state, &format!("INSERT {} {}", e.src.0, e.dst.0));
        debug_assert!(reply.starts_with("OK"), "{reply}");
    }
    let secs = t.elapsed().as_secs_f64();
    std::hint::black_box(state.read_store().edges_processed());
    secs
}

/// One full GET over a fresh connection; true on a 200 with a body.
fn scrape_once(addr: SocketAddr, target: &str) -> bool {
    let Ok(mut conn) = TcpStream::connect_timeout(&addr, Duration::from_millis(500)) else {
        return false;
    };
    let _ = conn.set_read_timeout(Some(Duration::from_secs(2)));
    if write!(conn, "GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n").is_err() {
        return false;
    }
    let mut body = String::new();
    conn.read_to_string(&mut body).is_ok() && body.starts_with("HTTP/1.1 200")
}

/// The overhead leg: idle vs exercised profiling plane around the same
/// serve-path loop. Returns the worst overhead percentage.
fn overhead_leg(scale: Scale, out: &mut ResultWriter) -> f64 {
    let dataset = SimulatedDataset::DblpLike;
    let edges: Vec<_> = dataset.stream(scale).edges().collect();
    println!(
        "\noverhead leg: dataset {} ({} edges, best of {REPS} serve-path runs per mode;\n\
         exercised = /metrics+/profilez scrape @1Hz + full-ring profile every {:?})",
        dataset.spec().key,
        edges.len(),
        PROFILE_PERIOD,
    );
    table_header(&[
        "k",
        "idle (s)",
        "exercised (s)",
        "overhead %",
        "profiles",
        "scrapes",
    ]);

    let mut worst_pct = f64::NEG_INFINITY;
    for &k in &[64usize, 256] {
        let fresh = |k: usize| {
            ServerState::in_memory(
                SketchStore::new(SketchConfig::with_slots(k).seed(EXP_SEED)),
                ServerConfig::default(),
            )
        };
        // Warm caches once so neither mode pays first-touch costs.
        serve_path_secs(&edges, &fresh(k));

        let idle = (0..REPS)
            .map(|_| serve_path_secs(&edges, &fresh(k)))
            .fold(f64::INFINITY, f64::min);

        // Exercised: HTTP plane up, scraper + profile aggregator live.
        let state = Arc::new(fresh(k));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind http");
        let addr = listener.local_addr().expect("http addr");
        let handle = http::spawn(listener, Arc::clone(&state)).expect("spawn http");
        let stop = Arc::new(AtomicBool::new(false));
        let profiles = Arc::new(AtomicU64::new(0));
        let scrapes = Arc::new(AtomicU64::new(0));
        let aggregator = {
            let (stop, profiles) = (Arc::clone(&stop), Arc::clone(&profiles));
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::hint::black_box(trace::render_profilez_json(trace::RING_CAPACITY));
                    profiles.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(PROFILE_PERIOD);
                }
            })
        };
        let scraper = {
            let (stop, scrapes) = (Arc::clone(&stop), Arc::clone(&scrapes));
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for target in ["/metrics", "/profilez"] {
                        if scrape_once(addr, target) {
                            scrapes.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    std::thread::sleep(SCRAPE_PERIOD);
                }
            })
        };
        let exercised = (0..REPS)
            .map(|_| serve_path_secs(&edges, &fresh(k)))
            .fold(f64::INFINITY, f64::min);
        stop.store(true, Ordering::Relaxed);
        aggregator.join().expect("aggregator");
        scraper.join().expect("scraper");
        state.request_shutdown();
        handle.join().expect("http thread");

        let pct = (exercised - idle) / idle * 100.0;
        worst_pct = worst_pct.max(pct);
        table_row(&[
            k.to_string(),
            format!("{idle:.4}"),
            format!("{exercised:.4}"),
            format!("{pct:+.2}"),
            profiles.load(Ordering::Relaxed).to_string(),
            scrapes.load(Ordering::Relaxed).to_string(),
        ]);
        out.write_row(&OverheadRow {
            leg: "overhead",
            dataset: dataset.spec().key.to_string(),
            k,
            edges: edges.len() as u64,
            reps: REPS,
            idle_best_secs: idle,
            exercised_best_secs: exercised,
            overhead_pct: pct,
            profiles_aggregated: profiles.load(Ordering::Relaxed),
            scrapes_completed: scrapes.load(Ordering::Relaxed),
        });
    }
    worst_pct
}

/// Offered rate, op count, and pinned p99 SLO per scale. The SLO is
/// deliberately loose for shared CI runners — it exists to catch
/// collapse (a stalled serve path blows it by orders of magnitude),
/// not to benchmark the hardware.
fn slo_params(scale: Scale) -> (u64, u64, u64) {
    match scale {
        Scale::Small => (2_000, 10_000, 250),
        Scale::Standard => (5_000, 50_000, 150),
        Scale::Large => (10_000, 200_000, 100),
    }
}

/// The SLO leg: the real `loadgen` command against a live durable
/// server under scrape + audit + checkpoint load.
fn slo_leg(scale: Scale, slo_override: Option<u64>, out: &mut ResultWriter) -> bool {
    let (rate, ops, default_slo) = slo_params(scale);
    let slo_p99_ms = slo_override.unwrap_or(default_slo);

    let dir = std::env::temp_dir().join(format!("streamlink-e27-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let sketch_config = SketchConfig::with_slots(256).seed(EXP_SEED);
    let (persist, recovery) = persistence::open(
        &dir,
        sketch_config,
        FsyncPolicy::OnRotate,
        WireFormat::TextV2,
    )
    .expect("open data dir");
    // Aggressive audit + checkpoint cadence: the SLO must hold while
    // the server is also journaling, snapshotting, and auditing.
    let config = ServerConfig {
        snapshot_every: Duration::from_millis(500),
        snapshot_every_edges: 5_000,
        audit_interval: Duration::from_millis(200),
        audit_pairs: 64,
        metrics_log_every: Duration::ZERO,
        ..ServerConfig::default()
    };
    let snapshot_seq = recovery.next_seq().saturating_sub(1);
    let state = Arc::new(ServerState::with_persistence(
        recovery.store,
        persist,
        snapshot_seq,
        config,
    ));

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind tcp");
    let addr = listener.local_addr().expect("tcp addr");
    let http_listener = TcpListener::bind("127.0.0.1:0").expect("bind http");
    let http_addr = http_listener.local_addr().expect("http addr");
    let http_handle = http::spawn(http_listener, Arc::clone(&state)).expect("spawn http");
    let serve_state = Arc::clone(&state);
    let serve_handle =
        std::thread::spawn(move || streamlink_cli::server::serve(listener, &serve_state));

    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                for target in ["/metrics", "/healthz", "/profilez"] {
                    let _ = scrape_once(http_addr, target);
                }
                std::thread::sleep(Duration::from_millis(250));
            }
        })
    };

    println!(
        "\nSLO leg: loadgen vs live durable server at {addr} \
         (rate {rate}/s, {ops} ops, audit @200ms, checkpoint @500ms/5k edges,\n\
         scrape /metrics+/healthz+/profilez @4Hz, pinned p99 SLO {slo_p99_ms}ms)"
    );
    let report_path = dir.join("loadreport.json");
    let argv: Vec<String> = [
        "--addr",
        &addr.to_string(),
        "--rate",
        &rate.to_string(),
        "--ops",
        &ops.to_string(),
        "--conns",
        "4",
        "--seed",
        &EXP_SEED.to_string(),
        "--slo-p99-ms",
        &slo_p99_ms.to_string(),
        "--report",
        &report_path.display().to_string(),
    ]
    .iter()
    .map(ToString::to_string)
    .collect();
    let exit = streamlink_cli::commands::loadgen::run(&argv).expect("loadgen run");

    // The profile the run leaves behind must be coherent — this is the
    // live-fire check that /profilez describes the workload just driven.
    let profile = trace::profile(trace::RING_CAPACITY);
    assert!(profile.spans > 0, "profile saw no spans under load");
    for node in &profile.nodes {
        assert!(
            node.exclusive_ns <= node.inclusive_ns,
            "incoherent profile node {}",
            node.op
        );
    }

    stop.store(true, Ordering::Relaxed);
    scraper.join().expect("scraper");
    state.request_shutdown();
    serve_handle
        .join()
        .expect("serve thread")
        .expect("serve ok");
    http_handle.join().expect("http thread");

    let report =
        LoadReport::parse_json(&std::fs::read_to_string(&report_path).expect("report file"))
            .expect("parse loadreport");
    let _ = std::fs::remove_dir_all(&dir);

    table_header(&[
        "offered/s",
        "achieved/s",
        "ok",
        "err",
        "shed",
        "p99 (ms)",
        "slo",
    ]);
    table_row(&[
        report.offered_ops_per_sec.to_string(),
        format!("{:.0}", report.achieved_ops_per_sec),
        report.ops_ok.to_string(),
        report.ops_err.to_string(),
        report.ops_shed.to_string(),
        format!("{:.3}", report.latency.p99_ns as f64 / 1e6),
        if report.slo_pass { "pass" } else { "BREACH" }.to_string(),
    ]);
    out.write_row(&SloRow {
        leg: "slo",
        scale: format!("{scale:?}"),
        offered_ops_per_sec: report.offered_ops_per_sec,
        achieved_ops_per_sec: report.achieved_ops_per_sec,
        ops_ok: report.ops_ok,
        ops_err: report.ops_err,
        ops_shed: report.ops_shed,
        p50_ns: report.latency.p50_ns,
        p99_ns: report.latency.p99_ns,
        p999_ns: report.latency.p999_ns,
        slo_p99_ms,
        slo_pass: report.slo_pass,
        profile_nodes: profile.nodes.len() as u64,
    });
    exit == 0 && report.slo_pass
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let max_overhead_pct: Option<f64> = flag_value(&args, "--max-overhead-pct")
        .map(|v| v.parse().expect("--max-overhead-pct expects a number"));
    let slo_override: Option<u64> = flag_value(&args, "--slo-p99-ms")
        .map(|v| v.parse().expect("--slo-p99-ms expects a number"));
    let mut out = ResultWriter::new("e27_loadgen");

    println!("\nE27 — performance observability plane ({scale:?})");

    let worst_pct = overhead_leg(scale, &mut out);
    let slo_ok = slo_leg(scale, slo_override, &mut out);

    let mut failed = false;
    if let Some(limit) = max_overhead_pct {
        if worst_pct > limit {
            eprintln!("FAIL: profiling-plane overhead {worst_pct:.2}% exceeds the {limit}% budget");
            failed = true;
        } else {
            println!(
                "\nPASS: worst profiling-plane overhead {worst_pct:.2}% within the {limit}% budget"
            );
        }
    }
    if !slo_ok {
        eprintln!("FAIL: loadgen run breached its pinned p99 SLO (see report row)");
        failed = true;
    } else {
        println!("PASS: loadgen run met its pinned p99 SLO");
    }
    if failed {
        std::process::exit(1);
    }
}
