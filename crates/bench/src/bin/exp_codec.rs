//! **E24 (codec)** — storage-format shootout: text v2 vs binary v3 on
//! the same durable workload, gating the claim that v3 makes recovery
//! **≥ 5× faster** and the on-disk artifacts **smaller** while the v2
//! path stays fully readable.
//!
//! Per format, one simulated server lifetime: journal `n` edges
//! (fsync-never, so timings measure encode/decode, not the disk), fire
//! a mid-stream checkpoint (snapshot + rotation in the journal's
//! format), leave the second half as a WAL tail, then time cold
//! recovery — snapshot load plus tail replay — and audit that both
//! formats recover the identical store. Durations are the best of
//! three runs to shed scheduler noise.
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_codec -- \
//!     [--scale small|standard|large] [--min-replay-speedup 5.0]
//! ```
//!
//! Exits nonzero if v3 recovery speedup falls below the gate, v3
//! artifacts are not smaller, or the recovered stores diverge — CI runs
//! this as a regression gate.

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use graphstream::VertexId;
use serde::Serialize;
use streamlink_bench::{flag_value, scale_from_args, ResultWriter, EXP_SEED};
use streamlink_core::journal::{self, FsyncPolicy, Journal, JournalEntry};
use streamlink_core::snapshot::StoreSnapshot;
use streamlink_core::{durable, SketchConfig, SketchStore, WireFormat};

const KEEP: usize = 2;
const RUNS: usize = 3;

/// Deterministic xorshift64 PRNG so both formats see the same stream.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

#[derive(Serialize)]
struct Row {
    format: String,
    edges: u64,
    wal_bytes: u64,
    snapshot_bytes: u64,
    ingest_ms: f64,
    checkpoint_ms: f64,
    snapshot_load_ms: f64,
    replay_ms: f64,
    recover_ms: f64,
    recovered_edges: u64,
    recovered_vertices: u64,
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("streamlink-exp-codec-{}-{tag}", std::process::id()))
}

fn dir_bytes(dir: &PathBuf, prefix: &str) -> u64 {
    fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(Result::ok)
                .filter(|e| e.file_name().to_string_lossy().starts_with(prefix))
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

/// One full lifetime + cold recovery under `format`. Timings are the
/// best of [`RUNS`] repetitions over freshly rebuilt directories.
fn run_format(format: WireFormat, edges: u64) -> Row {
    let config = SketchConfig::with_slots(64).seed(EXP_SEED);
    let mut best: Option<Row> = None;
    for run in 0..RUNS {
        let dir = temp_dir(&format!("{}-{run}", format.name()));
        let _ = fs::remove_dir_all(&dir);
        let mut rng = Rng::new(EXP_SEED);
        let mut journal = Journal::create_with_format(&dir, 1, FsyncPolicy::Never, format, None)
            .expect("create journal");
        let mut store = SketchStore::new(config);

        // First half: journaled edges folded into the checkpoint.
        let half = edges / 2;
        let ingest_start = Instant::now();
        for _ in 0..half {
            let (u, v) = (VertexId(rng.below(10_000)), VertexId(rng.below(10_000)));
            let seq = journal.next_seq();
            journal.append(JournalEntry { seq, u, v }).expect("append");
            store.insert_edge(u, v);
        }
        let checkpoint_start = Instant::now();
        let snapshot = StoreSnapshot::capture(&store);
        let wal_seq = journal.next_seq() - 1;
        journal.rotate(wal_seq + 1).expect("rotate");
        durable::checkpoint(&snapshot, wal_seq, &dir, &mut journal, KEEP).expect("checkpoint");
        let checkpoint_ms = checkpoint_start.elapsed().as_secs_f64() * 1e3;

        // Second half: the WAL tail recovery must replay.
        for _ in half..edges {
            let (u, v) = (VertexId(rng.below(10_000)), VertexId(rng.below(10_000)));
            let seq = journal.next_seq();
            journal.append(JournalEntry { seq, u, v }).expect("append");
            store.insert_edge(u, v);
        }
        let ingest_ms = ingest_start.elapsed().as_secs_f64() * 1e3 - checkpoint_ms;
        drop(journal);

        let wal_bytes = dir_bytes(&dir, "wal.");
        let snapshot_bytes = dir_bytes(&dir, "snapshot.");

        // Cold recovery, componentized: snapshot load, then tail replay.
        // (`durable::recover` does both in one call; timing them apart
        // shows where each format spends its time.)
        let load_start = Instant::now();
        let generations = durable::list_generations(&dir).expect("list generations");
        let (snap_seq, snap_path) = generations.last().expect("one generation");
        let (snap, _integrity) =
            StoreSnapshot::read_with_integrity(snap_path).expect("read snapshot");
        let mut recovered = snap.restore();
        let snapshot_load_ms = load_start.elapsed().as_secs_f64() * 1e3;
        let replay_start = Instant::now();
        let report = journal::replay(&dir, *snap_seq, |e| {
            recovered.insert_edge(e.u, e.v);
        })
        .expect("replay");
        let replay_ms = replay_start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(report.quarantined, 0, "clean dir must replay clean");
        assert!(!report.torn_tail, "clean dir must have no torn tail");
        assert_eq!(
            recovered.edges_processed(),
            store.edges_processed(),
            "{} recovery dropped edges",
            format.name()
        );

        let row = Row {
            format: format.name().to_string(),
            edges,
            wal_bytes,
            snapshot_bytes,
            ingest_ms,
            checkpoint_ms,
            snapshot_load_ms,
            replay_ms,
            recover_ms: snapshot_load_ms + replay_ms,
            recovered_edges: recovered.edges_processed(),
            recovered_vertices: recovered.vertex_count() as u64,
        };
        let _ = fs::remove_dir_all(&dir);
        best = Some(match best.take() {
            Some(b) if b.recover_ms <= row.recover_ms => b,
            _ => row,
        });
    }
    best.expect("RUNS > 0")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let edges: u64 = match scale_from_args(&args) {
        datasets::Scale::Small => 50_000,
        datasets::Scale::Standard => 200_000,
        datasets::Scale::Large => 800_000,
    };
    let min_speedup: f64 = flag_value(&args, "--min-replay-speedup")
        .map(|s| s.parse().expect("--min-replay-speedup takes a number"))
        .unwrap_or(5.0);

    let mut writer = ResultWriter::new("codec");
    println!(
        "{:>6} {:>9} {:>11} {:>11} {:>10} {:>10} {:>10}",
        "format", "edges", "wal_bytes", "snap_bytes", "load_ms", "replay_ms", "recover_ms"
    );
    let rows: Vec<Row> = [WireFormat::TextV2, WireFormat::BinaryV3]
        .into_iter()
        .map(|f| run_format(f, edges))
        .collect();
    for row in &rows {
        println!(
            "{:>6} {:>9} {:>11} {:>11} {:>10.2} {:>10.2} {:>10.2}",
            row.format,
            row.edges,
            row.wal_bytes,
            row.snapshot_bytes,
            row.snapshot_load_ms,
            row.replay_ms,
            row.recover_ms
        );
        writer.write_row(row);
    }

    let (v2, v3) = (&rows[0], &rows[1]);
    let speedup = v2.recover_ms / v3.recover_ms.max(1e-9);
    let wal_ratio = v3.wal_bytes as f64 / v2.wal_bytes.max(1) as f64;
    let snap_ratio = v3.snapshot_bytes as f64 / v2.snapshot_bytes.max(1) as f64;
    println!(
        "# recovery speedup {speedup:.1}x (gate >= {min_speedup:.1}x); v3/v2 bytes: \
         wal {wal_ratio:.2}, snapshot {snap_ratio:.2}"
    );
    writer.write_row(&serde_json::json!({
        "summary": true,
        "edges": edges,
        "recover_speedup": speedup,
        "wal_bytes_ratio": wal_ratio,
        "snapshot_bytes_ratio": snap_ratio,
    }));

    let mut failed = false;
    if v2.recovered_edges != v3.recovered_edges || v2.recovered_vertices != v3.recovered_vertices {
        eprintln!("FAIL: formats recovered different stores");
        failed = true;
    }
    if speedup < min_speedup {
        eprintln!("FAIL: recovery speedup {speedup:.1}x below the {min_speedup:.1}x gate");
        failed = true;
    }
    if v3.wal_bytes >= v2.wal_bytes || v3.snapshot_bytes >= v2.snapshot_bytes {
        eprintln!("FAIL: v3 artifacts are not smaller than v2");
        failed = true;
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
