//! **E14 (extension figure)** — LSH retrieval quality/cost trade-off:
//! candidate-set size, recall of the brute-force top-10, and measured
//! speedup as the banding scheme `(bands, rows)` sweeps the threshold.
//!
//! Shape to establish: lowering the threshold (more bands / fewer rows)
//! raises recall monotonically and inflates the candidate set — the
//! classic LSH trade-off curve; at equal slots, `(48, 2)`-style schemes
//! dominate for collaboration-graph similarity levels.
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_lsh [-- --scale ...]
//! ```

use std::time::Instant;

use graphstream::{EdgeStream, VertexId};
use serde::Serialize;
use streamlink_bench::{
    all_datasets, scale_from_args, table_header, table_row, ResultWriter, EXP_SEED,
};
use streamlink_core::{LshIndex, SketchConfig, SketchStore};

#[derive(Serialize)]
struct Row {
    dataset: String,
    bands: usize,
    rows: usize,
    threshold: f64,
    avg_candidates: f64,
    recall_top10: Option<f64>,
    brute_ms_per_query: f64,
    lsh_ms_per_query: f64,
    speedup: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let k = 128usize;
    let mut out = ResultWriter::new("e14_lsh");

    println!("\nE14 — LSH retrieval trade-off (k = {k}, {scale:?})\n");
    for (dataset, stream) in all_datasets(scale) {
        let mut store = SketchStore::new(SketchConfig::with_slots(k).seed(EXP_SEED));
        store.insert_stream(stream.edges());
        let queries: Vec<VertexId> = {
            let mut v: Vec<VertexId> = store.vertices().collect();
            v.sort_unstable();
            v.into_iter()
                .step_by((v_len(&store) / 50).max(1))
                .take(50)
                .collect()
        };

        // Brute-force top-10 per query (ground truth for recall).
        let t = Instant::now();
        let brute: Vec<Vec<(VertexId, f64)>> = queries
            .iter()
            .map(|&q| {
                let mut scored: Vec<(VertexId, f64)> = store
                    .vertices()
                    .filter(|&v| v != q)
                    .filter_map(|v| store.jaccard(q, v).map(|j| (v, j)))
                    .filter(|&(_, j)| j > 0.0)
                    .collect();
                scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
                scored.truncate(10);
                scored
            })
            .collect();
        let brute_ms = t.elapsed().as_secs_f64() * 1000.0 / queries.len() as f64;

        println!("dataset {}", dataset.spec().key);
        table_header(&[
            "bands x rows",
            "threshold",
            "cands/query",
            "recall@10",
            "speedup",
        ]);
        for (bands, rows) in [(16usize, 8usize), (32, 4), (42, 3), (64, 2), (128, 1)] {
            let index = LshIndex::build(&store, bands, rows).expect("k = 128 fits");
            let threshold = index.threshold();

            let t = Instant::now();
            let mut candidate_total = 0usize;
            let lsh_tops: Vec<Vec<(VertexId, f64)>> = queries
                .iter()
                .map(|&q| {
                    candidate_total += index.candidates(&store, q).len();
                    index.top_k(&store, q, 10)
                })
                .collect();
            let lsh_ms = t.elapsed().as_secs_f64() * 1000.0 / queries.len() as f64;

            // Recall of above-threshold brute-force entries.
            let (mut relevant, mut recovered) = (0usize, 0usize);
            for (bf, approx) in brute.iter().zip(&lsh_tops) {
                let got: std::collections::HashSet<VertexId> =
                    approx.iter().map(|&(v, _)| v).collect();
                for &(v, j) in bf {
                    if j >= threshold {
                        relevant += 1;
                        recovered += usize::from(got.contains(&v));
                    }
                }
            }
            let row = Row {
                dataset: dataset.spec().key.to_string(),
                bands,
                rows,
                threshold,
                avg_candidates: candidate_total as f64 / queries.len() as f64,
                recall_top10: (relevant > 0).then(|| recovered as f64 / relevant as f64),
                brute_ms_per_query: brute_ms,
                lsh_ms_per_query: lsh_ms,
                speedup: brute_ms / lsh_ms.max(1e-9),
            };
            table_row(&[
                format!("{bands}x{rows}"),
                format!("{threshold:.3}"),
                format!("{:.1}", row.avg_candidates),
                row.recall_top10.map_or("n/a".into(), |r| format!("{r:.3}")),
                format!("{:.1}x", row.speedup),
            ]);
            out.write_row(&row);
        }
        println!();
    }
}

fn v_len(store: &SketchStore) -> usize {
    store.vertex_count()
}
