//! **E18 (extension figure)** — sliding-window vs whole-stream sketches
//! on a drifting stream: recency accuracy and memory over time.
//!
//! Workload: a stream whose community structure rotates every phase
//! (vertices migrate between neighborhoods). Ground truth is the exact
//! graph over the *last W edges*. The whole-stream store smears the
//! regimes together; the windowed store tracks the current one at a
//! bounded memory footprint.
//!
//! Shape to establish: windowed Jaccard error vs the recent-window truth
//! stays flat across phases while the whole-stream store's error grows
//! with every regime shift and never recovers. Memory is reported for
//! honesty: over a *fixed* vertex universe both stores plateau — the
//! windowed store ~#epochs× higher (per-epoch sketches of the same
//! vertices); its memory advantage appears when the vertex universe
//! itself churns (old ids age out entirely, as in the `trending_window`
//! example).
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_window [-- --scale ...] [--k N]
//! ```

use datasets::Scale;
use graphstream::{AdjacencyGraph, Edge, VertexId};
use hashkit::mix64;
use linkpred::metrics;
use serde::Serialize;
use streamlink_bench::{
    flag_value, scale_from_args, table_header, table_row, ResultWriter, EXP_SEED,
};
use streamlink_core::{SketchConfig, SketchStore, WindowedStore};

#[derive(Serialize)]
struct Row {
    phase: usize,
    backend: String,
    jaccard_mae_vs_recent: f64,
    memory_mib: f64,
}

/// One phase of the drifting stream: the SAME vertex universe, but the
/// community assignment is re-drawn every phase — every vertex migrates,
/// so neighborhoods from earlier phases are stale, not merely absent.
fn phase_edges(phase: usize, n: u64, edges_per_phase: usize) -> Vec<Edge> {
    let communities = (n / 40).max(2); // ~40 vertices per community
    let community = |v: u64| mix64(EXP_SEED ^ (phase as u64) << 48 ^ v) % communities;
    let mut edges = Vec::with_capacity(edges_per_phase);
    let mut i = 0u64;
    while edges.len() < edges_per_phase {
        let r = mix64(EXP_SEED ^ ((phase as u64) << 32) ^ i);
        i += 1;
        let u = r % n;
        let v = (r >> 32) % n;
        // Keep only intra-community pairs: dense clustered neighborhoods
        // that rotate wholesale each phase.
        if u != v && community(u) == community(v) {
            edges.push(Edge::new(u, v, edges.len() as u64));
        }
    }
    edges
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let k: usize = flag_value(&args, "--k").map_or(128, |v| v.parse().expect("bad --k"));
    let (n, edges_per_phase, phases) = match scale {
        Scale::Small => (1_000u64, 5_000usize, 6usize),
        Scale::Standard => (10_000, 50_000, 8),
        Scale::Large => (40_000, 200_000, 10),
    };
    let window_edges = edges_per_phase as u64; // window ≈ one phase

    let mut out = ResultWriter::new("e18_window");
    println!(
        "\nE18 — windowed vs whole-stream sketches over {phases} drift phases \
         (k = {k}, {edges_per_phase} edges/phase)\n"
    );
    table_header(&["phase", "backend", "J MAE (recent)", "MiB"]);

    let cfg = SketchConfig::with_slots(k).seed(EXP_SEED);
    let mut whole = SketchStore::new(cfg);
    let mut windowed = WindowedStore::new(cfg, window_edges / 4, 4);

    for phase in 0..phases {
        let edges = phase_edges(phase, n, edges_per_phase);
        let recent_truth = AdjacencyGraph::from_edges(edges.iter().copied());
        for e in &edges {
            whole.insert_edge(e.src, e.dst);
            windowed.insert_edge(e.src, e.dst);
        }

        // Query pairs from the current phase's block with true overlap.
        let pairs = linkpred::evaluate::sample_overlap_pairs(&recent_truth, 300, EXP_SEED);
        let truth: Vec<f64> = pairs
            .iter()
            .map(|&(u, v)| recent_truth.jaccard(u, v))
            .collect();

        type JFn<'a> = Box<dyn Fn(VertexId, VertexId) -> Option<f64> + 'a>;
        let backends: [(&str, JFn, f64); 2] = [
            (
                "whole",
                Box::new(|u, v| whole.jaccard(u, v)),
                whole.memory_bytes() as f64 / (1024.0 * 1024.0),
            ),
            (
                "windowed",
                Box::new(|u, v| windowed.jaccard(u, v)),
                windowed.memory_bytes() as f64 / (1024.0 * 1024.0),
            ),
        ];
        for (name, score, mib) in &backends {
            let mut est = Vec::new();
            let mut t = Vec::new();
            for (i, &(u, v)) in pairs.iter().enumerate() {
                if let Some(j) = score(u, v) {
                    est.push(j);
                    t.push(truth[i]);
                }
            }
            let row = Row {
                phase,
                backend: (*name).to_string(),
                jaccard_mae_vs_recent: metrics::mae(&est, &t),
                memory_mib: *mib,
            };
            table_row(&[
                phase.to_string(),
                (*name).into(),
                format!("{:.4}", row.jaccard_mae_vs_recent),
                format!("{:.2}", row.memory_mib),
            ]);
            out.write_row(&row);
        }
    }
}
