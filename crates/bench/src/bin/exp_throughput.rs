//! **E6 (throughput figure)** — ingestion throughput (edges/second) as a
//! function of sketch size `k`, against the exact-adjacency baseline, per
//! dataset.
//!
//! Paper shape to reproduce: per-edge cost is O(k) and *independent of
//! the stream length and graph size* (constant time per edge); throughput
//! therefore falls roughly linearly in k and the exact baseline — with no
//! k to pay for — is faster to ingest but pays at query/memory time
//! (E7/E9).
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_throughput [-- --scale ...]
//! ```

use std::time::Instant;

use graphstream::{AdjacencyGraph, EdgeStream};
use serde::Serialize;
use streamlink_bench::{
    all_datasets, scale_from_args, table_header, table_row, ResultWriter, EXP_SEED, K_SWEEP,
};
use streamlink_core::{SketchConfig, SketchStore};

#[derive(Serialize)]
struct Row {
    dataset: String,
    backend: String,
    k: usize,
    edges: u64,
    seconds: f64,
    edges_per_sec: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let mut out = ResultWriter::new("e6_throughput");

    println!("\nE6 — ingestion throughput vs sketch size ({scale:?})\n");
    for (dataset, stream) in all_datasets(scale) {
        let edges: Vec<_> = stream.edges().collect();
        println!("dataset {} ({} edges)", dataset.spec().key, edges.len());
        table_header(&["backend", "k", "time (s)", "edges/s"]);

        // Exact baseline: build full adjacency.
        let t = Instant::now();
        let g = AdjacencyGraph::from_edges(edges.iter().copied());
        let secs = t.elapsed().as_secs_f64();
        std::hint::black_box(&g);
        let row = Row {
            dataset: dataset.spec().key.to_string(),
            backend: "exact".into(),
            k: 0,
            edges: edges.len() as u64,
            seconds: secs,
            edges_per_sec: edges.len() as f64 / secs,
        };
        table_row(&[
            "exact".into(),
            "-".into(),
            format!("{secs:.3}"),
            format!("{:.0}", row.edges_per_sec),
        ]);
        out.write_row(&row);

        for &k in &K_SWEEP {
            let mut store = SketchStore::new(SketchConfig::with_slots(k).seed(EXP_SEED));
            let t = Instant::now();
            store.insert_stream(edges.iter().copied());
            let secs = t.elapsed().as_secs_f64();
            std::hint::black_box(&store);
            let row = Row {
                dataset: dataset.spec().key.to_string(),
                backend: "sketch".into(),
                k,
                edges: edges.len() as u64,
                seconds: secs,
                edges_per_sec: edges.len() as f64 / secs,
            };
            table_row(&[
                "sketch".into(),
                k.to_string(),
                format!("{secs:.3}"),
                format!("{:.0}", row.edges_per_sec),
            ]);
            out.write_row(&row);
        }
        println!();
    }
}
