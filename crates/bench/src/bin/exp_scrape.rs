//! **E22 (scrape overhead)** — ingestion throughput with a live HTTP
//! scraper polling `/metrics` and `/memz` at 1 Hz vs no scraper,
//! proving the exposition plane stays off the ingest hot path.
//!
//! Methodology mirrors E19/E21: for each sketch size, ingest the same
//! stream several times per mode and keep the best run. Both modes
//! drive the *identical* server insert path ([`ServerState::insert_edge`]
//! with the registry hot); the scrape mode adds what this PR added — an
//! HTTP listener thread plus a client scraping the Prometheus
//! exposition and the memory report once a second, each scrape
//! refreshing the `mem.*` gauges under the store read lock.
//!
//! `--max-overhead-pct N` turns the run into a gate: the process exits
//! nonzero if any sketch size exceeds N% overhead. CI runs
//! `--scale small --max-overhead-pct 10`; the design budget in
//! docs/OPERATIONS.md §10 is 5% on release builds.
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_scrape -- \
//!     [--scale small|standard|large] [--max-overhead-pct 10]
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use datasets::SimulatedDataset;
use graphstream::EdgeStream;
use serde::Serialize;
use streamlink_bench::{
    flag_value, scale_from_args, table_header, table_row, ResultWriter, EXP_SEED,
};
use streamlink_cli::server::{http, ServerConfig, ServerState};
use streamlink_core::{SketchConfig, SketchStore};

/// Ingest repetitions per mode; best-of-N is reported.
const REPS: usize = 5;

/// Scrape cadence — the Prometheus-default 1 Hz worst case.
const SCRAPE_PERIOD: Duration = Duration::from_secs(1);

#[derive(Serialize)]
struct Row {
    dataset: String,
    k: usize,
    edges: u64,
    reps: usize,
    no_scrape_best_secs: f64,
    scrape_best_secs: f64,
    overhead_pct: f64,
    scrapes_completed: u64,
}

fn fresh_state(k: usize) -> ServerState {
    ServerState::in_memory(
        SketchStore::new(SketchConfig::with_slots(k).seed(EXP_SEED)),
        ServerConfig::default(),
    )
}

/// One timed ingest pass through the real server insert path.
fn ingest_secs(edges: &[graphstream::Edge], state: &ServerState) -> f64 {
    let t = Instant::now();
    for e in edges {
        state
            .insert_edge(e.src, e.dst)
            .expect("in-memory insert cannot fail");
    }
    let secs = t.elapsed().as_secs_f64();
    std::hint::black_box(state.read_store().edges_processed());
    secs
}

/// One full GET over a fresh connection; true on a 200 with a body.
fn scrape_once(addr: SocketAddr, target: &str) -> bool {
    let Ok(mut conn) = TcpStream::connect_timeout(&addr, Duration::from_millis(500)) else {
        return false;
    };
    let _ = conn.set_read_timeout(Some(Duration::from_secs(2)));
    if write!(
        conn,
        "GET {target} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n"
    )
    .is_err()
    {
        return false;
    }
    let mut body = String::new();
    conn.read_to_string(&mut body).is_ok() && body.starts_with("HTTP/1.1 200")
}

/// Best-of-REPS ingest with a live 1 Hz scraper; returns the best time
/// and the total scrapes completed across all reps.
fn best_scraped(edges: &[graphstream::Edge], k: usize) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut scrapes_total = 0u64;
    for _ in 0..REPS {
        let state = Arc::new(fresh_state(k));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind scrape port");
        let addr = listener.local_addr().expect("scrape addr");
        let server = http::spawn(listener, Arc::clone(&state)).expect("spawn http plane");

        let stop = Arc::new(AtomicBool::new(false));
        let scrapes = Arc::new(AtomicU64::new(0));
        let scraper = {
            let (stop, scrapes) = (Arc::clone(&stop), Arc::clone(&scrapes));
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if scrape_once(addr, "/metrics") && scrape_once(addr, "/memz") {
                        scrapes.fetch_add(1, Ordering::Relaxed);
                    }
                    let pause = Instant::now();
                    while pause.elapsed() < SCRAPE_PERIOD && !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
            })
        };

        best = best.min(ingest_secs(edges, &state));

        stop.store(true, Ordering::Relaxed);
        scraper.join().expect("scraper thread");
        state.request_shutdown();
        server.join().expect("http thread");
        scrapes_total += scrapes.load(Ordering::Relaxed);
    }
    (best, scrapes_total)
}

fn best_unscraped(edges: &[graphstream::Edge], k: usize) -> f64 {
    (0..REPS)
        .map(|_| ingest_secs(edges, &fresh_state(k)))
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let max_overhead_pct: Option<f64> = flag_value(&args, "--max-overhead-pct")
        .map(|v| v.parse().expect("--max-overhead-pct expects a number"));
    let mut out = ResultWriter::new("e22_scrape_overhead");

    let dataset = SimulatedDataset::DblpLike;
    let stream = dataset.stream(scale);
    let edges: Vec<_> = stream.edges().collect();

    println!("\nE22 — HTTP scrape overhead on ingest ({scale:?})\n");
    println!(
        "dataset {} ({} edges, best of {REPS} runs per mode; /metrics + /memz every {:?})",
        dataset.spec().key,
        edges.len(),
        SCRAPE_PERIOD,
    );
    table_header(&["k", "off (s)", "scraped (s)", "overhead %", "scrapes"]);

    let mut worst_pct = f64::NEG_INFINITY;
    for &k in &[64usize, 256] {
        // Warm caches once so neither mode pays first-touch costs.
        ingest_secs(&edges, &fresh_state(k));

        let off = best_unscraped(&edges, k);
        let (on, scrapes) = best_scraped(&edges, k);

        let pct = (on - off) / off * 100.0;
        worst_pct = worst_pct.max(pct);
        table_row(&[
            k.to_string(),
            format!("{off:.4}"),
            format!("{on:.4}"),
            format!("{pct:+.2}"),
            scrapes.to_string(),
        ]);
        out.write_row(&Row {
            dataset: dataset.spec().key.to_string(),
            k,
            edges: edges.len() as u64,
            reps: REPS,
            no_scrape_best_secs: off,
            scrape_best_secs: on,
            overhead_pct: pct,
            scrapes_completed: scrapes,
        });
    }

    if let Some(limit) = max_overhead_pct {
        if worst_pct > limit {
            eprintln!("FAIL: scrape overhead {worst_pct:.2}% exceeds the {limit}% budget");
            std::process::exit(1);
        }
        println!("\nPASS: worst overhead {worst_pct:.2}% within the {limit}% budget");
    }
}
