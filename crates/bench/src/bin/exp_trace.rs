//! **E21 (tracing + audit overhead)** — ingestion throughput with the
//! trace subsystem and accuracy auditor enabled vs disabled, proving
//! the new observability layers stay inside their overhead budget on
//! the O(k) insert hot path.
//!
//! Methodology mirrors E19 (`exp_metrics`): for each sketch size,
//! ingest the same stream several times per mode and keep the best run
//! (min time strips scheduler noise). Both modes run the *identical*
//! loop shape — the metrics registry stays ON in both, and the
//! auditor's `wants()` hash check is executed in both, so the measured
//! delta isolates exactly what this PR added: sampled span recording,
//! shadow-adjacency maintenance for sampled vertices, and a periodic
//! audit cycle (every [`AUDIT_EVERY_EDGES`] edges, as a background
//! auditor would on a ~30 s interval).
//!
//! `--max-overhead-pct N` turns the run into a gate: the process exits
//! nonzero if any sketch size exceeds N% overhead. CI runs
//! `--scale small --max-overhead-pct 10`; the design budget in
//! docs/OPERATIONS.md §9 is 5% on release builds.
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_trace -- \
//!     [--scale small|standard|large] [--max-overhead-pct 10]
//! ```

use std::time::Instant;

use datasets::SimulatedDataset;
use graphstream::EdgeStream;
use serde::Serialize;
use streamlink_bench::{
    flag_value, scale_from_args, table_header, table_row, ResultWriter, EXP_SEED,
};
use streamlink_core::{trace, AccuracyAuditor, AuditConfig, SketchConfig, SketchStore};

/// Ingest repetitions per mode; best-of-N is reported.
const REPS: usize = 5;

/// Edges between audit cycles in enabled mode — the per-edge-rate
/// equivalent of a background auditor ticking every ~30 s.
const AUDIT_EVERY_EDGES: usize = 200_000;

/// Pairs scored per audit cycle (the `--audit-pairs` default).
const AUDIT_PAIRS: usize = 64;

#[derive(Serialize)]
struct Row {
    dataset: String,
    k: usize,
    edges: u64,
    reps: usize,
    disabled_best_secs: f64,
    enabled_best_secs: f64,
    overhead_pct: f64,
    spans_recorded: u64,
    audit_pairs_scored: u64,
    audit_jaccard_mae: f64,
}

/// One ingest pass. `auditor` is `Some` only in enabled mode, but the
/// per-edge branch structure is identical either way — the disabled
/// mode measures the true cost of having the hooks compiled in.
fn ingest_once(edges: &[graphstream::Edge], k: usize, auditor: Option<&AccuracyAuditor>) -> f64 {
    let mut store = SketchStore::new(SketchConfig::with_slots(k).seed(EXP_SEED));
    let t = Instant::now();
    let mut since_cycle = 0usize;
    for e in edges {
        if let Some(a) = auditor {
            let (u, v) = (e.src, e.dst);
            if a.wants(u) || a.wants(v) {
                let (du, dv) = (store.degree(u), store.degree(v));
                store.insert_edge(u, v);
                a.observe_edge(u, v, du, dv);
            } else {
                store.insert_edge(u, v);
            }
            since_cycle += 1;
            if since_cycle >= AUDIT_EVERY_EDGES {
                since_cycle = 0;
                a.run_cycle(&store, AUDIT_PAIRS);
            }
        } else {
            store.insert_edge(e.src, e.dst);
        }
    }
    let secs = t.elapsed().as_secs_f64();
    std::hint::black_box(&store);
    secs
}

fn best_of(edges: &[graphstream::Edge], k: usize, auditor: Option<&AccuracyAuditor>) -> f64 {
    (0..REPS)
        .map(|_| ingest_once(edges, k, auditor))
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let max_overhead_pct: Option<f64> = flag_value(&args, "--max-overhead-pct")
        .map(|v| v.parse().expect("--max-overhead-pct expects a number"));
    let mut out = ResultWriter::new("e21_trace_overhead");
    let metrics = streamlink_core::metrics::global();

    let dataset = SimulatedDataset::DblpLike;
    let stream = dataset.stream(scale);
    let edges: Vec<_> = stream.edges().collect();

    println!("\nE21 — tracing + audit overhead on ingest ({scale:?})\n");
    println!(
        "dataset {} ({} edges, best of {REPS} runs per mode; audit cycle every {AUDIT_EVERY_EDGES} edges)",
        dataset.spec().key,
        edges.len()
    );
    table_header(&[
        "k",
        "off (s)",
        "on (s)",
        "overhead %",
        "spans",
        "audit pairs",
        "J mae",
    ]);

    // Keep the slow-op threshold at its default (50 ms): no sampled
    // insert span can cross it, so the measured cost excludes log IO —
    // exactly the steady-state serving configuration.
    let mut worst_pct = f64::NEG_INFINITY;
    for &k in &[64usize, 256] {
        // Warm caches once so neither mode pays first-touch costs.
        ingest_once(&edges, k, None);

        // Baseline: metrics ON (the E19-audited configuration this PR
        // started from), trace OFF, no auditor.
        trace::set_enabled(false);
        let disabled = best_of(&edges, k, None);

        // Enabled: trace ON + auditor ON.
        trace::set_enabled(true);
        trace::reset();
        metrics.reset();
        let auditor = AccuracyAuditor::new(AuditConfig::default());
        let enabled = best_of(&edges, k, Some(&auditor));
        let spans = trace::spans_recorded();
        let audit = auditor.snapshot();

        let pct = (enabled - disabled) / disabled * 100.0;
        worst_pct = worst_pct.max(pct);
        table_row(&[
            k.to_string(),
            format!("{disabled:.4}"),
            format!("{enabled:.4}"),
            format!("{pct:+.2}"),
            spans.to_string(),
            audit.pairs_evaluated.to_string(),
            format!("{:.4}", audit.jaccard_mae),
        ]);
        out.write_row(&Row {
            dataset: dataset.spec().key.to_string(),
            k,
            edges: edges.len() as u64,
            reps: REPS,
            disabled_best_secs: disabled,
            enabled_best_secs: enabled,
            overhead_pct: pct,
            spans_recorded: spans,
            audit_pairs_scored: audit.pairs_evaluated,
            audit_jaccard_mae: audit.jaccard_mae,
        });
    }
    trace::set_enabled(true);

    if let Some(limit) = max_overhead_pct {
        if worst_pct > limit {
            eprintln!("FAIL: trace+audit overhead {worst_pct:.2}% exceeds the {limit}% budget");
            std::process::exit(1);
        }
        println!("\nPASS: worst overhead {worst_pct:.2}% within the {limit}% budget");
    }
}
