//! Renders every `results/*.jsonl` experiment output as a Markdown
//! report — the bridge between the raw harness rows and EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_report > results/report.md
//! ```

use std::collections::BTreeMap;

use serde_json::Value;
use streamlink_bench::results_dir;

fn main() {
    let dir = results_dir();
    let mut files: Vec<_> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
            .collect(),
        Err(e) => {
            eprintln!("no results directory at {}: {e}", dir.display());
            eprintln!("run scripts/run_all_experiments.sh first");
            std::process::exit(1);
        }
    };
    files.sort();
    if files.is_empty() {
        eprintln!("no .jsonl files in {}", dir.display());
        std::process::exit(1);
    }

    println!("# Experiment report\n");
    println!("Generated from `{}`.\n", dir.display());
    for path in files {
        let name = path
            .file_stem()
            .map_or_else(String::new, |s| s.to_string_lossy().into_owned());
        let Ok(content) = std::fs::read_to_string(&path) else {
            eprintln!("skipping unreadable {}", path.display());
            continue;
        };
        let rows: Vec<BTreeMap<String, Value>> = content
            .lines()
            .filter(|l| !l.trim().is_empty())
            .filter_map(|l| serde_json::from_str(l).ok())
            .collect();
        println!("## {name}\n");
        if rows.is_empty() {
            println!("_no rows_\n");
            continue;
        }
        render_table(&rows);
        println!();
    }
}

/// Renders rows as a GitHub-flavored Markdown table over the union of
/// keys (sorted; BTreeMap keeps this stable).
fn render_table(rows: &[BTreeMap<String, Value>]) {
    let mut columns: Vec<&str> = Vec::new();
    for row in rows {
        for key in row.keys() {
            if !columns.contains(&key.as_str()) {
                columns.push(key);
            }
        }
    }
    println!("| {} |", columns.join(" | "));
    println!(
        "|{}|",
        columns.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        let cells: Vec<String> = columns
            .iter()
            .map(|c| row.get(*c).map_or_else(String::new, fmt_cell))
            .collect();
        println!("| {} |", cells.join(" | "));
    }
}

/// Compact cell rendering: trims floats to 4 significant decimals.
fn fmt_cell(v: &Value) -> String {
    match v {
        Value::Number(n) => {
            if let Some(f) = n.as_f64() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    format!("{}", f as i64)
                } else {
                    format!("{f:.4}")
                }
            } else {
                n.to_string()
            }
        }
        Value::String(s) => s.clone(),
        Value::Null => "n/a".into(),
        other => other.to_string(),
    }
}
