//! **E12 (scalability figure)** — throughput and total memory as the
//! graph grows from 10⁴ to (at large scale) 10⁶ vertices, plus the
//! parallel-ingestion speedup.
//!
//! Paper shape to reproduce: per-edge cost is flat in graph size
//! (constant time per edge — throughput does not degrade as the stream
//! gets longer), total memory grows linearly in *vertices* only, and
//! sharded ingestion scales near-linearly in threads.
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_scale [-- --scale ...] [--k N]
//! ```

use std::time::Instant;

use datasets::Scale;
use graphstream::{BarabasiAlbert, Edge, EdgeStream};
use serde::Serialize;
use streamlink_bench::{
    flag_value, scale_from_args, table_header, table_row, ResultWriter, EXP_SEED,
};
use streamlink_core::parallel::ingest_parallel;
use streamlink_core::SketchConfig;

#[derive(Serialize)]
struct Row {
    vertices: u64,
    edges: usize,
    k: usize,
    threads: usize,
    seconds: f64,
    edges_per_sec: f64,
    memory_bytes: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let k: usize = flag_value(&args, "--k").map_or(128, |v| v.parse().expect("bad --k"));
    let sizes: &[u64] = match scale {
        Scale::Small => &[1_000, 2_000, 4_000],
        Scale::Standard => &[10_000, 30_000, 100_000, 300_000],
        Scale::Large => &[10_000, 100_000, 1_000_000],
    };
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));
    let mut out = ResultWriter::new("e12_scale");

    println!("\nE12 — scalability (k = {k}, BA m = 4)\n");
    table_header(&["n", "edges", "threads", "time (s)", "edges/s", "MiB"]);
    for &n in sizes {
        let edges: Vec<Edge> = BarabasiAlbert::new(n, 4, EXP_SEED).edges().collect();
        let thread_counts: Vec<usize> = if threads > 1 {
            vec![1, threads]
        } else {
            vec![1]
        };
        for t in thread_counts {
            let cfg = SketchConfig::with_slots(k).seed(EXP_SEED);
            let start = Instant::now();
            let store = ingest_parallel(cfg, &edges, t);
            let secs = start.elapsed().as_secs_f64();
            let row = Row {
                vertices: n,
                edges: edges.len(),
                k,
                threads: t,
                seconds: secs,
                edges_per_sec: edges.len() as f64 / secs,
                memory_bytes: store.memory_bytes(),
            };
            table_row(&[
                n.to_string(),
                edges.len().to_string(),
                t.to_string(),
                format!("{secs:.3}"),
                format!("{:.0}", row.edges_per_sec),
                format!("{:.1}", row.memory_bytes as f64 / (1024.0 * 1024.0)),
            ]);
            out.write_row(&row);
            std::hint::black_box(store);
        }
    }
}
