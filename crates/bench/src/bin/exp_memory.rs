//! **E7 (memory figure)** — resident bytes of the sketch store vs the
//! exact adjacency as a stream *densifies over a fixed vertex set*.
//!
//! This is the cleanest reading of "constant space per vertex": an
//! Erdős–Rényi edge stream over n fixed vertices keeps arriving, degrees
//! grow without bound, exact adjacency grows linearly in the edge count —
//! and the sketch store flat-lines the moment every vertex has been seen.
//! The curves cross where average degree ≈ 0.4·k and diverge from there.
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_memory [-- --scale ...] [--k N]
//! ```

use datasets::Scale;
use graphstream::{AdjacencyGraph, EdgeStream, ErdosRenyi};
use serde::Serialize;
use streamlink_bench::{
    flag_value, scale_from_args, table_header, table_row, ResultWriter, EXP_SEED,
};
use streamlink_core::{SketchConfig, SketchStore};

#[derive(Serialize)]
struct Row {
    edges_processed: u64,
    avg_degree: f64,
    vertices: usize,
    sketch_bytes: usize,
    exact_bytes: usize,
    ratio: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let k: usize = flag_value(&args, "--k").map_or(128, |v| v.parse().expect("bad --k"));
    // Fixed vertex set, growing density: final avg degree = 2m/n.
    let (n, m) = match scale {
        Scale::Small => (500u64, 40_000u64),
        Scale::Standard => (5_000, 1_200_000),
        Scale::Large => (20_000, 8_000_000),
    };
    let stream: Vec<_> = ErdosRenyi::new(n, m, EXP_SEED).edges().collect();

    let mut out = ResultWriter::new("e7_memory");
    println!(
        "\nE7 — memory growth on a densifying stream: sketch (k = {k}) vs exact adjacency\n\
         ER over a fixed set of {n} vertices, {m} edges (final avg degree {:.0})\n",
        2.0 * m as f64 / n as f64
    );
    table_header(&[
        "edges",
        "avg deg",
        "sketch MiB",
        "exact MiB",
        "exact/sketch",
    ]);

    let mut store = SketchStore::new(SketchConfig::with_slots(k).seed(EXP_SEED));
    let mut exact = AdjacencyGraph::new();
    let checkpoints = 12usize;
    let step = stream.len().div_ceil(checkpoints);
    for (i, e) in stream.iter().enumerate() {
        store.insert_edge(e.src, e.dst);
        exact.insert_edge(e.src, e.dst);
        if (i + 1) % step == 0 || i + 1 == stream.len() {
            let row = Row {
                edges_processed: (i + 1) as u64,
                avg_degree: 2.0 * exact.edge_count() as f64 / exact.vertex_count() as f64,
                vertices: store.vertex_count(),
                sketch_bytes: store.memory_bytes(),
                exact_bytes: exact.memory_bytes(),
                ratio: exact.memory_bytes() as f64 / store.memory_bytes() as f64,
            };
            table_row(&[
                row.edges_processed.to_string(),
                format!("{:.1}", row.avg_degree),
                format!("{:.2}", row.sketch_bytes as f64 / (1024.0 * 1024.0)),
                format!("{:.2}", row.exact_bytes as f64 / (1024.0 * 1024.0)),
                format!("{:.3}", row.ratio),
            ]);
            out.write_row(&row);
        }
    }
    println!(
        "\nsketch memory is flat after all {n} vertices are seen ({} bytes/vertex); \
         exact adjacency keeps growing with every edge",
        16 * k
    );
}
