//! **E8 (robustness figure)** — estimation error over stream progress:
//! ARE of the Jaccard estimate measured at 10%…100% prefixes of each
//! stream, at fixed k.
//!
//! Paper shape to reproduce: the *absolute* error (MAE) is stable over
//! the stream's lifetime (robust estimation) — slot-agreement
//! concentration depends only on k, not on how large neighborhoods have
//! grown. The *relative* error drifts up late in dense streams for a
//! different reason: as degrees grow, typical Jaccard values of sampled
//! pairs shrink, and a fixed ±ε is a larger fraction of a smaller J.
//! Both series are reported so the two effects are distinguishable.
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_progress [-- --scale ...] [--k N]
//! ```

use graphstream::{AdjacencyGraph, EdgeStream};
use linkpred::evaluate::sample_overlap_pairs;
use linkpred::metrics;
use serde::Serialize;
use streamlink_bench::{
    all_datasets, build_store, flag_value, scale_from_args, table_header, table_row, ResultWriter,
    EXP_SEED,
};

#[derive(Serialize)]
struct Row {
    dataset: String,
    prefix_fraction: f64,
    edges: usize,
    k: usize,
    pairs: usize,
    jaccard_are: Option<f64>,
    jaccard_mae: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let k: usize = flag_value(&args, "--k").map_or(256, |v| v.parse().expect("bad --k"));
    let mut out = ResultWriter::new("e8_progress");

    println!("\nE8 — Jaccard error over stream progress (k = {k}, {scale:?})\n");
    for (dataset, stream) in all_datasets(scale) {
        println!("dataset {}", dataset.spec().key);
        table_header(&["prefix", "edges", "pairs", "ARE", "MAE"]);
        for pct in [10, 20, 40, 60, 80, 100] {
            let take = stream.len() * pct / 100;
            let prefix = stream.prefix(take);
            if prefix.is_empty() {
                continue;
            }
            let exact = AdjacencyGraph::from_edges(prefix.edges());
            let pairs = sample_overlap_pairs(&exact, 500, EXP_SEED);
            let store = build_store(&prefix, k, EXP_SEED);
            let mut est = Vec::new();
            let mut truth = Vec::new();
            for &(u, v) in &pairs {
                if let Some(e) = store.jaccard(u, v) {
                    est.push(e);
                    truth.push(exact.jaccard(u, v));
                }
            }
            let row = Row {
                dataset: dataset.spec().key.to_string(),
                prefix_fraction: pct as f64 / 100.0,
                edges: take,
                k,
                pairs: est.len(),
                jaccard_are: metrics::average_relative_error(&est, &truth, 1e-12),
                jaccard_mae: metrics::mae(&est, &truth),
            };
            table_row(&[
                format!("{pct}%"),
                take.to_string(),
                row.pairs.to_string(),
                row.jaccard_are.map_or("n/a".into(), |v| format!("{v:.4}")),
                format!("{:.4}", row.jaccard_mae),
            ]);
            out.write_row(&row);
        }
        println!();
    }
}
