//! **E19 (metrics overhead)** — ingestion throughput with the metrics
//! registry enabled vs disabled, proving observability stays under the
//! documented overhead budget on the O(k) insert hot path.
//!
//! Methodology: for each sketch size, ingest the same stream several
//! times with `metrics::global()` disabled and several times enabled,
//! keeping the *best* run of each mode (min time — the standard way to
//! strip scheduler noise from a throughput microbenchmark). Overhead is
//! `(best_enabled - best_disabled) / best_disabled`.
//!
//! `--max-overhead-pct N` turns the run into a gate: the process exits
//! nonzero if any sketch size exceeds N% overhead. CI runs
//! `--scale small --max-overhead-pct 10`; the design budget in
//! docs/OPERATIONS.md §8 is 5% on release builds.
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_metrics -- \
//!     [--scale small|standard|large] [--max-overhead-pct 10]
//! ```

use std::time::Instant;

use datasets::SimulatedDataset;
use graphstream::EdgeStream;
use serde::Serialize;
use streamlink_bench::{
    flag_value, scale_from_args, table_header, table_row, ResultWriter, EXP_SEED,
};
use streamlink_core::{SketchConfig, SketchStore};

/// Ingest repetitions per mode; best-of-N is reported.
const REPS: usize = 5;

#[derive(Serialize)]
struct Row {
    dataset: String,
    k: usize,
    edges: u64,
    reps: usize,
    disabled_best_secs: f64,
    enabled_best_secs: f64,
    overhead_pct: f64,
    insert_p99_ns: u64,
}

fn ingest_once(edges: &[graphstream::Edge], k: usize) -> f64 {
    let mut store = SketchStore::new(SketchConfig::with_slots(k).seed(EXP_SEED));
    let t = Instant::now();
    store.insert_stream(edges.iter().copied());
    let secs = t.elapsed().as_secs_f64();
    std::hint::black_box(&store);
    secs
}

fn best_of(edges: &[graphstream::Edge], k: usize) -> f64 {
    (0..REPS)
        .map(|_| ingest_once(edges, k))
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let max_overhead_pct: Option<f64> = flag_value(&args, "--max-overhead-pct")
        .map(|v| v.parse().expect("--max-overhead-pct expects a number"));
    let mut out = ResultWriter::new("e19_metrics_overhead");
    let metrics = streamlink_core::metrics::global();

    let dataset = SimulatedDataset::DblpLike;
    let stream = dataset.stream(scale);
    let edges: Vec<_> = stream.edges().collect();

    println!("\nE19 — metrics registry overhead on ingest ({scale:?})\n");
    println!(
        "dataset {} ({} edges, best of {REPS} runs per mode)",
        dataset.spec().key,
        edges.len()
    );
    table_header(&["k", "off (s)", "on (s)", "overhead %", "p99 ns"]);

    let mut worst_pct = f64::NEG_INFINITY;
    for &k in &[64usize, 256] {
        // Warm caches once so neither mode pays first-touch costs.
        ingest_once(&edges, k);

        metrics.set_enabled(false);
        let disabled = best_of(&edges, k);

        metrics.set_enabled(true);
        metrics.reset();
        let enabled = best_of(&edges, k);
        let p99 = metrics
            .snapshot()
            .histogram("core.insert.latency_ns")
            .map_or(0, |h| h.p99_ns);

        let pct = (enabled - disabled) / disabled * 100.0;
        worst_pct = worst_pct.max(pct);
        table_row(&[
            k.to_string(),
            format!("{disabled:.4}"),
            format!("{enabled:.4}"),
            format!("{pct:+.2}"),
            p99.to_string(),
        ]);
        out.write_row(&Row {
            dataset: dataset.spec().key.to_string(),
            k,
            edges: edges.len() as u64,
            reps: REPS,
            disabled_best_secs: disabled,
            enabled_best_secs: enabled,
            overhead_pct: pct,
            insert_p99_ns: p99,
        });
    }
    metrics.set_enabled(true);

    if let Some(limit) = max_overhead_pct {
        if worst_pct > limit {
            eprintln!("FAIL: metrics overhead {worst_pct:.2}% exceeds the {limit}% budget");
            std::process::exit(1);
        }
        println!("\nPASS: worst overhead {worst_pct:.2}% within the {limit}% budget");
    }
}
