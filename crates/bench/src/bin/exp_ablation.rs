//! **E11 (ablation figure)** — the three sketch designs on Adamic–Adar
//! estimation across a skew sweep: the k-function MinHash sketch
//! (match-sampling AA), the bottom-k variant, and the vertex-biased
//! (weighted) sketch.
//!
//! The skew sweep uses the power-law configuration model with
//! α ∈ {2.0, 2.5, 3.0, 3.5}: smaller α = heavier tail = the regime the
//! vertex-biased sampler was designed for.
//!
//! Paper shape to reproduce: all estimators degrade as skew grows.
//! Bottom-k is *exact* whenever `|N(u) ∪ N(v)| <= k` (it stores actual
//! neighbor hashes), so its error is concentrated entirely on hub pairs;
//! the k-function sketch spreads error evenly; the biased sketch trades a
//! systematic staleness bias for lower variance on heavy tails.
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_ablation [-- --scale ...] [--k N]
//! ```

use datasets::Scale;
use graphstream::{AdjacencyGraph, EdgeStream, PowerLawConfig};
use linkpred::evaluate::sample_overlap_pairs;
use linkpred::metrics;
use serde::Serialize;
use streamlink_bench::{
    flag_value, scale_from_args, table_header, table_row, ResultWriter, EXP_SEED,
};
use streamlink_core::{BiasedStore, BottomKStore, SketchConfig, SketchStore};

#[derive(Serialize)]
struct Row {
    alpha: f64,
    variant: String,
    k: usize,
    pairs: usize,
    aa_are: Option<f64>,
    aa_mae: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let k: usize = flag_value(&args, "--k").map_or(64, |v| v.parse().expect("bad --k"));
    let (n, dmax) = match scale {
        Scale::Small => (1_500, 300),
        Scale::Standard => (30_000, 2_000),
        Scale::Large => (150_000, 5_000),
    };
    let mut out = ResultWriter::new("e11_ablation");

    println!("\nE11 — AA estimator ablation over degree skew (k = {k}, n = {n})\n");
    table_header(&["alpha", "variant", "pairs", "AA ARE", "AA MAE"]);
    for alpha in [2.0f64, 2.5, 3.0, 3.5] {
        let stream = PowerLawConfig::new(n, alpha, dmax, EXP_SEED).materialize();
        let exact = AdjacencyGraph::from_edges(stream.edges());
        let pairs = sample_overlap_pairs(&exact, 500, EXP_SEED);
        let truth: Vec<f64> = pairs
            .iter()
            .map(|&(u, v)| exact.adamic_adar(u, v))
            .collect();

        let mut minhash = SketchStore::new(SketchConfig::with_slots(k).seed(EXP_SEED));
        minhash.insert_stream(stream.edges());
        let mut bottomk = BottomKStore::new(k, EXP_SEED);
        bottomk.insert_stream(stream.edges());
        let mut biased = BiasedStore::new(k, EXP_SEED);
        biased.insert_stream(stream.edges());

        type ScoreFn<'a> =
            Box<dyn Fn(graphstream::VertexId, graphstream::VertexId) -> Option<f64> + 'a>;
        let variants: [(&str, ScoreFn); 3] = [
            ("minhash", Box::new(|u, v| minhash.adamic_adar(u, v))),
            ("bottom-k", Box::new(|u, v| bottomk.adamic_adar(u, v))),
            ("biased", Box::new(|u, v| biased.adamic_adar(u, v))),
        ];
        for (name, score) in &variants {
            let mut est = Vec::with_capacity(pairs.len());
            let mut t = Vec::with_capacity(pairs.len());
            for (i, &(u, v)) in pairs.iter().enumerate() {
                if let Some(e) = score(u, v) {
                    est.push(e);
                    t.push(truth[i]);
                }
            }
            let row = Row {
                alpha,
                variant: (*name).to_string(),
                k,
                pairs: est.len(),
                aa_are: metrics::average_relative_error(&est, &t, 1e-12),
                aa_mae: metrics::mae(&est, &t),
            };
            table_row(&[
                format!("{alpha:.1}"),
                (*name).into(),
                row.pairs.to_string(),
                row.aa_are.map_or("n/a".into(), |v| format!("{v:.4}")),
                format!("{:.4}", row.aa_mae),
            ]);
            out.write_row(&row);
        }
    }
}
