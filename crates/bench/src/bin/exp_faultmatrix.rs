//! **E20 (fault matrix)** — randomized fault schedules over the durable
//! storage stack, pinning the self-healing contract at scale: **every
//! acked edge is recovered or explicitly quarantined — never silently
//! lost.**
//!
//! Each seed drives one simulated server lifetime: edges are journaled
//! (fsync-always) and acked only when the append succeeds, checkpoints
//! fire at random points (retaining 2 snapshot generations), and a
//! scripted [`FaultPlan`] injects ENOSPC, short writes, and failed
//! fsyncs at random operation indices. The run then "SIGKILLs" at a
//! random op, optionally damages the directory post-hoc the way disks
//! do (bit flips in WAL or snapshot, tail truncation, garbage appends),
//! recovers, and audits seq-by-seq where every acked edge went.
//!
//! Checked invariants, per seed:
//!
//! * no damage, or a corrupted snapshot with an older generation to
//!   fall back to → **zero** acked edges lost (and for the snapshot
//!   case, the fallback actually happened);
//! * WAL damage → every lost acked edge is explained by explicit
//!   evidence (quarantined records or a reported torn tail), and the
//!   recovered store holds every other acked edge. One carve-out:
//!   truncation that lands exactly on a record boundary leaves a
//!   well-formed file with its tail records missing — undetectable by
//!   any per-record checksum (it needs an external high-water mark) —
//!   so truncation loss is accepted iff it is a contiguous *suffix* of
//!   the acked stream; a lost record *before* a surviving one is still
//!   a violation.
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_faultmatrix -- \
//!     [--scale small|standard|large] [--seeds 60]
//! ```
//!
//! Exits nonzero if any seed violates an invariant — CI runs this as a
//! gate (50+ seeds).

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use graphstream::VertexId;
use serde::Serialize;
use streamlink_bench::{flag_value, scale_from_args, ResultWriter, EXP_SEED};
use streamlink_core::chaos::{self, FaultKind, FaultPlan};
use streamlink_core::journal::{self, FsyncPolicy, Journal, JournalEntry};
use streamlink_core::snapshot::StoreSnapshot;
use streamlink_core::{durable, SketchConfig, SketchStore};

/// Snapshot generations retained per run — two, so newest-generation
/// corruption always has a fallback once two checkpoints have fired.
const KEEP: usize = 2;

/// Deterministic xorshift64 PRNG: the experiment must replay bit-for-bit
/// from its seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
    fn chance(&mut self, one_in: u64) -> bool {
        self.below(one_in) == 0
    }
}

#[derive(Serialize)]
struct Row {
    seed: u64,
    attempted: u64,
    acked: u64,
    nacked: u64,
    checkpoints: u64,
    checkpoint_failures: u64,
    damage: String,
    fallbacks: u64,
    quarantined: u64,
    tail_dropped: u64,
    recovered_edges: u64,
    lost_acked: u64,
    ok: bool,
    violation: String,
}

fn temp_dir(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!(
        "streamlink-exp-fault-{}-{seed}",
        std::process::id()
    ))
}

/// Applies one post-crash damage mode and names what it did. Snapshot
/// corruption is only injected when a fallback generation exists, so the
/// zero-loss expectation it carries is honest.
fn apply_damage(dir: &Path, pick: u64, rng: &mut Rng) -> std::io::Result<String> {
    let segments: Vec<_> = journal::list_segments(dir)?
        .into_iter()
        .filter(|(_, p)| fs::metadata(p).map(|m| m.len() > 0).unwrap_or(false))
        .collect();
    let generations = durable::list_generations(dir)?;
    match pick {
        1 | 2 if pick == 2 && generations.len() >= 2 => {
            // Bit rot inside the newest generation's payload (past the
            // ~46-byte v2 header).
            let (_, path) = generations.last().expect("len >= 2");
            let len = fs::metadata(path)?.len();
            let offset = 46 + rng.below(len.saturating_sub(46));
            chaos::flip_bit(path, offset, (rng.below(8)) as u8)?;
            Ok("snapshot-bitflip".into())
        }
        1 | 2 if !segments.is_empty() => {
            let (_, path) = &segments[rng.below(segments.len() as u64) as usize];
            let len = fs::metadata(path)?.len();
            chaos::flip_bit(path, rng.below(len), (rng.below(8)) as u8)?;
            Ok("wal-bitflip".into())
        }
        3 if !segments.is_empty() => {
            let (_, path) = segments.last().expect("non-empty");
            chaos::tear_file(path, rng.below(30) + 1)?;
            Ok("wal-truncate".into())
        }
        4 if !segments.is_empty() => {
            let (_, path) = segments.last().expect("non-empty");
            chaos::append_garbage(path, b"F 999999999 torn garbage")?;
            Ok("wal-garbage".into())
        }
        _ => Ok("none".into()),
    }
}

fn run_seed(seed: u64) -> Row {
    let mut rng = Rng::new(seed);
    let dir = temp_dir(seed);
    let _ = fs::remove_dir_all(&dir);
    let config = SketchConfig::with_slots(32).seed(EXP_SEED);

    // Schedule the in-flight fault matrix: ENOSPC, short writes, failed
    // fsyncs, and the occasional failed snapshot write.
    let attempted = 60 + rng.below(120);
    let plan = Arc::new(FaultPlan::new());
    for op in 0..attempted {
        if rng.chance(23) {
            if rng.chance(2) {
                plan.fail_append(op, FaultKind::Enospc);
            } else {
                plan.fail_append(op, FaultKind::ShortWrite(rng.below(14) as usize));
            }
        }
        if rng.chance(29) {
            plan.fail_fsync(op);
        }
    }
    if rng.chance(3) {
        plan.fail_snapshot(rng.below(3));
    }

    // One server lifetime: journal, ack, checkpoint — then die mid-loop.
    let mut journal =
        Journal::create_with_faults(&dir, 1, FsyncPolicy::Always, Some(Arc::clone(&plan)))
            .expect("create journal");
    let mut store = SketchStore::new(config);
    let mut acked: Vec<u64> = Vec::new();
    let mut nacked = 0u64;
    let (mut checkpoints, mut checkpoint_failures) = (0u64, 0u64);
    let kill_at = attempted / 2 + rng.below(attempted / 2);
    for i in 0..attempted {
        if i == kill_at {
            break; // SIGKILL: no drain, no final snapshot.
        }
        let (u, v) = (VertexId(rng.below(50)), VertexId(rng.below(50)));
        let seq = journal.next_seq();
        match journal.append(JournalEntry { seq, u, v }) {
            Ok(()) => {
                store.insert_edge(u, v);
                acked.push(seq);
            }
            Err(_) => nacked += 1, // ERR storage: the edge was never acked
        }
        if rng.chance(20) {
            let snapshot = StoreSnapshot::capture(&store);
            let wal_seq = journal.next_seq() - 1;
            let result = journal
                .rotate(wal_seq + 1)
                .and_then(|()| durable::checkpoint(&snapshot, wal_seq, &dir, &mut journal, KEEP));
            match result {
                Ok(_) => checkpoints += 1,
                Err(_) => checkpoint_failures += 1, // journal still has it all
            }
        }
    }
    drop(journal);

    // Post-crash disk damage, then recovery.
    let damage = apply_damage(&dir, seed % 5, &mut rng).expect("damage injection");
    let recovery = durable::recover(&dir, config).expect("recover");

    // Audit: where did every acked seq go? Either the loaded snapshot
    // covers it (seq <= watermark) or a surviving WAL record replays it.
    let mut survived: Vec<u64> = Vec::new();
    let audit = journal::replay(&dir, recovery.snapshot_seq, |e| survived.push(e.seq))
        .expect("audit replay");
    let lost: Vec<u64> = acked
        .iter()
        .copied()
        .filter(|&s| s > recovery.snapshot_seq && !survived.contains(&s))
        .collect();

    let explicit = audit.quarantined > 0 || audit.torn_tail;
    // Boundary-exact truncation leaves no forensic trace; it is only
    // acceptable as pure tail loss — every lost seq newer than every
    // surviving one.
    let max_survived = survived
        .iter()
        .max()
        .copied()
        .unwrap_or(recovery.snapshot_seq);
    let suffix_loss = lost.iter().all(|&s| s > max_survived);
    let violation = if damage == "none" || damage == "snapshot-bitflip" {
        if !lost.is_empty() {
            format!(
                "{} acked seq(s) lost with no WAL damage: {lost:?}",
                lost.len()
            )
        } else if damage == "snapshot-bitflip" && recovery.fallbacks == 0 {
            "corrupt newest generation did not trigger a fallback".into()
        } else {
            String::new()
        }
    } else if !(lost.is_empty() || explicit || (damage == "wal-truncate" && suffix_loss)) {
        format!("{} acked seq(s) lost SILENTLY: {lost:?}", lost.len())
    } else {
        String::new()
    };

    let row = Row {
        seed,
        attempted,
        acked: acked.len() as u64,
        nacked,
        checkpoints,
        checkpoint_failures,
        damage,
        fallbacks: recovery.fallbacks,
        quarantined: audit.quarantined,
        tail_dropped: audit.tail_dropped,
        recovered_edges: recovery.store.edges_processed(),
        lost_acked: lost.len() as u64,
        ok: violation.is_empty(),
        violation,
    };
    let _ = fs::remove_dir_all(&dir);
    row
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let default_seeds = match scale_from_args(&args) {
        datasets::Scale::Small => 50,
        datasets::Scale::Standard => 60,
        datasets::Scale::Large => 150,
    };
    let seeds: u64 = flag_value(&args, "--seeds")
        .map(|s| s.parse().expect("--seeds takes a number"))
        .unwrap_or(default_seeds);

    let mut writer = ResultWriter::new("faultmatrix");
    println!(
        "{:>6} {:>8} {:>7} {:>7} {:>5} {:>18} {:>9} {:>11} {:>5} {:>5}",
        "seed",
        "attempt",
        "acked",
        "nacked",
        "ckpt",
        "damage",
        "fallback",
        "quarantine",
        "lost",
        "ok"
    );
    let mut failures = 0u64;
    let mut snapshot_fallback_runs = 0u64;
    for seed in 0..seeds {
        let row = run_seed(seed);
        println!(
            "{:>6} {:>8} {:>7} {:>7} {:>5} {:>18} {:>9} {:>11} {:>5} {:>5}",
            row.seed,
            row.attempted,
            row.acked,
            row.nacked,
            row.checkpoints,
            row.damage,
            row.fallbacks,
            row.quarantined,
            row.lost_acked,
            if row.ok { "yes" } else { "NO" },
        );
        if !row.ok {
            eprintln!("seed {}: {}", row.seed, row.violation);
            failures += 1;
        }
        if row.damage == "snapshot-bitflip" && row.fallbacks > 0 {
            snapshot_fallback_runs += 1;
        }
        writer.write_row(&row);
    }

    println!("# {seeds} seeds, {failures} invariant violation(s), {snapshot_fallback_runs} snapshot-fallback run(s)");
    if failures > 0 {
        eprintln!("FAIL: acked edges were lost silently (see rows above)");
        return ExitCode::FAILURE;
    }
    if snapshot_fallback_runs == 0 && seeds >= 10 {
        eprintln!("FAIL: no run exercised the snapshot fallback path; matrix coverage regressed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
