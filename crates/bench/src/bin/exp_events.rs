//! **E26 (event journal + correlation overhead)** — ingestion
//! throughput with the cluster observability plane enabled vs
//! disabled, proving the event journal and correlation-ID machinery
//! stay inside their overhead budget on the O(k) insert hot path.
//!
//! Methodology mirrors E21 (`exp_trace`): for each sketch size, ingest
//! the same stream several times per mode and keep the best run (min
//! time strips scheduler noise). Both modes run the *identical* loop
//! shape — the metrics registry and trace ring stay ON in both — so
//! the measured delta isolates exactly what this PR added: correlation
//! IDs threaded through replication spans and typed cluster events
//! appended to the bounded ring *and* the on-disk `events.jsonl` sink.
//!
//! Enabled mode emits one correlated event (plus a corr-stamped
//! replication span) every [`EVENT_EVERY_EDGES`] edges. That is a far
//! denser cadence than any real cluster exhibits — elections, fences,
//! and resyncs are seconds apart, lease renewals are time-based — so a
//! pass here bounds the plane's cost from well above.
//!
//! `--max-overhead-pct N` turns the run into a gate: the process exits
//! nonzero if any sketch size exceeds N% overhead. CI runs
//! `--scale small --max-overhead-pct 10`; the design budget in
//! docs/OPERATIONS.md §13 is 5% on release builds.
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_events -- \
//!     [--scale small|standard|large] [--max-overhead-pct 10]
//! ```

use std::time::Instant;

use datasets::SimulatedDataset;
use graphstream::EdgeStream;
use serde::Serialize;
use streamlink_bench::{
    flag_value, scale_from_args, table_header, table_row, ResultWriter, EXP_SEED,
};
use streamlink_core::events::{self, ClusterEvent, EventKind};
use streamlink_core::{trace, SketchConfig, SketchStore};

/// Ingest repetitions per mode; best-of-N is reported.
const REPS: usize = 5;

/// Edges between emitted events in enabled mode. Deliberately ~100×
/// denser than real failover traffic so the gate bounds the cost from
/// above.
const EVENT_EVERY_EDGES: usize = 1_000;

#[derive(Serialize)]
struct Row {
    dataset: String,
    k: usize,
    edges: u64,
    reps: usize,
    disabled_best_secs: f64,
    enabled_best_secs: f64,
    overhead_pct: f64,
    events_recorded: u64,
}

/// One ingest pass. `emit` turns the observability plane's write side
/// on, but the per-edge branch structure is identical either way — the
/// disabled mode measures the true cost of having the hooks compiled
/// in.
fn ingest_once(edges: &[graphstream::Edge], k: usize, emit: bool) -> f64 {
    let mut store = SketchStore::new(SketchConfig::with_slots(k).seed(EXP_SEED));
    let t = Instant::now();
    let mut since_event = 0usize;
    let mut tick = 0u64;
    for e in edges {
        store.insert_edge(e.src, e.dst);
        since_event += 1;
        if since_event >= EVENT_EVERY_EDGES {
            since_event = 0;
            tick += 1;
            if emit {
                // What one replication round costs on a live cluster
                // node: a corr-stamped span plus one journaled event.
                let corr = (EXP_SEED << 20) | tick;
                {
                    let _span = trace::op("repl.session");
                    trace::note_corr(corr);
                }
                events::emit(ClusterEvent {
                    node_id: "bench-node".into(),
                    epoch: 1,
                    applied_seq: store.edges_processed(),
                    tick_ms: tick,
                    kind: EventKind::ConfigChange,
                    detail: "bench: synthetic replication round".into(),
                    corr_id: Some(corr),
                });
            }
        }
    }
    let secs = t.elapsed().as_secs_f64();
    std::hint::black_box(&store);
    secs
}

fn best_of(edges: &[graphstream::Edge], k: usize, emit: bool) -> f64 {
    (0..REPS)
        .map(|_| ingest_once(edges, k, emit))
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let max_overhead_pct: Option<f64> = flag_value(&args, "--max-overhead-pct")
        .map(|v| v.parse().expect("--max-overhead-pct expects a number"));
    let mut out = ResultWriter::new("e26_events_overhead");

    let dataset = SimulatedDataset::DblpLike;
    let stream = dataset.stream(scale);
    let edges: Vec<_> = stream.edges().collect();

    println!("\nE26 — event journal + correlation overhead on ingest ({scale:?})\n");
    println!(
        "dataset {} ({} edges, best of {REPS} runs per mode; one correlated event \
         every {EVENT_EVERY_EDGES} edges in enabled mode)",
        dataset.spec().key,
        edges.len()
    );
    table_header(&["k", "off (s)", "on (s)", "overhead %", "events"]);

    // Enabled mode writes through the real on-disk sink so the gate
    // covers the jsonl append, not just the in-memory ring.
    let log_dir = std::env::temp_dir().join(format!("streamlink-e26-{}", std::process::id()));
    std::fs::create_dir_all(&log_dir).expect("temp events dir");
    let log_path = log_dir.join("events.jsonl");

    let mut worst_pct = f64::NEG_INFINITY;
    for &k in &[64usize, 256] {
        // Warm caches once so neither mode pays first-touch costs.
        ingest_once(&edges, k, false);

        // Baseline: metrics + trace ON (the E21-audited configuration
        // this PR started from), event emission OFF.
        events::uninstall_event_log();
        let disabled = best_of(&edges, k, false);

        // Enabled: ring + rotating jsonl sink + corr-stamped spans.
        events::reset();
        events::install_event_log(&log_path, events::DEFAULT_EVENT_LOG_BYTES)
            .expect("install events log");
        let enabled = best_of(&edges, k, true);
        events::uninstall_event_log();
        let recorded = events::events_recorded();

        let pct = (enabled - disabled) / disabled * 100.0;
        worst_pct = worst_pct.max(pct);
        table_row(&[
            k.to_string(),
            format!("{disabled:.4}"),
            format!("{enabled:.4}"),
            format!("{pct:+.2}"),
            recorded.to_string(),
        ]);
        out.write_row(&Row {
            dataset: dataset.spec().key.to_string(),
            k,
            edges: edges.len() as u64,
            reps: REPS,
            disabled_best_secs: disabled,
            enabled_best_secs: enabled,
            overhead_pct: pct,
            events_recorded: recorded,
        });
    }
    let _ = std::fs::remove_dir_all(&log_dir);

    if let Some(limit) = max_overhead_pct {
        if worst_pct > limit {
            eprintln!(
                "FAIL: event journal + correlation overhead {worst_pct:.2}% exceeds \
                 the {limit}% budget"
            );
            std::process::exit(1);
        }
        println!("\nPASS: worst overhead {worst_pct:.2}% within the {limit}% budget");
    }
}
