//! **E1 (Table 1)** — dataset statistics.
//!
//! Regenerates the paper's dataset table: vertices, edges, average and
//! maximum degree, skew, tail fraction for every simulated stream.
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_datasets [-- --scale small|standard|large]
//! ```

use graphstream::{EdgeStream, StreamStats};
use serde::Serialize;
use streamlink_bench::{all_datasets, scale_from_args, table_header, table_row, ResultWriter};

#[derive(Serialize)]
struct Row {
    dataset: String,
    counterpart: String,
    vertices: u64,
    edges: u64,
    avg_degree: f64,
    max_degree: u64,
    skew: f64,
    tail_fraction: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let mut out = ResultWriter::new("e1_datasets");

    println!("\nE1 / Table 1 — dataset statistics ({scale:?})\n");
    table_header(&["dataset", "n", "m", "avg deg", "max deg", "skew", "tail"]);
    for (dataset, stream) in all_datasets(scale) {
        let s = StreamStats::from_edges(stream.edges()).summary();
        let row = Row {
            dataset: dataset.spec().key.to_string(),
            counterpart: dataset.spec().paper_counterpart.to_string(),
            vertices: s.vertices,
            edges: s.edges,
            avg_degree: s.avg_degree,
            max_degree: s.max_degree,
            skew: s.skew,
            tail_fraction: s.tail_fraction,
        };
        table_row(&[
            row.dataset.clone(),
            row.vertices.to_string(),
            row.edges.to_string(),
            format!("{:.2}", row.avg_degree),
            row.max_degree.to_string(),
            format!("{:.1}", row.skew),
            format!("{:.3}", row.tail_fraction),
        ]);
        out.write_row(&row);
    }
}
