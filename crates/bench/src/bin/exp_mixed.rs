//! **E15 (extension figure)** — sustained mixed ingest/query workload on
//! the concurrent store: throughput as the query share of the operation
//! mix sweeps 0% → 90%.
//!
//! The paper's setting is *online*: estimates are queried while the
//! stream is still arriving. This experiment drives the sharded
//! [`ConcurrentSketchStore`] with writer and reader threads over a fixed
//! operation budget and reports sustained operations/second, plus the
//! single-threaded `SketchStore` at the same mixes as the lock-free
//! baseline.
//!
//! Shape to establish: query operations are cheaper than inserts at
//! moderate k (no hashing of 2k values), so throughput *rises* with the
//! query share; sharding overhead versus the single-threaded store is
//! bounded (and pays off only with real parallelism — this container has
//! one core, so the concurrent rows measure locking overhead honestly).
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_mixed [-- --scale ...] [--k N]
//! ```

use std::time::Instant;

use datasets::Scale;
use graphstream::{BarabasiAlbert, Edge, EdgeStream, VertexId};
use hashkit::mix64;
use serde::Serialize;
use streamlink_bench::{
    flag_value, scale_from_args, table_header, table_row, ResultWriter, EXP_SEED,
};
use streamlink_core::concurrent::ConcurrentSketchStore;
use streamlink_core::{SketchConfig, SketchStore};

#[derive(Serialize)]
struct Row {
    backend: String,
    query_share: f64,
    operations: usize,
    seconds: f64,
    ops_per_sec: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let k: usize = flag_value(&args, "--k").map_or(128, |v| v.parse().expect("bad --k"));
    let n: u64 = match scale {
        Scale::Small => 2_000,
        Scale::Standard => 30_000,
        Scale::Large => 100_000,
    };
    let edges: Vec<Edge> = BarabasiAlbert::new(n, 4, EXP_SEED).edges().collect();
    let threads = std::thread::available_parallelism().map_or(2, |c| c.get().min(8));
    let mut out = ResultWriter::new("e15_mixed");

    println!(
        "\nE15 — mixed ingest/query throughput (k = {k}, {} base edges, {threads} worker threads)\n",
        edges.len()
    );
    table_header(&["backend", "query share", "ops", "time (s)", "ops/s"]);
    for query_share in [0.0f64, 0.25, 0.5, 0.9] {
        // Single-threaded baseline: interleave inserts and queries.
        let mut plain = SketchStore::new(SketchConfig::with_slots(k).seed(EXP_SEED));
        let t = Instant::now();
        let mut ops = 0usize;
        let mut sink = 0.0f64;
        for (i, e) in edges.iter().enumerate() {
            plain.insert_edge(e.src, e.dst);
            ops += 1;
            // Issue queries to maintain the requested mix.
            let queries = ((i as f64 + 1.0) * query_share / (1.0 - query_share).max(1e-9)) as usize;
            let already = (ops as f64 * query_share) as usize;
            for q in already..queries.min(already + 8) {
                let a = VertexId(mix64(q as u64) % n);
                let b = VertexId(mix64(q as u64 ^ 0xABCD) % n);
                sink += plain.jaccard(a, b).unwrap_or(0.0);
                ops += 1;
            }
        }
        std::hint::black_box(sink);
        let secs = t.elapsed().as_secs_f64();
        let row = Row {
            backend: "single".into(),
            query_share,
            operations: ops,
            seconds: secs,
            ops_per_sec: ops as f64 / secs,
        };
        table_row(&[
            "single".into(),
            format!("{:.0}%", query_share * 100.0),
            ops.to_string(),
            format!("{secs:.3}"),
            format!("{:.0}", row.ops_per_sec),
        ]);
        out.write_row(&row);

        // Concurrent store: writers stream edges, readers fire queries.
        let store =
            ConcurrentSketchStore::new(SketchConfig::with_slots(k).seed(EXP_SEED), threads * 4);
        let queries_per_reader = (edges.len() as f64 * query_share / (1.0 - query_share).max(1e-9))
            as usize
            / threads.max(1);
        let t = Instant::now();
        crossbeam::scope(|scope| {
            let chunk = edges.len().div_ceil(threads);
            for part in edges.chunks(chunk) {
                let store = &store;
                scope.spawn(move |_| {
                    for e in part {
                        store.insert_edge(e.src, e.dst);
                    }
                });
            }
            for reader in 0..threads {
                let store = &store;
                scope.spawn(move |_| {
                    let mut sink = 0.0f64;
                    for q in 0..queries_per_reader {
                        let word = mix64((reader * 1_000_003 + q) as u64);
                        let a = VertexId(word % n);
                        let b = VertexId(mix64(word) % n);
                        sink += store.jaccard(a, b).unwrap_or(0.0);
                    }
                    std::hint::black_box(sink);
                });
            }
        })
        .expect("workload threads panicked");
        let secs = t.elapsed().as_secs_f64();
        let total_ops = edges.len() + queries_per_reader * threads;
        let row = Row {
            backend: "concurrent".into(),
            query_share,
            operations: total_ops,
            seconds: secs,
            ops_per_sec: total_ops as f64 / secs,
        };
        table_row(&[
            "concurrent".into(),
            format!("{:.0}%", query_share * 100.0),
            total_ops.to_string(),
            format!("{secs:.3}"),
            format!("{:.0}", row.ops_per_sec),
        ]);
        out.write_row(&row);
    }
}
