//! **E13 (design ablation)** — the hasher backend: SplitMix64-style
//! mixers (two multiplies, the default) vs 3-independent simple
//! tabulation (eight table lookups, provable independence).
//!
//! Shape to establish: the mixer's *empirical* accuracy matches
//! tabulation's across every dataset — the limited formal independence
//! costs nothing in practice — while its updates are markedly faster and
//! it carries no 16 KiB-per-slot tables. This justifies shipping the
//! mixer as the default and tabulation as the "paranoid" opt-in.
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_backends [-- --scale ...] [--k N]
//! ```

use std::time::Instant;

use graphstream::{AdjacencyGraph, EdgeStream};
use linkpred::evaluate::sample_overlap_pairs;
use linkpred::metrics;
use serde::Serialize;
use streamlink_bench::{
    all_datasets, flag_value, scale_from_args, table_header, table_row, ResultWriter, EXP_SEED,
};
use streamlink_core::{HasherBackend, SketchConfig, SketchStore};

#[derive(Serialize)]
struct Row {
    dataset: String,
    backend: String,
    k: usize,
    ingest_seconds: f64,
    edges_per_sec: f64,
    jaccard_mae: f64,
    jaccard_are: Option<f64>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let k: usize = flag_value(&args, "--k").map_or(128, |v| v.parse().expect("bad --k"));
    let mut out = ResultWriter::new("e13_backends");

    println!("\nE13 — hasher backend ablation: mixer vs tabulation (k = {k}, {scale:?})\n");
    for (dataset, stream) in all_datasets(scale) {
        let exact = AdjacencyGraph::from_edges(stream.edges());
        let pairs = sample_overlap_pairs(&exact, 600, EXP_SEED);
        let truth: Vec<f64> = pairs.iter().map(|&(u, v)| exact.jaccard(u, v)).collect();

        println!("dataset {}", dataset.spec().key);
        table_header(&["backend", "edges/s", "J MAE", "J ARE"]);
        for backend in [HasherBackend::Mixer, HasherBackend::Tabulation] {
            let mut store =
                SketchStore::new(SketchConfig::with_slots(k).seed(EXP_SEED).backend(backend));
            let t = Instant::now();
            store.insert_stream(stream.edges());
            let secs = t.elapsed().as_secs_f64();

            let mut est = Vec::with_capacity(pairs.len());
            let mut tr = Vec::with_capacity(pairs.len());
            for (i, &(u, v)) in pairs.iter().enumerate() {
                if let Some(e) = store.jaccard(u, v) {
                    est.push(e);
                    tr.push(truth[i]);
                }
            }
            let name = match backend {
                HasherBackend::Mixer => "mixer",
                HasherBackend::Tabulation => "tabulation",
            };
            let row = Row {
                dataset: dataset.spec().key.to_string(),
                backend: name.to_string(),
                k,
                ingest_seconds: secs,
                edges_per_sec: stream.len() as f64 / secs,
                jaccard_mae: metrics::mae(&est, &tr),
                jaccard_are: metrics::average_relative_error(&est, &tr, 1e-12),
            };
            table_row(&[
                name.into(),
                format!("{:.0}", row.edges_per_sec),
                format!("{:.4}", row.jaccard_mae),
                row.jaccard_are.map_or("n/a".into(), |v| format!("{v:.4}")),
            ]);
            out.write_row(&row);
        }
        println!();
    }
}
