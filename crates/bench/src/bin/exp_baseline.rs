//! **E10 (equal-memory baseline table)** — MinHash sketches vs uniform
//! edge reservoir sampling at matched memory budgets.
//!
//! The regime that matters is *dense* streams — average degree well above
//! the per-vertex sketch budget — so the workload is a high-degree
//! small-world stream (the contested regime; on sparse streams an edge
//! reservoir can simply store everything and win by default, which the
//! rows at 100% budget show honestly).
//!
//! For each budget (a fraction of what exact adjacency needs) we size
//! both backends to the same bytes: `k = budget/(16·n)` slots per vertex
//! vs `capacity = budget/24` reservoir edges.
//!
//! Paper shape to reproduce: as the budget shrinks, the sketch keeps full
//! query coverage with smoothly degrading error, while the reservoir's
//! sampled subgraph loses vertices entirely (coverage collapses) and its
//! rescaled estimates blow up on the pairs it can still see.
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_baseline [-- --scale ...]
//! ```

use datasets::Scale;
use graphstream::{AdjacencyGraph, Edge, EdgeStream, WattsStrogatz};
use linkpred::evaluate::sample_overlap_pairs;
use linkpred::{metrics, ExactScorer, Measure, ReservoirScorer, Scorer, SketchScorer};
use serde::Serialize;
use streamlink_bench::{
    build_store, scale_from_args, table_header, table_row, ResultWriter, EXP_SEED,
};

#[derive(Serialize)]
struct Row {
    budget_fraction: f64,
    budget_bytes: usize,
    backend: String,
    k_or_capacity: usize,
    jaccard_are: Option<f64>,
    coverage: f64,
    cn_are: Option<f64>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    // Dense small-world stream: avg degree = ring_k.
    let (n, ring_k) = match scale {
        Scale::Small => (500u64, 60u64),
        Scale::Standard => (4_000, 400),
        Scale::Large => (10_000, 800),
    };
    let stream = WattsStrogatz::new(n, ring_k, 0.1, EXP_SEED).materialize();
    let exact_graph = AdjacencyGraph::from_edges(stream.edges());
    let exact_bytes = exact_graph.memory_bytes();
    let pairs = sample_overlap_pairs(&exact_graph, 500, EXP_SEED);
    let exact = ExactScorer::new(exact_graph);

    let mut out = ResultWriter::new("e10_baseline");
    println!(
        "\nE10 — sketch vs reservoir at equal memory\n\
         dense stream: WS(n = {n}, degree = {ring_k}), {} edges, exact adjacency = {:.1} MiB\n",
        stream.len(),
        exact_bytes as f64 / (1024.0 * 1024.0)
    );
    table_header(&[
        "budget", "backend", "k / cap", "J ARE", "CN ARE", "coverage",
    ]);

    for budget_fraction in [0.02f64, 0.05, 0.15, 0.4, 1.0] {
        let budget = (exact_bytes as f64 * budget_fraction) as usize;
        let k = (budget / (16 * n as usize)).max(1);
        let capacity = (budget / std::mem::size_of::<Edge>()).max(8);

        let store = build_store(&stream, k, EXP_SEED);
        let sketch = SketchScorer::new(store);
        let reservoir = ReservoirScorer::from_edges(stream.edges(), capacity, EXP_SEED);

        for (backend, scorer, size) in [
            ("sketch", &sketch as &dyn Scorer, k),
            ("reservoir", &reservoir as &dyn Scorer, capacity),
        ] {
            let mut j_est = Vec::new();
            let mut j_truth = Vec::new();
            let mut cn_est = Vec::new();
            let mut cn_truth = Vec::new();
            let mut covered = 0usize;
            for &(u, v) in &pairs {
                if let Some(e) = scorer.score(Measure::Jaccard, u, v) {
                    covered += 1;
                    j_est.push(e);
                    j_truth.push(exact.score(Measure::Jaccard, u, v).unwrap_or(0.0));
                    cn_est.push(scorer.score(Measure::CommonNeighbors, u, v).unwrap_or(0.0));
                    cn_truth.push(exact.score(Measure::CommonNeighbors, u, v).unwrap_or(0.0));
                }
            }
            let row = Row {
                budget_fraction,
                budget_bytes: budget,
                backend: backend.to_string(),
                k_or_capacity: size,
                jaccard_are: metrics::average_relative_error(&j_est, &j_truth, 1e-12),
                coverage: covered as f64 / pairs.len() as f64,
                cn_are: metrics::average_relative_error(&cn_est, &cn_truth, 1e-12),
            };
            table_row(&[
                format!("{:.0}%", budget_fraction * 100.0),
                backend.into(),
                size.to_string(),
                row.jaccard_are.map_or("n/a".into(), |v| format!("{v:.4}")),
                row.cn_are.map_or("n/a".into(), |v| format!("{v:.4}")),
                format!("{:.3}", row.coverage),
            ]);
            out.write_row(&row);
        }
    }
}
