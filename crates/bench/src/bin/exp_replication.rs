//! **E23 (chaos convergence)** — randomized delivery-fault schedules
//! over the replication stack, pinning the anti-entropy contract:
//! **after one final anti-entropy round, every replica equals the
//! primary byte for byte** — every per-vertex sketch slot, every degree
//! counter, and the edge count.
//!
//! Each seed drives one simulated primary/replica fleet. The primary
//! ingests a random edge stream in three windows; within each window
//! every replica receives that window's WAL entries through its own
//! scripted [`DeliveryPlan`] — random drops, duplicates, reorder delays,
//! and the occasional partition window (a contiguous run of drops).
//! Between windows replicas randomly crash back to an empty store
//! (resuming from seq 0, exactly like a restarted in-memory replica) or
//! run a mid-stream anti-entropy join. After the stream ends, one final
//! anti-entropy round joins a primary snapshot into every replica, and
//! [`divergence`] must report `None` for each.
//!
//! The dedup gate is what makes this non-trivial: sketch slots are
//! idempotent min-registers, but degree counters are not — a duplicated
//! or replayed entry that slipped past the seq gate would double-count
//! degrees and show up here as a divergence.
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_replication -- \
//!     [--scale small|standard|large] [--seeds 30]
//! ```
//!
//! Exits nonzero if any seed leaves a replica divergent — CI runs this
//! as a gate (30+ seeds).

use std::process::ExitCode;

use graphstream::VertexId;
use serde::Serialize;
use streamlink_bench::{flag_value, scale_from_args, ResultWriter, EXP_SEED};
use streamlink_core::chaos::DeliveryPlan;
use streamlink_core::journal::JournalEntry;
use streamlink_core::merge::merge_join;
use streamlink_core::repl::{divergence, ReplicaApplier};
use streamlink_core::snapshot::StoreSnapshot;
use streamlink_core::{SketchConfig, SketchStore};

/// Deterministic xorshift64 PRNG: the experiment must replay bit-for-bit
/// from its seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
    fn chance(&mut self, one_in: u64) -> bool {
        self.below(one_in) == 0
    }
}

#[derive(Serialize)]
struct Row {
    seed: u64,
    entries: u64,
    replicas: u64,
    dropped: u64,
    duplicated: u64,
    delayed: u64,
    partitions: u64,
    crashes: u64,
    mid_ae_rounds: u64,
    deduped: u64,
    gap_skips: u64,
    divergent_before_final_ae: u64,
    ok: bool,
    violation: String,
}

/// One simulated replica: its store plus the seq-dedup apply gate.
struct Replica {
    store: SketchStore,
    applier: ReplicaApplier,
}

fn run_seed(seed: u64) -> Row {
    let mut rng = Rng::new(seed);
    let config = SketchConfig::with_slots(32).seed(EXP_SEED);

    // The primary's WAL: seqs 1..=entries over a vertex space small
    // enough that sketches and degrees are dense and non-trivial.
    let entries = 120 + rng.below(180);
    let stream: Vec<JournalEntry> = (1..=entries)
        .map(|seq| JournalEntry {
            seq,
            u: VertexId(rng.below(48)),
            v: VertexId(48 + rng.below(48)),
        })
        .collect();

    // Three ingest windows with randomized cut points.
    let cut1 = (entries / 4 + rng.below(entries / 4)) as usize;
    let cut2 = cut1 + (entries / 4 + rng.below(entries / 4)) as usize;
    let bounds = [0usize, cut1, cut2, entries as usize];

    let mut primary = SketchStore::new(config);
    let replicas = 2 + rng.below(2);
    let mut fleet: Vec<Replica> = (0..replicas)
        .map(|_| Replica {
            store: SketchStore::new(config),
            applier: ReplicaApplier::new(0),
        })
        .collect();

    let (mut dropped, mut duplicated, mut delayed) = (0u64, 0u64, 0u64);
    let (mut partitions, mut crashes, mut mid_ae_rounds) = (0u64, 0u64, 0u64);

    for w in 0..3 {
        let window = &stream[bounds[w]..bounds[w + 1]];
        for e in window {
            primary.insert_edge(e.u, e.v);
        }
        let primary_seq = bounds[w + 1] as u64;

        for rep in &mut fleet {
            // Each replica sees this window through its own fault plan.
            let mut plan = DeliveryPlan::new();
            let len = window.len() as u64;
            if rng.chance(3) && len > 4 {
                // A partition: a contiguous run of entries never arrives.
                let start = rng.below(len - 2);
                let span = 1 + rng.below((len - start).min(24));
                for i in start..start + span {
                    plan.drop_at(i);
                }
                partitions += 1;
                dropped += span;
            }
            for i in 0..len {
                if plan.fault_at(i).is_some() {
                    continue; // the partition window wins this index
                }
                if rng.chance(12) {
                    plan.drop_at(i);
                    dropped += 1;
                } else if rng.chance(10) {
                    plan.duplicate_at(i);
                    duplicated += 1;
                } else if rng.chance(9) {
                    plan.delay_at(i, (1 + rng.below(30)) as usize);
                    delayed += 1;
                }
            }
            for e in plan.apply(window.to_vec()) {
                rep.applier.offer(&mut rep.store, e);
            }
        }

        // Between windows: crash-resets and mid-stream anti-entropy.
        if w < 2 {
            for rep in &mut fleet {
                if rng.chance(4) {
                    // SIGKILL + restart of an in-memory replica: empty
                    // store, resume pulling from seq 0.
                    rep.store = SketchStore::new(config);
                    rep.applier.reset_to(0);
                    crashes += 1;
                }
                if rng.chance(2) {
                    let snap = StoreSnapshot::capture(&primary).restore();
                    merge_join(&mut rep.store, &snap).expect("compatible configs");
                    rep.applier.advance_to(primary_seq);
                    mid_ae_rounds += 1;
                }
            }
        }
    }

    // The headline invariant: one final anti-entropy round converges
    // every replica exactly, no matter what delivery did.
    let divergent_before_final_ae = fleet
        .iter()
        .filter(|rep| divergence(&primary, &rep.store).is_some())
        .count() as u64;
    let snap = StoreSnapshot::capture(&primary).restore();
    let mut violation = String::new();
    for (i, rep) in fleet.iter_mut().enumerate() {
        merge_join(&mut rep.store, &snap).expect("compatible configs");
        rep.applier.advance_to(entries);
        if violation.is_empty() {
            if let Some(d) = divergence(&primary, &rep.store) {
                violation = format!("replica {i} diverges after final anti-entropy: {d}");
            }
        }
    }

    Row {
        seed,
        entries,
        replicas,
        dropped,
        duplicated,
        delayed,
        partitions,
        crashes,
        mid_ae_rounds,
        deduped: fleet.iter().map(|r| r.applier.deduped()).sum(),
        gap_skips: fleet.iter().map(|r| r.applier.gap_skips()).sum(),
        divergent_before_final_ae,
        ok: violation.is_empty(),
        violation,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let default_seeds = match scale_from_args(&args) {
        datasets::Scale::Small => 30,
        datasets::Scale::Standard => 40,
        datasets::Scale::Large => 120,
    };
    let seeds: u64 = flag_value(&args, "--seeds")
        .map(|s| s.parse().expect("--seeds takes a number"))
        .unwrap_or(default_seeds);

    let mut writer = ResultWriter::new("replication");
    println!(
        "{:>6} {:>7} {:>4} {:>7} {:>6} {:>7} {:>5} {:>7} {:>6} {:>7} {:>9} {:>7} {:>5}",
        "seed",
        "entries",
        "reps",
        "dropped",
        "duped",
        "delayed",
        "parts",
        "crashes",
        "midAE",
        "deduped",
        "gapskips",
        "behind",
        "ok"
    );
    let mut failures = 0u64;
    let (mut total_crashes, mut total_partitions) = (0u64, 0u64);
    let (mut total_deduped, mut runs_behind) = (0u64, 0u64);
    for seed in 0..seeds {
        let row = run_seed(seed);
        println!(
            "{:>6} {:>7} {:>4} {:>7} {:>6} {:>7} {:>5} {:>7} {:>6} {:>7} {:>9} {:>7} {:>5}",
            row.seed,
            row.entries,
            row.replicas,
            row.dropped,
            row.duplicated,
            row.delayed,
            row.partitions,
            row.crashes,
            row.mid_ae_rounds,
            row.deduped,
            row.gap_skips,
            row.divergent_before_final_ae,
            if row.ok { "yes" } else { "NO" },
        );
        if !row.ok {
            eprintln!("seed {}: {}", row.seed, row.violation);
            failures += 1;
        }
        total_crashes += row.crashes;
        total_partitions += row.partitions;
        total_deduped += row.deduped;
        runs_behind += u64::from(row.divergent_before_final_ae > 0);
        writer.write_row(&row);
    }

    println!(
        "# {seeds} seeds, {failures} divergence(s); coverage: {total_crashes} crash-reset(s), \
         {total_partitions} partition(s), {total_deduped} dedup(s), {runs_behind} run(s) behind \
         before the final round"
    );
    if failures > 0 {
        eprintln!("FAIL: a replica diverged from the primary after anti-entropy (see rows above)");
        return ExitCode::FAILURE;
    }
    // Meta-check: a schedule set that never crashed a replica, never
    // partitioned, never exercised dedup, or never even fell behind
    // would make the invariant vacuous.
    if seeds >= 10
        && (total_crashes == 0 || total_partitions == 0 || total_deduped == 0 || runs_behind == 0)
    {
        eprintln!(
            "FAIL: schedule coverage regressed (crashes={total_crashes} \
             partitions={total_partitions} deduped={total_deduped} behind={runs_behind})"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
