//! **E5 (prediction-quality figure)** — AUC and precision@k of
//! link prediction using sketch estimates vs exact measures, per dataset
//! and measure, on a temporal 80/20 split.
//!
//! Paper shape to reproduce: the sketch scorer's AUC tracks the exact
//! scorer's AUC within a few points at k = 256 — approximate scores are
//! good enough for ranking, which is what link prediction consumes.
//!
//! Growth-model streams (flickr-like, youtube-like) are structurally
//! degenerate for this protocol — almost every future edge touches a
//! vertex the train prefix has never seen, leaving only a handful of
//! usable positives — which is why the dataset suite includes the
//! clustered small-world stream; degenerate rows are reported and
//! skipped rather than hidden.
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_quality [-- --scale ...] [--k N]
//! ```

use graphstream::{EdgeStream, MemoryStream};
use linkpred::{Evaluator, ExactScorer, Measure, Scorer, SketchScorer};
use serde::Serialize;
use streamlink_bench::{
    all_datasets, flag_value, scale_from_args, table_header, table_row, ResultWriter, EXP_SEED,
};
use streamlink_core::{SketchConfig, SketchStore};

#[derive(Serialize)]
struct Row {
    dataset: String,
    measure: String,
    scorer: String,
    k: usize,
    auc: Option<f64>,
    precision_at_50: Option<f64>,
    coverage: f64,
    positives: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let k: usize = flag_value(&args, "--k").map_or(256, |v| v.parse().expect("bad --k"));
    let mut out = ResultWriter::new("e5_quality");

    let suites: Vec<(String, MemoryStream)> = all_datasets(scale)
        .into_iter()
        .map(|(d, s)| (d.spec().key.to_string(), s))
        .collect();

    println!("\nE5 — link-prediction quality: sketch (k = {k}) vs exact ({scale:?})\n");
    for (name, stream) in suites {
        let evaluator = Evaluator::new(&stream, 0.8, 4, EXP_SEED);
        if evaluator.positives().len() < 20 {
            println!(
                "dataset {name}: only {} usable positives (growth stream — future \
                 edges touch unseen vertices); skipped\n",
                evaluator.positives().len()
            );
            continue;
        }
        let exact = ExactScorer::from_edges(evaluator.train().edges());
        let mut store = SketchStore::new(SketchConfig::with_slots(k).seed(EXP_SEED));
        store.insert_stream(evaluator.train().edges());
        let sketch = SketchScorer::new(store);

        println!(
            "dataset {name} ({} positives / {} negatives)",
            evaluator.positives().len(),
            evaluator.negatives().len()
        );
        table_header(&["measure", "scorer", "AUC", "prec@50", "coverage"]);
        for measure in Measure::PAPER_TARGETS {
            for scorer in [&exact as &dyn Scorer, &sketch as &dyn Scorer] {
                let r = evaluator.evaluate(scorer, measure, &[50]);
                let row = Row {
                    dataset: name.clone(),
                    measure: measure.key().to_string(),
                    scorer: r.scorer.clone(),
                    k,
                    auc: r.auc,
                    precision_at_50: r.precision_at.first().map(|&(_, p)| p),
                    coverage: r.coverage,
                    positives: r.positives,
                };
                table_row(&[
                    row.measure.clone(),
                    row.scorer.clone(),
                    row.auc.map_or("n/a".into(), |v| format!("{v:.4}")),
                    row.precision_at_50
                        .map_or("n/a".into(), |v| format!("{v:.3}")),
                    format!("{:.3}", row.coverage),
                ]);
                out.write_row(&row);
            }
        }
        println!();
    }
}
