//! **E9 (query-latency table)** — per-query time of the sketch store
//! (O(k), degree-independent) vs exact scoring (O(d_u + d_v)), stratified
//! by endpoint degree.
//!
//! Paper shape to reproduce: exact query time grows with the degrees of
//! the endpoints; sketch query time is flat. The crossover arrives at
//! moderate degrees — on hub pairs the sketch wins by orders of
//! magnitude.
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_latency [-- --scale ...] [--k N]
//! ```

use std::time::Instant;

use graphstream::{AdjacencyGraph, EdgeStream, VertexId};
use serde::Serialize;
use streamlink_bench::{
    all_datasets, build_store, flag_value, scale_from_args, table_header, table_row, ResultWriter,
    EXP_SEED,
};

#[derive(Serialize)]
struct Row {
    dataset: String,
    stratum: String,
    mean_degree: f64,
    k: usize,
    pairs: usize,
    exact_ns_per_query: f64,
    sketch_ns_per_query: f64,
    speedup: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let k: usize = flag_value(&args, "--k").map_or(256, |v| v.parse().expect("bad --k"));
    let mut out = ResultWriter::new("e9_latency");
    let reps = 200usize;

    println!("\nE9 — Jaccard query latency by degree stratum (k = {k}, {scale:?}, {reps} reps)\n");
    for (dataset, stream) in all_datasets(scale) {
        let exact = AdjacencyGraph::from_edges(stream.edges());
        let store = build_store(&stream, k, EXP_SEED);

        // Degree strata: low (bottom third), mid, hub (top 1%).
        let mut by_degree: Vec<VertexId> = exact.vertices().collect();
        by_degree.sort_by_key(|&v| exact.degree(v));
        let n = by_degree.len();
        let strata: [(&str, &[VertexId]); 3] = [
            ("low", &by_degree[..n / 3]),
            ("mid", &by_degree[n / 3..2 * n / 3]),
            ("hub", &by_degree[n - (n / 100).max(2)..]),
        ];

        println!("dataset {}", dataset.spec().key);
        table_header(&["stratum", "mean deg", "exact ns", "sketch ns", "speedup"]);
        for (name, vertices) in strata {
            // Pair vertices within the stratum deterministically.
            let pairs: Vec<(VertexId, VertexId)> = vertices
                .iter()
                .zip(vertices.iter().rev())
                .take(64)
                .filter(|(a, b)| a != b)
                .map(|(&a, &b)| (a, b))
                .collect();
            if pairs.is_empty() {
                continue;
            }
            let mean_degree = vertices
                .iter()
                .map(|&v| exact.degree(v) as f64)
                .sum::<f64>()
                / vertices.len() as f64;

            let t = Instant::now();
            let mut sink = 0.0f64;
            for _ in 0..reps {
                for &(u, v) in &pairs {
                    sink += exact.jaccard(u, v);
                }
            }
            let exact_ns = t.elapsed().as_nanos() as f64 / (reps * pairs.len()) as f64;
            std::hint::black_box(sink);

            let t = Instant::now();
            let mut sink = 0.0f64;
            for _ in 0..reps {
                for &(u, v) in &pairs {
                    sink += store.jaccard(u, v).unwrap_or(0.0);
                }
            }
            let sketch_ns = t.elapsed().as_nanos() as f64 / (reps * pairs.len()) as f64;
            std::hint::black_box(sink);

            let row = Row {
                dataset: dataset.spec().key.to_string(),
                stratum: name.to_string(),
                mean_degree,
                k,
                pairs: pairs.len(),
                exact_ns_per_query: exact_ns,
                sketch_ns_per_query: sketch_ns,
                speedup: exact_ns / sketch_ns,
            };
            table_row(&[
                name.into(),
                format!("{mean_degree:.1}"),
                format!("{exact_ns:.0}"),
                format!("{sketch_ns:.0}"),
                format!("{:.2}x", row.speedup),
            ]);
            out.write_row(&row);
        }
        println!();
    }
}
