//! **E16 (extension figure)** — the accuracy-per-byte frontier: Jaccard
//! error vs bytes per vertex for full-width sketches (a k sweep) against
//! b-bit compressed replicas (a (k, b) grid).
//!
//! Shape to establish (Li–König): at a fixed byte budget, many low-bit
//! slots beat few full-width slots — e.g. `k = 512, b = 2` (128 B/vertex)
//! outperforms a full-width `k = 8` (128 B/vertex) by a wide margin —
//! because the collision correction costs less than the variance of a
//! tiny k. Full-width slots still earn their bytes when AA/RA sampling
//! is needed (replicas answer JC/CN only).
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_bbit [-- --scale ...]
//! ```

use graphstream::{AdjacencyGraph, EdgeStream};
use linkpred::evaluate::sample_overlap_pairs;
use linkpred::metrics;
use serde::Serialize;
use streamlink_bench::{
    all_datasets, build_store, scale_from_args, table_header, table_row, ResultWriter, EXP_SEED,
};
use streamlink_core::CompressedStore;

#[derive(Serialize)]
struct Row {
    dataset: String,
    variant: String,
    k: usize,
    bits: u8,
    bytes_per_vertex: f64,
    jaccard_mae: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let mut out = ResultWriter::new("e16_bbit");

    println!("\nE16 — accuracy-per-byte frontier: full-width vs b-bit replicas ({scale:?})\n");
    for (dataset, stream) in all_datasets(scale) {
        let exact = AdjacencyGraph::from_edges(stream.edges());
        let pairs = sample_overlap_pairs(&exact, 600, EXP_SEED);
        let truth: Vec<f64> = pairs.iter().map(|&(u, v)| exact.jaccard(u, v)).collect();

        println!("dataset {}", dataset.spec().key);
        table_header(&["variant", "k", "b", "B/vertex", "J MAE"]);

        // Full-width rows: 16 bytes per slot.
        for k in [8usize, 16, 32, 64, 128] {
            let store = build_store(&stream, k, EXP_SEED);
            let mut est = Vec::new();
            let mut t = Vec::new();
            for (i, &(u, v)) in pairs.iter().enumerate() {
                if let Some(e) = store.jaccard(u, v) {
                    est.push(e);
                    t.push(truth[i]);
                }
            }
            let row = Row {
                dataset: dataset.spec().key.to_string(),
                variant: "full".into(),
                k,
                bits: 128,
                bytes_per_vertex: (k * 16) as f64,
                jaccard_mae: metrics::mae(&est, &t),
            };
            table_row(&[
                "full".into(),
                k.to_string(),
                "-".into(),
                format!("{:.0}", row.bytes_per_vertex),
                format!("{:.4}", row.jaccard_mae),
            ]);
            out.write_row(&row);
        }

        // Compressed rows at matched byte budgets: build once at the
        // largest k, compress at several b.
        let builder = build_store(&stream, 512, EXP_SEED);
        for b in [1u8, 2, 4, 8] {
            let replica = CompressedStore::from_store(&builder, b);
            let mut est = Vec::new();
            let mut t = Vec::new();
            for (i, &(u, v)) in pairs.iter().enumerate() {
                if let Some(e) = replica.jaccard(u, v) {
                    est.push(e);
                    t.push(truth[i]);
                }
            }
            let row = Row {
                dataset: dataset.spec().key.to_string(),
                variant: "b-bit".into(),
                k: 512,
                bits: b,
                bytes_per_vertex: 512.0 * f64::from(b) / 8.0,
                jaccard_mae: metrics::mae(&est, &t),
            };
            table_row(&[
                "b-bit".into(),
                "512".into(),
                b.to_string(),
                format!("{:.0}", row.bytes_per_vertex),
                format!("{:.4}", row.jaccard_mae),
            ]);
            out.write_row(&row);
        }
        println!();
    }
}
