//! **E25 (failover chaos)** — randomized kill/partition/revive
//! schedules over a simulated failover cluster, pinning the three
//! safety invariants of the lease protocol:
//!
//! 1. **Mutual exclusion**: at no virtual instant is more than one
//!    node a *writable* primary (role plus a fresh majority lease).
//! 2. **Zero acked-write loss**: every write the serving primary acked
//!    is present in the final primary's store after the cluster heals —
//!    un-replicated tails of dead timelines come back through the
//!    revived node's journal handoff.
//! 3. **Byte-for-byte convergence**: after healing, every node's store
//!    equals the final primary's exactly ([`divergence`] is `None`),
//!    and the final primary equals the acked-write truth store.
//! 4. **Timeline coherence**: every node keeps a
//!    [`streamlink_core::events`] journal of its elections, votes,
//!    promotions, fences, handoffs, and resyncs; the journals merge
//!    into one causal cluster timeline that must show **at most one
//!    promotion per epoch** ([`events::check_single_primary`]). Each
//!    seed's merged timeline is written to
//!    `results/failover_events/seed-<n>.jsonl` so any chaos run can be
//!    reconstructed with `streamlink cluster-events`.
//!
//! Each seed drives a 3–5 node cluster on a virtual 25 ms tick clock
//! (lease L = 200 ms). Per tick a client writes to whichever node
//! claims the primary role (acked only while its majority lease is
//! fresh — refusals count as fenced writes), replicas renew leases and
//! pull the WAL from the highest-epoch reachable primary, and expired
//! leases open staggered candidacies resolved by majority vote. Chaos
//! kills the primary (revived later with its durable journal, vote,
//! and epoch — roles are never revived), kills replicas, and partitions
//! nodes for multiples of the lease window. A revived stale primary
//! must be fenced on contact, refuse a second bootstrap, hand off its
//! dead-timeline tail, and resync onto the new epoch.
//!
//! ```sh
//! cargo run --release -p streamlink-bench --bin exp_failover -- \
//!     [--scale small|standard|large] [--seeds 30]
//! ```
//!
//! Exits nonzero on any invariant violation, and on schedule sets that
//! never elected, never fenced, never handed off, or never revived —
//! a vacuous pass is a failure.

use std::process::ExitCode;

use graphstream::VertexId;
use serde::Serialize;
use streamlink_bench::{flag_value, results_dir, scale_from_args, ResultWriter, EXP_SEED};
use streamlink_core::events::{self, ClusterEvent, EventKind};
use streamlink_core::failover::{ExchangeOutcome, FailoverNode, Role, Timeline};
use streamlink_core::journal::JournalEntry;
use streamlink_core::repl::{divergence, ReplicaApplier};
use streamlink_core::snapshot::StoreSnapshot;
use streamlink_core::{SketchConfig, SketchStore};

/// Virtual milliseconds per simulation tick.
const TICK_MS: u64 = 25;
/// The lease window L, in virtual milliseconds.
const LEASE_MS: u64 = 200;

/// Deterministic xorshift64 PRNG: the experiment must replay bit-for-bit
/// from its seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
    fn chance(&mut self, one_in: u64) -> bool {
        self.below(one_in) == 0
    }
}

#[derive(Serialize)]
struct Row {
    seed: u64,
    nodes: u64,
    ticks: u64,
    acked: u64,
    elections: u64,
    forced_kills: u64,
    revivals: u64,
    partitions: u64,
    fenced_writes: u64,
    stale_fenced: u64,
    handoffs: u64,
    handoff_dups: u64,
    refused_bootstraps: u64,
    downtime_ticks: u64,
    max_writable: u64,
    events: u64,
    ok: bool,
    violation: String,
}

/// One simulated cluster member. The store, journal (`log`), applied
/// seq, epoch/vote, timeline, and data epoch survive a kill (durable
/// node); the failover role never does.
struct Node {
    id: String,
    fo: FailoverNode,
    tl: Timeline,
    data_epoch: u64,
    store: SketchStore,
    applier: ReplicaApplier,
    /// The node's durable WAL: every entry it acked or applied.
    log: Vec<JournalEntry>,
    /// Last seq this node assigned as a primary.
    seq: u64,
    alive: bool,
    revive_at: u64,
    /// Partitioned from everyone until this virtual instant.
    cut_until: u64,
    /// Whether this node ever held the primary role (drives the
    /// bootstrap-refusal check at revival).
    was_primary: bool,
    /// This node's causal event journal — its view of the incident,
    /// stamped with virtual ticks, merged across nodes at the end.
    journal: Vec<ClusterEvent>,
}

/// Appends one event to `node`'s journal under its current applied seq
/// (the simulated counterpart of [`events::emit`] on a live node).
fn record(node: &mut Node, now: u64, kind: EventKind, epoch: u64, detail: &str) {
    node.journal.push(ClusterEvent {
        node_id: node.id.clone(),
        epoch,
        applied_seq: node.applier.applied_seq(),
        tick_ms: now,
        kind,
        detail: detail.into(),
        corr_id: None,
    });
}

struct Counters {
    elections: u64,
    forced_kills: u64,
    revivals: u64,
    partitions: u64,
    fenced_writes: u64,
    stale_fenced: u64,
    handoffs: u64,
    handoff_dups: u64,
    refused_bootstraps: u64,
    downtime_ticks: u64,
    max_writable: u64,
}

fn reachable(a: &Node, b: &Node, now: u64) -> bool {
    a.alive && b.alive && a.cut_until <= now && b.cut_until <= now
}

fn local_seq(node: &Node) -> u64 {
    // Primaries advance their applier alongside every ack, so the
    // applied seq is the durable high-water mark for both roles.
    node.applier.applied_seq()
}

/// The index of the alive node currently holding the primary role at
/// the highest epoch (a fenced predecessor may coexist briefly).
fn acting_primary(nodes: &[Node]) -> Option<usize> {
    nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.alive && n.fo.role() == Role::Primary)
        .max_by_key(|(_, n)| n.fo.epoch())
        .map(|(i, _)| i)
}

/// Offers one dead-timeline entry to the primary, exactly like
/// `REPL HANDOFF`: deduped by the per-old-epoch contiguous high-water
/// mark, re-acked as a fresh write on the current timeline.
fn handoff(pri: &mut Node, now: u64, old_epoch: u64, entry: &JournalEntry, c: &mut Counters) {
    let Some(hw) = pri.tl.handoff_highwater(old_epoch) else {
        return;
    };
    if entry.seq <= hw {
        c.handoff_dups += 1;
        return;
    }
    if entry.seq != hw + 1 {
        return; // gap: another survivor's tail must land first
    }
    pri.seq += 1;
    pri.store.insert_edge(entry.u, entry.v);
    pri.log.push(JournalEntry {
        seq: pri.seq,
        u: entry.u,
        v: entry.v,
    });
    pri.applier.advance_to(pri.seq);
    pri.tl.accept_handoff(old_epoch, entry.seq, pri.seq);
    c.handoffs += 1;
    let epoch = pri.fo.epoch();
    record(
        pri,
        now,
        EventKind::HandoffAccepted,
        epoch,
        &format!("re-acked seq {} of dead epoch {old_epoch}", entry.seq),
    );
}

/// Rejoins `nodes[r]` onto `nodes[p]`'s timeline: hand off the
/// un-replicated tail of the dead timeline from the rejoiner's durable
/// journal, then resync wholesale (snapshot replace) onto the primary.
fn rejoin(nodes: &mut [Node], now: u64, r: usize, p: usize, c: &mut Counters) {
    let (data_epoch, applied) = (nodes[r].data_epoch, nodes[r].applier.applied_seq());
    if let Some(base) = nodes[p].tl.fork_after(data_epoch) {
        if applied > base {
            // Entries that entered our journal as handoff re-acks are
            // presented under their origin identity (see
            // `Timeline::reack_origin`) so both surviving copies dedup
            // against the same high-water mark.
            let tail: Vec<(u64, JournalEntry)> = nodes[r]
                .log
                .iter()
                .filter(|e| e.seq > base && e.seq <= applied)
                .map(|e| match nodes[r].tl.reack_origin(e.seq) {
                    Some((oe, os)) => (oe, JournalEntry { seq: os, ..*e }),
                    None => (data_epoch, *e),
                })
                .collect();
            for (oe, entry) in &tail {
                let (pri, _) = split_two(nodes, p, r);
                handoff(pri, now, *oe, entry, c);
            }
        }
    }
    let (snapshot, pri_seq, pri_tl, pri_epoch) = {
        let pri = &nodes[p];
        (
            StoreSnapshot::capture(&pri.store),
            pri.seq,
            pri.tl.clone(),
            pri.tl.latest_epoch(),
        )
    };
    let (pri_log, rep) = {
        let (pri, rep) = split_two(nodes, p, r);
        (pri.log.clone(), rep)
    };
    let old_data_epoch = rep.data_epoch;
    rep.store = snapshot.restore();
    rep.applier.reset_to(0);
    rep.applier.advance_to(pri_seq);
    rep.seq = pri_seq; // a stale primaryship seq must not outlive its timeline
    rep.log = pri_log;
    rep.tl = pri_tl;
    rep.data_epoch = pri_epoch;
    record(
        rep,
        now,
        EventKind::Resync,
        pri_epoch,
        &format!("resynced off dead epoch {old_data_epoch} onto epoch {pri_epoch}"),
    );
}

/// Two disjoint mutable borrows out of the node slice.
fn split_two(nodes: &mut [Node], a: usize, b: usize) -> (&mut Node, &mut Node) {
    assert_ne!(a, b);
    if a < b {
        let (lo, hi) = nodes.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = nodes.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

#[allow(clippy::too_many_lines)]
fn run_seed(seed: u64) -> (Row, Vec<ClusterEvent>) {
    let mut rng = Rng::new(seed);
    let config = SketchConfig::with_slots(32).seed(EXP_SEED);
    let n = 3 + rng.below(3) as usize; // 3..=5 members
    let mut nodes: Vec<Node> = (0..n)
        .map(|i| Node {
            id: format!("n{i}"),
            fo: FailoverNode::new(&format!("n{i}"), n, LEASE_MS),
            tl: Timeline::new(),
            data_epoch: 0,
            store: SketchStore::new(config),
            applier: ReplicaApplier::new(0),
            log: Vec::new(),
            seq: 0,
            alive: true,
            revive_at: 0,
            cut_until: 0,
            was_primary: false,
            journal: Vec::new(),
        })
        .collect();

    // Node 0 bootstraps the fresh cluster as the epoch-1 primary.
    assert!(nodes[0].fo.bootstrap_primary());
    nodes[0].tl.record_fork(1, 0);
    nodes[0].data_epoch = 1;
    nodes[0].was_primary = true;
    record(
        &mut nodes[0],
        0,
        EventKind::Bootstrap,
        1,
        "bootstrapped as epoch-1 primary",
    );
    let mut now = 0u64;
    for node in &mut nodes {
        node.fo.arm(now);
    }

    let mut truth = SketchStore::new(config);
    let mut acked = 0u64;
    let mut c = Counters {
        elections: 0,
        forced_kills: 0,
        revivals: 0,
        partitions: 0,
        fenced_writes: 0,
        stale_fenced: 0,
        handoffs: 0,
        handoff_dups: 0,
        refused_bootstraps: 0,
        downtime_ticks: 0,
        max_writable: 0,
    };
    let mut violation = String::new();
    let note = |v: &mut String, msg: String| {
        if v.is_empty() {
            *v = msg;
        }
    };

    let chaos_ticks = 400 + rng.below(200);
    let heal_ticks = 600;
    for tick in 0..chaos_ticks + heal_ticks {
        now += TICK_MS;
        let healing = tick >= chaos_ticks;

        // --- Chaos schedule (quiet during the heal phase). ---
        if healing {
            for node in &mut nodes {
                node.cut_until = node.cut_until.min(now);
                if !node.alive {
                    node.revive_at = node.revive_at.min(now);
                }
            }
        } else {
            if rng.chance(60) {
                if let Some(p) = acting_primary(&nodes) {
                    // SIGKILL the primary; it revives well after the
                    // election it causes, journal and epoch intact.
                    nodes[p].alive = false;
                    nodes[p].revive_at = now + LEASE_MS * (4 + rng.below(8));
                    c.forced_kills += 1;
                }
            }
            if rng.chance(120) {
                let i = rng.below(n as u64) as usize;
                if nodes[i].alive && nodes[i].fo.role() != Role::Primary {
                    nodes[i].alive = false;
                    nodes[i].revive_at = now + LEASE_MS * (2 + rng.below(4));
                    c.forced_kills += 1;
                }
            }
            if rng.chance(80) {
                let i = rng.below(n as u64) as usize;
                if nodes[i].cut_until <= now {
                    nodes[i].cut_until = now + LEASE_MS * (1 + rng.below(5));
                    c.partitions += 1;
                }
            }
        }

        // --- Revivals: durable state comes back, the role does not. ---
        for nd in nodes.iter_mut() {
            if !nd.alive && nd.revive_at <= now {
                let epoch = nd.fo.epoch();
                let voted = nd.fo.voted().cloned();
                let mut fo = FailoverNode::new(&nd.id, n, LEASE_MS);
                fo.restore(epoch, voted);
                // A revived ex-primary must NOT be able to bootstrap a
                // second epoch-1 timeline.
                if nd.was_primary {
                    if fo.bootstrap_primary() {
                        note(
                            &mut violation,
                            format!("revived {} re-bootstrapped at epoch {epoch}", nd.id),
                        );
                    } else {
                        c.refused_bootstraps += 1;
                    }
                }
                fo.arm(now);
                nd.fo = fo;
                nd.alive = true;
                // Restart resumes from the local disk seq: applied
                // stays where the journal left it — no re-pull of the
                // whole world.
                nd.seq = nd.applier.applied_seq().max(nd.seq);
                c.revivals += 1;
            }
        }

        // --- Invariant 1: at most one writable primary, every tick. ---
        let writable = nodes
            .iter()
            .filter(|nd| nd.alive && nd.fo.role() == Role::Primary && nd.fo.writable(now))
            .count() as u64;
        c.max_writable = c.max_writable.max(writable);
        if writable > 1 {
            note(
                &mut violation,
                format!("{writable} writable primaries at t={now}ms"),
            );
        }

        // --- Client traffic: write to whoever claims the role. ---
        match acting_primary(&nodes) {
            Some(p) => {
                for _ in 0..rng.below(3) {
                    if nodes[p].fo.writable(now) {
                        let (u, v) = (VertexId(rng.below(48)), VertexId(48 + rng.below(48)));
                        nodes[p].seq += 1;
                        let seq = nodes[p].seq;
                        nodes[p].store.insert_edge(u, v);
                        nodes[p].log.push(JournalEntry { seq, u, v });
                        nodes[p].applier.advance_to(seq);
                        truth.insert_edge(u, v);
                        acked += 1;
                    } else {
                        // `ERR fenced`: refused, never acked, not truth.
                        c.fenced_writes += 1;
                    }
                }
            }
            None => c.downtime_ticks += 1,
        }

        // --- Lease renewal + WAL pull, one round per replica. ---
        for r in 0..n {
            if !nodes[r].alive {
                continue;
            }
            let Some(p) = acting_primary(&nodes) else {
                continue;
            };
            // A stale primary that lost its lease probes too (the
            // `fenced_probe` path): RemoteStale fences it, it steps
            // down and rejoins below like any replica.
            if p == r || !reachable(&nodes[r], &nodes[p], now) {
                continue;
            }
            let peer_epoch = nodes[r].fo.epoch();
            let rep_id = nodes[r].id.clone();
            let outcome = nodes[p].fo.note_peer(&rep_id, peer_epoch, now);
            let pri_epoch = nodes[p].fo.epoch();
            match outcome {
                ExchangeOutcome::RemoteStale => {
                    // `ERR fenced`: adopt the real epoch, rejoin below.
                    c.stale_fenced += 1;
                    record(
                        &mut nodes[p],
                        now,
                        EventKind::Fence,
                        pri_epoch,
                        &format!("fenced {rep_id} at stale epoch {peer_epoch}"),
                    );
                    nodes[r].fo.observe_epoch(pri_epoch, now);
                    record(
                        &mut nodes[r],
                        now,
                        EventKind::EpochAdopted,
                        pri_epoch,
                        "adopted newer epoch after being fenced",
                    );
                }
                ExchangeOutcome::Adopted => {
                    // Our epoch outran the contacted primary's: it just
                    // stepped down; nothing to pull from it anymore.
                    let adopted = nodes[p].fo.epoch();
                    record(
                        &mut nodes[p],
                        now,
                        EventKind::StepDown,
                        adopted,
                        &format!("stepped down: {rep_id} carried a newer epoch"),
                    );
                    continue;
                }
                ExchangeOutcome::Ok => {
                    nodes[r].fo.note_primary(pri_epoch, now);
                }
            }
            if nodes[r].data_epoch != nodes[p].tl.latest_epoch() {
                rejoin(&mut nodes, now, r, p, &mut c);
                continue;
            }
            // Adopt the primary's timeline (`tl=` rides every lease
            // reply) *before* pulling, so our handoff marks and re-ack
            // provenance are never staler than our applied data.
            nodes[r].tl = nodes[p].tl.clone();
            // Contiguous pull of anything new (lossy delivery is E23's
            // subject; here the tail must stay handoff-contiguous).
            let after = nodes[r].applier.applied_seq();
            let batch: Vec<JournalEntry> = nodes[p]
                .log
                .iter()
                .filter(|e| e.seq > after)
                .copied()
                .collect();
            let (pri, rep) = split_two(&mut nodes, p, r);
            let _ = pri;
            for e in batch {
                rep.applier.offer(&mut rep.store, e);
                rep.log.push(e);
            }
        }

        // --- Expired leases open candidacies; votes resolve in-tick. ---
        for i in 0..n {
            if !nodes[i].alive || nodes[i].fo.role() == Role::Primary || nodes[i].cut_until > now {
                continue;
            }
            let rank = i as u64; // ids are "n0".."n4": index == sort rank
            if !nodes[i].fo.candidacy_due(now, rank) {
                continue;
            }
            if nodes[i].fo.candidacy_epoch().is_some() && !nodes[i].fo.candidacy_stale(now) {
                continue;
            }
            let target = nodes[i].fo.start_candidacy(now);
            record(
                &mut nodes[i],
                now,
                EventKind::CandidacyStarted,
                target,
                "lease expired; seeking votes",
            );
            // A log identity is (data_epoch, seq): a revived ex-primary
            // with a long journal on a dead timeline must not outrank a
            // shorter log carrying the newer epoch's acked writes.
            let my_log = (nodes[i].data_epoch, local_seq(&nodes[i]));
            let my_id = nodes[i].id.clone();
            let mut won = nodes[i].fo.record_grant(&my_id, now);
            for v in 0..n {
                if won || v == i || !reachable(&nodes[i], &nodes[v], now) {
                    continue;
                }
                let own = (nodes[v].data_epoch, local_seq(&nodes[v]));
                if nodes[v].fo.grant_vote(&my_id, target, my_log, own, now) {
                    record(
                        &mut nodes[v],
                        now,
                        EventKind::VoteGranted,
                        target,
                        &format!("vote granted to {my_id}"),
                    );
                    let granter = nodes[v].id.clone();
                    won = nodes[i].fo.record_grant(&granter, now);
                } else {
                    // `ERR vote denied epoch=N`: a voter ahead of the
                    // target teaches us the real epoch — abort and
                    // retry from there instead of spinning below it.
                    let voter_epoch = nodes[v].fo.epoch();
                    if voter_epoch > target {
                        nodes[i].fo.observe_epoch(voter_epoch, now);
                        break;
                    }
                }
            }
            if won {
                // Promotion: fork the timeline at our applied seq; our
                // journal becomes the new timeline's WAL.
                let base = nodes[i].applier.applied_seq().max(nodes[i].seq);
                nodes[i].tl.record_fork(target, base);
                nodes[i].data_epoch = target;
                nodes[i].seq = base;
                nodes[i].was_primary = true;
                c.elections += 1;
                record(
                    &mut nodes[i],
                    now,
                    EventKind::Promotion,
                    target,
                    &format!("promoted to primary (base seq {base})"),
                );
            }
        }
    }

    // --- Final verdict after the heal phase. ---
    let ticks = chaos_ticks + heal_ticks;
    match acting_primary(&nodes) {
        Some(p) => {
            if !nodes[p].fo.writable(now) {
                note(
                    &mut violation,
                    "healed cluster's primary is not writable".into(),
                );
            }
            // Invariant 2+3: the truth store (every acked write, once)
            // must equal the final primary byte for byte...
            if let Some(d) = divergence(&truth, &nodes[p].store) {
                note(&mut violation, format!("acked-write loss or dup: {d}"));
            }
            // ...and every healed node must equal the primary.
            for r in 0..n {
                if r == p {
                    continue;
                }
                if let Some(d) = divergence(&nodes[p].store, &nodes[r].store) {
                    note(
                        &mut violation,
                        format!("{} diverges after healing: {d}", nodes[r].id),
                    );
                }
            }
        }
        None => note(&mut violation, "no primary after the heal phase".into()),
    }
    if truth.edges_processed() != acked {
        note(
            &mut violation,
            format!(
                "truth store holds {} edges but {acked} were acked",
                truth.edges_processed()
            ),
        );
    }

    // --- Invariant 4: the merged event timeline is coherent. ---
    // Per-node journals merge deterministically into one causal
    // history; two Bootstrap/Promotion records inside one epoch would
    // mean two nodes *believed* they owned the same epoch — caught
    // here even if their writable windows never overlapped on a tick.
    let journals: Vec<Vec<ClusterEvent>> = nodes.iter().map(|nd| nd.journal.clone()).collect();
    let merged = events::merge(&journals);
    if let Err(e) = events::check_single_primary(&merged) {
        note(&mut violation, format!("merged event timeline: {e}"));
    }

    let row = Row {
        seed,
        nodes: n as u64,
        ticks,
        acked,
        elections: c.elections,
        forced_kills: c.forced_kills,
        revivals: c.revivals,
        partitions: c.partitions,
        fenced_writes: c.fenced_writes,
        stale_fenced: c.stale_fenced,
        handoffs: c.handoffs,
        handoff_dups: c.handoff_dups,
        refused_bootstraps: c.refused_bootstraps,
        downtime_ticks: c.downtime_ticks,
        max_writable: c.max_writable,
        events: merged.len() as u64,
        ok: violation.is_empty(),
        violation,
    };
    (row, merged)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let default_seeds = match scale_from_args(&args) {
        datasets::Scale::Small => 30,
        datasets::Scale::Standard => 40,
        datasets::Scale::Large => 120,
    };
    let seeds: u64 = flag_value(&args, "--seeds")
        .map(|s| s.parse().expect("--seeds takes a number"))
        .unwrap_or(default_seeds);

    let mut writer = ResultWriter::new("failover");
    println!(
        "{:>6} {:>5} {:>6} {:>6} {:>6} {:>5} {:>7} {:>5} {:>6} {:>6} {:>8} {:>8} {:>8} {:>5}",
        "seed",
        "nodes",
        "acked",
        "elect",
        "kills",
        "parts",
        "fenced",
        "stale",
        "handed",
        "dups",
        "revived",
        "downtime",
        "writable",
        "ok"
    );
    let mut failures = 0u64;
    let (mut total_elections, mut total_handoffs) = (0u64, 0u64);
    let (mut total_fenced, mut total_revivals) = (0u64, 0u64);
    let (mut total_refused, mut total_events) = (0u64, 0u64);
    let events_dir = results_dir().join("failover_events");
    if let Err(e) = std::fs::create_dir_all(&events_dir) {
        eprintln!("cannot create {}: {e}", events_dir.display());
        return ExitCode::FAILURE;
    }
    for seed in 0..seeds {
        let (row, timeline) = run_seed(seed);
        // The merged timeline is the post-mortem artifact: feedable to
        // `streamlink cluster-events --merge <file>` as-is.
        let journal_path = events_dir.join(format!("seed-{seed}.jsonl"));
        let lines: String = timeline
            .iter()
            .map(|e| format!("{}\n", e.render_line()))
            .collect();
        if let Err(e) = std::fs::write(&journal_path, lines) {
            eprintln!("cannot write {}: {e}", journal_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "{:>6} {:>5} {:>6} {:>6} {:>6} {:>5} {:>7} {:>5} {:>6} {:>6} {:>8} {:>8} {:>8} {:>5}",
            row.seed,
            row.nodes,
            row.acked,
            row.elections,
            row.forced_kills,
            row.partitions,
            row.fenced_writes,
            row.stale_fenced,
            row.handoffs,
            row.handoff_dups,
            row.revivals,
            row.downtime_ticks,
            row.max_writable,
            if row.ok { "yes" } else { "NO" },
        );
        if !row.ok {
            eprintln!("seed {}: {}", row.seed, row.violation);
            failures += 1;
        }
        total_elections += row.elections;
        total_handoffs += row.handoffs;
        total_fenced += row.fenced_writes + row.stale_fenced;
        total_revivals += row.revivals;
        total_refused += row.refused_bootstraps;
        total_events += row.events;
        writer.write_row(&row);
    }

    println!(
        "# {seeds} seeds, {failures} violation(s); coverage: {total_elections} election(s), \
         {total_handoffs} handoff(s), {total_fenced} fence event(s), {total_revivals} \
         revival(s), {total_refused} refused re-bootstrap(s), {total_events} journal event(s) \
         (merged timelines under {})",
        events_dir.display()
    );
    if failures > 0 {
        eprintln!("FAIL: a failover safety invariant was violated (see rows above)");
        return ExitCode::FAILURE;
    }
    // Meta-check: a schedule set that never elected, never fenced,
    // never handed off a dead tail, or never revived a node would make
    // every invariant vacuous.
    if seeds >= 10
        && (total_elections == 0
            || total_handoffs == 0
            || total_fenced == 0
            || total_revivals == 0
            || total_refused == 0
            || total_events == 0)
    {
        eprintln!(
            "FAIL: schedule coverage regressed (elections={total_elections} \
             handoffs={total_handoffs} fenced={total_fenced} revivals={total_revivals} \
             refused_bootstraps={total_refused} events={total_events})"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
