//! Criterion micro-bench: the hashing substrate.
//!
//! Justifies the default backend choice: the two-multiply mixer family vs
//! 3-independent tabulation, and the cost of evaluating a whole family
//! per edge endpoint.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hashkit::{HashFamily, SeededHash, TabulationHash};

fn bench_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashing");
    group.sample_size(20);
    let keys: Vec<u64> = (0..4096u64).collect();
    group.throughput(Throughput::Elements(keys.len() as u64));

    let mixer = SeededHash::new(1);
    group.bench_function("mixer_single", |b| {
        b.iter(|| {
            keys.iter()
                .map(|&k| mixer.hash(k))
                .fold(0u64, u64::wrapping_add)
        });
    });

    let tab = TabulationHash::new(1);
    group.bench_function("tabulation_single", |b| {
        b.iter(|| {
            keys.iter()
                .map(|&k| tab.hash(k))
                .fold(0u64, u64::wrapping_add)
        });
    });

    for k in [64usize, 256] {
        let family = HashFamily::new(k, 2);
        let mut out = vec![0u64; k];
        group.bench_with_input(BenchmarkId::new("family_all", k), &k, |b, _| {
            b.iter(|| {
                let mut acc = 0u64;
                for &key in keys.iter().take(256) {
                    family.hash_all_into(key, &mut out);
                    acc = acc.wrapping_add(out[0]);
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hash);
criterion_main!(benches);
