//! Criterion micro-bench: query latency of the three measures.
//!
//! Backs experiment E9: sketch queries are O(k) regardless of degree;
//! exact queries scale with the endpoint degrees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphstream::{AdjacencyGraph, BarabasiAlbert, EdgeStream, VertexId};
use streamlink_core::{SketchConfig, SketchStore};

fn setup() -> (SketchStore, AdjacencyGraph, Vec<(VertexId, VertexId)>) {
    let stream = BarabasiAlbert::new(20_000, 4, 3);
    let mut store = SketchStore::new(SketchConfig::with_slots(256).seed(1));
    store.insert_stream(stream.edges());
    let graph = AdjacencyGraph::from_edges(stream.edges());
    // Hub pairs: the regime where exact queries hurt most.
    let mut by_degree: Vec<VertexId> = graph.vertices().collect();
    by_degree.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));
    let hubs: Vec<(VertexId, VertexId)> = by_degree
        .windows(2)
        .take(32)
        .map(|w| (w[0], w[1]))
        .collect();
    (store, graph, hubs)
}

fn bench_query(c: &mut Criterion) {
    let (store, graph, pairs) = setup();
    let mut group = c.benchmark_group("hub_query");
    group.sample_size(20);

    for (name, f) in [
        ("jaccard", 0usize),
        ("common_neighbors", 1),
        ("adamic_adar", 2),
    ] {
        group.bench_with_input(BenchmarkId::new("sketch", name), &f, |b, &f| {
            b.iter(|| {
                let mut acc = 0.0;
                for &(u, v) in &pairs {
                    acc += match f {
                        0 => store.jaccard(u, v),
                        1 => store.common_neighbors(u, v),
                        _ => store.adamic_adar(u, v),
                    }
                    .unwrap_or(0.0);
                }
                acc
            });
        });
        group.bench_with_input(BenchmarkId::new("exact", name), &f, |b, &f| {
            b.iter(|| {
                let mut acc = 0.0;
                for &(u, v) in &pairs {
                    acc += match f {
                        0 => graph.jaccard(u, v),
                        1 => graph.common_neighbors(u, v) as f64,
                        _ => graph.adamic_adar(u, v),
                    };
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
