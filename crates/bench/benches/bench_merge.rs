//! Criterion micro-bench: merging one sketch store into another.
//!
//! Covers both merge flavors on the replication hot path: `merge_into`
//! (degree-additive union of two independently-built stores) and
//! `merge_join` (idempotent slot-min/degree-max join — the anti-entropy
//! round every replica runs against a primary snapshot).
//!
//! Allocation note: `merge_into` used to clone every source sketch into
//! a scratch `Vec` before applying it — one `Vec<u64>` allocation of `k`
//! slots per source vertex, ~10k allocations per merge at this shape.
//! It now iterates the source slots in place, so the only per-vertex
//! allocation left is the destination's own entry for vertices it has
//! never seen. This bench is the before/after harness for that change.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphstream::{BarabasiAlbert, Edge, EdgeStream};
use streamlink_core::merge::{merge_into, merge_join};
use streamlink_core::{SketchConfig, SketchStore};

/// Two overlapping halves of one scale-free stream: the merge has to
/// combine shared vertices, not just concatenate disjoint ones.
fn halves() -> (Vec<Edge>, Vec<Edge>) {
    let edges: Vec<Edge> = BarabasiAlbert::new(10_000, 4, 7).edges().collect();
    let mid = edges.len() * 2 / 3;
    (edges[..mid].to_vec(), edges[edges.len() / 3..].to_vec())
}

fn store(k: usize, edges: &[Edge]) -> SketchStore {
    let mut store = SketchStore::new(SketchConfig::with_slots(k).seed(1));
    store.insert_stream(edges.iter().copied());
    store
}

fn bench_merge(c: &mut Criterion) {
    let (left, right) = halves();
    let mut group = c.benchmark_group("merge");
    group.sample_size(10);

    for k in [16usize, 64, 256] {
        let dst = store(k, &left);
        let src = store(k, &right);
        group.throughput(Throughput::Elements(src.vertex_count() as u64));
        group.bench_with_input(BenchmarkId::new("merge_into", k), &k, |b, _| {
            b.iter(|| {
                let mut dst = dst.clone();
                merge_into(&mut dst, &src).expect("compatible stores");
                dst
            });
        });
        group.bench_with_input(BenchmarkId::new("merge_join", k), &k, |b, _| {
            b.iter(|| {
                let mut dst = dst.clone();
                merge_join(&mut dst, &src).expect("compatible stores");
                dst
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
