//! Criterion micro-bench: LSH index build and top-k retrieval vs
//! brute-force scanning (backs experiment E14).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphstream::{BarabasiAlbert, EdgeStream, VertexId};
use streamlink_core::{LshIndex, SketchConfig, SketchStore};

fn store() -> SketchStore {
    let mut s = SketchStore::new(SketchConfig::with_slots(128).seed(4));
    s.insert_stream(BarabasiAlbert::new(10_000, 4, 6).edges());
    s
}

fn bench_lsh(c: &mut Criterion) {
    let store = store();
    let mut group = c.benchmark_group("lsh");
    group.sample_size(10);

    for (bands, rows) in [(32usize, 4usize), (64, 2)] {
        group.bench_with_input(
            BenchmarkId::new("build", format!("{bands}x{rows}")),
            &(bands, rows),
            |b, &(bands, rows)| {
                b.iter(|| LshIndex::build(&store, bands, rows).unwrap());
            },
        );
    }

    let index = LshIndex::build(&store, 64, 2).unwrap();
    let queries: Vec<VertexId> = (0..64u64).map(VertexId).collect();
    group.bench_function("topk_lsh", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &q in &queries {
                acc += index.top_k(&store, q, 10).len();
            }
            acc
        });
    });
    group.bench_function("topk_bruteforce", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &q in &queries {
                let mut scored: Vec<(VertexId, f64)> = store
                    .vertices()
                    .filter(|&v| v != q)
                    .filter_map(|v| store.jaccard(q, v).map(|j| (v, j)))
                    .collect();
                scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
                scored.truncate(10);
                acc += scored.len();
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(benches, bench_lsh);
criterion_main!(benches);
