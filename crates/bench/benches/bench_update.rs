//! Criterion micro-bench: per-edge sketch update cost.
//!
//! Backs experiment E6 with statistically sound per-edge numbers: update
//! cost as a function of `k`, for both hasher backends, against the
//! exact-adjacency insert and the bottom-k variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use graphstream::{AdjacencyGraph, BarabasiAlbert, Edge, EdgeStream};
use streamlink_core::{BottomKStore, HasherBackend, SketchConfig, SketchStore};

fn edges() -> Vec<Edge> {
    BarabasiAlbert::new(10_000, 4, 7).edges().collect()
}

fn bench_update(c: &mut Criterion) {
    let edges = edges();
    let mut group = c.benchmark_group("edge_update");
    group.throughput(Throughput::Elements(edges.len() as u64));
    group.sample_size(10);

    for k in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("minhash_mixer", k), &k, |b, &k| {
            b.iter(|| {
                let mut store = SketchStore::new(SketchConfig::with_slots(k).seed(1));
                store.insert_stream(edges.iter().copied());
                store
            });
        });
        group.bench_with_input(BenchmarkId::new("bottom_k", k), &k, |b, &k| {
            b.iter(|| {
                let mut store = BottomKStore::new(k, 1);
                store.insert_stream(edges.iter().copied());
                store
            });
        });
    }
    group.bench_with_input(
        BenchmarkId::new("minhash_tabulation", 64usize),
        &64usize,
        |b, &k| {
            b.iter(|| {
                let mut store = SketchStore::new(
                    SketchConfig::with_slots(k)
                        .seed(1)
                        .backend(HasherBackend::Tabulation),
                );
                store.insert_stream(edges.iter().copied());
                store
            });
        },
    );
    group.bench_function("exact_adjacency", |b| {
        b.iter(|| AdjacencyGraph::from_edges(edges.iter().copied()));
    });
    group.finish();
}

criterion_group!(benches, bench_update);
criterion_main!(benches);
