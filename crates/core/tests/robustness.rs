//! Failure-injection tests: the sketch layer's answers must be invariant
//! to the stream faults real feeds exhibit — duplicate deliveries,
//! injected self-loops, and local reordering — because slot folding is
//! idempotent, loop-ignoring, and order-insensitive.

use graphstream::adapters::NoiseInjector;
use graphstream::{BarabasiAlbert, EdgeStream, VertexId};
use streamlink_core::{SketchConfig, SketchStore};

fn build(edges: impl Iterator<Item = graphstream::Edge>) -> SketchStore {
    let mut s = SketchStore::new(SketchConfig::with_slots(64).seed(21));
    for e in edges {
        s.insert_edge(e.src, e.dst);
    }
    s
}

/// Sketches from a faulted stream are bit-identical to clean-stream
/// sketches (degree counters legitimately differ under duplicates; the
/// similarity structure must not).
#[test]
fn sketches_invariant_under_all_faults() {
    let clean = BarabasiAlbert::new(400, 3, 31);
    let injector = NoiseInjector {
        duplicate_prob: 0.3,
        self_loop_prob: 0.15,
        max_reorder: 16,
        seed: 5,
    };
    let noisy = injector.apply(&clean);

    let clean_store = build(clean.edges());
    let noisy_store = build(noisy.edges());

    assert_eq!(clean_store.vertex_count(), noisy_store.vertex_count());
    for v in clean_store.vertices() {
        assert_eq!(
            clean_store.sketch(v),
            noisy_store.sketch(v),
            "sketch corrupted by faults at {v}"
        );
    }
    // Jaccard answers (pure sketch functions) are therefore identical.
    for u in 0..60u64 {
        for v in (u + 1)..60u64 {
            assert_eq!(
                clean_store.jaccard(VertexId(u), VertexId(v)),
                noisy_store.jaccard(VertexId(u), VertexId(v))
            );
        }
    }
}

/// Degree counters inflate under duplicates by design (documented stream
/// contract); verify the inflation is bounded by the duplicate count so
/// CN estimates degrade gracefully rather than arbitrarily.
#[test]
fn degree_inflation_is_bounded_by_duplicates() {
    let clean = BarabasiAlbert::new(200, 2, 13);
    let injector = NoiseInjector {
        duplicate_prob: 0.5,
        ..NoiseInjector::clean(7)
    };
    let noisy = injector.apply(&clean);
    let extra = noisy.len() - clean.edges().count();

    let clean_store = build(clean.edges());
    let noisy_store = build(noisy.edges());

    let clean_total: u64 = clean_store.vertices().map(|v| clean_store.degree(v)).sum();
    let noisy_total: u64 = noisy_store.vertices().map(|v| noisy_store.degree(v)).sum();
    assert_eq!(
        noisy_total,
        clean_total + 2 * extra as u64,
        "each duplicate adds exactly 2 degree counts"
    );
}

/// Self-loops never create vertices or degrees.
#[test]
fn loops_leave_no_trace() {
    let mut store = SketchStore::new(SketchConfig::with_slots(16).seed(1));
    for i in 0..100u64 {
        store.insert_edge(VertexId(i), VertexId(i));
    }
    assert_eq!(store.vertex_count(), 0);
    assert_eq!(store.edges_processed(), 100);
}
