//! Golden-file pin of the `streamlink.profilez.v1` profile schema.
//!
//! `/profilez` and the `PROFILE` command serve this document to
//! operator tooling, and the E27 harness parses it to attribute time —
//! so the call-tree encoding is a public artifact. The fixture is built
//! from synthetic span records (never the live ring, which is
//! timing-dependent) and diffed against the checked-in golden file; any
//! change to field names, order, node sorting, or exclusive-time
//! attribution fails CI until the golden is *deliberately* regenerated.
//!
//! Regenerate after an intentional change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p streamlink-core --test profilez_schema
//! ```

use streamlink_core::trace::{Profile, SpanRecord};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("profilez.v1.json")
}

/// A deterministic span set covering the aggregation edge cases: a
/// parent with attributed children, a repeated op that must merge, a
/// child keyed under its parent, and a span whose children overrun its
/// own duration (exclusive time must floor at zero, not wrap).
fn spans() -> Vec<SpanRecord> {
    vec![
        SpanRecord {
            seq: 1,
            op: "cmd.query",
            parent: None,
            ts_unix_ms: 1_000,
            dur_ns: 900_000,
            degree_class: Some(4),
            corr_id: None,
            children: vec![("store.read_lock", 100_000), ("estimator.fold", 500_000)],
        },
        SpanRecord {
            seq: 2,
            op: "cmd.query",
            parent: None,
            ts_unix_ms: 1_010,
            dur_ns: 1_100_000,
            degree_class: Some(5),
            corr_id: Some(0xC0FFEE),
            children: vec![("store.read_lock", 200_000)],
        },
        SpanRecord {
            seq: 3,
            op: "store.read_lock",
            parent: Some("cmd.query"),
            ts_unix_ms: 1_010,
            dur_ns: 300_000,
            degree_class: None,
            corr_id: None,
            children: Vec::new(),
        },
        SpanRecord {
            seq: 4,
            op: "cmd.insert",
            parent: None,
            ts_unix_ms: 1_020,
            dur_ns: 400_000,
            degree_class: Some(2),
            corr_id: None,
            // Children exceeding the parent's own duration: clock skew
            // between child clocks must not produce negative exclusive.
            children: vec![("journal.append", 450_000)],
        },
    ]
}

fn fixture() -> Profile {
    Profile::from_spans(&spans(), 3)
}

#[test]
fn rendered_profile_matches_the_golden_file() {
    let rendered = format!("{}\n", fixture().render_json());
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run with UPDATE_GOLDEN=1 once",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "streamlink.profilez.v1 rendering drifted from the golden file; if the \
         change is intentional, regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn golden_profile_parses_back_to_the_fixture() {
    let golden = std::fs::read_to_string(golden_path()).expect("golden file checked in");
    let parsed = Profile::parse_json(golden.trim_end()).expect("golden profile parses");
    assert_eq!(parsed, fixture());
}

#[test]
fn golden_pins_the_call_tree_invariants() {
    // The properties consumers rely on are part of the pinned surface:
    // exclusive ≤ inclusive everywhere (floored, never wrapped), nodes
    // sorted by inclusive time descending, merged counts preserved.
    let golden = std::fs::read_to_string(golden_path()).expect("golden file checked in");
    let profile = Profile::parse_json(golden.trim_end()).unwrap();
    assert_eq!(profile.spans, 4);
    for node in &profile.nodes {
        assert!(node.exclusive_ns <= node.inclusive_ns, "{}", node.op);
    }
    for pair in profile.nodes.windows(2) {
        assert!(pair[0].inclusive_ns >= pair[1].inclusive_ns, "sort order");
    }
    let query = profile
        .nodes
        .iter()
        .find(|n| n.op == "cmd.query" && n.parent.is_none())
        .expect("merged root node");
    assert_eq!(query.count, 2, "repeated ops must merge");
    let overrun = profile
        .nodes
        .iter()
        .find(|n| n.op == "cmd.insert")
        .expect("overrun node");
    assert_eq!(overrun.exclusive_ns, 0, "exclusive floors at zero");
    assert!(
        profile
            .nodes
            .iter()
            .any(|n| n.parent.as_deref() == Some("cmd.query")),
        "child nodes keyed under their parent"
    );
}
