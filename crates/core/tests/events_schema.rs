//! Golden-file pin of the `streamlink.event.v1` journal schema.
//!
//! The on-disk event journal is a public artifact: incident tooling,
//! `streamlink cluster-events`, and the E25 harness all parse it, and
//! journals written by one build must merge with journals written by
//! another. This test renders one event of every kind with fixed
//! provenance and diffs the result against the checked-in golden file
//! — any change to field names, field order, kind spellings, or escape
//! behavior fails CI until the golden is *deliberately* regenerated
//! (and the schema version bumped if the change is breaking).
//!
//! Regenerate after an intentional change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p streamlink-core --test events_schema
//! ```

use streamlink_core::events::{ClusterEvent, EventKind, ALL_KINDS};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("events.v1.jsonl")
}

/// One deterministic event per kind, plus the two encoding edge cases
/// (an escaped detail, a missing corr id).
fn fixture() -> Vec<ClusterEvent> {
    let mut events: Vec<ClusterEvent> = ALL_KINDS
        .iter()
        .enumerate()
        .map(|(i, &kind)| ClusterEvent {
            node_id: format!("10.0.0.{}:7878", i + 1),
            epoch: 3,
            applied_seq: 100 + i as u64,
            tick_ms: 5_000 + i as u64 * 25,
            kind,
            detail: format!("golden {kind:?}"),
            corr_id: Some(0x5EED_0000 + i as u64),
        })
        .collect();
    events.push(ClusterEvent {
        node_id: "10.0.0.9:7878".into(),
        epoch: 4,
        applied_seq: 200,
        tick_ms: 6_000,
        kind: EventKind::Fence,
        detail: "escapes: quote \" backslash \\ newline \n tab \t".into(),
        corr_id: None,
    });
    events
}

#[test]
fn rendered_events_match_the_golden_file() {
    let rendered: String = fixture()
        .iter()
        .map(|e| format!("{}\n", e.render_line()))
        .collect();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run with UPDATE_GOLDEN=1 once",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "streamlink.event.v1 rendering drifted from the golden file; if the change \
         is intentional, regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn golden_lines_parse_back_to_the_fixture() {
    // The parser must accept exactly what the golden file pins — a
    // journal written by any released build stays mergeable.
    let golden = std::fs::read_to_string(golden_path()).expect("golden file checked in");
    let parsed: Vec<ClusterEvent> = golden
        .lines()
        .map(|l| ClusterEvent::parse_line(l).expect("golden line parses"))
        .collect();
    assert_eq!(parsed, fixture());
}

#[test]
fn every_kind_appears_exactly_once_in_the_golden() {
    let golden = std::fs::read_to_string(golden_path()).expect("golden file checked in");
    for kind in ALL_KINDS {
        let token = ClusterEvent {
            node_id: String::new(),
            epoch: 0,
            applied_seq: 0,
            tick_ms: 0,
            kind,
            detail: String::new(),
            corr_id: None,
        }
        .render_line();
        let kind_field = token
            .split("\"kind\":")
            .nth(1)
            .and_then(|rest| rest.split(',').next())
            .unwrap()
            .to_string();
        assert!(
            golden.contains(&kind_field),
            "golden file is missing kind {kind:?} ({kind_field})"
        );
    }
}
