//! Property-based tests for the extension modules: sliding-window
//! stores and the LSH index.

use graphstream::{Edge, VertexId};
use proptest::prelude::*;
use streamlink_core::{LshIndex, SketchConfig, SketchStore, WindowedStore};

fn arb_edges() -> impl Strategy<Value = Vec<Edge>> {
    proptest::collection::vec(
        (0u64..48, 0u64..48).prop_map(|(u, v)| Edge::new(u, v, 0)),
        1..120,
    )
}

fn cfg() -> SketchConfig {
    SketchConfig::with_slots(32).seed(17)
}

proptest! {
    /// A window large enough to hold the whole stream answers exactly
    /// like a plain store fed each distinct edge once — re-deliveries
    /// inside the live window are exact no-ops, degrees included.
    #[test]
    fn window_covering_stream_equals_plain(edges in arb_edges()) {
        let mut windowed = WindowedStore::new(cfg(), 10_000, 2);
        let mut plain = SketchStore::new(cfg());
        let mut seen = std::collections::HashSet::new();
        for e in &edges {
            windowed.insert_edge(e.src, e.dst);
            if seen.insert((e.src.0.min(e.dst.0), e.src.0.max(e.dst.0))) {
                plain.insert_edge(e.src, e.dst);
            }
        }
        for v in plain.vertices() {
            let ws = windowed.window_sketch(v);
            prop_assert_eq!(ws.as_ref(), plain.sketch(v));
            prop_assert_eq!(windowed.degree(v), plain.degree(v));
        }
    }

    /// The epoch count never exceeds the configured maximum, whatever
    /// the stream shape.
    #[test]
    fn window_epoch_bound(edges in arb_edges(), epoch_len in 1u64..20, max_epochs in 1usize..6) {
        let mut windowed = WindowedStore::new(cfg(), epoch_len, max_epochs);
        for e in &edges {
            windowed.insert_edge(e.src, e.dst);
        }
        prop_assert!(windowed.epoch_count() <= max_epochs);
        prop_assert_eq!(windowed.edges_processed(), edges.len() as u64);
    }

    /// Windowed queries over the live suffix equal a fresh store over
    /// that suffix (exact equivalence of epoch merging). The stream is
    /// globally dedup'd first so epoch rotation tracks stream position
    /// (duplicate deliveries don't advance the window).
    #[test]
    fn window_suffix_equivalence(raw in arb_edges(), epoch_len in 5u64..30) {
        let mut seen = std::collections::HashSet::new();
        let edges: Vec<Edge> = raw
            .into_iter()
            .filter(|e| seen.insert((e.src.0.min(e.dst.0), e.src.0.max(e.dst.0))))
            .collect();
        let max_epochs = 3usize;
        let mut windowed = WindowedStore::new(cfg(), epoch_len, max_epochs);
        for e in &edges {
            windowed.insert_edge(e.src, e.dst);
        }
        // Reconstruct which suffix the live epochs hold: epochs rotate
        // every `epoch_len` edges; the window holds the last
        // (full_epochs_kept * epoch_len + remainder) edges.
        let n = edges.len() as u64;
        let completed = n / epoch_len;
        let remainder = n % epoch_len;
        let kept_full = (max_epochs as u64 - 1).min(completed);
        let window_edges = kept_full * epoch_len + remainder;
        let suffix = &edges[(n - window_edges) as usize..];

        let mut fresh = SketchStore::new(cfg());
        for e in suffix {
            fresh.insert_edge(e.src, e.dst);
        }
        for v in fresh.vertices() {
            let ws = windowed.window_sketch(v);
            prop_assert_eq!(ws.as_ref(), fresh.sketch(v), "sketch mismatch at {}", v);
            prop_assert_eq!(windowed.degree(v), fresh.degree(v));
        }
    }

    /// LSH candidacy is symmetric, never contains the query, and only
    /// returns indexed vertices.
    #[test]
    fn lsh_candidate_invariants(edges in arb_edges(), q in 0u64..48) {
        let mut store = SketchStore::new(cfg());
        store.insert_stream(edges.iter().copied());
        let Ok(index) = LshIndex::build(&store, 8, 4) else {
            return Ok(());
        };
        let q = VertexId(q);
        let cands = index.candidates(&store, q);
        let all: std::collections::HashSet<VertexId> = store.vertices().collect();
        for &c in &cands {
            prop_assert!(c != q, "query in its own candidates");
            prop_assert!(all.contains(&c), "candidate not indexed");
            let back = index.candidates(&store, c);
            prop_assert!(back.contains(&q), "candidacy not symmetric: {q} -> {c}");
        }
        // No duplicates.
        let set: std::collections::HashSet<_> = cands.iter().collect();
        prop_assert_eq!(set.len(), cands.len());
    }

    /// top_k scores are sorted descending and bounded by k.
    #[test]
    fn lsh_topk_sorted(edges in arb_edges(), q in 0u64..48, k in 1usize..8) {
        let mut store = SketchStore::new(cfg());
        store.insert_stream(edges.iter().copied());
        let Ok(index) = LshIndex::build(&store, 8, 4) else {
            return Ok(());
        };
        let top = index.top_k(&store, VertexId(q), k);
        prop_assert!(top.len() <= k);
        for w in top.windows(2) {
            prop_assert!(w[0].1 >= w[1].1, "scores not descending");
        }
        for &(_, j) in &top {
            prop_assert!((0.0..=1.0).contains(&j));
        }
    }

    /// HLL estimates are monotone under insertion and duplicate-immune.
    #[test]
    fn hll_monotone_and_idempotent(items in proptest::collection::hash_set(any::<u64>(), 1..300)) {
        use streamlink_core::HyperLogLog;
        let h = hashkit::SeededHash::new(3);
        let mut hll = HyperLogLog::new(8);
        let mut last = 0.0;
        for &x in &items {
            hll.insert_hash(h.hash(x));
            let est = hll.estimate();
            prop_assert!(est >= last - 1e-9, "estimate decreased: {est} < {last}");
            last = est;
        }
        // Re-inserting everything changes nothing.
        let snapshot = hll.clone();
        for &x in &items {
            hll.insert_hash(h.hash(x));
        }
        prop_assert_eq!(hll, snapshot);
    }

    /// HLL merge is commutative and equals the union sketch.
    #[test]
    fn hll_merge_commutative(
        a in proptest::collection::hash_set(any::<u64>(), 0..200),
        b in proptest::collection::hash_set(any::<u64>(), 0..200),
    ) {
        use streamlink_core::HyperLogLog;
        let h = hashkit::SeededHash::new(4);
        let build = |s: &std::collections::HashSet<u64>| {
            let mut hll = HyperLogLog::new(6);
            for &x in s {
                hll.insert_hash(h.hash(x));
            }
            hll
        };
        let mut ab = build(&a);
        ab.merge(&build(&b));
        let mut ba = build(&b);
        ba.merge(&build(&a));
        prop_assert_eq!(&ab, &ba);
        let union: std::collections::HashSet<u64> = a.union(&b).copied().collect();
        prop_assert_eq!(ab, build(&union));
    }

    /// Identical twins (same neighborhood) always collide in every band.
    #[test]
    fn lsh_twins_always_candidates(nbrs in proptest::collection::hash_set(100u64..200, 1..20)) {
        let mut store = SketchStore::new(cfg());
        for &w in &nbrs {
            store.insert_edge(VertexId(0), VertexId(w));
            store.insert_edge(VertexId(1), VertexId(w));
        }
        let index = LshIndex::build(&store, 8, 4).unwrap();
        prop_assert!(index.candidates(&store, VertexId(0)).contains(&VertexId(1)));
    }
}

proptest! {
    /// Compressed replicas: estimates stay in [0, 1], agree with the
    /// builder at b = 16 within the collision-correction noise, and the
    /// replica answers exactly the builder's vertex set.
    #[test]
    fn compressed_replica_invariants(edges in arb_edges(), b in 1u8..=16) {
        use streamlink_core::CompressedStore;
        let mut builder = SketchStore::new(cfg());
        builder.insert_stream(edges.iter().copied());
        let replica = CompressedStore::from_store(&builder, b);
        for u in 0..16u64 {
            for v in (u + 1)..16u64 {
                let (u, v) = (VertexId(u), VertexId(v));
                let full = builder.jaccard(u, v);
                let comp = replica.jaccard(u, v);
                prop_assert_eq!(full.is_some(), comp.is_some(), "presence mismatch");
                if let Some(j) = comp {
                    prop_assert!((0.0..=1.0).contains(&j));
                    if b == 16 {
                        // One 32-slot sketch: a single low-bit collision
                        // at b = 16 has probability 32·2^-16 ≈ 0.0005.
                        prop_assert!((j - full.unwrap()).abs() < 0.2);
                    }
                }
            }
        }
    }

    /// Robust store: Jaccard identical to the plain store on any stream
    /// (same slots), and degree estimates are duplicate-invariant.
    #[test]
    fn robust_store_invariants(edges in arb_edges()) {
        use streamlink_core::RobustStore;
        let mut plain = SketchStore::new(cfg());
        let mut robust = RobustStore::new(cfg(), 8);
        let mut robust_dup = RobustStore::new(cfg(), 8);
        for e in &edges {
            plain.insert_edge(e.src, e.dst);
            robust.insert_edge(e.src, e.dst);
            robust_dup.insert_edge(e.src, e.dst);
            robust_dup.insert_edge(e.src, e.dst); // double delivery
        }
        for u in 0..16u64 {
            for v in (u + 1)..16u64 {
                let (u, v) = (VertexId(u), VertexId(v));
                prop_assert_eq!(plain.jaccard(u, v), robust.jaccard(u, v));
                prop_assert_eq!(robust.jaccard(u, v), robust_dup.jaccard(u, v));
            }
        }
        for v in plain.vertices() {
            let once = robust.degree_estimate(v);
            let twice = robust_dup.degree_estimate(v);
            prop_assert!((once - twice).abs() < 1e-9, "HLL not duplicate-invariant at {}", v);
        }
    }
}
