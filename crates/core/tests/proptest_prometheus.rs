//! Property tests for the Prometheus text exposition renderer.
//!
//! `render_prometheus` output must be well-formed for *any* registry
//! state a scraper could observe: every sample name unique per label
//! set, `_bucket` series cumulative and monotone non-decreasing with
//! `+Inf` equal to `_count`, and `_count`/`_sum` agreeing with the
//! snapshot's own histogram summaries. The registry here is the real
//! global one, driven with randomized counter/gauge/histogram traffic
//! before each snapshot.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;
use streamlink_core::metrics::global;

/// One parsed sample line: `(name, labels, value)`.
type Sample = (String, String, u64);

/// Splits exposition text into typed HELP/TYPE headers and samples,
/// asserting basic line shape along the way.
fn parse_exposition(text: &str) -> (HashMap<String, String>, Vec<Sample>) {
    let mut types = HashMap::new();
    let mut samples = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().expect("TYPE name").to_string();
            let kind = it.next().expect("TYPE kind").to_string();
            assert!(
                matches!(kind.as_str(), "counter" | "gauge" | "histogram"),
                "unknown TYPE {kind} for {name}"
            );
            assert!(
                types.insert(name.clone(), kind).is_none(),
                "duplicate TYPE for {name}"
            );
            continue;
        }
        if line.starts_with("# HELP ") {
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment shape: {line:?}");
        let (name_labels, value) = line.rsplit_once(' ').expect("sample line");
        let value: u64 = value.parse().unwrap_or_else(|_| {
            panic!("sample value is not a bare u64: {line:?}");
        });
        let (name, labels) = match name_labels.split_once('{') {
            Some((n, l)) => (
                n.to_string(),
                l.strip_suffix('}').expect("closed label set").to_string(),
            ),
            None => (name_labels.to_string(), String::new()),
        };
        samples.push((name, labels, value));
    }
    (types, samples)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever traffic hits the registry, the exposition stays
    /// well-formed and internally consistent.
    #[test]
    fn rendered_exposition_is_well_formed(
        counter_adds in proptest::collection::vec(0u64..10_000, 0..16),
        gauge_sets in proptest::collection::vec(0u64..u32::MAX as u64, 0..16),
        latencies in proptest::collection::vec(0u64..u64::MAX, 0..64),
    ) {
        let m = global();
        m.set_enabled(true);
        // Spread randomized traffic over several instruments of each
        // kind so the exposition exercises multiple families.
        for (i, &n) in counter_adds.iter().enumerate() {
            match i % 3 {
                0 => m.server_commands.add(n),
                1 => m.http_requests.add(n),
                _ => m.journal_appends.add(n),
            }
        }
        for (i, &v) in gauge_sets.iter().enumerate() {
            match i % 3 {
                0 => m.mem_total_bytes.set(v),
                1 => m.connections_active.set(v),
                _ => m.mem_bytes_per_vertex.set(v),
            }
        }
        for (i, &ns) in latencies.iter().enumerate() {
            match i % 3 {
                0 => m.server_command_latency.record_ns(ns),
                1 => m.http_request_latency.record_ns(ns),
                _ => m.insert_latency.record_ns(ns),
            }
        }

        let snap = m.snapshot();
        let text = snap.render_prometheus();
        let (types, samples) = parse_exposition(&text);

        // Unique (name, labels) across every sample line.
        let mut seen = HashSet::new();
        for (name, labels, _) in &samples {
            prop_assert!(
                seen.insert((name.clone(), labels.clone())),
                "duplicate sample {name}{{{labels}}}"
            );
        }

        // Every sample belongs to a declared family; counters carry the
        // `_total` suffix.
        for (name, _, _) in &samples {
            let family = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|s| name.strip_suffix(s))
                .unwrap_or(name);
            let kind = types
                .get(family)
                .or_else(|| types.get(name))
                .unwrap_or_else(|| panic!("sample {name} has no TYPE header"));
            if kind == "counter" {
                prop_assert!(name.ends_with("_total"), "counter {name} lacks _total");
            }
        }

        // Histogram invariants, checked against the snapshot itself.
        let by_sample: HashMap<(String, String), u64> = samples
            .iter()
            .map(|(n, l, v)| ((n.clone(), l.clone()), *v))
            .collect();
        for (key, summary) in &snap.histograms {
            let family = format!("streamlink_{}", key.replace('.', "_"));
            prop_assert_eq!(types.get(&family).map(String::as_str), Some("histogram"));
            let buckets: Vec<(String, u64)> = samples
                .iter()
                .filter(|(n, _, _)| n == &format!("{family}_bucket"))
                .map(|(_, l, v)| (l.clone(), *v))
                .collect();
            prop_assert!(!buckets.is_empty(), "{family} has no bucket lines");
            let mut last = 0u64;
            for (labels, cumulative) in &buckets {
                prop_assert!(
                    *cumulative >= last,
                    "{family} bucket {labels} regressed: {cumulative} < {last}"
                );
                last = *cumulative;
            }
            let (inf_labels, inf_value) = buckets.last().unwrap();
            prop_assert_eq!(inf_labels.as_str(), "le=\"+Inf\"");
            prop_assert_eq!(*inf_value, summary.count, "{family} +Inf vs count");
            let count = by_sample[&(format!("{family}_count"), String::new())];
            let sum = by_sample[&(format!("{family}_sum"), String::new())];
            prop_assert_eq!(count, summary.count, "{family} _count vs summary");
            prop_assert_eq!(sum, summary.sum_ns, "{family} _sum vs summary");
        }
    }
}
