//! Golden-file pin of the `streamlink.loadreport.v1` artifact schema.
//!
//! Load reports are a public artifact: CI uploads them, the perf-smoke
//! gate parses them, and dashboards trend them across builds — so a
//! report written by one build must parse under another. This test
//! renders a fixed report and diffs it against the checked-in golden
//! file; any change to field names, order, or float formatting fails CI
//! until the golden is *deliberately* regenerated (and the schema
//! version bumped if the change is breaking).
//!
//! Regenerate after an intentional change with:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -p streamlink-core --test loadreport_schema
//! ```

use streamlink_core::loadgen::LoadReport;
use streamlink_core::metrics::{HistogramSummary, HISTOGRAM_BUCKETS};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("loadreport.v1.json")
}

/// A deterministic report exercising the encoding edge cases: an
/// escaped version string, a set (and breached) SLO, sheds, and a
/// fractional achieved rate that pins the `{:.3}` float format.
fn fixture() -> LoadReport {
    LoadReport {
        version: "0.1.0+gdeadbee \"dirty\"".into(),
        seed: 0x5EED,
        conns: 4,
        duration_ms: 10_000,
        offered_ops_per_sec: 1_000,
        // Exactly representable at the pinned `{:.3}` precision, so the
        // parse-back test round-trips bit-for-bit.
        achieved_ops_per_sec: 987.654,
        ops_attempted: 10_000,
        ops_ok: 9_000,
        ops_err: 700,
        ops_shed: 300,
        mix_insert: 5_400,
        mix_jaccard: 2_250,
        mix_degree: 900,
        mix_explain: 450,
        latency: HistogramSummary {
            count: 10_000,
            sum_ns: 4_500_000_000,
            max_ns: 120_000_000,
            p50_ns: 262_144,
            p95_ns: 1_048_576,
            p99_ns: 4_194_304,
            p999_ns: 16_777_216,
            buckets: [0; HISTOGRAM_BUCKETS],
        },
        slo_p99_ms: 2,
        slo_pass: false,
    }
}

#[test]
fn rendered_report_matches_the_golden_file() {
    let rendered = format!("{}\n", fixture().render_json());
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run with UPDATE_GOLDEN=1 once",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "streamlink.loadreport.v1 rendering drifted from the golden file; if the \
         change is intentional, regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn golden_report_parses_back_to_the_fixture() {
    // The parser must accept exactly what the golden file pins — a
    // report uploaded by any released build stays readable.
    let golden = std::fs::read_to_string(golden_path()).expect("golden file checked in");
    let parsed = LoadReport::parse_json(golden.trim_end()).expect("golden report parses");
    assert_eq!(parsed, fixture());
}

#[test]
fn golden_pins_the_slo_verdict_contract() {
    let golden = std::fs::read_to_string(golden_path()).expect("golden file checked in");
    let report = LoadReport::parse_json(golden.trim_end()).unwrap();
    // The fixture breaches its 2ms SLO (p99 is ~4.2ms): the exit-code
    // contract CI gates on is part of the pinned surface.
    assert!(!report.slo_pass);
    assert_eq!(report.exit_code(), 1);
    assert!(!LoadReport::slo_verdict(report.slo_p99_ms, &report.latency));
    assert!(LoadReport::slo_verdict(0, &report.latency), "no SLO passes");
}
