//! Empirical validation of the theoretical accuracy guarantees: real
//! sketches over randomized neighborhoods must respect the Hoeffding
//! bound's promised failure rate.

use graphstream::VertexId;
use proptest::prelude::*;
use streamlink_core::{AccuracyPlan, SketchConfig, SketchStore};

/// Builds two vertices with controlled overlap and returns
/// (store, exact_jaccard).
fn overlap_pair(shared: u64, private_each: u64, k: usize, seed: u64) -> (SketchStore, f64) {
    let mut s = SketchStore::new(SketchConfig::with_slots(k).seed(seed));
    let (u, v) = (VertexId(0), VertexId(1));
    for w in 0..shared {
        s.insert_edge(u, VertexId(100 + w));
        s.insert_edge(v, VertexId(100 + w));
    }
    for w in 0..private_each {
        s.insert_edge(u, VertexId(10_000 + w));
        s.insert_edge(v, VertexId(20_000 + w));
    }
    let exact = shared as f64 / (shared + 2 * private_each) as f64;
    (s, exact)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Each individual estimate stays within the ε bound computed for its
    /// k at 99% confidence — allowing the promised 1% of violations would
    /// need many more cases, so we use a slack factor of 1.5 on ε and
    /// require zero violations (P < 1e-6 of a false failure).
    #[test]
    fn estimates_respect_error_bound(
        shared in 1u64..60,
        private_each in 0u64..60,
        seed in any::<u64>(),
    ) {
        let k = 256;
        let (s, exact) = overlap_pair(shared, private_each, k, seed);
        let est = s.jaccard(VertexId(0), VertexId(1)).unwrap();
        let eps = AccuracyPlan::error_bound(k, 0.01) * 1.5;
        prop_assert!(
            (est - exact).abs() <= eps,
            "estimate {est} vs exact {exact}: outside 1.5ε = {eps}"
        );
    }

    /// The required_slots planner is sufficient: sketches sized by the
    /// plan hit the target tolerance (with the same slack reasoning).
    #[test]
    fn planner_is_sufficient(
        shared in 1u64..40,
        private_each in 0u64..40,
        seed in any::<u64>(),
    ) {
        let plan = AccuracyPlan::new(0.15, 0.01);
        let k = plan.required_slots();
        let (s, exact) = overlap_pair(shared, private_each, k, seed);
        let est = s.jaccard(VertexId(0), VertexId(1)).unwrap();
        prop_assert!(
            (est - exact).abs() <= plan.epsilon * 1.5,
            "estimate {est} vs exact {exact} at planned k = {k}"
        );
    }

    /// CN error respects the propagated bound ε·(d_u + d_v).
    #[test]
    fn cn_respects_propagated_bound(
        shared in 1u64..40,
        private_each in 0u64..40,
        seed in any::<u64>(),
    ) {
        let k = 256;
        let (s, _) = overlap_pair(shared, private_each, k, seed);
        let cn_est = s.common_neighbors(VertexId(0), VertexId(1)).unwrap();
        let eps = AccuracyPlan::error_bound(k, 0.01) * 1.5;
        let plan = AccuracyPlan::new(eps.min(0.99), 0.01);
        let bound = plan.cn_error_bound(
            s.degree(VertexId(0)),
            s.degree(VertexId(1)),
        );
        prop_assert!(
            (cn_est - shared as f64).abs() <= bound + 1e-9,
            "CN estimate {cn_est} vs exact {shared}: outside {bound}"
        );
    }
}

/// A deterministic aggregate check: across 500 independent seeds, the
/// fraction of estimates violating the ε(δ=0.05) bound must not exceed
/// δ by more than sampling slack.
#[test]
fn empirical_failure_rate_below_delta() {
    let k = 64;
    let delta = 0.05;
    let eps = AccuracyPlan::error_bound(k, delta);
    let mut violations = 0u32;
    let trials: u32 = 500;
    for seed in 0..trials {
        let (s, exact) = overlap_pair(20, 20, k, u64::from(seed));
        let est = s.jaccard(VertexId(0), VertexId(1)).unwrap();
        if (est - exact).abs() > eps {
            violations += 1;
        }
    }
    let rate = f64::from(violations) / f64::from(trials);
    // Hoeffding is conservative; the true rate is typically ≪ δ. Allow
    // 2× δ to be safe against seed-set quirks.
    assert!(
        rate <= 2.0 * delta,
        "violation rate {rate} exceeds 2δ = {}",
        2.0 * delta
    );
}
