//! Property-based tests for the journal's record framing: the v2
//! CRC-32 line format round-trips any entry, legacy v1 stays readable,
//! and — the load-bearing guarantee — no single-bit flip, whitespace
//! injection, or truncation ever passes verification.

use graphstream::VertexId;
use proptest::prelude::*;
use streamlink_core::journal::{JournalEntry, LineCheck};

fn arb_entry() -> impl Strategy<Value = JournalEntry> {
    // Full-range ids: the framing must survive u64::MAX-width fields.
    (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(seq, u, v)| JournalEntry {
        seq,
        u: VertexId(u),
        v: VertexId(v),
    })
}

proptest! {
    /// Display → check_line round-trips every entry as a verified v2
    /// record, including max-width u64 ids.
    #[test]
    fn v2_roundtrip(entry in arb_entry()) {
        let line = entry.to_string();
        prop_assert_eq!(LineCheck::Verified(entry), JournalEntry::check_line(&line));
        prop_assert_eq!(Some(entry), JournalEntry::parse(&line));
    }

    /// Legacy v1 lines (no CRC) parse for every id width, flagged as
    /// legacy rather than verified.
    #[test]
    fn v1_roundtrip(entry in arb_entry()) {
        let line = format!("E {} {} {}", entry.seq, entry.u.0, entry.v.0);
        prop_assert_eq!(LineCheck::Legacy(entry), JournalEntry::check_line(&line));
        prop_assert_eq!(Some(entry), JournalEntry::parse(&line));
    }

    /// Every single-bit flip anywhere in a v2 record is detected: the
    /// damaged line is never accepted, as v2 *or* as a legacy record.
    #[test]
    fn every_single_bit_flip_is_detected(entry in arb_entry()) {
        let line = entry.to_string();
        let bytes = line.as_bytes();
        for byte_idx in 0..bytes.len() {
            for bit in 0..8u8 {
                let mut damaged = bytes.to_vec();
                damaged[byte_idx] ^= 1 << bit;
                // A flip may leave invalid UTF-8; that is detection too.
                let Ok(s) = std::str::from_utf8(&damaged) else { continue };
                let check = JournalEntry::check_line(s);
                prop_assert!(
                    matches!(check, LineCheck::Malformed | LineCheck::BadCrc),
                    "flip byte {} bit {} of {:?} passed as {:?}",
                    byte_idx, bit, line, check,
                );
            }
        }
    }

    /// Injected whitespace (space, tab, CR) at any position — the
    /// classic copy/transport mangling — never yields a valid record.
    #[test]
    fn whitespace_injection_is_rejected(entry in arb_entry(), pos_frac in 0.0f64..1.0, ws in 0usize..3) {
        let line = entry.to_string();
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let pos = ((line.len() + 1) as f64 * pos_frac) as usize;
        let pos = pos.min(line.len());
        let c = [' ', '\t', '\r'][ws];
        let mut mangled = line.clone();
        mangled.insert(pos, c);
        let check = JournalEntry::check_line(&mangled);
        prop_assert!(
            matches!(check, LineCheck::Malformed | LineCheck::BadCrc),
            "inserting {c:?} at {pos} in {line:?} passed as {check:?}",
        );
    }

    /// No strict prefix of a v2 line verifies: a record cut anywhere by
    /// a torn write is detected, whatever boundary the cut lands on.
    #[test]
    fn truncation_is_always_detected(entry in arb_entry()) {
        let line = entry.to_string();
        for cut in 0..line.len() {
            let check = JournalEntry::check_line(&line[..cut]);
            prop_assert!(
                matches!(check, LineCheck::Malformed | LineCheck::BadCrc),
                "prefix of {cut} bytes of {:?} passed as {:?}",
                line, check,
            );
        }
    }
}
