//! Property-based tests for the sketch layer: estimator bounds,
//! idempotence, merge correctness, snapshot fidelity.

use graphstream::{Edge, VertexId};
use proptest::prelude::*;
use streamlink_core::journal::JournalEntry;
use streamlink_core::merge::{merge_into, merge_join};
use streamlink_core::repl::{divergence, ReplicaApplier};
use streamlink_core::snapshot::StoreSnapshot;
use streamlink_core::{BottomKStore, SketchConfig, SketchStore};

fn arb_edges() -> impl Strategy<Value = Vec<Edge>> {
    proptest::collection::vec(
        (0u64..64, 0u64..64).prop_map(|(u, v)| Edge::new(u, v, 0)),
        1..150,
    )
}

fn build(edges: &[Edge], k: usize, seed: u64) -> SketchStore {
    let mut s = SketchStore::new(SketchConfig::with_slots(k).seed(seed));
    s.insert_stream(edges.iter().copied());
    s
}

proptest! {
    /// Estimates are always in their feasible ranges.
    #[test]
    fn estimates_in_range(edges in arb_edges(), seed in any::<u64>(),
                          a in 0u64..64, b in 0u64..64) {
        let s = build(&edges, 32, seed);
        let (a, b) = (VertexId(a), VertexId(b));
        if let Some(j) = s.jaccard(a, b) {
            prop_assert!((0.0..=1.0).contains(&j));
        }
        if let Some(cn) = s.common_neighbors(a, b) {
            prop_assert!(cn >= 0.0);
            prop_assert!(cn <= s.degree(a).min(s.degree(b)) as f64 + 1e-9);
        }
        if let Some(aa) = s.adamic_adar(a, b) {
            prop_assert!(aa.is_finite() && aa >= 0.0);
        }
    }

    /// Queries are symmetric in their arguments.
    #[test]
    fn queries_symmetric(edges in arb_edges(), a in 0u64..64, b in 0u64..64) {
        let s = build(&edges, 16, 7);
        let (a, b) = (VertexId(a), VertexId(b));
        prop_assert_eq!(s.jaccard(a, b), s.jaccard(b, a));
        prop_assert_eq!(s.common_neighbors(a, b), s.common_neighbors(b, a));
    }

    /// Replaying the same stream twice (duplicate deliveries) never
    /// changes any sketch — slot idempotence at store scale.
    #[test]
    fn sketches_idempotent_under_replay(edges in arb_edges()) {
        let once = build(&edges, 16, 3);
        let mut twice = build(&edges, 16, 3);
        twice.insert_stream(edges.iter().copied());
        for v in once.vertices() {
            prop_assert_eq!(once.sketch(v), twice.sketch(v));
        }
    }

    /// Edge order does not matter: sketches are order-insensitive.
    #[test]
    fn sketches_order_insensitive(mut edges in arb_edges(), swaps in any::<u64>()) {
        let forward = build(&edges, 16, 5);
        // Deterministic pseudo-shuffle.
        let n = edges.len();
        for i in 0..n {
            let j = (hashkit::mix64(swaps ^ i as u64) % n as u64) as usize;
            edges.swap(i, j);
        }
        let shuffled = build(&edges, 16, 5);
        for v in forward.vertices() {
            prop_assert_eq!(forward.sketch(v), shuffled.sketch(v));
            prop_assert_eq!(forward.degree(v), shuffled.degree(v));
        }
    }

    /// Merging a split stream equals the single-pass store, wherever the
    /// split point falls.
    #[test]
    fn merge_exactness(edges in arb_edges(), cut_frac in 0.0f64..1.0) {
        let cut = ((edges.len() as f64) * cut_frac) as usize;
        let mut left = build(&edges[..cut], 16, 9);
        let right = build(&edges[cut..], 16, 9);
        let whole = build(&edges, 16, 9);
        merge_into(&mut left, &right).unwrap();
        prop_assert_eq!(left.vertex_count(), whole.vertex_count());
        for v in whole.vertices() {
            prop_assert_eq!(left.sketch(v), whole.sketch(v));
            prop_assert_eq!(left.degree(v), whole.degree(v));
        }
    }

    /// The replication join is idempotent: joining a store with an
    /// identical copy of itself — once or many times — changes nothing.
    /// Slots are min-registers (self-merge is a no-op) and degrees /
    /// edge counts join by max, so they never double-count.
    #[test]
    fn merge_join_self_is_idempotent(edges in arb_edges(), rounds in 1usize..4) {
        let reference = build(&edges, 16, 13);
        let mut joined = build(&edges, 16, 13);
        let copy = build(&edges, 16, 13);
        for _ in 0..rounds {
            merge_join(&mut joined, &copy).unwrap();
        }
        prop_assert_eq!(divergence(&reference, &joined), None);
    }

    /// Joining a prefix state with the full state of the same stream
    /// recovers the full state exactly, regardless of the cut point —
    /// the anti-entropy repair property.
    #[test]
    fn merge_join_prefix_recovers_full_state(edges in arb_edges(), cut_frac in 0.0f64..1.0) {
        let cut = ((edges.len() as f64) * cut_frac) as usize;
        let mut replica = build(&edges[..cut], 16, 17);
        let primary = build(&edges, 16, 17);
        merge_join(&mut replica, &primary).unwrap();
        prop_assert_eq!(divergence(&primary, &replica), None);
        // And a second round is a no-op.
        merge_join(&mut replica, &primary).unwrap();
        prop_assert_eq!(divergence(&primary, &replica), None);
    }

    /// Applying the same WAL segment twice through the seq-dedup path
    /// leaves sketch slots unchanged and never double-counts degrees or
    /// edge counts — replicated delivery is exactly-once in effect.
    #[test]
    fn replayed_segment_dedupes_not_double_counts(edges in arb_edges()) {
        let entries: Vec<JournalEntry> = edges
            .iter()
            .enumerate()
            .map(|(i, e)| JournalEntry { seq: i as u64 + 1, u: e.src, v: e.dst })
            .collect();
        let mut primary = SketchStore::new(SketchConfig::with_slots(16).seed(19));
        for e in &entries {
            primary.insert_edge(e.u, e.v);
        }
        let mut replica = SketchStore::new(SketchConfig::with_slots(16).seed(19));
        let mut applier = ReplicaApplier::new(0);
        // The same segment delivered twice back to back.
        for e in entries.iter().chain(entries.iter()) {
            applier.offer(&mut replica, *e);
        }
        prop_assert_eq!(applier.applied(), entries.len() as u64);
        prop_assert_eq!(applier.deduped(), entries.len() as u64);
        prop_assert_eq!(divergence(&primary, &replica), None);
    }

    /// Snapshot round-trips preserve every query answer.
    #[test]
    fn snapshot_fidelity(edges in arb_edges(), a in 0u64..64, b in 0u64..64) {
        let s = build(&edges, 16, 11);
        let restored = StoreSnapshot::capture(&s).restore();
        let (a, b) = (VertexId(a), VertexId(b));
        prop_assert_eq!(s.jaccard(a, b), restored.jaccard(a, b));
        prop_assert_eq!(s.adamic_adar(a, b), restored.adamic_adar(a, b));
    }

    /// Bottom-k estimates also stay in range and symmetric.
    #[test]
    fn bottomk_in_range(edges in arb_edges(), a in 0u64..64, b in 0u64..64) {
        let mut s = BottomKStore::new(16, 3);
        s.insert_stream(edges.iter().copied());
        let (a, b) = (VertexId(a), VertexId(b));
        if let Some(j) = s.jaccard(a, b) {
            prop_assert!((0.0..=1.0).contains(&j));
            prop_assert_eq!(Some(j), s.jaccard(b, a));
        }
    }

    /// A vertex's sketch depends only on its neighbor set, not on what
    /// the rest of the graph does (locality).
    #[test]
    fn sketch_locality(extra in arb_edges()) {
        // Fixed local neighborhood for vertex 1000.
        let local: Vec<Edge> =
            (0..10u64).map(|w| Edge::new(1000u64, 2000 + w, 0)).collect();
        let s_alone = build(&local, 16, 2);
        let mut combined_edges = local.clone();
        // Extra edges never touch vertex 1000 or its neighbors.
        combined_edges.extend(extra.iter().copied());
        let s_comb = build(&combined_edges, 16, 2);
        prop_assert_eq!(
            s_alone.sketch(VertexId(1000)),
            s_comb.sketch(VertexId(1000))
        );
    }
}
