//! Crash recovery: last snapshot + journal tail replay.
//!
//! A data directory persists a serving store as two artifacts:
//!
//! * `snapshot.json` — an atomic [`StoreSnapshot`] (see
//!   [`StoreSnapshot::write_atomic`]), rewritten periodically;
//! * `wal.<seq>.log` — journal segments holding every acked edge (see
//!   [`crate::journal`]).
//!
//! [`recover`] rebuilds the store the crashed process promised its
//! clients: load the snapshot (or start empty), then re-apply every
//! journal entry past the snapshot's high-water mark. Because journal
//! appends happen before acks and snapshots are written atomically, the
//! recovered store contains **every acked edge** regardless of where the
//! process died — the only droppable artifact is a torn final journal
//! line, which was never acked.
//!
//! [`checkpoint`] is the other half of the contract: write the new
//! snapshot atomically *first*, then prune journal segments it made
//! redundant. If the process dies between the two steps, recovery merely
//! replays entries the snapshot already covers — [`crate::journal::replay`]
//! skips them by sequence number.

use std::io;
use std::path::{Path, PathBuf};

use crate::config::SketchConfig;
use crate::journal::{self, Journal, ReplayReport};
use crate::snapshot::StoreSnapshot;
use crate::store::SketchStore;

/// The snapshot file inside a data directory.
#[must_use]
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.json")
}

/// What [`recover`] rebuilt and from where.
#[derive(Debug)]
pub struct Recovery {
    /// The recovered store, ready to serve.
    pub store: SketchStore,
    /// `edges_processed` of the snapshot that seeded recovery (0 when
    /// starting empty).
    pub snapshot_seq: u64,
    /// Whether a snapshot file was found and loaded.
    pub snapshot_loaded: bool,
    /// Journal replay details (entries applied/skipped, torn tail).
    pub journal: ReplayReport,
}

/// Rebuilds the store from `dir`: snapshot first, then the journal tail.
///
/// When no snapshot exists, recovery starts from an empty store built
/// with `config`; when one exists, its embedded config wins (the journal
/// tail must be applied with the same hashers that produced the
/// snapshot).
///
/// # Errors
/// Fails on unreadable files or a corrupt snapshot. A *missing* snapshot
/// or journal is not an error — that is simply a fresh directory.
pub fn recover(dir: &Path, config: SketchConfig) -> io::Result<Recovery> {
    let (mut store, snapshot_seq, snapshot_loaded) =
        match StoreSnapshot::read_from(&snapshot_path(dir)) {
            Ok(snap) => {
                let seq = snap.edges_processed;
                (snap.restore(), seq, true)
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => (SketchStore::new(config), 0, false),
            Err(e) => return Err(e),
        };
    let journal = journal::replay(dir, snapshot_seq, |entry| {
        store.insert_edge(entry.u, entry.v);
    })?;
    Ok(Recovery {
        store,
        snapshot_seq,
        snapshot_loaded,
        journal,
    })
}

/// Persists `snapshot` atomically, then prunes journal segments it made
/// redundant. Returns the number of segments removed.
///
/// Order matters: the snapshot must be durable before any journal entry
/// covering the same edges is deleted. Callers should capture `snapshot`
/// and rotate `journal` under the store lock, then call this without it.
///
/// # Errors
/// Fails on IO errors. A failure after the snapshot write leaves extra
/// journal segments behind, which is safe (replay skips them).
pub fn checkpoint(
    snapshot: &StoreSnapshot,
    dir: &Path,
    journal: &mut Journal,
) -> io::Result<usize> {
    let metrics = crate::metrics::global();
    let start = std::time::Instant::now();
    let result = snapshot
        .write_atomic(&snapshot_path(dir))
        .and_then(|()| journal.prune_below(snapshot.edges_processed));
    match &result {
        Ok(_) => {
            metrics.checkpoints.incr();
            metrics.checkpoint_latency.observe(start);
        }
        Err(_) => {
            metrics.checkpoint_failures.incr();
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{FsyncPolicy, JournalEntry};
    use graphstream::{BarabasiAlbert, EdgeStream, VertexId};
    use std::fs;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "streamlink-durable-{}-{tag}-{n}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cfg() -> SketchConfig {
        SketchConfig::with_slots(32).seed(9)
    }

    /// Simulates a serving process: journal-then-apply for each edge.
    fn ingest(store: &mut SketchStore, journal: &mut Journal, u: u64, v: u64) {
        let seq = store.edges_processed() + 1;
        journal
            .append(JournalEntry {
                seq,
                u: VertexId(u),
                v: VertexId(v),
            })
            .unwrap();
        store.insert_edge(VertexId(u), VertexId(v));
        assert_eq!(store.edges_processed(), seq);
    }

    #[test]
    fn fresh_directory_recovers_empty() {
        let dir = temp_dir("fresh");
        let rec = recover(&dir, cfg()).unwrap();
        assert!(!rec.snapshot_loaded);
        assert_eq!(rec.snapshot_seq, 0);
        assert_eq!(rec.store.edges_processed(), 0);
        assert_eq!(rec.journal, ReplayReport::default());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn journal_only_recovery_matches_direct_ingestion() {
        let dir = temp_dir("walonly");
        let edges: Vec<_> = BarabasiAlbert::new(80, 2, 3).edges().collect();

        let mut store = SketchStore::new(cfg());
        let mut journal = Journal::create(&dir, 1, FsyncPolicy::OnRotate).unwrap();
        for e in &edges {
            ingest(&mut store, &mut journal, e.src.0, e.dst.0);
        }
        drop(journal); // crash: no snapshot ever written

        let rec = recover(&dir, cfg()).unwrap();
        assert!(!rec.snapshot_loaded);
        assert_eq!(rec.journal.replayed, edges.len() as u64);
        assert_eq!(rec.store.edges_processed(), store.edges_processed());
        for v in store.vertices() {
            assert_eq!(rec.store.sketch(v), store.sketch(v), "sketch at {v}");
            assert_eq!(rec.store.degree(v), store.degree(v));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_plus_tail_recovery() {
        let dir = temp_dir("snaptail");
        let edges: Vec<_> = BarabasiAlbert::new(120, 2, 4).edges().collect();
        let cut = edges.len() / 2;

        let mut store = SketchStore::new(cfg());
        let mut journal = Journal::create(&dir, 1, FsyncPolicy::OnRotate).unwrap();
        for e in &edges[..cut] {
            ingest(&mut store, &mut journal, e.src.0, e.dst.0);
        }
        // Checkpoint mid-stream (the serving protocol: rotate under lock,
        // then write + prune).
        let snap = StoreSnapshot::capture(&store);
        journal.rotate(snap.edges_processed + 1).unwrap();
        checkpoint(&snap, &dir, &mut journal).unwrap();
        for e in &edges[cut..] {
            ingest(&mut store, &mut journal, e.src.0, e.dst.0);
        }
        drop(journal); // crash after more ingestion

        let rec = recover(&dir, cfg()).unwrap();
        assert!(rec.snapshot_loaded);
        assert_eq!(rec.snapshot_seq, cut as u64);
        assert_eq!(rec.journal.replayed, (edges.len() - cut) as u64);
        assert_eq!(rec.store.edges_processed(), edges.len() as u64);
        for v in store.vertices() {
            assert_eq!(rec.store.sketch(v), store.sketch(v), "sketch at {v}");
            assert_eq!(rec.store.degree(v), store.degree(v));
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_between_snapshot_and_prune_is_harmless() {
        let dir = temp_dir("nopurge");
        let mut store = SketchStore::new(cfg());
        let mut journal = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        for i in 0..10 {
            ingest(&mut store, &mut journal, i, i + 100);
        }
        let snap = StoreSnapshot::capture(&store);
        journal.rotate(snap.edges_processed + 1).unwrap();
        // Snapshot written but prune never ran (crash in between): the
        // old segment's entries are all covered by the snapshot.
        snap.write_atomic(&snapshot_path(&dir)).unwrap();
        drop(journal);

        let rec = recover(&dir, cfg()).unwrap();
        assert_eq!(rec.journal.replayed, 0);
        assert_eq!(rec.journal.skipped, 10);
        assert_eq!(rec.store.edges_processed(), 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_config_wins_over_caller_config() {
        let dir = temp_dir("cfgwins");
        let mut store = SketchStore::new(cfg());
        store.insert_edge(VertexId(1), VertexId(2));
        StoreSnapshot::capture(&store)
            .write_atomic(&snapshot_path(&dir))
            .unwrap();

        let other = SketchConfig::with_slots(64).seed(123);
        let rec = recover(&dir, other).unwrap();
        assert_eq!(rec.store.config().slots(), cfg().slots());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_a_hard_error() {
        let dir = temp_dir("corrupt");
        fs::write(snapshot_path(&dir), b"{ not json").unwrap();
        let err = recover(&dir, cfg()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_journal_tail_recovers_acked_prefix() {
        let dir = temp_dir("torn");
        let mut store = SketchStore::new(cfg());
        let mut journal = Journal::create(&dir, 1, FsyncPolicy::Never).unwrap();
        for i in 0..5 {
            ingest(&mut store, &mut journal, i, i + 50);
        }
        drop(journal);
        // Crash mid-append of entry 6 (never acked).
        let (_, path) = &journal::list_segments(&dir).unwrap()[0];
        let mut content = fs::read(path).unwrap();
        content.extend_from_slice(b"E 6 5");
        fs::write(path, content).unwrap();

        let rec = recover(&dir, cfg()).unwrap();
        assert!(rec.journal.torn_tail);
        assert_eq!(rec.store.edges_processed(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }
}
